// Figure 3: scaling input problems beyond the DRAM capacity.
//
//  (a) SuperLU over the five UF-collection datasets (kim2 ... nlpkkt120,
//      the largest at ~5x DRAM): factor Mflop/s on cached-NVM should stay
//      roughly flat.
//  (b) BoxLib and Hypre at growing simulation domains: speedup of
//      cached-NVM over uncached-NVM; the paper reports ~2x even at 4.4x
//      (BoxLib) and 2.9x (Hypre) the DRAM capacity.
#include <cstdio>
#include <vector>

#include "dwarfs/sparse/superlu.hpp"
#include "harness/registry.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"
#include "simcore/units.hpp"

using namespace nvms;

int main() {
  const auto dram_cap =
      static_cast<double>(SystemConfig::testbed(Mode::kDramOnly).dram.capacity);
  init_registry();

  std::printf("Figure 3a: SuperLU factor Mflop/s across datasets "
              "(cached-NVM)\n\n");
  {
    const auto& datasets = superlu_datasets();
    const double base_fp = static_cast<double>(datasets[2].footprint);
    std::vector<AppResult> results(datasets.size());
    parallel_for_index(results.size(), [&](std::size_t i) {
      AppConfig cfg;
      cfg.threads = 36;
      // size_scale maps the default dataset (Ge87H76) onto this one.
      cfg.size_scale = static_cast<double>(datasets[i].footprint) / base_fp;
      results[i] = run_app("superlu", Mode::kCachedNvm, cfg);
    });

    TextTable t({"dataset", "footprint", "x DRAM", "factor Mflop/s"});
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      const auto& r = results[i];
      t.add_row({datasets[i].name, format_bytes(r.footprint),
                 TextTable::num(static_cast<double>(r.footprint) / dram_cap,
                                2),
                 TextTable::num(r.fom, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected: Mflop/s stays in a narrow band as footprint "
                "grows to ~5x DRAM.\n\n");
  }

  std::printf("Figure 3b: cached-NVM speedup over uncached-NVM at growing "
              "footprints\n\n");
  // Scales chosen to reach the paper's 4.4x (BoxLib) and 2.9x (Hypre).
  struct Point {
    const char* app;
    double scale;
    AppResult uncached, cached;
  };
  std::vector<Point> points;
  for (double scale : {1.0, 2.0, 4.0, 6.2}) points.push_back({"boxlib", scale, {}, {}});
  for (double scale : {0.8, 1.4, 2.2, 3.2}) points.push_back({"hypre", scale, {}, {}});
  parallel_for_each(points, [](Point& p) {
    AppConfig cfg;
    cfg.threads = 36;
    cfg.size_scale = p.scale;
    p.uncached = run_app(p.app, Mode::kUncachedNvm, cfg);
    p.cached = run_app(p.app, Mode::kCachedNvm, cfg);
  });

  TextTable t({"app", "x DRAM", "uncached (s)", "cached (s)", "speedup"});
  for (const auto& p : points) {
    t.add_row({p.app,
               TextTable::num(
                   static_cast<double>(p.cached.footprint) / dram_cap, 2),
               TextTable::num(p.uncached.runtime, 3),
               TextTable::num(p.cached.runtime, 3),
               TextTable::num(p.uncached.runtime / p.cached.runtime, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: speedup ~2x or better below DRAM capacity, still ~2x at\n"
      "4.4x (BoxLib) and 2.9x (Hypre) the DRAM capacity.\n");
  return 0;
}
