// Figure 3: scaling input problems beyond the DRAM capacity.
//
//  (a) SuperLU over the five UF-collection datasets (kim2 ... nlpkkt120,
//      the largest at ~5x DRAM): factor Mflop/s on cached-NVM should stay
//      roughly flat.
//  (b) BoxLib and Hypre at growing simulation domains: speedup of
//      cached-NVM over uncached-NVM; the paper reports ~2x even at 4.4x
//      (BoxLib) and 2.9x (Hypre) the DRAM capacity.
#include <cstdio>

#include "dwarfs/sparse/superlu.hpp"
#include "harness/registry.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

int main() {
  const auto dram_cap =
      static_cast<double>(SystemConfig::testbed(Mode::kDramOnly).dram.capacity);

  std::printf("Figure 3a: SuperLU factor Mflop/s across datasets "
              "(cached-NVM)\n\n");
  {
    TextTable t({"dataset", "footprint", "x DRAM", "factor Mflop/s"});
    const double base_fp = static_cast<double>(superlu_datasets()[2].footprint);
    for (const auto& ds : superlu_datasets()) {
      AppConfig cfg;
      cfg.threads = 36;
      // size_scale maps the default dataset (Ge87H76) onto this one.
      cfg.size_scale = static_cast<double>(ds.footprint) / base_fp;
      const auto r = run_app("superlu", Mode::kCachedNvm, cfg);
      t.add_row({ds.name, format_bytes(r.footprint),
                 TextTable::num(static_cast<double>(r.footprint) / dram_cap,
                                2),
                 TextTable::num(r.fom, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected: Mflop/s stays in a narrow band as footprint "
                "grows to ~5x DRAM.\n\n");
  }

  std::printf("Figure 3b: cached-NVM speedup over uncached-NVM at growing "
              "footprints\n\n");
  TextTable t({"app", "x DRAM", "uncached (s)", "cached (s)", "speedup"});
  struct Sweep {
    const char* app;
    std::vector<double> scales;
  };
  // Scales chosen to reach the paper's 4.4x (BoxLib) and 2.9x (Hypre).
  const Sweep sweeps[] = {
      {"boxlib", {1.0, 2.0, 4.0, 6.2}},
      {"hypre", {0.8, 1.4, 2.2, 3.2}},
  };
  for (const auto& sweep : sweeps) {
    for (double scale : sweep.scales) {
      AppConfig cfg;
      cfg.threads = 36;
      cfg.size_scale = scale;
      const auto un = run_app(sweep.app, Mode::kUncachedNvm, cfg);
      const auto ca = run_app(sweep.app, Mode::kCachedNvm, cfg);
      t.add_row({sweep.app,
                 TextTable::num(static_cast<double>(ca.footprint) / dram_cap,
                                2),
                 TextTable::num(un.runtime, 3), TextTable::num(ca.runtime, 3),
                 TextTable::num(un.runtime / ca.runtime, 2)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: speedup ~2x or better below DRAM capacity, still ~2x at\n"
      "4.4x (BoxLib) and 2.9x (Hypre) the DRAM capacity.\n");
  return 0;
}
