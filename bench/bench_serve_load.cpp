// NVMS_LINT(allow-file: DET-002, load generator measures real request latency)
//
// bench_serve_load: load-generate nvmsimd with concurrent synthetic
// clients and record BENCH_serve.json — the service-layer perf snapshot
// CI compares with tools/bench-snapshot (generic gate.*/parity.* schema,
// same machine normalization as BENCH_epoch/BENCH_sweep: work per
// calibrated spin-unit, never raw seconds).
//
// Default: 1000 concurrent clients x 2 requests each against an
// in-process daemon on a unix socket, every request the same warm-cache
// query (`run stream --resolve-cache shared --json`) so the
// process-lifetime shared ResolveCache demonstrates its point: the gate
// requires a warm hit rate above 80%.  --quick drops to 128 clients for
// smoke use.  Latency percentiles (p50/p99) and saturation throughput
// are recorded; throughput is gated per calibration unit.
//
// Parity flags (required unconditionally by the compare gate):
//   responses_match_cli        daemon "out" bytes == one-shot CLI stdout
//   malformed_structured_errors  a fuzz batch of garbage requests all got
//                              structured error responses (zero crashes,
//                              zero hangs, daemon still answers after)
//   clean_shutdown             a `shutdown` request stopped the IO loop
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/driver.hpp"
#include "harness/kernel_bench.hpp"
#include "serve/daemon.hpp"
#include "serve/jsonv.hpp"
#include "simcore/json.hpp"

namespace {

using namespace nvms;
using Clock = std::chrono::steady_clock;

constexpr int kSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Minimal synchronous JSONL client over a unix socket.

class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  bool recv_line(std::string* line) {
    while (true) {
      const std::size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        *line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return true;
      }
      char buf[16384];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n > 0) {
        carry_.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

 private:
  int fd_ = -1;
  std::string carry_;
};

/// One-shot CLI stdout for the same query (the byte-identity oracle).
std::string cli_stdout(const std::vector<std::string>& args) {
  std::vector<std::string> full = {"nvmsim"};
  full.insert(full.end(), args.begin(), args.end());
  std::vector<std::vector<char>> storage;
  std::vector<char*> argv;
  for (const auto& a : full) {
    storage.emplace_back(a.begin(), a.end());
    storage.back().push_back('\0');
    argv.push_back(storage.back().data());
  }
  std::ostringstream out, err;
  (void)cli_main(static_cast<int>(argv.size()), argv.data(), out, err);
  return out.str();
}

/// Extract a response string field; "" when absent / response malformed.
std::string field_of(const std::string& response, const char* key) {
  const auto doc = json_parse(response);
  if (!doc.value) return "";
  const JsonValue* f = doc.value->find(key);
  return f != nullptr && f->is_string() ? f->as_string() : "";
}

// ---------------------------------------------------------------------------
// Phases

bool check_byte_identity(const std::string& socket_path) {
  Client c(socket_path);
  if (!c.ok()) return false;
  struct Pair {
    const char* request;
    std::vector<std::string> cli;
  };
  const std::vector<Pair> pairs = {
      {R"({"cmd":"list"})", {"list"}},
      {R"({"cmd":"run","target":"stream","args":{"scale":0.25,)"
       R"("threads":12,"mode":"dram-only","json":true}})",
       {"run", "stream", "--scale", "0.25", "--threads", "12", "--mode",
        "dram-only", "--json"}},
      {R"({"cmd":"explain","target":"stream","args":{"scale":0.25,)"
       R"("threads":12,"resolve-cache":"shared","format":"json"}})",
       {"explain", "stream", "--scale", "0.25", "--threads", "12",
        "--resolve-cache", "shared", "--format", "json"}},
  };
  for (const Pair& p : pairs) {
    if (!c.send_line(p.request)) return false;
    std::string resp;
    if (!c.recv_line(&resp)) return false;
    if (field_of(resp, "out") != cli_stdout(p.cli)) {
      std::fprintf(stderr, "bench_serve_load: byte mismatch for %s\n",
                   p.request);
      return false;
    }
  }
  return true;
}

bool run_malformed_fuzz(const std::string& socket_path) {
  Client c(socket_path);
  if (!c.ok()) return false;
  std::vector<std::string> batch = {
      "this is not json",
      "[]",
      "{}",
      R"({"cmd":42})",
      R"({"cmd":"record","target":"stream"})",
      R"({"cmd":"run","target":"../etc/passwd"})",
      R"({"cmd":"run","target":"stream","args":{"trace-out":"/tmp/x"}})",
      R"({"cmd":"sweep","target":"stream","args":{"threads":"12,abc"}})",
      R"({"cmd":"run","target":"stream","args":{"scale":"1.5q"}})",
      R"({"cmd":"list","priority":"urgent"})",
      R"({"id":[1,2],"cmd":"list"})",
  };
  // Deterministic garbage on top of the curated rows (seeded: the batch
  // is identical on every run of the bench).
  std::mt19937 rng(0xC0FFEE);
  const std::string alphabet = "{}[]\":,abcdefXYZ0123456789\\ ";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(1, 120);
  for (int i = 0; i < 96; ++i) {
    std::string junk;
    const int n = len(rng);
    for (int k = 0; k < n; ++k) junk += alphabet[pick(rng)];
    if (junk.find_first_not_of(" \t") == std::string::npos) junk += "x";
    batch.push_back(junk);
  }
  for (const auto& line : batch) {
    if (!c.send_line(line)) return false;
    std::string resp;
    if (!c.recv_line(&resp)) {
      std::fprintf(stderr, "bench_serve_load: no response to fuzz line: %s\n",
                   line.c_str());
      return false;
    }
    // Structured: either a protocol rejection with a machine code, or a
    // valid request whose execution failed with the CLI's diagnostic.
    const auto doc = json_parse(resp);
    if (!doc.value || !doc.value->is_object()) return false;
    const JsonValue* ok = doc.value->find("ok");
    if (ok == nullptr) return false;
    if (!ok->as_bool() && field_of(resp, "code").empty()) return false;
  }
  // The daemon survived the whole batch and still answers.
  if (!c.send_line(R"({"cmd":"ping"})")) return false;
  std::string pong;
  return c.recv_line(&pong) && field_of(pong, "out") == "pong";
}

struct LoadResult {
  std::vector<double> latencies_ms;  // every request, all clients
  double seconds = 0.0;              // wall time of the whole phase
  std::size_t sent = 0;
  std::size_t answered = 0;  // responses with ok:true
};

LoadResult run_load(const std::string& socket_path, int clients,
                    int requests_per_client) {
  // The warm-cache query every synthetic client repeats.  Each client
  // carries its own id so the budget/stats side sees distinct tenants.
  const std::string query_prefix =
      R"({"cmd":"run","target":"stream","args":{"scale":0.25,"threads":12,)"
      R"("resolve-cache":"shared","json":true},"client":"c)";
  LoadResult result;
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::size_t> good(static_cast<std::size_t>(clients), 0);
  const auto t0 = Clock::now();
  threads.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      Client c(socket_path);
      if (!c.ok()) return;
      const std::string query =
          query_prefix + std::to_string(i) + R"("})";
      for (int k = 0; k < requests_per_client; ++k) {
        const auto s0 = Clock::now();
        if (!c.send_line(query)) return;
        std::string resp;
        if (!c.recv_line(&resp)) return;
        lat[static_cast<std::size_t>(i)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - s0)
                .count());
        const auto doc = json_parse(resp);
        const JsonValue* ok = doc.value ? doc.value->find("ok") : nullptr;
        if (ok != nullptr && ok->as_bool()) {
          ++good[static_cast<std::size_t>(i)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (int i = 0; i < clients; ++i) {
    result.answered += good[static_cast<std::size_t>(i)];
    for (const double ms : lat[static_cast<std::size_t>(i)]) {
      result.latencies_ms.push_back(ms);
    }
  }
  result.sent = static_cast<std::size_t>(clients) *
                static_cast<std::size_t>(requests_per_client);
  return result;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_serve_load [--quick] [--clients N] "
               "[--requests N] [--workers N] [--out DIR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int clients = 0;  // default depends on --quick
  int requests_per_client = 2;
  int workers = 0;  // 0 -> hardware concurrency
  std::string out_dir = ".";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--clients" && a + 1 < argc) {
      clients = std::atoi(argv[++a]);
    } else if (arg == "--requests" && a + 1 < argc) {
      requests_per_client = std::atoi(argv[++a]);
    } else if (arg == "--workers" && a + 1 < argc) {
      workers = std::atoi(argv[++a]);
    } else if (arg == "--out" && a + 1 < argc) {
      out_dir = argv[++a];
    } else {
      return usage();
    }
  }
  if (clients <= 0) clients = quick ? 128 : 1000;
  if (requests_per_client <= 0) return usage();
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(hw > 2 ? hw : 2);
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "bench_serve_load: calibrating baseline unit...\n");
  const double unit_s = calibrate_baseline();

  ServeConfig cfg;
  cfg.socket_path = "/tmp/nvms_bench_serve_" +
                    std::to_string(::getpid()) + ".sock";
  cfg.workers = workers;
  // Every client keeps at most one request in flight; size the queue so
  // overload control never distorts the latency numbers.
  cfg.queue_capacity = static_cast<std::size_t>(clients) + 64;
  Daemon daemon(cfg);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "bench_serve_load: %s\n", error.c_str());
    return 1;
  }
  std::thread io([&daemon] { daemon.run(); });

  std::fprintf(stderr, "bench_serve_load: byte-identity parity...\n");
  const bool responses_match_cli = check_byte_identity(cfg.socket_path);
  std::fprintf(stderr, "bench_serve_load: malformed fuzz batch...\n");
  const bool malformed_ok = run_malformed_fuzz(cfg.socket_path);

  std::fprintf(stderr,
               "bench_serve_load: load phase (%d clients x %d requests, "
               "%d workers)...\n",
               clients, requests_per_client, workers);
  const LoadResult load =
      run_load(cfg.socket_path, clients, requests_per_client);

  // Warm shared-cache hit rate, straight from the daemon's stats view.
  double warm_hit_rate = 0.0;
  {
    Client c(cfg.socket_path);
    std::string resp;
    if (c.ok() && c.send_line(R"({"cmd":"stats"})") && c.recv_line(&resp)) {
      const auto inner = json_parse(field_of(resp, "out"));
      if (inner.value) {
        if (const JsonValue* rc = inner.value->find("resolve_cache")) {
          if (const JsonValue* hr = rc->find("hit_rate")) {
            warm_hit_rate = hr->as_number();
          }
        }
      }
    }
  }

  // Clean shutdown through the protocol itself.
  bool clean_shutdown = false;
  {
    Client c(cfg.socket_path);
    std::string resp;
    if (c.ok() && c.send_line(R"({"cmd":"shutdown"})") &&
        c.recv_line(&resp)) {
      clean_shutdown = field_of(resp, "out") == "shutting down";
    }
  }
  io.join();  // run() returns once the shutdown request lands

  std::vector<double> sorted = load.latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = percentile(sorted, 0.50);
  const double p99 = percentile(sorted, 0.99);
  const double rps =
      load.seconds > 0.0 ? static_cast<double>(load.answered) / load.seconds
                         : 0.0;
  const bool all_answered = load.answered == load.sent;

  Json doc;
  doc.set("schema_version", kSchemaVersion);
  doc.set("kind", "nvms-bench-serve");
  doc.set("corpus", "serve-load");
  doc.set("clients", clients);
  doc.set("requests_per_client", requests_per_client);
  doc.set("workers", workers);
  doc.set("baseline_unit_s", unit_s);
  {
    Json lat;
    lat.set("p50_ms", p50);
    lat.set("p99_ms", p99);
    lat.set("max_ms", sorted.empty() ? 0.0 : sorted.back());
    doc.set("latency", lat);
  }
  {
    Json thr;
    thr.set("requests", static_cast<std::uint64_t>(load.answered));
    thr.set("seconds", load.seconds);
    thr.set("requests_per_s", rps);
    doc.set("throughput", thr);
  }
  {
    // Gate metrics are higher-is-better and machine-normalized; the
    // parity flags are required unconditionally by the compare gate.
    Json gate;
    gate.set("requests_per_unit", rps * unit_s);
    gate.set("warm_hit_rate", warm_hit_rate);
    doc.set("gate", gate);
  }
  {
    Json parity;
    parity.set("responses_match_cli", responses_match_cli);
    parity.set("malformed_structured_errors", malformed_ok);
    parity.set("all_requests_answered", all_answered);
    parity.set("clean_shutdown", clean_shutdown);
    doc.set("parity", parity);
  }

  const std::string sep =
      out_dir.empty() || out_dir.back() == '/' ? "" : "/";
  const std::string path = out_dir + sep + "BENCH_serve.json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_serve_load: cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc.dump(2) << "\n";

  std::printf(
      "serve-load: %d clients x %d req, %zu/%zu answered in %.2fs "
      "(%.0f req/s, %.1f req/unit), p50 %.2fms p99 %.2fms, warm hit rate "
      "%.1f%%, parity %s/%s/%s/%s\n",
      clients, requests_per_client, load.answered, load.sent, load.seconds,
      rps, rps * unit_s, p50, p99, 100.0 * warm_hit_rate,
      responses_match_cli ? "bytes-ok" : "BYTES-DIVERGED",
      malformed_ok ? "fuzz-ok" : "FUZZ-FAILED",
      all_answered ? "answers-ok" : "ANSWERS-MISSING",
      clean_shutdown ? "shutdown-ok" : "SHUTDOWN-FAILED");
  const bool pass = responses_match_cli && malformed_ok && all_answered &&
                    clean_shutdown && warm_hit_rate > 0.8;
  if (!pass) {
    std::fprintf(stderr, "bench_serve_load: FAILED gates\n");
    return 1;
  }
  return 0;
}
