// Figure 8: increased concurrency in ScaLAPACK (uncached NVM) prolongs the
// broadcast stage from ~10% to ~30% of execution, while stage-2 read
// bandwidth rises (12 -> 17 GB/s in the paper) and shortens the update
// stage; the stage-1 absolute time barely changes, so it becomes the more
// important phase.
#include <cstdio>

#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

double stage_read_bw(const AppResult& r, const char* prefix) {
  // Average NVM read bandwidth over the stage's phases.
  double bytes = 0.0;
  double time = 0.0;
  for (const auto& p : r.traces.phases) {
    if (p.name.rfind(prefix, 0) != 0) continue;
    const double dt = p.t1 - p.t0;
    // integrate the read series over this phase
    bytes += r.traces.nvm_read.at((p.t0 + p.t1) / 2) * dt;
    time += dt;
  }
  return time > 0.0 ? bytes / time : 0.0;
}

}  // namespace

int main() {
  constexpr int kLow = 12;
  constexpr int kHigh = 36;
  AppConfig lo;
  lo.threads = kLow;
  AppConfig hi;
  hi.threads = kHigh;
  const auto r_lo = run_app("scalapack", Mode::kUncachedNvm, lo);
  const auto r_hi = run_app("scalapack", Mode::kUncachedNvm, hi);

  std::printf(
      "Figure 8: ScaLAPACK on uncached-NVM at two concurrency levels\n\n");
  std::printf("-- ht=%d trace --\n%s\n", kLow,
              render_trace_table(r_lo.traces, 12).c_str());
  std::printf("-- ht=%d trace --\n%s\n", kHigh,
              render_trace_table(r_hi.traces, 12).c_str());

  TextTable t({"metric", "ht=12", "ht=36", "paper trend"});
  t.add_row({"stage-1 (bcast) share", phase_share(r_lo.traces, "bcast"),
             phase_share(r_hi.traces, "bcast"), "10% -> 30%"});
  t.add_row({"stage-2 read bw (GB/s)",
             TextTable::num(stage_read_bw(r_lo, "update") / GB, 1),
             TextTable::num(stage_read_bw(r_hi, "update") / GB, 1),
             "12 -> 17 (up)"});
  t.add_row({"runtime (s)", TextTable::num(r_lo.runtime, 3),
             TextTable::num(r_hi.runtime, 3), "-"});
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: broadcast stage share grows with concurrency while the\n"
      "update stage accelerates (read scaling) -> stage 1 becomes the\n"
      "optimization priority.\n");
  return 0;
}
