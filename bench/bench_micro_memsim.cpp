// Google-benchmark microbenchmarks of the simulator's hot paths: phase
// resolution (the damped fixed point), DRAM-cache stream access, and
// whole-app simulation throughput.  These guard the simulator's own
// performance — bench binaries replay billions of simulated bytes, so the
// per-phase cost must stay in microseconds.
#include <benchmark/benchmark.h>

#include "harness/kernel_bench.hpp"
#include "harness/registry.hpp"
#include "mem/buffer.hpp"
#include "memsim/dram_cache.hpp"
#include "memsim/memory_system.hpp"
#include "memsim/resolve_cache.hpp"
#include "obs/telemetry.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

void BM_ResolvePhase(benchmark::State& state) {
  const auto dram = ddr4_socket_params(96 * GiB);
  const auto nvm = optane_socket_params(768 * GiB);
  const CpuParams cpu;
  Phase p;
  p.name = "bm";
  p.threads = 36;
  p.flops = 1e9;
  DeviceDemand nvm_dem;
  nvm_dem.add(Pattern::kSequential, Dir::kRead, 54 * GiB);
  nvm_dem.add(Pattern::kSequential, Dir::kWrite, 33 * GiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_phase(p, {}, nvm_dem, dram, nvm, cpu));
  }
}
BENCHMARK(BM_ResolvePhase);

void BM_CacheSequentialStream(benchmark::State& state) {
  CacheParams cp;
  cp.line = 4 * KiB;
  cp.capacity = 96 * MiB;
  DramCache cache(cp);
  const StreamDesc rd = seq_read(0, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rd, 0, 64 * MiB));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CacheSequentialStream)->Arg(1 * MiB)->Arg(16 * MiB)->Arg(64 * MiB);

void BM_CacheRandomStream(benchmark::State& state) {
  CacheParams cp;
  cp.line = 4 * KiB;
  cp.capacity = 96 * MiB;
  DramCache cache(cp);
  const StreamDesc rr = rand_read(0, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rr, 0, 64 * MiB));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CacheRandomStream)->Arg(1 * MiB)->Arg(16 * MiB);

// Memoized resolution: arg 0 = the plain damped fixed point, arg 1 = a
// ResolveCache hot hit on the same inputs.  The gap between the two is
// what a sweep saves on every repeated phase shape.
void BM_ResolveCache(benchmark::State& state) {
  const auto dram = ddr4_socket_params(96 * GiB);
  const auto nvm = optane_socket_params(768 * GiB);
  const CpuParams cpu;
  Phase p;
  p.name = "bm";
  p.threads = 36;
  p.flops = 1e9;
  std::vector<LaneDemand> lanes(2);
  lanes[0].dev = &dram;
  lanes[0].label = "dram0";
  lanes[1].dev = &nvm;
  lanes[1].label = "nvm0";
  lanes[1].dem.add(Pattern::kSequential, Dir::kRead, 54 * GiB);
  lanes[1].dem.add(Pattern::kSequential, Dir::kWrite, 33 * GiB);
  ResolveCache cache(1);
  if (state.range(0) != 0) {
    // Prime the single entry; every timed iteration is a hit.
    benchmark::DoNotOptimize(
        cache.resolve(p, lanes, cpu, 0.0, 0.0, nullptr, 0.0));
  }
  for (auto _ : state) {
    if (state.range(0) != 0) {
      benchmark::DoNotOptimize(
          cache.resolve(p, lanes, cpu, 0.0, 0.0, nullptr, 0.0));
    } else {
      benchmark::DoNotOptimize(
          resolve_lanes(p, lanes, cpu, 0.0, 0.0, nullptr, 0.0));
    }
  }
  state.SetLabel(state.range(0) != 0 ? "hit" : "fixed-point");
}
BENCHMARK(BM_ResolveCache)->Arg(0)->Arg(1);

void BM_SubmitPhase(benchmark::State& state) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto id = sys.register_buffer("bm", 32 * MiB);
  Phase p = PhaseBuilder("bm")
                .threads(36)
                .flops(1e8)
                .stream(seq_read(id, 16 * MiB))
                .stream(seq_write(id, 4 * MiB))
                .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.submit(p));
  }
}
BENCHMARK(BM_SubmitPhase);

// Same phase stream with the telemetry layer attached: arg 0 = null sink
// (hooks run, sinks drop), arg 1 = full capture (spans + metric series
// retained).  Compare against BM_SubmitPhase for the per-phase cost.
void BM_SubmitPhaseTelemetry(benchmark::State& state) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  Telemetry telemetry(state.range(0) != 0 ? Telemetry::Capture::kFull
                                          : Telemetry::Capture::kNull);
  sys.set_telemetry(&telemetry);
  const auto id = sys.register_buffer("bm", 32 * MiB);
  Phase p = PhaseBuilder("bm")
                .threads(36)
                .flops(1e8)
                .stream(seq_read(id, 16 * MiB))
                .stream(seq_write(id, 4 * MiB))
                .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.submit(p));
  }
  state.SetLabel(state.range(0) != 0 ? "full" : "null-sink");
}
BENCHMARK(BM_SubmitPhaseTelemetry)->Arg(0)->Arg(1);

void BM_WholeApp(benchmark::State& state) {
  AppConfig cfg;
  cfg.threads = 36;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_app("scalapack", Mode::kUncachedNvm, cfg));
  }
}
BENCHMARK(BM_WholeApp)->Unit(benchmark::kMillisecond);

// Epoch-kernel replay throughput (the tentpole hot path): one harvested
// cached-NVM corpus — app-side work excluded — replayed per iteration.
// epochs/s is phase submissions through resolve_lanes + walk_batch per
// wall second; lane-GB/s is the simulated stream traffic those epochs
// push through the lane kernels per wall second.  Arg 0 replays the raw
// kernels, arg 1 the memoized (shared resolve-cache) hot path.
void BM_EpochReplay(benchmark::State& state) {
  static const std::vector<PhaseCorpus> corpora = [] {
    init_registry();
    std::vector<PhaseCorpus> c;
    c.push_back(harvest_corpus("xsbench", Mode::kCachedNvm));
    c.push_back(harvest_corpus("ft", Mode::kCachedNvm));
    return c;
  }();
  const auto mode = state.range(0) != 0 ? ResolveCacheMode::kShared
                                        : ResolveCacheMode::kOff;
  std::uint64_t epochs = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const ReplayResult r = replay_corpora(corpora, 1, mode);
    benchmark::DoNotOptimize(r.time_fold);
    epochs += r.epochs;
    bytes += r.stream_bytes;
  }
  state.counters["epochs/s"] = benchmark::Counter(
      static_cast<double>(epochs), benchmark::Counter::kIsRate);
  state.counters["lane-GB/s"] = benchmark::Counter(
      static_cast<double>(bytes) / 1e9, benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) != 0 ? "memoized" : "raw-kernels");
}
BENCHMARK(BM_EpochReplay)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
