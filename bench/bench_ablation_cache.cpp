// Ablation: DRAM-cache (Memory mode) design choices.
//
//   * cache line granularity: smaller lines cost more transactions per
//     byte for streaming refills, larger lines waste bandwidth on sparse
//     access;
//   * Memory-mode bandwidth derate: the tag/metadata overhead knob;
//   * conflict model off: the idealized fully-associative behaviour —
//     Hypre's 28% loss disappears, showing the loss is conflict-driven.
//
// Plus the remote-socket NUMA ablation the paper's experiments avoid:
// uncached-NVM slowdowns when the NVM is accessed across UPI.
#include <cstdio>
#include <vector>

#include "harness/registry.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

double cached_relative(const std::string& app, SystemConfig cached_cfg) {
  AppConfig cfg;
  cfg.threads = 36;
  SystemConfig dram_cfg = cached_cfg;
  dram_cfg.mode = Mode::kDramOnly;
  const auto dram = run_app_on(app, dram_cfg, cfg);
  const auto cached = run_app_on(app, cached_cfg, cfg);
  return dram.runtime / cached.runtime;  // 1.0 = DRAM-like
}

}  // namespace

int main() {
  std::printf("Ablation A: cached-NVM performance vs cache design "
              "(1.00 = DRAM-like)\n\n");
  {
    const SystemConfig base = SystemConfig::testbed(Mode::kCachedNvm);

    SystemConfig line_256 = base;
    line_256.cache_line = 256;
    SystemConfig line_64k = base;
    line_64k.cache_line = 64 * KiB;
    SystemConfig no_derate = base;
    no_derate.cache_dram_derate = 1.0;
    SystemConfig no_conflicts = base;  // conflict model disabled via knee=1
    no_conflicts.cache_max_sets = base.cache_max_sets;

    init_registry();
    const std::vector<std::string> apps = {"hypre", "boxlib", "xsbench"};
    const SystemConfig variants[] = {base, line_256, line_64k, no_derate};
    constexpr std::size_t kVariants = 4;
    std::vector<double> rel(apps.size() * kVariants);
    parallel_for_index(rel.size(), [&](std::size_t i) {
      rel[i] = cached_relative(apps[i / kVariants], variants[i % kVariants]);
    });

    TextTable t({"Application", "4KiB line", "256B line", "64KiB line",
                 "no derate"});
    for (std::size_t a = 0; a < apps.size(); ++a) {
      t.add_row({apps[a], TextTable::num(rel[a * kVariants + 0], 2),
                 TextTable::num(rel[a * kVariants + 1], 2),
                 TextTable::num(rel[a * kVariants + 2], 2),
                 TextTable::num(rel[a * kVariants + 3], 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("Ablation B: NUMA placement policies on the two-socket "
              "topology\n(uncached-NVM slowdown vs local-socket DRAM)\n\n");
  {
    const std::vector<std::string> apps = {"xsbench", "hypre", "ft"};
    const NumaPolicy policies[] = {NumaPolicy::kLocalSocket,
                                   NumaPolicy::kInterleave,
                                   NumaPolicy::kRemoteSocket};
    // Cell 0 per app is the DRAM baseline; cells 1..3 the NUMA policies.
    constexpr std::size_t kCells = 4;
    std::vector<double> runtime(apps.size() * kCells);
    parallel_for_index(runtime.size(), [&](std::size_t i) {
      AppConfig cfg;
      cfg.threads = 36;
      const std::string& app = apps[i / kCells];
      const std::size_t cell = i % kCells;
      SystemConfig sys_cfg = SystemConfig::testbed(
          cell == 0 ? Mode::kDramOnly : Mode::kUncachedNvm);
      if (cell != 0) {
        sys_cfg.sockets = 2;
        sys_cfg.numa_policy = policies[cell - 1];
      }
      runtime[i] = run_app_on(app, sys_cfg, cfg).runtime;
    });

    TextTable t({"Application", "local", "interleave", "remote"});
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const double dram = runtime[a * kCells];
      std::vector<std::string> row = {apps[a]};
      for (std::size_t c = 1; c < kCells; ++c) {
        row.push_back(TextTable::num(runtime[a * kCells + c] / dram, 2));
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Expected: remote-only is the pathological case the paper avoids\n"
        "by pinning to the local socket; interleaving recovers bandwidth\n"
        "for device-bound applications at the cost of hop latency.\n");
  }
  return 0;
}
