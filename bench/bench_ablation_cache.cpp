// Ablation: DRAM-cache (Memory mode) design choices.
//
//   * cache line granularity: smaller lines cost more transactions per
//     byte for streaming refills, larger lines waste bandwidth on sparse
//     access;
//   * Memory-mode bandwidth derate: the tag/metadata overhead knob;
//   * conflict model off: the idealized fully-associative behaviour —
//     Hypre's 28% loss disappears, showing the loss is conflict-driven.
//
// Plus the remote-socket NUMA ablation the paper's experiments avoid:
// uncached-NVM slowdowns when the NVM is accessed across UPI.
#include <cstdio>

#include "harness/registry.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

double cached_relative(const std::string& app, SystemConfig cached_cfg) {
  AppConfig cfg;
  cfg.threads = 36;
  SystemConfig dram_cfg = cached_cfg;
  dram_cfg.mode = Mode::kDramOnly;
  const auto dram = run_app_on(app, dram_cfg, cfg);
  const auto cached = run_app_on(app, cached_cfg, cfg);
  return dram.runtime / cached.runtime;  // 1.0 = DRAM-like
}

}  // namespace

int main() {
  std::printf("Ablation A: cached-NVM performance vs cache design "
              "(1.00 = DRAM-like)\n\n");
  {
    const SystemConfig base = SystemConfig::testbed(Mode::kCachedNvm);

    SystemConfig line_256 = base;
    line_256.cache_line = 256;
    SystemConfig line_64k = base;
    line_64k.cache_line = 64 * KiB;
    SystemConfig no_derate = base;
    no_derate.cache_dram_derate = 1.0;
    SystemConfig no_conflicts = base;  // conflict model disabled via knee=1
    no_conflicts.cache_max_sets = base.cache_max_sets;

    TextTable t({"Application", "4KiB line", "256B line", "64KiB line",
                 "no derate"});
    for (const std::string app : {"hypre", "boxlib", "xsbench"}) {
      t.add_row({app, TextTable::num(cached_relative(app, base), 2),
                 TextTable::num(cached_relative(app, line_256), 2),
                 TextTable::num(cached_relative(app, line_64k), 2),
                 TextTable::num(cached_relative(app, no_derate), 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("Ablation B: NUMA placement policies on the two-socket "
              "topology\n(uncached-NVM slowdown vs local-socket DRAM)\n\n");
  {
    TextTable t({"Application", "local", "interleave", "remote"});
    for (const std::string app : {"xsbench", "hypre", "ft"}) {
      AppConfig cfg;
      cfg.threads = 36;
      SystemConfig dram_cfg = SystemConfig::testbed(Mode::kDramOnly);
      const auto dram = run_app_on(app, dram_cfg, cfg);
      std::vector<std::string> row = {app};
      for (const NumaPolicy policy :
           {NumaPolicy::kLocalSocket, NumaPolicy::kInterleave,
            NumaPolicy::kRemoteSocket}) {
        SystemConfig cfg2 = SystemConfig::testbed(Mode::kUncachedNvm);
        cfg2.sockets = 2;
        cfg2.numa_policy = policy;
        const auto r = run_app_on(app, cfg2, cfg);
        row.push_back(TextTable::num(r.runtime / dram.runtime, 2));
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Expected: remote-only is the pathological case the paper avoids\n"
        "by pinning to the local socket; interleaving recovers bandwidth\n"
        "for device-bound applications at the cost of hop latency.\n");
  }
  return 0;
}
