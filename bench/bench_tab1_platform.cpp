// Table I / Sec. II-A: validation of the calibrated device models against
// the published platform characteristics the paper relies on:
//   * NVM read latency 174 ns (sequential) / 304 ns (random)
//   * per-socket NVM read bandwidth ~39 GB/s, write ~13 GB/s (3x asymmetry)
//   * write bandwidth peaking at ~4 writer threads and declining after
//   * DDR4 socket read bandwidth ~105 GB/s
// Probes run through the public MemorySystem interface (phase submission),
// not by reading parameters back, so they exercise the same code path as
// the applications.
#include <cstdio>

#include "mem/buffer.hpp"
#include "memsim/memory_system.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

double measure_bw(Mode mode, Pattern pat, Dir dir, int threads, double mlp,
                  std::uint64_t granule = 64) {
  MemorySystem sys(SystemConfig::testbed(mode));
  Buffer<double> buf(sys, "probe", 1 * MiB / sizeof(double),
                     32 * MiB / sizeof(double));
  StreamDesc s{buf.id(), 1 * GiB, pat, dir, granule};
  Phase p = PhaseBuilder("probe").threads(threads).mlp(mlp).stream(s).build();
  const auto res = sys.submit(p);
  const auto& dev = (mode == Mode::kDramOnly) ? res.dram : res.nvm;
  return dir == Dir::kRead ? dev.read_bw : dev.write_bw;
}

double measure_latency(Mode mode, Pattern pat) {
  // Pointer-chase: one thread, one outstanding miss; latency = 64B / bw.
  const double bw = measure_bw(mode, pat, Dir::kRead, 1, 1.0);
  return 64.0 / bw;
}

}  // namespace

int main() {
  std::printf("Table I / Sec. II-A: simulated platform characteristics\n\n");

  TextTable t({"Probe", "Measured", "Published"});
  t.add_row({"NVM random read latency",
             format_time(measure_latency(Mode::kUncachedNvm,
                                         Pattern::kRandom)),
             "304 ns"});
  t.add_row({"DRAM random read latency",
             format_time(measure_latency(Mode::kDramOnly, Pattern::kRandom)),
             "~101 ns"});

  const double nvm_rd =
      measure_bw(Mode::kUncachedNvm, Pattern::kSequential, Dir::kRead, 16, 8);
  const double nvm_wr = measure_bw(Mode::kUncachedNvm, Pattern::kSequential,
                                   Dir::kWrite, 4, 8);
  const double dram_rd =
      measure_bw(Mode::kDramOnly, Pattern::kSequential, Dir::kRead, 24, 8);
  const double dram_wr =
      measure_bw(Mode::kDramOnly, Pattern::kSequential, Dir::kWrite, 24, 8);
  t.add_row({"NVM seq read BW (16 thr)", format_bandwidth(nvm_rd),
             "39 GB/s"});
  t.add_row({"NVM seq write BW (4 thr)", format_bandwidth(nvm_wr),
             "13 GB/s"});
  t.add_row({"NVM read/write asymmetry",
             TextTable::num(nvm_rd / nvm_wr, 1) + "x", "~3x"});
  t.add_row({"DRAM seq read BW (24 thr)", format_bandwidth(dram_rd),
             "~105 GB/s"});
  t.add_row({"DRAM seq write BW (24 thr)", format_bandwidth(dram_wr),
             "~57 GB/s"});

  std::printf("%s\n", t.render().c_str());

  std::printf("NVM write bandwidth vs writer threads (WPQ contention):\n");
  TextTable w({"threads", "write BW"});
  for (int thr : {1, 2, 4, 8, 12, 16, 24, 36, 48}) {
    w.add_row({std::to_string(thr),
               format_bandwidth(measure_bw(Mode::kUncachedNvm,
                                           Pattern::kSequential, Dir::kWrite,
                                           thr, 8))});
  }
  std::printf("%s\n", w.render().c_str());
  std::printf("Expected: peak at ~4 threads, monotone decline beyond.\n");
  return 0;
}
