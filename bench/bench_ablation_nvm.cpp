// Ablation: which NVM device characteristics drive the paper's findings?
//
// Three model components are switched off one at a time and the Table III
// slowdowns recomputed:
//   * no write throttling  (throttle_alpha = 0): the read/write coupling
//     at the iMC; removing it should collapse SuperLU stage-1 and FT
//     slowdowns toward the raw bandwidth ratio;
//   * flat write scaling   (write bandwidth independent of thread count):
//     removes WPQ contention; write-heavy apps recover at high thread
//     counts;
//   * symmetric bandwidth  (write peak = read peak): removes the 3x
//     asymmetry entirely; the "bottlenecked" tier should disappear.
#include <cstdio>
#include <vector>

#include "harness/registry.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"

using namespace nvms;

namespace {

double slowdown(const std::string& app, const SystemConfig& nvm_variant) {
  AppConfig cfg;
  cfg.threads = 36;
  SystemConfig dram_cfg = nvm_variant;
  dram_cfg.mode = Mode::kDramOnly;
  const auto dram = run_app_on(app, dram_cfg, cfg);
  const auto nvm = run_app_on(app, nvm_variant, cfg);
  return nvm.runtime / dram.runtime;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: uncached-NVM slowdown with device-model components "
      "removed\n\n");

  SystemConfig base = SystemConfig::testbed(Mode::kUncachedNvm);

  SystemConfig no_throttle = base;
  no_throttle.nvm.throttle_alpha = 0.0;

  SystemConfig flat_write = base;
  flat_write.nvm.write_scaling = ScalingCurve{{{1, 1.0}}};

  SystemConfig symmetric = base;
  symmetric.nvm.write_bw_peak = symmetric.nvm.read_bw_peak;
  symmetric.nvm.write_scaling = symmetric.nvm.read_scaling;

  init_registry();
  const std::vector<std::string> apps = {"laghos", "scalapack", "superlu",
                                         "boxlib", "ft"};
  const SystemConfig variants[] = {base, no_throttle, flat_write, symmetric};
  constexpr std::size_t kVariants = 4;
  std::vector<double> cells(apps.size() * kVariants);
  parallel_for_index(cells.size(), [&](std::size_t i) {
    cells[i] = slowdown(apps[i / kVariants], variants[i % kVariants]);
  });

  TextTable t({"Application", "full model", "no throttling",
               "flat write scaling", "symmetric BW"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    t.add_row({apps[a], TextTable::num(cells[a * kVariants + 0], 2),
               TextTable::num(cells[a * kVariants + 1], 2),
               TextTable::num(cells[a * kVariants + 2], 2),
               TextTable::num(cells[a * kVariants + 3], 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: removing throttling helps read-coupled apps (superlu);\n"
      "flat write scaling helps every write-heavy app at ht=36; symmetric\n"
      "bandwidth erases the bottlenecked tier (ft, boxlib drop toward the\n"
      "read-only slowdown ratio).\n");
  return 0;
}
