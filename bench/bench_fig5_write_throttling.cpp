// Figure 5: write throttling changes the dominant computation phase.
//
// SuperLU's first (write-heavy) factor phase takes ~20% of execution on
// DRAM but extends to ~70% on uncached NVM; its stage-1 write bandwidth
// collapses ~14x and reads are throttled with it.  Laghos keeps its phase
// composition (~20% stage 1) because its write demand stays below the
// ~2 GB/s throttling threshold.
#include <cstdio>

#include "harness/registry.hpp"
#include "harness/ascii_plot.hpp"
#include "harness/report.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

void show(const char* app, const char* stage1_prefix) {
  AppConfig cfg;
  cfg.threads = 36;
  const auto dram = run_app(app, Mode::kDramOnly, cfg);
  const auto nvm = run_app(app, Mode::kUncachedNvm, cfg);

  std::printf("== %s ==\n", app);
  std::printf("-- DRAM-only trace --\n%s\n",
              ascii_plot({{"read", &dram.traces.dram_read, '*'},
                          {"write", &dram.traces.dram_write, 'o'}})
                  .c_str());
  std::printf("-- uncached-NVM trace --\n%s\n",
              ascii_plot({{"read", &nvm.traces.nvm_read, '*'},
                          {"write", &nvm.traces.nvm_write, 'o'}})
                  .c_str());

  TextTable t({"metric", "dram-only", "uncached-nvm"});
  t.add_row({"stage-1 share of execution",
             phase_share(dram.traces, stage1_prefix),
             phase_share(nvm.traces, stage1_prefix)});
  t.add_row({"avg write bw (GB/s)",
             TextTable::num(dram.traces.avg_write_bw() / GB, 2),
             TextTable::num(nvm.traces.avg_write_bw() / GB, 2)});
  t.add_row({"avg read bw (GB/s)",
             TextTable::num(dram.traces.avg_read_bw() / GB, 2),
             TextTable::num(nvm.traces.avg_read_bw() / GB, 2)});
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  std::printf("Figure 5: write throttling and phase composition\n\n");
  show("superlu", "factor");
  show("laghos", "assembly");
  std::printf(
      "Expected: SuperLU stage 1 ~20%% on DRAM -> ~70%% on uncached NVM\n"
      "(write bandwidth collapse throttles reads too); Laghos keeps ~20%%\n"
      "stage 1 in both because its writes stay below ~2 GB/s.\n");
  return 0;
}
