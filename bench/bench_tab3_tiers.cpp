// Table III: characterization of application sensitivity to uncached-NVM.
//
// Reproduces the paper's columns: average memory bandwidth (total, read,
// write) measured on the uncached-NVM run, the write ratio, and the
// slowdown relative to the DRAM-only baseline.  Paper reference values are
// printed alongside for comparison.
#include <cstdio>
#include <map>
#include <string>

#include "harness/registry.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

namespace {

struct PaperRow {
  const char* dwarf;
  double bw_mb, read_mb, write_mb;
  int write_ratio_pct;
  double slowdown;
};

const std::map<std::string, PaperRow> kPaper = {
    {"hacc", {"N-body", 40, 25.4, 14.3, 36, 1.01}},
    {"laghos", {"Lagrangian hydro", 4135, 3114, 1021, 25, 1.27}},
    {"scalapack", {"Dense Linear Algebra", 11984, 10104, 1880, 16, 2.99}},
    {"xsbench", {"Monte Carlo", 16134, 16130, 4, 0, 4.16}},
    {"hypre", {"Structured Grids", 11413, 10519, 894, 8, 4.67}},
    {"superlu", {"Sparse Linear Algebra", 8342, 6208, 2134, 25, 4.94}},
    {"boxlib", {"Unstructured Grids", 10336, 8248, 2088, 21, 8.94}},
    {"ft", {"Spectral Methods", 5983, 3633, 2350, 39, 14.92}},
};

}  // namespace

int main() {
  using namespace nvms;
  std::printf(
      "Table III: application sensitivity to uncached-NVM "
      "(measured vs paper)\n\n");

  TextTable t({"Application", "BW (MB/s)", "Read", "Write", "Wr%", "Slowdown",
               "| paper BW", "Read", "Write", "Wr%", "Slowdown"});

  AppConfig cfg;
  cfg.threads = 36;

  for (const auto& name : app_names()) {
    const auto dram = run_app(name, Mode::kDramOnly, cfg);
    const auto nvm = run_app(name, Mode::kUncachedNvm, cfg);

    const double read_bw = nvm.traces.avg_read_bw();
    const double write_bw = nvm.traces.avg_write_bw();
    const double total = read_bw + write_bw;
    const double wr_pct = total > 0 ? 100.0 * write_bw / total : 0.0;
    const double slowdown = nvm.runtime / dram.runtime;
    const auto& p = kPaper.at(name);

    t.add_row({name, TextTable::num(total / MB, 0),
               TextTable::num(read_bw / MB, 0),
               TextTable::num(write_bw / MB, 0), TextTable::num(wr_pct, 0),
               TextTable::num(slowdown, 2),
               "| " + TextTable::num(p.bw_mb, 0), TextTable::num(p.read_mb, 0),
               TextTable::num(p.write_mb, 0),
               std::to_string(p.write_ratio_pct),
               TextTable::num(p.slowdown, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Tiers: insensitive (hacc, laghos), scaled (scalapack, xsbench,\n"
      "hypre, superlu), bottlenecked (boxlib, ft).\n");
  return 0;
}
