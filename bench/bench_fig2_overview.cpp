// Figure 2: overview of the performance sensitivity of the eight
// applications to cached and uncached NVM, relative to DRAM.
//
// The paper plots the performance (FoM where app-defined, else runtime)
// on DRAM-only, cached-NVM and uncached-NVM.  We print performance
// normalized to DRAM (1.0 = DRAM): for runtime apps this is
// t_dram / t_mode, for FoM apps fom_mode / fom_dram — higher is better in
// both conventions, matching the paper's reading.
#include <chrono>
#include <cstdio>
#include <vector>

#include "harness/kernel_bench.hpp"
#include "harness/registry.hpp"
#include "harness/sweep.hpp"
#include "mem/space.hpp"
#include "memsim/resolve.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"

int main() {
  using namespace nvms;
  std::printf(
      "Figure 2: performance relative to DRAM (1.00 = DRAM baseline;\n"
      "higher is better).  Input problems sized 50-85%% of DRAM capacity.\n\n");

  init_registry();
  const auto& names = app_names();

  // One task per (app, mode) cell; results land in fixed slots, so the
  // rendered table is identical for any worker count.
  constexpr std::size_t kModes = 3;
  std::vector<AppResult> results(names.size() * kModes);
  parallel_for_index(results.size(), [&](std::size_t i) {
    AppConfig cfg;
    cfg.threads = 36;
    results[i] =
        run_app(names[i / kModes], kAllModes[i % kModes], cfg);
  });

  TextTable t({"Application", "FoM", "dram-only", "cached-nvm",
               "uncached-nvm"});
  for (std::size_t a = 0; a < names.size(); ++a) {
    const AppResult& dram = results[a * kModes + 0];
    const AppResult& cached = results[a * kModes + 1];
    const AppResult& uncached = results[a * kModes + 2];
    auto rel = [&](const AppResult& r) {
      return r.higher_is_better ? r.fom / dram.fom : dram.runtime / r.runtime;
    };
    t.add_row({names[a], dram.fom_unit, TextTable::num(rel(dram), 2),
               TextTable::num(rel(cached), 2),
               TextTable::num(rel(uncached), 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): cached-NVM within ~10%% of DRAM except\n"
      "ScaLAPACK/Hypre/BoxLib (up to 28%% loss in Hypre); uncached-NVM\n"
      "shows the three sensitivity tiers of Table III.\n");

  // Harness self-measurement: the same grid with phase-resolution
  // memoization (--resolve-cache=shared in the CLI).  The rows must be
  // byte-identical; only the wall clock may move.
  {
    // NVMS_LINT(allow: DET-002, bench self-measures resolve-cache speedup; rows byte-compared separately)
    using Clock = std::chrono::steady_clock;
    SweepSpec spec;
    spec.app = "xsbench";
    spec.threads = {12, 24, 36, 48};
    const auto t0 = Clock::now();
    const auto plain = run_sweep(spec);
    const auto t1 = Clock::now();
    spec.resolve_cache = ResolveCacheMode::kShared;
    const auto cached = run_sweep(spec);
    const auto t2 = Clock::now();
    const double off_s = std::chrono::duration<double>(t1 - t0).count();
    const double on_s = std::chrono::duration<double>(t2 - t1).count();
    const auto& cs = cached.cache_stats;
    const auto& ss = cached.stream_stats;
    std::printf(
        "\nresolve-cache off/on over the xsbench grid: %.3f s -> %.3f s "
        "(%.1f%% saved), resolve hit rate %.1f%%, stream-memo hit rate "
        "%.1f%%, rows %s\n",
        off_s, on_s, 100.0 * (1.0 - on_s / off_s), 100.0 * cs.hit_rate(),
        100.0 * ss.hit_rate(),
        sweep_csv(plain) == sweep_csv(cached) ? "byte-identical"
                                              : "DIVERGED (bug!)");
  }

  // Epoch-kernel self-measurement: replay the harvested Fig. 2 corpora
  // (every app x mode, exactly the phases the table above consumed)
  // through the pre-SoA scalar kernels and the SoA kernels in one binary.
  // The time_fold must match exactly — the SoA rework is a layout/
  // strength-reduction change, not a model change — so the speedup is
  // measured on provably identical work.
  {
    // NVMS_LINT(allow: DET-002, bench self-measures the epoch-kernel speedup; resolution folds byte-compared)
    const auto corpora = fig2_corpora();
    constexpr int kRepeat = 3;
    // Best of 3 attempts per side: scheduler noise only ever slows a
    // replay, and the SoA side is short enough (~0.15 s) that a single
    // hiccup would distort the ratio (same policy as bench-snapshot).
    constexpr int kAttempts = 3;
    const auto fastest = [&corpora]() {
      ReplayResult best = replay_corpora(corpora, kRepeat);
      for (int a = 1; a < kAttempts; ++a) {
        const ReplayResult r = replay_corpora(corpora, kRepeat);
        if (r.seconds < best.seconds) best = r;
      }
      return best;
    };
    set_reference_kernels(true);
    const ReplayResult ref = fastest();
    set_reference_kernels(false);
    const ReplayResult soa = fastest();
    std::printf(
        "\nepoch kernel (scalar reference -> SoA) over the Fig. 2 corpora: "
        "%.3f s -> %.3f s (%.2fx), %.0f -> %.0f epochs/s, "
        "%.2f -> %.2f sim-GB/s, resolution fold %s\n",
        ref.seconds, soa.seconds, ref.seconds / soa.seconds,
        ref.epochs_per_s(), soa.epochs_per_s(), ref.stream_gbs(),
        soa.stream_gbs(),
        ref.time_fold == soa.time_fold ? "identical" : "DIVERGED (bug!)");
  }
  return 0;
}
