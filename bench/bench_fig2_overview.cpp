// Figure 2: overview of the performance sensitivity of the eight
// applications to cached and uncached NVM, relative to DRAM.
//
// The paper plots the performance (FoM where app-defined, else runtime)
// on DRAM-only, cached-NVM and uncached-NVM.  We print performance
// normalized to DRAM (1.0 = DRAM): for runtime apps this is
// t_dram / t_mode, for FoM apps fom_mode / fom_dram — higher is better in
// both conventions, matching the paper's reading.
#include <cstdio>
#include <vector>

#include "harness/registry.hpp"
#include "mem/space.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"

int main() {
  using namespace nvms;
  std::printf(
      "Figure 2: performance relative to DRAM (1.00 = DRAM baseline;\n"
      "higher is better).  Input problems sized 50-85%% of DRAM capacity.\n\n");

  init_registry();
  const auto& names = app_names();

  // One task per (app, mode) cell; results land in fixed slots, so the
  // rendered table is identical for any worker count.
  constexpr std::size_t kModes = 3;
  std::vector<AppResult> results(names.size() * kModes);
  parallel_for_index(results.size(), [&](std::size_t i) {
    AppConfig cfg;
    cfg.threads = 36;
    results[i] =
        run_app(names[i / kModes], kAllModes[i % kModes], cfg);
  });

  TextTable t({"Application", "FoM", "dram-only", "cached-nvm",
               "uncached-nvm"});
  for (std::size_t a = 0; a < names.size(); ++a) {
    const AppResult& dram = results[a * kModes + 0];
    const AppResult& cached = results[a * kModes + 1];
    const AppResult& uncached = results[a * kModes + 2];
    auto rel = [&](const AppResult& r) {
      return r.higher_is_better ? r.fom / dram.fom : dram.runtime / r.runtime;
    };
    t.add_row({names[a], dram.fom_unit, TextTable::num(rel(dram), 2),
               TextTable::num(rel(cached), 2),
               TextTable::num(rel(uncached), 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): cached-NVM within ~10%% of DRAM except\n"
      "ScaLAPACK/Hypre/BoxLib (up to 28%% loss in Hypre); uncached-NVM\n"
      "shows the three sensitivity tiers of Table III.\n");
  return 0;
}
