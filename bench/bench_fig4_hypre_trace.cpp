// Figure 4: reconstructed read/write bandwidth traces of Hypre on
// cached-NVM vs DRAM-only.
//
// The paper's observations to reproduce:
//   * cached-NVM read bandwidth is ~28% below the DRAM-only read bandwidth
//     (59.5 vs 82.5 GB/s at the peak phases);
//   * cached-NVM *write* bandwidth to DRAM exceeds the DRAM-only write
//     bandwidth (9.3 vs 5.7 GB/s) — the extra writes are cache-line fills
//     from NVM on load misses;
//   * a small NVM read stream (the fill source) accompanies the run.
#include <cstdio>

#include "harness/registry.hpp"
#include "harness/ascii_plot.hpp"
#include "harness/report.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

int main() {
  AppConfig cfg;
  cfg.threads = 36;

  const auto dram = run_app("hypre", Mode::kDramOnly, cfg);
  const auto cached = run_app("hypre", Mode::kCachedNvm, cfg);

  std::printf("Figure 4: Hypre bandwidth traces (GB/s)\n\n");
  std::printf("-- DRAM-only --\n%s\n",
              ascii_plot({{"read", &dram.traces.dram_read, '*'},
                          {"write", &dram.traces.dram_write, 'o'}})
                  .c_str());
  std::printf("-- cached-NVM --\n%s\n",
              ascii_plot({{"DRAM read", &cached.traces.dram_read, '*'},
                          {"DRAM write", &cached.traces.dram_write, 'o'},
                          {"NVM read", &cached.traces.nvm_read, 'x'}})
                  .c_str());

  TextTable t({"metric", "dram-only", "cached-nvm", "paper"});
  t.add_row({"peak read bw (GB/s)",
             TextTable::num(dram.traces.dram_read.peak() / GB, 1),
             TextTable::num(cached.traces.dram_read.peak() / GB, 1),
             "82.5 -> 59.5"});
  t.add_row({"avg write bw to DRAM (GB/s)",
             TextTable::num(dram.traces.dram_write.time_average() / GB, 2),
             TextTable::num(cached.traces.dram_write.time_average() / GB, 2),
             "5.7 -> 9.3 (fills)"});
  t.add_row({"avg NVM read bw (GB/s)", "0.00",
             TextTable::num(cached.traces.nvm_read.time_average() / GB, 2),
             "small, nonzero"});
  const double loss =
      100.0 * (1.0 - dram.runtime / cached.runtime * 1.0);
  t.add_row({"runtime loss vs DRAM", "-",
             TextTable::num(100.0 * (cached.runtime / dram.runtime - 1.0), 0)
                 + "%",
             "~28%"});
  (void)loss;
  std::printf("%s", t.render().c_str());
  return 0;
}
