// Extension experiment (beyond the paper): data placement for every
// application, heuristic vs trace-driven — and a self-measured comparison
// of the two trace-driven selectors.
//
// Fig. 12 demonstrates write-aware placement on ScaLAPACK.  Here we apply
// both the paper's heuristic (rank by profiled write intensity) and the
// trace-driven optimizer to all eight applications under the same 35%
// DRAM budget on uncached NVM.  The optimizer runs twice per app: the
// exhaustive full-replay greedy (the reference) and the delta-replay CELF
// selector (placement/trace_optimizer.hpp).  The bench asserts the two
// produce bit-identical plans, promotion orders and runtimes, and reports
// the wall-clock speedup of the delta-replay path.
//
// The eight apps are prepared and optimized concurrently (fixed result
// slots, serial rendering), so the bench itself demonstrates the
// deterministic-parallelism pattern.  `--quick` runs one timing rep for
// CI smoke use; `--jobs N` bounds the app-level workers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/registry.hpp"
#include "placement/trace_optimizer.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "replay/recording.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

struct BenchRow {
  std::string app;
  double baseline = 0.0;
  double heuristic_time = 0.0;
  WriteAwareResult heuristic;
  TraceOptimizerResult fast;  ///< delta-replay CELF
  TraceOptimizerResult slow;  ///< full-replay exhaustive greedy
  double fast_ms = 0.0;
  double slow_ms = 0.0;
  std::string parity_error;
};

double best_wall_ms(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    // NVMS_LINT(allow: DET-002, bench measures its own wall-clock speedup)
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    // NVMS_LINT(allow: DET-002, second stamp of the same measurement)
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool same_plan(const PlacementPlan& a, const PlacementPlan& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, p] : a.entries()) {
    if (b.lookup(name) != p) return false;
  }
  return true;
}

std::string check_parity(const TraceOptimizerResult& fast,
                         const TraceOptimizerResult& slow) {
  if (fast.baseline_runtime != slow.baseline_runtime)
    return "baseline runtime differs";
  if (fast.optimized_runtime != slow.optimized_runtime)
    return "optimized runtime differs";
  if (fast.dram_bytes != slow.dram_bytes) return "DRAM bytes differ";
  if (!same_plan(fast.plan, slow.plan)) return "plans differ";
  if (fast.steps.size() != slow.steps.size())
    return "promotion counts differ";
  for (std::size_t i = 0; i < fast.steps.size(); ++i) {
    if (fast.steps[i].first != slow.steps[i].first)
      return "promotion order differs at step " + std::to_string(i);
    if (fast.steps[i].second != slow.steps[i].second)
      return "step runtime differs at step " + std::to_string(i);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      reps = 1;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Extension: placement under a 35%% DRAM budget, uncached NVM, "
      "ht=36\n(speedup over no placement; DRAM%% = budget actually "
      "used)\n\n");

  const auto sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const std::uint64_t budget = sys_cfg.dram.capacity * 35 / 100;
  const auto factory = [sys_cfg] { return MemorySystem(sys_cfg); };

  const auto& apps = app_names();
  std::vector<BenchRow> results(apps.size());
  parallel_for_index(
      apps.size(),
      [&](std::size_t i) {
        BenchRow& r = results[i];
        r.app = apps[i];
        AppConfig cfg;
        cfg.threads = 36;

        // record + profile in one run
        MemorySystem rec_sys(sys_cfg);
        TraceCapture capture(rec_sys);
        AppContext ctx(rec_sys, cfg);
        (void)lookup_app(r.app).run(ctx);
        const auto rec = capture.finish();
        const auto profiles = collect_data_profile(rec_sys);

        r.heuristic = write_aware_plan(profiles, budget);
        auto base_sys = factory();
        r.baseline = rec.replay(base_sys);
        auto heur_sys = factory();
        r.heuristic_time = rec.replay(heur_sys, &r.heuristic.plan);

        // Self-measurement: exhaustive full-replay greedy vs delta-replay
        // CELF, both serial inside (the apps already run concurrently).
        r.slow_ms = best_wall_ms(reps, [&] {
          r.slow = optimize_placement_full_replay(rec, budget, factory);
        });
        TraceOptimizerOptions opt;
        opt.jobs = 1;
        r.fast_ms = best_wall_ms(reps, [&] {
          r.fast = optimize_placement(rec, budget, factory, opt);
        });
        r.parity_error = check_parity(r.fast, r.slow);
      },
      jobs);

  TextTable t({"app", "write-aware", "DRAM%", "trace-optimized", "DRAM%",
               "picks"});
  for (const auto& r : results) {
    std::string picks;
    for (const auto& [name, time] : r.fast.steps) {
      if (!picks.empty()) picks += ", ";
      picks += name;
      (void)time;
    }
    if (picks.empty()) picks = "(none)";

    auto pct = [&](std::uint64_t bytes) {
      return TextTable::num(100.0 * static_cast<double>(bytes) /
                                static_cast<double>(sys_cfg.dram.capacity),
                            0) +
             "%";
    };
    t.add_row({r.app, TextTable::num(r.baseline / r.heuristic_time, 2) + "x",
               pct(r.heuristic.dram_bytes),
               TextTable::num(r.baseline / r.fast.optimized_runtime, 2) + "x",
               pct(r.fast.dram_bytes), picks});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: the optimizer matches or beats the heuristic everywhere\n"
      "(it also promotes buffers whose READS are the bottleneck);\n"
      "compute-bound apps (hacc, laghos) gain little either way.\n\n");

  std::printf(
      "Selector self-measurement: exhaustive full-replay greedy vs\n"
      "delta-replay CELF (identical plans asserted; best of %d rep%s):\n\n",
      reps, reps == 1 ? "" : "s");
  TextTable m({"app", "full-replay ms", "delta-replay ms", "speedup",
               "evals", "replays", "phase-cache hit%"});
  double slow_total = 0.0;
  double fast_total = 0.0;
  bool parity_ok = true;
  for (const auto& r : results) {
    slow_total += r.slow_ms;
    fast_total += r.fast_ms;
    m.add_row({r.app, TextTable::num(r.slow_ms, 2),
               TextTable::num(r.fast_ms, 2),
               TextTable::num(r.slow_ms / r.fast_ms, 1) + "x",
               std::to_string(r.fast.stats.evals),
               std::to_string(r.slow.stats.full_replays) + " -> " +
                   std::to_string(r.fast.stats.full_replays),
               TextTable::num(100.0 * r.fast.stats.phase_cache.hit_rate(),
                              1)});
    if (!r.parity_error.empty()) {
      parity_ok = false;
      std::fprintf(stderr, "PARITY FAILURE (%s): %s\n", r.app.c_str(),
                   r.parity_error.c_str());
    }
  }
  std::printf("%s\n", m.render().c_str());
  std::printf("total: %.2f ms -> %.2f ms (%.1fx)\n", slow_total, fast_total,
              slow_total / fast_total);
  if (!parity_ok) {
    std::fprintf(stderr,
                 "delta-replay selector diverged from the full-replay "
                 "reference\n");
    return 1;
  }
  std::printf("parity: delta-replay plans identical to full replay on all "
              "%zu apps\n", results.size());
  return 0;
}
