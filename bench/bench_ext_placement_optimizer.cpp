// Extension experiment (beyond the paper): data placement for every
// application, heuristic vs trace-driven.
//
// Fig. 12 demonstrates write-aware placement on ScaLAPACK.  Here we apply
// both the paper's heuristic (rank by profiled write intensity) and the
// trace-driven optimizer (greedy forward selection, each candidate
// evaluated by an exact trace replay) to all eight applications under the
// same 35% DRAM budget on uncached NVM.
#include <cstdio>

#include "harness/registry.hpp"
#include "placement/trace_optimizer.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "replay/recording.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

int main() {
  std::printf(
      "Extension: placement under a 35%% DRAM budget, uncached NVM, "
      "ht=36\n(speedup over no placement; DRAM%% = budget actually "
      "used)\n\n");

  const auto sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const std::uint64_t budget = sys_cfg.dram.capacity * 35 / 100;
  auto factory = [&] { return MemorySystem(sys_cfg); };

  TextTable t({"app", "write-aware", "DRAM%", "trace-optimized", "DRAM%",
               "picks"});
  for (const auto& app : app_names()) {
    AppConfig cfg;
    cfg.threads = 36;

    // record + profile in one run
    MemorySystem rec_sys(sys_cfg);
    TraceCapture capture(rec_sys);
    AppContext ctx(rec_sys, cfg);
    (void)lookup_app(app).run(ctx);
    const auto rec = capture.finish();
    const auto profiles = collect_data_profile(rec_sys);

    const auto heuristic = write_aware_plan(profiles, budget);
    auto base_sys = factory();
    const double baseline = rec.replay(base_sys);
    auto heur_sys = factory();
    const double heuristic_time = rec.replay(heur_sys, &heuristic.plan);

    const auto opt = optimize_placement(rec, budget, factory);

    std::string picks;
    for (const auto& [name, time] : opt.steps) {
      if (!picks.empty()) picks += ", ";
      picks += name;
      (void)time;
    }
    if (picks.empty()) picks = "(none)";

    auto pct = [&](std::uint64_t bytes) {
      return TextTable::num(
                 100.0 * static_cast<double>(bytes) /
                     static_cast<double>(sys_cfg.dram.capacity),
                 0) +
             "%";
    };
    t.add_row({app, TextTable::num(baseline / heuristic_time, 2) + "x",
               pct(heuristic.dram_bytes),
               TextTable::num(baseline / opt.optimized_runtime, 2) + "x",
               pct(opt.dram_bytes), picks});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: the optimizer matches or beats the heuristic everywhere\n"
      "(it also promotes buffers whose READS are the bottleneck);\n"
      "compute-bound apps (hacc, laghos) gain little either way.\n");
  return 0;
}
