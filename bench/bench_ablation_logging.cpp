// Ablation (extension beyond the paper): crash-consistency cost on the
// simulated Optane.
//
// The paper's related work (NVStream [8], Mnemosyne [29], NV-Tree [33])
// is about reducing exactly this overhead.  We compare, on the AppDirect
// persistence path:
//   * no-log      — cached stores + one persist (no atomicity guarantee)
//   * nt-store    — non-temporal stores (durable immediately, no recovery)
//   * undo log    — write-ahead old-value logging (fence per write)
//   * redo log    — new-value buffering (persistence batched at commit)
// across transaction shapes (few large writes vs many small writes).
#include <cstdio>
#include <string>
#include <vector>

#include "pmem/log.hpp"
#include "pmem/region.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

struct Shape {
  const char* name;
  int writes;
  std::size_t bytes;  ///< per write
};

struct Outcome {
  double time;
  double amplification;
};

std::vector<std::byte> payload(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5A});
}

Outcome run_no_log(const Shape& s) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  PmemRegion data(sys, "data", 16 * MiB);
  const auto v = payload(s.bytes);
  for (int i = 0; i < s.writes; ++i) {
    data.store((static_cast<std::size_t>(i) * 7919 * 64) % (15 * MiB), v);
  }
  data.persist(8);
  return {sys.now(), 1.0};
}

Outcome run_nt(const Shape& s) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  PmemRegion data(sys, "data", 16 * MiB);
  const auto v = payload(s.bytes);
  for (int i = 0; i < s.writes; ++i) {
    data.store_nt((static_cast<std::size_t>(i) * 7919 * 64) % (15 * MiB), v,
                  8);
  }
  return {sys.now(), 1.0};
}

template <typename Tx>
Outcome run_tx(const Shape& s) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  PmemRegion data(sys, "data", 16 * MiB);
  PmemRegion log(sys, "log", 16 * MiB);
  Tx tx(data, log);
  const auto v = payload(s.bytes);
  tx.begin();
  for (int i = 0; i < s.writes; ++i) {
    tx.write((static_cast<std::size_t>(i) * 7919 * 64) % (15 * MiB), v);
  }
  tx.commit(8);
  return {sys.now(), tx.stats().write_amplification()};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: crash-consistency protocols on simulated Optane "
      "(one transaction per row)\n\n");
  const Shape shapes[] = {
      {"4 x 256 KiB (bulk)", 4, 256 * KiB},
      {"256 x 4 KiB (pages)", 256, 4 * KiB},
      {"4096 x 64 B (records)", 4096, 64},
  };
  // Every (shape, protocol) pair simulates on its own MemorySystem —
  // flatten them into one parallel grid.
  constexpr std::size_t kShapes = std::size(shapes);
  constexpr std::size_t kProtocols = 4;
  std::vector<Outcome> cells(kShapes * kProtocols);
  parallel_for_index(cells.size(), [&](std::size_t i) {
    const Shape& s = shapes[i / kProtocols];
    switch (i % kProtocols) {
      case 0: cells[i] = run_no_log(s); break;
      case 1: cells[i] = run_nt(s); break;
      case 2: cells[i] = run_tx<UndoLogTx>(s); break;
      default: cells[i] = run_tx<RedoLogTx>(s); break;
    }
  });

  TextTable t({"tx shape", "no-log", "nt-store", "undo log", "redo log",
               "undo ampl", "redo ampl"});
  for (std::size_t si = 0; si < kShapes; ++si) {
    const Outcome& none = cells[si * kProtocols + 0];
    const Outcome& nt = cells[si * kProtocols + 1];
    const Outcome& undo = cells[si * kProtocols + 2];
    const Outcome& redo = cells[si * kProtocols + 3];
    t.add_row({shapes[si].name, format_time(none.time), format_time(nt.time),
               format_time(undo.time), format_time(redo.time),
               TextTable::num(undo.amplification, 2) + "x",
               TextTable::num(redo.amplification, 2) + "x"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: logging costs grow as writes shrink (fence-per-write in\n"
      "undo); redo amortizes persistence into commit and wins for small\n"
      "records — the effect NVStream-style designs exploit.\n");
  return 0;
}
