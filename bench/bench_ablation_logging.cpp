// Ablation: cost of the telemetry layer (obs/) on simulator throughput.
//
// The tracing spans and epoch metric streams hook the simulator's hottest
// path — every MemorySystem::submit resolves a phase and, when telemetry
// is attached, opens three span levels and emits per-lane epoch samples.
// This bench quantifies that cost in three configurations:
//   * off        — no Telemetry attached; every hook is one null check
//   * null-sink  — Telemetry(Capture::kNull): hooks run, sinks drop
//                  everything (branch-and-return, nothing allocated)
//   * full       — full capture: spans + metric series retained in memory
//
// Contract guarded here: the null sink must stay within 2% of off, so a
// telemetry-instrumented build costs nothing unless capture is requested.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "harness/registry.hpp"
#include "obs/analyze/profile.hpp"
#include "obs/telemetry.hpp"
#include "simcore/table.hpp"

using namespace nvms;

namespace {

// NVMS_LINT(allow: DET-002, bench self-times telemetry overhead on the host clock)
using Clock = std::chrono::steady_clock;

constexpr const char* kApp = "hypre";  // deep phase stream: many submits
constexpr int kReps = 9;

AppConfig bench_config() {
  AppConfig cfg;
  cfg.threads = 36;
  cfg.size_scale = 0.25;
  return cfg;
}

/// One timed run; `telemetry` may be null (the "off" configuration).
double run_once(Telemetry* telemetry) {
  const AppConfig cfg = bench_config();
  const auto start = Clock::now();
  (void)run_app_on(kApp, SystemConfig::testbed(Mode::kCachedNvm), cfg,
                   telemetry);
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Ablation {
  const char* name;
  Telemetry::Capture capture;
  bool attach;  ///< false: run without any Telemetry (baseline)
};

struct Cell {
  double best_s = 0.0;
  std::size_t spans = 0;
  std::size_t points = 0;
};

Cell measure(const Ablation& a) {
  Cell cell;
  std::vector<double> times;
  times.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    Telemetry telemetry(a.capture);
    times.push_back(run_once(a.attach ? &telemetry : nullptr));
    if (rep + 1 == kReps && a.attach) {
      cell.spans = telemetry.tracer().spans().size();
      for (const auto& m : telemetry.metrics().metrics())
        cell.points += m.series.size();
    }
  }
  // Best-of-N: overhead is a lower-bound property, and min is the
  // standard noise-robust estimator for short serial reruns.
  cell.best_s = *std::min_element(times.begin(), times.end());
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: telemetry layer overhead on %s (cached-nvm, best of %d)\n\n",
      kApp, kReps);

  const Ablation ablations[] = {
      {"off", Telemetry::Capture::kNull, false},
      {"null-sink", Telemetry::Capture::kNull, true},
      {"full", Telemetry::Capture::kFull, true},
  };

  (void)run_once(nullptr);  // warm the registry + allocator before timing

  Cell cells[3];
  for (int i = 0; i < 3; ++i) cells[i] = measure(ablations[i]);
  const double base = cells[0].best_s;

  TextTable t({"telemetry", "host time", "overhead", "spans", "points"});
  for (int i = 0; i < 3; ++i) {
    const double ovh = base > 0.0 ? 100.0 * (cells[i].best_s / base - 1.0)
                                  : 0.0;
    t.add_row({ablations[i].name, format_time(cells[i].best_s),
               i == 0 ? "-" : TextTable::num(ovh, 2) + "%",
               std::to_string(cells[i].spans),
               std::to_string(cells[i].points)});
  }
  std::printf("%s\n", t.render().c_str());

  // Attribution cost: what the obs/analyze pass adds on top of a full
  // capture.  Timed outside the ablation loop so the off-vs-null-sink
  // comparison above is exactly what it always was.
  {
    Telemetry telemetry(Telemetry::Capture::kFull);
    (void)run_once(&telemetry);
    const AnalyzeContext ctx =
        analyze_context(SystemConfig::testbed(Mode::kCachedNvm), kApp);
    double best_s = 0.0;
    const char* verdict = "";
    for (int rep = 0; rep < kReps; ++rep) {
      const auto start = Clock::now();
      const RunProfile profile = build_run_profile(telemetry, ctx);
      const double s =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (rep == 0 || s < best_s) best_s = s;
      verdict = to_string(profile.verdict.cls);
    }
    const double share =
        cells[2].best_s > 0.0 ? 100.0 * best_s / cells[2].best_s : 0.0;
    std::printf(
        "analyze: build_run_profile on the full capture -> %s in %s "
        "(best of %d; %.2f%% of the full-capture run)\n",
        verdict, format_time(best_s).c_str(), kReps, share);
  }

  const double null_ovh =
      base > 0.0 ? 100.0 * (cells[1].best_s / base - 1.0) : 0.0;
  std::printf("check: null-sink overhead %.2f%% (target < 2%%) -> %s\n",
              null_ovh, null_ovh < 2.0 ? "PASS" : "WARN (noisy host?)");
  std::printf(
      "Expected: the null sink is indistinguishable from off (every hook\n"
      "is a capture-flag branch), while full capture pays for span and\n"
      "metric-point storage only when someone asked for a trace.\n");
  return 0;
}
