// Figure 6: concurrency contention ratios.
//
// Each application runs at a low and a high concurrency on DRAM-only,
// cached-NVM and uncached-NVM.  The contention ratio is the performance at
// high concurrency normalized to low concurrency (>1 = scaling helps,
// <1 = loss).  A ratio gap between DRAM and uncached-NVM isolates
// NVM-side contention from mere algorithmic scalability limits:
//   * HACC and XSBench improve >30% with more threads;
//   * FT drops to ~0.61 on DRAM but ~0.37 on uncached NVM (NVM contention);
//   * BoxLib shows a notable DRAM-vs-NVM gap.
#include <cstdio>

#include "harness/registry.hpp"
#include "mem/space.hpp"
#include "simcore/table.hpp"

using namespace nvms;

namespace {

double performance(const AppResult& r) {
  return r.higher_is_better ? r.fom : 1.0 / r.runtime;
}

}  // namespace

int main() {
  constexpr int kLow = 12;
  constexpr int kHigh = 36;
  std::printf(
      "Figure 6: perf(ht=%d) / perf(ht=%d) per memory configuration\n"
      "(ratio > 1: concurrency helps; DRAM-vs-NVM gap = NVM contention)\n\n",
      kHigh, kLow);

  TextTable t({"Application", "dram-only", "cached-nvm", "uncached-nvm",
               "NVM/DRAM gap"});
  for (const auto& name : app_names()) {
    double ratio[3];
    int i = 0;
    for (Mode mode : kAllModes) {
      AppConfig lo;
      lo.threads = kLow;
      AppConfig hi;
      hi.threads = kHigh;
      const auto r_lo = run_app(name, mode, lo);
      const auto r_hi = run_app(name, mode, hi);
      ratio[i++] = performance(r_hi) / performance(r_lo);
    }
    t.add_row({name, TextTable::num(ratio[0], 2), TextTable::num(ratio[1], 2),
               TextTable::num(ratio[2], 2),
               TextTable::num(ratio[0] - ratio[2], 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: hacc/xsbench > 1.3 everywhere; ft lowest on uncached-NVM\n"
      "with a clear gap below its DRAM ratio; boxlib also gapped.\n");
  return 0;
}
