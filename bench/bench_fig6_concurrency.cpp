// Figure 6: concurrency contention ratios.
//
// Each application runs at a low and a high concurrency on DRAM-only,
// cached-NVM and uncached-NVM.  The contention ratio is the performance at
// high concurrency normalized to low concurrency (>1 = scaling helps,
// <1 = loss).  A ratio gap between DRAM and uncached-NVM isolates
// NVM-side contention from mere algorithmic scalability limits:
//   * HACC and XSBench improve >30% with more threads;
//   * FT drops to ~0.61 on DRAM but ~0.37 on uncached NVM (NVM contention);
//   * BoxLib shows a notable DRAM-vs-NVM gap.
#include <cstdio>
#include <vector>

#include "harness/registry.hpp"
#include "mem/space.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"

using namespace nvms;

namespace {

double performance(const AppResult& r) {
  return r.higher_is_better ? r.fom : 1.0 / r.runtime;
}

}  // namespace

int main() {
  constexpr int kLow = 12;
  constexpr int kHigh = 36;
  std::printf(
      "Figure 6: perf(ht=%d) / perf(ht=%d) per memory configuration\n"
      "(ratio > 1: concurrency helps; DRAM-vs-NVM gap = NVM contention)\n\n",
      kHigh, kLow);

  init_registry();
  const auto& names = app_names();

  // Flatten app x mode x {low, high} into one task grid.
  constexpr std::size_t kModes = 3;
  std::vector<double> perf(names.size() * kModes * 2);
  parallel_for_index(perf.size(), [&](std::size_t i) {
    AppConfig cfg;
    cfg.threads = (i % 2 == 0) ? kLow : kHigh;
    const std::size_t cell = i / 2;
    perf[i] = performance(
        run_app(names[cell / kModes], kAllModes[cell % kModes], cfg));
  });

  TextTable t({"Application", "dram-only", "cached-nvm", "uncached-nvm",
               "NVM/DRAM gap"});
  for (std::size_t a = 0; a < names.size(); ++a) {
    double ratio[kModes];
    for (std::size_t m = 0; m < kModes; ++m) {
      const std::size_t base = (a * kModes + m) * 2;
      ratio[m] = perf[base + 1] / perf[base];
    }
    t.add_row({names[a], TextTable::num(ratio[0], 2),
               TextTable::num(ratio[1], 2), TextTable::num(ratio[2], 2),
               TextTable::num(ratio[0] - ratio[2], 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: hacc/xsbench > 1.3 everywhere; ft lowest on uncached-NVM\n"
      "with a clear gap below its DRAM ratio; boxlib also gapped.\n");
  return 0;
}
