// Figure 10: accuracy of the IPC prediction model across concurrency.
//
// Following Sec. V-A: hardware events are collected from runs at the
// sampled configuration ht=36 only (on cached-NVM); Eq. 1 coefficients are
// fit per target concurrency on a training corpus and the model predicts
// each evaluation app's IPC at the other concurrency levels.  Training is
// leave-one-out: the evaluated application's own data never enters the
// fit.  The paper reports ~5% (XSBench) and ~8% (FT) average error, with
// accuracy above 90% everywhere except the extreme levels.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/registry.hpp"
#include "model/predictor.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"

using namespace nvms;

namespace {

constexpr int kSampleHt = 36;
const std::vector<int> kLevels = {6, 12, 18, 24, 30, 42, 48};

struct AppData {
  // phase-type features per concurrency level (and the sample level)
  std::map<int, std::vector<PhaseFeature>> by_level;
  std::map<int, double> run_ipc;
};

/// Run every (app, concurrency level) cell of the corpus concurrently and
/// assemble the per-app maps afterwards (map insertion is serial; only
/// the independent simulator runs fan out).
std::map<std::string, AppData> collect_all(const std::vector<std::string>& names) {
  std::vector<int> levels = kLevels;
  levels.push_back(kSampleHt);

  struct Cell {
    std::vector<PhaseFeature> features;
    double ipc = 0.0;
  };
  std::vector<Cell> cells(names.size() * levels.size());
  parallel_for_index(cells.size(), [&](std::size_t i) {
    AppConfig cfg;
    cfg.threads = levels[i % levels.size()];
    const auto r =
        run_app(names[i / levels.size()], Mode::kCachedNvm, cfg);
    cells[i].features = aggregate_by_phase(r.samples);
    cells[i].ipc = r.counters.ipc();
  });

  std::map<std::string, AppData> data;
  for (std::size_t a = 0; a < names.size(); ++a) {
    AppData& d = data[names[a]];
    for (std::size_t l = 0; l < levels.size(); ++l) {
      Cell& c = cells[a * levels.size() + l];
      d.by_level[levels[l]] = std::move(c.features);
      d.run_ipc[levels[l]] = c.ipc;
    }
  }
  return data;
}

}  // namespace

int main() {
  std::printf(
      "Figure 10: IPC model accuracy vs concurrency (train at ht=%d,\n"
      "corpus-wide fit over all eight applications per level)\n\n",
      kSampleHt);

  init_registry();
  const std::map<std::string, AppData> data = collect_all(app_names());

  TextTable t({"ht", "xsbench acc", "ft acc"});
  std::map<std::string, double> err_sum;
  for (int ht : kLevels) {
    std::vector<std::string> cells = {std::to_string(ht)};
    for (const std::string eval_app : {"xsbench", "ft"}) {
      // Training rows: every application's phase types at the sampled
      // concurrency (the paper fits one corpus-wide model per level).
      std::vector<TrainingRow> rows;
      for (const auto& [name, d] : data) {
        const auto& sampled = d.by_level.at(kSampleHt);
        const auto& target = d.by_level.at(ht);
        for (const auto& sf : sampled) {
          for (const auto& tf : target) {
            if (tf.phase != sf.phase) continue;
            TrainingRow row;
            row.events = sf.events;
            row.sampled_ipc = sf.ipc;
            row.target_ipc = tf.ipc;
            rows.push_back(row);
          }
        }
      }
      IpcPredictor model;
      model.fit(rows);

      // predict the evaluation app's run IPC at this level.
      const auto& d = data.at(eval_app);
      std::vector<double> insns;
      std::vector<double> ipcs;
      for (const auto& sf : d.by_level.at(kSampleHt)) {
        insns.push_back(sf.instructions);
        ipcs.push_back(model.predict(sf.events, sf.ipc));
      }
      const double predicted = combine_phase_ipcs(insns, ipcs);
      const double observed = d.run_ipc.at(ht);
      const double acc = prediction_accuracy(predicted, observed);
      err_sum[eval_app] += 1.0 - acc;
      cells.push_back(TextTable::num(100.0 * acc, 1) + "%");
    }
    t.add_row(cells);
  }
  std::printf("%s\n", t.render().c_str());
  for (const auto& [app, err] : err_sum) {
    std::printf("%s average error: %.1f%% (paper: %s)\n", app.c_str(),
                100.0 * err / static_cast<double>(kLevels.size()),
                app == "xsbench" ? "~5%" : "~8%");
  }
  std::printf("Expected: accuracy > 90%% except the extreme levels.\n");
  return 0;
}
