// Figure 9: leveraging memory persistence for Laghos snapshots.
//
//  (a) Snapshot overhead on four storage tiers (tmpfs on DRAM, DAX ext4 on
//      the Optane, ext4 on local RAID, Lustre): the Optane tier should add
//      only 2-5% overhead — about 4x less than the other persistent tiers.
//  (b) NVM/DRAM traffic interaction: periodic write-only NVM bursts
//      (~2 GB/s) that do not interfere with the DRAM traffic.
//
// Setup mirrors the paper's AppDirect configuration: the application data
// lives in DRAM; the NVM holds only the persistent snapshot files.
#include <cstdio>
#include <memory>

#include "harness/registry.hpp"
#include "harness/ascii_plot.hpp"
#include "harness/report.hpp"
#include "mem/placement_plan.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"
#include "storage/tiers.hpp"

using namespace nvms;

namespace {

struct CkptRun {
  double runtime = 0.0;
  double overhead = 0.0;  ///< snapshot share of the instrumented runtime
  RunTraces traces;
};

CkptRun run_with_snapshots(const StorageTier* tier, int interval) {
  const SystemConfig sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  MemorySystem sys(sys_cfg);

  PlacementPlan in_dram;
  in_dram.set("mesh_state", Placement::kDram);
  in_dram.set("quadrature_data", Placement::kDram);

  std::unique_ptr<SnapshotWriter> writer;
  AppConfig cfg;
  cfg.threads = 36;
  cfg.placement = &in_dram;
  if (tier != nullptr) {
    writer = std::make_unique<SnapshotWriter>(sys, *tier);
    cfg.step_hook = [&writer, interval](MemorySystem&, int step,
                                        BufferId state,
                                        std::uint64_t bytes) {
      if ((step + 1) % interval == 0) (void)writer->write(state, bytes, 36);
    };
  }

  AppContext ctx(sys, cfg);
  (void)lookup_app("laghos").run(ctx);

  CkptRun out;
  out.runtime = sys.now();
  out.overhead = writer ? writer->total_time() / out.runtime : 0.0;
  out.traces = sys.traces();
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 9a: Laghos snapshot overhead per storage tier "
              "(every 5 steps)\n\n");
  const auto base = run_with_snapshots(nullptr, 5);
  TextTable t({"tier", "persistent", "runtime (s)", "overhead"});
  t.add_row({"(no snapshots)", "-", TextTable::num(base.runtime, 3), "0%"});
  for (const auto& tier : StorageTier::all()) {
    const auto run = run_with_snapshots(&tier, 5);
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f%%", 100.0 * run.overhead);
    t.add_row({tier.name, tier.persistent ? "yes" : "no",
               TextTable::num(run.runtime, 3), pct});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: tmpfs lowest (non-persistent bound); dax-ext4-nvm within\n"
      "2-5%%, ~4x less overhead than RAID/Lustre.\n\n");

  std::printf("Figure 9b: NVM vs DRAM traffic during snapshots "
              "(dax-ext4-nvm)\n\n");
  const auto dax =
      run_with_snapshots(&StorageTier::by_kind(TierKind::kDaxNvm), 5);
  std::printf("%s\n",
              ascii_plot({{"DRAM read", &dax.traces.dram_read, '*'},
                          {"NVM write (snapshots)", &dax.traces.nvm_write,
                           'o'}},
                         96, 14)
                  .c_str());
  std::printf(
      "Expected: periodic write-only NVM bursts; the DRAM traffic pattern\n"
      "is unchanged between bursts (no interference).\n");
  return 0;
}
