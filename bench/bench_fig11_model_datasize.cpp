// Figure 11: accuracy of the IPC prediction model across data sizes.
//
// Per Sec. V-A: the model is derived at a fixed concurrency (ht=36) from a
// *small* input problem per application, then predicts performance at
// larger inputs.  Training is leave-one-out over the other applications'
// (phase-type, size) pairs.  The paper reports >97% accuracy for
// ScaLAPACK at all sizes and lower accuracy for XSBench at the largest.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/registry.hpp"
#include "model/predictor.hpp"
#include "simcore/table.hpp"

using namespace nvms;

namespace {

constexpr int kHt = 36;
constexpr double kSampleScale = 0.4;  ///< the small training problem
const std::vector<double> kSizes = {0.6, 0.8, 1.0, 1.2};

struct AppData {
  std::map<double, std::vector<PhaseFeature>> by_size;
  std::map<double, double> run_ipc;
};

AppData collect(const std::string& name) {
  AppData d;
  std::vector<double> sizes = kSizes;
  sizes.push_back(kSampleScale);
  for (double s : sizes) {
    AppConfig cfg;
    cfg.threads = kHt;
    cfg.size_scale = s;
    const auto r = run_app(name, Mode::kCachedNvm, cfg);
    d.by_size[s] = aggregate_by_phase(r.samples);
    d.run_ipc[s] = r.counters.ipc();
  }
  return d;
}

}  // namespace

int main() {
  std::printf(
      "Figure 11: IPC model accuracy vs data size (train at %.1fx size,\n"
      "ht=%d, corpus-wide fit per size)\n\n",
      kSampleScale, kHt);

  std::map<std::string, AppData> data;
  for (const auto& name : app_names()) data[name] = collect(name);

  TextTable t({"size scale", "xsbench acc", "scalapack acc"});
  for (double size : kSizes) {
    std::vector<std::string> cells = {TextTable::num(size, 1) + "x"};
    for (const std::string eval_app : {"xsbench", "scalapack"}) {
      std::vector<TrainingRow> rows;
      for (const auto& [name, d] : data) {
        for (const auto& sf : d.by_size.at(kSampleScale)) {
          for (const auto& tf : d.by_size.at(size)) {
            if (tf.phase != sf.phase) continue;
            TrainingRow row;
            row.events = sf.events;
            row.sampled_ipc = sf.ipc;
            row.target_ipc = tf.ipc;
            rows.push_back(row);
          }
        }
      }
      IpcPredictor model;
      model.fit(rows);

      const auto& d = data.at(eval_app);
      std::vector<double> insns;
      std::vector<double> ipcs;
      for (const auto& sf : d.by_size.at(kSampleScale)) {
        insns.push_back(sf.instructions);
        ipcs.push_back(model.predict(sf.events, sf.ipc));
      }
      const double predicted = combine_phase_ipcs(insns, ipcs);
      const double observed = d.run_ipc.at(size);
      cells.push_back(
          TextTable::num(100.0 * prediction_accuracy(predicted, observed), 1) +
          "%");
    }
    t.add_row(cells);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: ScaLAPACK accuracy high (>90%%) at every size; XSBench\n"
      "degrades toward the largest size (paper: same trend with >97%%\n"
      "ScaLAPACK accuracy).\n");
  return 0;
}
