// Figure 12: write-aware data placement in ScaLAPACK (Sec. V-B).
//
// A data-centric profiling run on uncached-NVM ranks the application's
// buffers by write intensity; the planner promotes the most write-intensive
// structures (the C output tiles) into DRAM under a budget of ~30% of the
// DRAM capacity.  The optimized run should reach DRAM-like performance at
// every problem size — ~2x over plain uncached-NVM — while the validation
// run (promoting the most READ-intensive structures instead) shows little
// benefit, exactly as the paper reports.
#include <cstdio>

#include "harness/registry.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

namespace {

AppResult run_with_plan(const std::string& app, const AppConfig& base,
                        const PlacementPlan* plan) {
  AppConfig cfg = base;
  cfg.placement = plan;
  return run_app(app, Mode::kUncachedNvm, cfg);
}

}  // namespace

int main() {
  std::printf("Figure 12: write-aware placement in ScaLAPACK\n\n");

  const auto sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const std::uint64_t budget = sys_cfg.dram.capacity * 35 / 100;

  TextTable t({"size", "dram-only (s)", "cached (s)", "uncached (s)",
               "write-aware (s)", "read-aware (s)", "DRAM used"});
  for (double size : {0.5, 0.75, 1.0}) {
    AppConfig cfg;
    cfg.threads = 36;
    cfg.size_scale = size;

    // 1. Profiling run on plain uncached-NVM (the data-centric tool).
    MemorySystem prof_sys(sys_cfg);
    AppContext prof_ctx(prof_sys, cfg);
    (void)lookup_app("scalapack").run(prof_ctx);
    const auto profiles = collect_data_profile(prof_sys);

    // 2. Plans: write-aware and the read-aware validation.
    const auto wa = write_aware_plan(profiles, budget);
    const auto ra = read_aware_plan(profiles, budget, wa.in_dram);

    // 3. Comparison runs.
    const auto dram = run_app("scalapack", Mode::kDramOnly, cfg);
    const auto cached = run_app("scalapack", Mode::kCachedNvm, cfg);
    const auto uncached = run_with_plan("scalapack", cfg, nullptr);
    const auto optimized = run_with_plan("scalapack", cfg, &wa.plan);
    const auto validation = run_with_plan("scalapack", cfg, &ra.plan);

    char used[32];
    std::snprintf(used, sizeof used, "%.0f%%",
                  100.0 * static_cast<double>(wa.dram_bytes) /
                      static_cast<double>(sys_cfg.dram.capacity));
    t.add_row({TextTable::num(size, 1) + "x", TextTable::num(dram.runtime, 3),
               TextTable::num(cached.runtime, 3),
               TextTable::num(uncached.runtime, 3),
               TextTable::num(optimized.runtime, 3),
               TextTable::num(validation.runtime, 3), used});

    if (size == 1.0) {
      std::printf("Write-aware plan at 1.0x (DRAM budget %s):\n",
                  format_bytes(budget).c_str());
      for (const auto& name : wa.in_dram)
        std::printf("  -> DRAM: %s\n", name.c_str());
      std::printf("\n");
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: write-aware ~ DRAM-like (>=2x over uncached) using only\n"
      "~30%% of DRAM; read-aware placement shows little improvement.\n");
  return 0;
}
