// Table IV: the events selected for performance prediction.
//
// The paper lists six hardware events (p0..p5) and prunes weak predictors
// by p-value before fitting Eq. 1.  This bench reproduces that selection:
// it assembles the concurrency-prediction training corpus (sampled at
// ht=36 on cached-NVM, target ht=24), fits the regression, and reports
// each feature's coefficient, t-statistic, p-value, and whether the
// pruning keeps it.
#include <cstdio>
#include <map>
#include <vector>

#include "harness/registry.hpp"
#include "model/predictor.hpp"
#include "simcore/table.hpp"

using namespace nvms;

int main() {
  constexpr int kSampleHt = 36;
  constexpr int kTargetHt = 24;

  std::printf(
      "Table IV: critical-event selection for the Eq. 1 model\n"
      "(features from ht=%d cached-NVM runs; target IPC at ht=%d)\n\n",
      kSampleHt, kTargetHt);

  std::vector<TrainingRow> rows;
  for (const auto& name : app_names()) {
    AppConfig sample_cfg;
    sample_cfg.threads = kSampleHt;
    const auto sampled = run_app(name, Mode::kCachedNvm, sample_cfg);
    AppConfig target_cfg;
    target_cfg.threads = kTargetHt;
    const auto target = run_app(name, Mode::kCachedNvm, target_cfg);
    const auto sf = aggregate_by_phase(sampled.samples);
    const auto tf = aggregate_by_phase(target.samples);
    for (const auto& s : sf) {
      for (const auto& t : tf) {
        if (t.phase != s.phase) continue;
        rows.push_back({s.events, s.ipc, t.ipc});
      }
    }
  }

  IpcPredictor model;
  model.fit(rows);
  const auto& report = model.report();

  // Feature descriptions in Table IV order (as transformed, see
  // docs/MODEL.md: per-instruction / per-cycle rates).
  const char* features[] = {
      "p0 sampled IPC (instr/cycles)",
      "p1 log instructions (scale)",
      "p2 stall-cycle ratio",
      "p3 offcore-wait ratio",
      "p4 read bytes per instruction",
      "p5 write bytes per instruction",
  };

  TextTable t({"feature", "kept", "coefficient", "t-stat", "p-value"});
  std::size_t active_idx = 0;
  for (std::size_t j = 0; j < 6; ++j) {
    const bool kept = model.active()[j];
    std::string coeff = "-";
    std::string tstat = "-";
    std::string pval = "-";
    if (kept) {
      coeff = TextTable::num(report.coefficients[active_idx], 4);
      tstat = TextTable::num(report.t_stats[active_idx], 2);
      pval = TextTable::num(report.p_values[active_idx], 4);
      ++active_idx;
    }
    t.add_row({features[j], kept ? "yes" : "pruned", coeff, tstat, pval});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Model fit: %zu training rows, R^2 = %.3f\n", rows.size(),
              report.r2);
  std::printf(
      "Expected: the memory-boundedness rates (stall/offcore/bytes-per-\n"
      "instruction) carry the signal; weak predictors are pruned by\n"
      "p-value, mirroring the paper's critical-event procedure.\n");
  return 0;
}
