// Figure 7: the diverging effect of concurrency on FT (uncached NVM).
//
// Raising concurrency increases FT's read bandwidth (3.8 -> 4.5 GB/s in
// the paper) but *decreases* its write bandwidth (3.0 -> below 2.6 GB/s),
// because NVM write bandwidth peaks at few writers.  The reduced writes
// overpower the increased reads: a net performance loss (~26%).
#include <cstdio>

#include "harness/registry.hpp"
#include "harness/ascii_plot.hpp"
#include "harness/report.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

using namespace nvms;

int main() {
  constexpr int kLow = 12;
  constexpr int kHigh = 36;

  AppConfig lo;
  lo.threads = kLow;
  AppConfig hi;
  hi.threads = kHigh;
  const auto r_lo = run_app("ft", Mode::kUncachedNvm, lo);
  const auto r_hi = run_app("ft", Mode::kUncachedNvm, hi);

  std::printf("Figure 7: FT on uncached-NVM at two concurrency levels\n\n");
  std::printf("-- ht=%d trace --\n%s\n", kLow,
              ascii_plot({{"read", &r_lo.traces.nvm_read, '*'},
                          {"write", &r_lo.traces.nvm_write, 'o'}})
                  .c_str());
  std::printf("-- ht=%d trace --\n%s\n", kHigh,
              ascii_plot({{"read", &r_hi.traces.nvm_read, '*'},
                          {"write", &r_hi.traces.nvm_write, 'o'}})
                  .c_str());

  TextTable t({"metric", "ht=12", "ht=36", "paper trend"});
  t.add_row({"peak write bw (GB/s)",
             TextTable::num(r_lo.traces.nvm_write.peak() / GB, 2),
             TextTable::num(r_hi.traces.nvm_write.peak() / GB, 2),
             "3.0 -> <2.6 (down)"});
  t.add_row({"peak read bw (GB/s)",
             TextTable::num(r_lo.traces.nvm_read.peak() / GB, 2),
             TextTable::num(r_hi.traces.nvm_read.peak() / GB, 2),
             "3.8 -> 4.5 (up)"});
  t.add_row({"FoM (Mop/s)", TextTable::num(r_lo.fom, 0),
             TextTable::num(r_hi.fom, 0), "~26% loss at high ht"});
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: writes diverge down sharply while reads stay roughly\n"
      "level (paper: reads up slightly), so the read/write gap widens and\n"
      "the net effect is a performance loss at high concurrency.\n");
  return 0;
}
