# Empty dependencies file for nvms_appfw.
# This may be replaced when dependencies are built.
