file(REMOVE_RECURSE
  "CMakeFiles/nvms_appfw.dir/appfw/result.cpp.o"
  "CMakeFiles/nvms_appfw.dir/appfw/result.cpp.o.d"
  "libnvms_appfw.a"
  "libnvms_appfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_appfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
