file(REMOVE_RECURSE
  "libnvms_appfw.a"
)
