file(REMOVE_RECURSE
  "libnvms_dwarfs_ugrid.a"
)
