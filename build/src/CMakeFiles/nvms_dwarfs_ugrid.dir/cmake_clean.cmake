file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_ugrid.dir/dwarfs/ugrid/boxlib.cpp.o"
  "CMakeFiles/nvms_dwarfs_ugrid.dir/dwarfs/ugrid/boxlib.cpp.o.d"
  "libnvms_dwarfs_ugrid.a"
  "libnvms_dwarfs_ugrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_ugrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
