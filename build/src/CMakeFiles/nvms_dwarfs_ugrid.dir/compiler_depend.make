# Empty compiler generated dependencies file for nvms_dwarfs_ugrid.
# This may be replaced when dependencies are built.
