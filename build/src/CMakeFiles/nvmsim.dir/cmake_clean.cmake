file(REMOVE_RECURSE
  "CMakeFiles/nvmsim.dir/cli/main.cpp.o"
  "CMakeFiles/nvmsim.dir/cli/main.cpp.o.d"
  "nvmsim"
  "nvmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
