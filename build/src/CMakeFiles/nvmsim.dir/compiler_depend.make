# Empty compiler generated dependencies file for nvmsim.
# This may be replaced when dependencies are built.
