# Empty compiler generated dependencies file for nvms_simcore.
# This may be replaced when dependencies are built.
