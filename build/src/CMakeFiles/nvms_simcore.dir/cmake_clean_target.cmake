file(REMOVE_RECURSE
  "libnvms_simcore.a"
)
