file(REMOVE_RECURSE
  "CMakeFiles/nvms_simcore.dir/simcore/json.cpp.o"
  "CMakeFiles/nvms_simcore.dir/simcore/json.cpp.o.d"
  "CMakeFiles/nvms_simcore.dir/simcore/stats.cpp.o"
  "CMakeFiles/nvms_simcore.dir/simcore/stats.cpp.o.d"
  "CMakeFiles/nvms_simcore.dir/simcore/table.cpp.o"
  "CMakeFiles/nvms_simcore.dir/simcore/table.cpp.o.d"
  "CMakeFiles/nvms_simcore.dir/simcore/time_series.cpp.o"
  "CMakeFiles/nvms_simcore.dir/simcore/time_series.cpp.o.d"
  "CMakeFiles/nvms_simcore.dir/simcore/units.cpp.o"
  "CMakeFiles/nvms_simcore.dir/simcore/units.cpp.o.d"
  "libnvms_simcore.a"
  "libnvms_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
