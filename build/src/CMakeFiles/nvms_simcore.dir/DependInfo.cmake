
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/json.cpp" "src/CMakeFiles/nvms_simcore.dir/simcore/json.cpp.o" "gcc" "src/CMakeFiles/nvms_simcore.dir/simcore/json.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/CMakeFiles/nvms_simcore.dir/simcore/stats.cpp.o" "gcc" "src/CMakeFiles/nvms_simcore.dir/simcore/stats.cpp.o.d"
  "/root/repo/src/simcore/table.cpp" "src/CMakeFiles/nvms_simcore.dir/simcore/table.cpp.o" "gcc" "src/CMakeFiles/nvms_simcore.dir/simcore/table.cpp.o.d"
  "/root/repo/src/simcore/time_series.cpp" "src/CMakeFiles/nvms_simcore.dir/simcore/time_series.cpp.o" "gcc" "src/CMakeFiles/nvms_simcore.dir/simcore/time_series.cpp.o.d"
  "/root/repo/src/simcore/units.cpp" "src/CMakeFiles/nvms_simcore.dir/simcore/units.cpp.o" "gcc" "src/CMakeFiles/nvms_simcore.dir/simcore/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
