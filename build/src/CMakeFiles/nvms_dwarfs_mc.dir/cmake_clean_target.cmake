file(REMOVE_RECURSE
  "libnvms_dwarfs_mc.a"
)
