file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_mc.dir/dwarfs/mc/xsbench.cpp.o"
  "CMakeFiles/nvms_dwarfs_mc.dir/dwarfs/mc/xsbench.cpp.o.d"
  "libnvms_dwarfs_mc.a"
  "libnvms_dwarfs_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
