# Empty compiler generated dependencies file for nvms_dwarfs_mc.
# This may be replaced when dependencies are built.
