# Empty compiler generated dependencies file for nvms_dwarfs_nbody.
# This may be replaced when dependencies are built.
