file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_nbody.dir/dwarfs/nbody/hacc.cpp.o"
  "CMakeFiles/nvms_dwarfs_nbody.dir/dwarfs/nbody/hacc.cpp.o.d"
  "libnvms_dwarfs_nbody.a"
  "libnvms_dwarfs_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
