file(REMOVE_RECURSE
  "libnvms_dwarfs_nbody.a"
)
