# Empty dependencies file for nvms_memsim.
# This may be replaced when dependencies are built.
