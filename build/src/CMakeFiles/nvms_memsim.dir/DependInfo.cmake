
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cpu.cpp" "src/CMakeFiles/nvms_memsim.dir/memsim/cpu.cpp.o" "gcc" "src/CMakeFiles/nvms_memsim.dir/memsim/cpu.cpp.o.d"
  "/root/repo/src/memsim/device.cpp" "src/CMakeFiles/nvms_memsim.dir/memsim/device.cpp.o" "gcc" "src/CMakeFiles/nvms_memsim.dir/memsim/device.cpp.o.d"
  "/root/repo/src/memsim/dram_cache.cpp" "src/CMakeFiles/nvms_memsim.dir/memsim/dram_cache.cpp.o" "gcc" "src/CMakeFiles/nvms_memsim.dir/memsim/dram_cache.cpp.o.d"
  "/root/repo/src/memsim/memory_system.cpp" "src/CMakeFiles/nvms_memsim.dir/memsim/memory_system.cpp.o" "gcc" "src/CMakeFiles/nvms_memsim.dir/memsim/memory_system.cpp.o.d"
  "/root/repo/src/memsim/resolve.cpp" "src/CMakeFiles/nvms_memsim.dir/memsim/resolve.cpp.o" "gcc" "src/CMakeFiles/nvms_memsim.dir/memsim/resolve.cpp.o.d"
  "/root/repo/src/memsim/scaling_curve.cpp" "src/CMakeFiles/nvms_memsim.dir/memsim/scaling_curve.cpp.o" "gcc" "src/CMakeFiles/nvms_memsim.dir/memsim/scaling_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvms_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
