file(REMOVE_RECURSE
  "CMakeFiles/nvms_memsim.dir/memsim/cpu.cpp.o"
  "CMakeFiles/nvms_memsim.dir/memsim/cpu.cpp.o.d"
  "CMakeFiles/nvms_memsim.dir/memsim/device.cpp.o"
  "CMakeFiles/nvms_memsim.dir/memsim/device.cpp.o.d"
  "CMakeFiles/nvms_memsim.dir/memsim/dram_cache.cpp.o"
  "CMakeFiles/nvms_memsim.dir/memsim/dram_cache.cpp.o.d"
  "CMakeFiles/nvms_memsim.dir/memsim/memory_system.cpp.o"
  "CMakeFiles/nvms_memsim.dir/memsim/memory_system.cpp.o.d"
  "CMakeFiles/nvms_memsim.dir/memsim/resolve.cpp.o"
  "CMakeFiles/nvms_memsim.dir/memsim/resolve.cpp.o.d"
  "CMakeFiles/nvms_memsim.dir/memsim/scaling_curve.cpp.o"
  "CMakeFiles/nvms_memsim.dir/memsim/scaling_curve.cpp.o.d"
  "libnvms_memsim.a"
  "libnvms_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
