file(REMOVE_RECURSE
  "libnvms_memsim.a"
)
