# Empty dependencies file for nvms_cli.
# This may be replaced when dependencies are built.
