file(REMOVE_RECURSE
  "libnvms_cli.a"
)
