file(REMOVE_RECURSE
  "CMakeFiles/nvms_cli.dir/cli/driver.cpp.o"
  "CMakeFiles/nvms_cli.dir/cli/driver.cpp.o.d"
  "CMakeFiles/nvms_cli.dir/cli/main.cpp.o"
  "CMakeFiles/nvms_cli.dir/cli/main.cpp.o.d"
  "CMakeFiles/nvms_cli.dir/cli/options.cpp.o"
  "CMakeFiles/nvms_cli.dir/cli/options.cpp.o.d"
  "libnvms_cli.a"
  "libnvms_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
