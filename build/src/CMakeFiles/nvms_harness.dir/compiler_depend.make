# Empty compiler generated dependencies file for nvms_harness.
# This may be replaced when dependencies are built.
