file(REMOVE_RECURSE
  "CMakeFiles/nvms_harness.dir/harness/ascii_plot.cpp.o"
  "CMakeFiles/nvms_harness.dir/harness/ascii_plot.cpp.o.d"
  "CMakeFiles/nvms_harness.dir/harness/registry.cpp.o"
  "CMakeFiles/nvms_harness.dir/harness/registry.cpp.o.d"
  "CMakeFiles/nvms_harness.dir/harness/report.cpp.o"
  "CMakeFiles/nvms_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/nvms_harness.dir/harness/sweep.cpp.o"
  "CMakeFiles/nvms_harness.dir/harness/sweep.cpp.o.d"
  "libnvms_harness.a"
  "libnvms_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
