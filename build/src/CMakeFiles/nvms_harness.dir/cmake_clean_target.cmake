file(REMOVE_RECURSE
  "libnvms_harness.a"
)
