file(REMOVE_RECURSE
  "CMakeFiles/nvms_model.dir/model/linalg.cpp.o"
  "CMakeFiles/nvms_model.dir/model/linalg.cpp.o.d"
  "CMakeFiles/nvms_model.dir/model/predictor.cpp.o"
  "CMakeFiles/nvms_model.dir/model/predictor.cpp.o.d"
  "CMakeFiles/nvms_model.dir/model/regression.cpp.o"
  "CMakeFiles/nvms_model.dir/model/regression.cpp.o.d"
  "libnvms_model.a"
  "libnvms_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
