# Empty dependencies file for nvms_model.
# This may be replaced when dependencies are built.
