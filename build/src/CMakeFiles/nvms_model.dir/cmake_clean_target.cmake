file(REMOVE_RECURSE
  "libnvms_model.a"
)
