# Empty dependencies file for nvms_pmem.
# This may be replaced when dependencies are built.
