file(REMOVE_RECURSE
  "libnvms_pmem.a"
)
