file(REMOVE_RECURSE
  "CMakeFiles/nvms_pmem.dir/pmem/log.cpp.o"
  "CMakeFiles/nvms_pmem.dir/pmem/log.cpp.o.d"
  "CMakeFiles/nvms_pmem.dir/pmem/region.cpp.o"
  "CMakeFiles/nvms_pmem.dir/pmem/region.cpp.o.d"
  "libnvms_pmem.a"
  "libnvms_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
