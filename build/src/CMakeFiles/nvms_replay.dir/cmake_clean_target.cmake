file(REMOVE_RECURSE
  "libnvms_replay.a"
)
