file(REMOVE_RECURSE
  "CMakeFiles/nvms_replay.dir/replay/recording.cpp.o"
  "CMakeFiles/nvms_replay.dir/replay/recording.cpp.o.d"
  "libnvms_replay.a"
  "libnvms_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
