# Empty dependencies file for nvms_replay.
# This may be replaced when dependencies are built.
