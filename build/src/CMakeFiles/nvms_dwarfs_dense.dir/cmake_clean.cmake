file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_dense.dir/dwarfs/dense/scalapack.cpp.o"
  "CMakeFiles/nvms_dwarfs_dense.dir/dwarfs/dense/scalapack.cpp.o.d"
  "libnvms_dwarfs_dense.a"
  "libnvms_dwarfs_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
