file(REMOVE_RECURSE
  "libnvms_dwarfs_dense.a"
)
