# Empty dependencies file for nvms_dwarfs_dense.
# This may be replaced when dependencies are built.
