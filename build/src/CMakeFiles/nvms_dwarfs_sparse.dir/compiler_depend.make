# Empty compiler generated dependencies file for nvms_dwarfs_sparse.
# This may be replaced when dependencies are built.
