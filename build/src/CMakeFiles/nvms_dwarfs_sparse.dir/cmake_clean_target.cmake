file(REMOVE_RECURSE
  "libnvms_dwarfs_sparse.a"
)
