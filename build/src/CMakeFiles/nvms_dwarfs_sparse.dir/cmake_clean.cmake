file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_sparse.dir/dwarfs/sparse/sparse_matrix.cpp.o"
  "CMakeFiles/nvms_dwarfs_sparse.dir/dwarfs/sparse/sparse_matrix.cpp.o.d"
  "CMakeFiles/nvms_dwarfs_sparse.dir/dwarfs/sparse/superlu.cpp.o"
  "CMakeFiles/nvms_dwarfs_sparse.dir/dwarfs/sparse/superlu.cpp.o.d"
  "libnvms_dwarfs_sparse.a"
  "libnvms_dwarfs_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
