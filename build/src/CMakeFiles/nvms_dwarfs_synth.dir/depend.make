# Empty dependencies file for nvms_dwarfs_synth.
# This may be replaced when dependencies are built.
