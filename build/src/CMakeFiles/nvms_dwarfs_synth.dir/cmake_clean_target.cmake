file(REMOVE_RECURSE
  "libnvms_dwarfs_synth.a"
)
