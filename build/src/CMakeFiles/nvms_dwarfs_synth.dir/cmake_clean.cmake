file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_synth.dir/dwarfs/synth/gups.cpp.o"
  "CMakeFiles/nvms_dwarfs_synth.dir/dwarfs/synth/gups.cpp.o.d"
  "CMakeFiles/nvms_dwarfs_synth.dir/dwarfs/synth/stream.cpp.o"
  "CMakeFiles/nvms_dwarfs_synth.dir/dwarfs/synth/stream.cpp.o.d"
  "libnvms_dwarfs_synth.a"
  "libnvms_dwarfs_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
