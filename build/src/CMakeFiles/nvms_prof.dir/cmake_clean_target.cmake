file(REMOVE_RECURSE
  "libnvms_prof.a"
)
