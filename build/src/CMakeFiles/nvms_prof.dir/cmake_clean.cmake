file(REMOVE_RECURSE
  "CMakeFiles/nvms_prof.dir/prof/data_profile.cpp.o"
  "CMakeFiles/nvms_prof.dir/prof/data_profile.cpp.o.d"
  "CMakeFiles/nvms_prof.dir/prof/run_recorder.cpp.o"
  "CMakeFiles/nvms_prof.dir/prof/run_recorder.cpp.o.d"
  "CMakeFiles/nvms_prof.dir/prof/windows.cpp.o"
  "CMakeFiles/nvms_prof.dir/prof/windows.cpp.o.d"
  "libnvms_prof.a"
  "libnvms_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
