# Empty dependencies file for nvms_prof.
# This may be replaced when dependencies are built.
