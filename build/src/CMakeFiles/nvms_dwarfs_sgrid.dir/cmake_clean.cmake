file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_sgrid.dir/dwarfs/sgrid/hypre.cpp.o"
  "CMakeFiles/nvms_dwarfs_sgrid.dir/dwarfs/sgrid/hypre.cpp.o.d"
  "libnvms_dwarfs_sgrid.a"
  "libnvms_dwarfs_sgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_sgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
