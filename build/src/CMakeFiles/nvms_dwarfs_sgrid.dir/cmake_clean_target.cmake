file(REMOVE_RECURSE
  "libnvms_dwarfs_sgrid.a"
)
