# Empty dependencies file for nvms_dwarfs_sgrid.
# This may be replaced when dependencies are built.
