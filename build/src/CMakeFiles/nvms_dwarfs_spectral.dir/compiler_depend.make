# Empty compiler generated dependencies file for nvms_dwarfs_spectral.
# This may be replaced when dependencies are built.
