file(REMOVE_RECURSE
  "libnvms_dwarfs_spectral.a"
)
