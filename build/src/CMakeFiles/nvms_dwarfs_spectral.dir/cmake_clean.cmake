file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_spectral.dir/dwarfs/spectral/ft.cpp.o"
  "CMakeFiles/nvms_dwarfs_spectral.dir/dwarfs/spectral/ft.cpp.o.d"
  "libnvms_dwarfs_spectral.a"
  "libnvms_dwarfs_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
