file(REMOVE_RECURSE
  "CMakeFiles/nvms_storage.dir/storage/tiers.cpp.o"
  "CMakeFiles/nvms_storage.dir/storage/tiers.cpp.o.d"
  "libnvms_storage.a"
  "libnvms_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
