
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/tiers.cpp" "src/CMakeFiles/nvms_storage.dir/storage/tiers.cpp.o" "gcc" "src/CMakeFiles/nvms_storage.dir/storage/tiers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
