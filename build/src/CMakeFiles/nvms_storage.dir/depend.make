# Empty dependencies file for nvms_storage.
# This may be replaced when dependencies are built.
