file(REMOVE_RECURSE
  "libnvms_storage.a"
)
