# Empty compiler generated dependencies file for nvms_placement.
# This may be replaced when dependencies are built.
