file(REMOVE_RECURSE
  "CMakeFiles/nvms_placement.dir/placement/write_aware.cpp.o"
  "CMakeFiles/nvms_placement.dir/placement/write_aware.cpp.o.d"
  "libnvms_placement.a"
  "libnvms_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
