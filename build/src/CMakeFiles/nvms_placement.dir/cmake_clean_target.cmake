file(REMOVE_RECURSE
  "libnvms_placement.a"
)
