file(REMOVE_RECURSE
  "CMakeFiles/nvms_mem.dir/mem/space.cpp.o"
  "CMakeFiles/nvms_mem.dir/mem/space.cpp.o.d"
  "libnvms_mem.a"
  "libnvms_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
