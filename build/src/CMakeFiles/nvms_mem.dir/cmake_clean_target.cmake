file(REMOVE_RECURSE
  "libnvms_mem.a"
)
