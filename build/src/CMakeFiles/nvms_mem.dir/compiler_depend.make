# Empty compiler generated dependencies file for nvms_mem.
# This may be replaced when dependencies are built.
