file(REMOVE_RECURSE
  "CMakeFiles/nvms_trace.dir/trace/pattern.cpp.o"
  "CMakeFiles/nvms_trace.dir/trace/pattern.cpp.o.d"
  "CMakeFiles/nvms_trace.dir/trace/run_traces.cpp.o"
  "CMakeFiles/nvms_trace.dir/trace/run_traces.cpp.o.d"
  "libnvms_trace.a"
  "libnvms_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
