# Empty compiler generated dependencies file for nvms_trace.
# This may be replaced when dependencies are built.
