
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/pattern.cpp" "src/CMakeFiles/nvms_trace.dir/trace/pattern.cpp.o" "gcc" "src/CMakeFiles/nvms_trace.dir/trace/pattern.cpp.o.d"
  "/root/repo/src/trace/run_traces.cpp" "src/CMakeFiles/nvms_trace.dir/trace/run_traces.cpp.o" "gcc" "src/CMakeFiles/nvms_trace.dir/trace/run_traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvms_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
