file(REMOVE_RECURSE
  "libnvms_trace.a"
)
