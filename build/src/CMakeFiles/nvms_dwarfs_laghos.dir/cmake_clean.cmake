file(REMOVE_RECURSE
  "CMakeFiles/nvms_dwarfs_laghos.dir/dwarfs/laghos/laghos.cpp.o"
  "CMakeFiles/nvms_dwarfs_laghos.dir/dwarfs/laghos/laghos.cpp.o.d"
  "libnvms_dwarfs_laghos.a"
  "libnvms_dwarfs_laghos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvms_dwarfs_laghos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
