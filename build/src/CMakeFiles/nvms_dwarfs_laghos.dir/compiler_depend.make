# Empty compiler generated dependencies file for nvms_dwarfs_laghos.
# This may be replaced when dependencies are built.
