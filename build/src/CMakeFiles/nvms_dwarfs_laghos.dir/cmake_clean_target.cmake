file(REMOVE_RECURSE
  "libnvms_dwarfs_laghos.a"
)
