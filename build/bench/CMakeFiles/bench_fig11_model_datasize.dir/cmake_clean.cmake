file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_model_datasize.dir/bench_fig11_model_datasize.cpp.o"
  "CMakeFiles/bench_fig11_model_datasize.dir/bench_fig11_model_datasize.cpp.o.d"
  "bench_fig11_model_datasize"
  "bench_fig11_model_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_model_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
