file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_placement_optimizer.dir/bench_ext_placement_optimizer.cpp.o"
  "CMakeFiles/bench_ext_placement_optimizer.dir/bench_ext_placement_optimizer.cpp.o.d"
  "bench_ext_placement_optimizer"
  "bench_ext_placement_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_placement_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
