file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_critical_events.dir/bench_tab4_critical_events.cpp.o"
  "CMakeFiles/bench_tab4_critical_events.dir/bench_tab4_critical_events.cpp.o.d"
  "bench_tab4_critical_events"
  "bench_tab4_critical_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_critical_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
