# Empty compiler generated dependencies file for bench_tab4_critical_events.
# This may be replaced when dependencies are built.
