file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_write_throttling.dir/bench_fig5_write_throttling.cpp.o"
  "CMakeFiles/bench_fig5_write_throttling.dir/bench_fig5_write_throttling.cpp.o.d"
  "bench_fig5_write_throttling"
  "bench_fig5_write_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_write_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
