# Empty compiler generated dependencies file for bench_fig5_write_throttling.
# This may be replaced when dependencies are built.
