# Empty compiler generated dependencies file for bench_fig7_ft_trace.
# This may be replaced when dependencies are built.
