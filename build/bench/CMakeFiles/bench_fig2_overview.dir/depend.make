# Empty dependencies file for bench_fig2_overview.
# This may be replaced when dependencies are built.
