file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_overview.dir/bench_fig2_overview.cpp.o"
  "CMakeFiles/bench_fig2_overview.dir/bench_fig2_overview.cpp.o.d"
  "bench_fig2_overview"
  "bench_fig2_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
