# Empty dependencies file for bench_fig8_scalapack_trace.
# This may be replaced when dependencies are built.
