# Empty dependencies file for bench_fig4_hypre_trace.
# This may be replaced when dependencies are built.
