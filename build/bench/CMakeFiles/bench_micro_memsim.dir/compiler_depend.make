# Empty compiler generated dependencies file for bench_micro_memsim.
# This may be replaced when dependencies are built.
