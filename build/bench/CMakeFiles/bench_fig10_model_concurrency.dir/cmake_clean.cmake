file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_model_concurrency.dir/bench_fig10_model_concurrency.cpp.o"
  "CMakeFiles/bench_fig10_model_concurrency.dir/bench_fig10_model_concurrency.cpp.o.d"
  "bench_fig10_model_concurrency"
  "bench_fig10_model_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_model_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
