
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab3_tiers.cpp" "bench/CMakeFiles/bench_tab3_tiers.dir/bench_tab3_tiers.cpp.o" "gcc" "bench/CMakeFiles/bench_tab3_tiers.dir/bench_tab3_tiers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvms_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_sgrid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_ugrid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_laghos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_dwarfs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_appfw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvms_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
