# Empty dependencies file for bench_tab3_tiers.
# This may be replaced when dependencies are built.
