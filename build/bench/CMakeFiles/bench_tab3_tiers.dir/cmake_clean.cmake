file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_tiers.dir/bench_tab3_tiers.cpp.o"
  "CMakeFiles/bench_tab3_tiers.dir/bench_tab3_tiers.cpp.o.d"
  "bench_tab3_tiers"
  "bench_tab3_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
