file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_write_aware.dir/bench_fig12_write_aware.cpp.o"
  "CMakeFiles/bench_fig12_write_aware.dir/bench_fig12_write_aware.cpp.o.d"
  "bench_fig12_write_aware"
  "bench_fig12_write_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_write_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
