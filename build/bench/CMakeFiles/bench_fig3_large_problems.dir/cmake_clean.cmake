file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_large_problems.dir/bench_fig3_large_problems.cpp.o"
  "CMakeFiles/bench_fig3_large_problems.dir/bench_fig3_large_problems.cpp.o.d"
  "bench_fig3_large_problems"
  "bench_fig3_large_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_large_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
