# Empty compiler generated dependencies file for bench_fig3_large_problems.
# This may be replaced when dependencies are built.
