file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_logging.dir/bench_ablation_logging.cpp.o"
  "CMakeFiles/bench_ablation_logging.dir/bench_ablation_logging.cpp.o.d"
  "bench_ablation_logging"
  "bench_ablation_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
