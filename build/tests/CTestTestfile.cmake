# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_memsim_device[1]_include.cmake")
include("/root/repo/build/tests/test_memsim_cache[1]_include.cmake")
include("/root/repo/build/tests/test_memsim_resolve[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_dwarfs_math[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_placement_storage[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_appfw_harness[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_synth_stream[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_pmem[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_dwarf_signatures[1]_include.cmake")
include("/root/repo/build/tests/test_numa[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_sweep_windows[1]_include.cmake")
include("/root/repo/build/tests/test_trace_vocab[1]_include.cmake")
include("/root/repo/build/tests/test_trace_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_edges[1]_include.cmake")
