file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_windows.dir/test_sweep_windows.cpp.o"
  "CMakeFiles/test_sweep_windows.dir/test_sweep_windows.cpp.o.d"
  "test_sweep_windows"
  "test_sweep_windows.pdb"
  "test_sweep_windows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
