# Empty dependencies file for test_sweep_windows.
# This may be replaced when dependencies are built.
