file(REMOVE_RECURSE
  "CMakeFiles/test_memsim_device.dir/test_memsim_device.cpp.o"
  "CMakeFiles/test_memsim_device.dir/test_memsim_device.cpp.o.d"
  "test_memsim_device"
  "test_memsim_device.pdb"
  "test_memsim_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
