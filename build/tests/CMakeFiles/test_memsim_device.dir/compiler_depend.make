# Empty compiler generated dependencies file for test_memsim_device.
# This may be replaced when dependencies are built.
