# Empty dependencies file for test_dwarf_signatures.
# This may be replaced when dependencies are built.
