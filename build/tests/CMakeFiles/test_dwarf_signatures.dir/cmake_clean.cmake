file(REMOVE_RECURSE
  "CMakeFiles/test_dwarf_signatures.dir/test_dwarf_signatures.cpp.o"
  "CMakeFiles/test_dwarf_signatures.dir/test_dwarf_signatures.cpp.o.d"
  "test_dwarf_signatures"
  "test_dwarf_signatures.pdb"
  "test_dwarf_signatures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dwarf_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
