file(REMOVE_RECURSE
  "CMakeFiles/test_dwarfs_math.dir/test_dwarfs_math.cpp.o"
  "CMakeFiles/test_dwarfs_math.dir/test_dwarfs_math.cpp.o.d"
  "test_dwarfs_math"
  "test_dwarfs_math.pdb"
  "test_dwarfs_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dwarfs_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
