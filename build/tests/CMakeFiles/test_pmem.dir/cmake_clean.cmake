file(REMOVE_RECURSE
  "CMakeFiles/test_pmem.dir/test_pmem.cpp.o"
  "CMakeFiles/test_pmem.dir/test_pmem.cpp.o.d"
  "test_pmem"
  "test_pmem.pdb"
  "test_pmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
