# Empty dependencies file for test_pmem.
# This may be replaced when dependencies are built.
