# Empty compiler generated dependencies file for test_appfw_harness.
# This may be replaced when dependencies are built.
