file(REMOVE_RECURSE
  "CMakeFiles/test_appfw_harness.dir/test_appfw_harness.cpp.o"
  "CMakeFiles/test_appfw_harness.dir/test_appfw_harness.cpp.o.d"
  "test_appfw_harness"
  "test_appfw_harness.pdb"
  "test_appfw_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appfw_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
