file(REMOVE_RECURSE
  "CMakeFiles/test_trace_optimizer.dir/test_trace_optimizer.cpp.o"
  "CMakeFiles/test_trace_optimizer.dir/test_trace_optimizer.cpp.o.d"
  "test_trace_optimizer"
  "test_trace_optimizer.pdb"
  "test_trace_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
