# Empty dependencies file for test_trace_optimizer.
# This may be replaced when dependencies are built.
