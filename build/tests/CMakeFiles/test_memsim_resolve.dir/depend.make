# Empty dependencies file for test_memsim_resolve.
# This may be replaced when dependencies are built.
