file(REMOVE_RECURSE
  "CMakeFiles/test_memsim_resolve.dir/test_memsim_resolve.cpp.o"
  "CMakeFiles/test_memsim_resolve.dir/test_memsim_resolve.cpp.o.d"
  "test_memsim_resolve"
  "test_memsim_resolve.pdb"
  "test_memsim_resolve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim_resolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
