# Empty dependencies file for test_trace_vocab.
# This may be replaced when dependencies are built.
