file(REMOVE_RECURSE
  "CMakeFiles/test_trace_vocab.dir/test_trace_vocab.cpp.o"
  "CMakeFiles/test_trace_vocab.dir/test_trace_vocab.cpp.o.d"
  "test_trace_vocab"
  "test_trace_vocab.pdb"
  "test_trace_vocab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_vocab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
