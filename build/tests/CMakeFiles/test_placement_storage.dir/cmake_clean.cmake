file(REMOVE_RECURSE
  "CMakeFiles/test_placement_storage.dir/test_placement_storage.cpp.o"
  "CMakeFiles/test_placement_storage.dir/test_placement_storage.cpp.o.d"
  "test_placement_storage"
  "test_placement_storage.pdb"
  "test_placement_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
