file(REMOVE_RECURSE
  "CMakeFiles/test_edges.dir/test_edges.cpp.o"
  "CMakeFiles/test_edges.dir/test_edges.cpp.o.d"
  "test_edges"
  "test_edges.pdb"
  "test_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
