file(REMOVE_RECURSE
  "CMakeFiles/predictor_demo.dir/predictor_demo.cpp.o"
  "CMakeFiles/predictor_demo.dir/predictor_demo.cpp.o.d"
  "predictor_demo"
  "predictor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
