# Empty dependencies file for pmem_kvstore.
# This may be replaced when dependencies are built.
