file(REMOVE_RECURSE
  "CMakeFiles/pmem_kvstore.dir/pmem_kvstore.cpp.o"
  "CMakeFiles/pmem_kvstore.dir/pmem_kvstore.cpp.o.d"
  "pmem_kvstore"
  "pmem_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmem_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
