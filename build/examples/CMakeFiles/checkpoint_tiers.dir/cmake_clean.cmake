file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_tiers.dir/checkpoint_tiers.cpp.o"
  "CMakeFiles/checkpoint_tiers.dir/checkpoint_tiers.cpp.o.d"
  "checkpoint_tiers"
  "checkpoint_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
