# Empty dependencies file for checkpoint_tiers.
# This may be replaced when dependencies are built.
