// Output renderers: human (one finding per line, grep-able), JSON (an
// array of finding objects) and SARIF 2.1.0 (GitHub code-scanning
// annotations).  All three are deterministic functions of the finding
// list — CI diffs of lint output are meaningful.
#include <map>
#include <sstream>

#include "lint.hpp"

namespace nvmslint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_human(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  if (findings.empty()) {
    out << "nvms-lint: clean\n";
  } else {
    out << "nvms-lint: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
        << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << json_escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.str();
}

std::string render_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"nvms-lint\",\n"
      << "      \"informationUri\": \"docs/LINT.md\",\n"
      << "      \"rules\": [\n";
  const std::vector<RuleInfo>& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "        {\"id\": \"" << json_escape(rules[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }},\n"
      << "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n"
      << "  }]\n"
      << "}\n";
  return out.str();
}

}  // namespace nvmslint
