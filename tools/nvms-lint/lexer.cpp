// Tokenizer for nvms-lint: enough C++ lexing to walk real sources safely.
//
// Guarantees the rules rely on:
//   * comment text and string/char literal contents never leak into
//     identifier tokens (no false DET hits on "steady_clock" in a doc
//     comment or a log message);
//   * comments are preserved as tokens (suppressions live there);
//   * raw strings, escapes, digit separators and line continuations are
//     handled; unterminated constructs close at EOF instead of failing.
#include <cctype>

#include "lint.hpp"

namespace nvmslint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> toks;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool in_preproc = false;   // inside a # directive (until unescaped newline)
  bool line_has_token = false;  // a non-comment token was seen on this line

  auto push = [&](TokKind kind, std::string text, int at_line) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = at_line;
    t.preproc = in_preproc;
    toks.push_back(std::move(t));
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      ++i;
      in_preproc = false;
      line_has_token = false;
      continue;
    }
    if (c == '\\' && i + 1 < n && src[i + 1] == '\n') {
      // Line continuation: the logical line (and any preprocessor
      // directive) continues.
      ++line;
      i += 2;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // ---- comments -------------------------------------------------------
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') break;
        ++j;
      }
      push(TokKind::kComment, src.substr(i + 2, j - i - 2), line);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      const std::size_t end = (j + 1 < n) ? j : n;
      push(TokKind::kComment, src.substr(i + 2, end - i - 2), start_line);
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // ---- preprocessor ---------------------------------------------------
    if (c == '#' && !line_has_token) {
      in_preproc = true;
      line_has_token = true;
      push(TokKind::kPunct, "#", line);
      ++i;
      continue;
    }

    // ---- string / char literals ----------------------------------------
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      std::string word = src.substr(i, j - i);
      // Raw string: R"delim( ... )delim", optionally with encoding prefix
      // (u8R, uR, UR, LR) — all end in 'R' right before the quote.
      if (j < n && src[j] == '"' && !word.empty() && word.back() == 'R') {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(' && src[k] != '\n') delim += src[k++];
        const std::string close = ")" + delim + "\"";
        const std::size_t body = (k < n) ? k + 1 : n;
        std::size_t end = src.find(close, body);
        if (end == std::string::npos) end = n;
        const int start_line = line;
        for (std::size_t p = j; p < end && p < n; ++p) {
          if (src[p] == '\n') ++line;
        }
        push(TokKind::kString, src.substr(body, end - body), start_line);
        i = (end == n) ? n : end + close.size();
        line_has_token = true;
        continue;
      }
      // Encoding-prefixed ordinary literal (u8"...", L'...')?  Fall
      // through to the literal scanner below by treating the prefix as
      // part of the literal.
      if (j < n && (src[j] == '"' || src[j] == '\'') &&
          (word == "u8" || word == "u" || word == "U" || word == "L")) {
        i = j;  // re-dispatch on the quote
        line_has_token = true;
        continue;
      }
      push(TokKind::kIdent, std::move(word), line);
      i = j;
      line_has_token = true;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j];
          text += src[j + 1];
          if (src[j + 1] == '\n') ++line;
          j += 2;
          continue;
        }
        if (src[j] == '\n') break;  // unterminated: close at line end
        text += src[j];
        ++j;
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(text),
           line);
      i = (j < n && src[j] == quote) ? j + 1 : j;
      line_has_token = true;
      continue;
    }

    // ---- numbers --------------------------------------------------------
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::kNumber, src.substr(i, j - i), line);
      i = j;
      line_has_token = true;
      continue;
    }

    // ---- punctuation ----------------------------------------------------
    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
    line_has_token = true;
  }

  return toks;
}

}  // namespace nvmslint
