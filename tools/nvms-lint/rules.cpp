// Rule engine for nvms-lint.
//
// Every rule is a pass over the token stream produced by tokenize().  The
// passes are lexical/structural (identifier matching plus balanced-token
// scans), which is deliberately conservative: a rule must never miss a
// violation because of formatting, and false positives have a paved
// escape (inline suppression with a mandatory reason).
#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "lint.hpp"

namespace nvmslint {

namespace {

// ---------------------------------------------------------------------------
// Small token-stream helpers

/// Index of the next non-comment token at or after `i`; toks.size() if none.
std::size_t next_code(const std::vector<Token>& toks, std::size_t i) {
  while (i < toks.size() && toks[i].kind == TokKind::kComment) ++i;
  return i;
}

/// Index of the previous non-comment token before `i`; npos if none.
std::size_t prev_code(const std::vector<Token>& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (toks[i].kind != TokKind::kComment) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// True when the token before `i` is `.` or the `>` of `->` — i.e. the
/// identifier at `i` is a member access, not a free name.
bool is_member_access(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t p = prev_code(toks, i);
  if (p == static_cast<std::size_t>(-1)) return false;
  if (is_punct(toks[p], ".")) return true;
  if (is_punct(toks[p], ">")) {
    const std::size_t pp = prev_code(toks, p);
    return pp != static_cast<std::size_t>(-1) && is_punct(toks[pp], "-");
  }
  return false;
}

/// Heuristic call-context test for short generic names (`time`, `rand`):
/// `identifier (` is a *call* when what precedes the identifier is
/// punctuation (`=`, `(`, `,`, `:` of `std::`, ...) or `return`; it is a
/// *declaration* when an identifier (the return type) precedes it
/// (`double time(double)`).  Member accesses are excluded separately.
bool is_call_context(const std::vector<Token>& toks, std::size_t i) {
  if (is_member_access(toks, i)) return false;
  const std::size_t p = prev_code(toks, i);
  if (p == static_cast<std::size_t>(-1)) return true;
  if (toks[p].kind == TokKind::kPunct) return true;
  return is_ident(toks[p], "return");
}

/// Skip a balanced token run starting at the opener `toks[i]` (one of
/// ( [ { < ).  Returns the index one past the matching closer, or
/// toks.size() when unbalanced.  For '<' the scan bails out on tokens that
/// cannot appear in a template argument list (`;`), so comparison
/// operators do not send it to EOF.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          char open, char close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (open == '<' && t.text == ";") return toks.size();
    if (t.text[0] == open) ++depth;
    if (t.text[0] == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

bool path_matches_any(const std::string& path,
                      const std::vector<std::string>& fragments) {
  for (const auto& f : fragments) {
    if (path.find(f) != std::string::npos) return true;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void add_finding(std::vector<Finding>* out, const std::string& rule,
                 const std::string& file, int line, std::string message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// DET-001 — unseeded randomness

const std::set<std::string>& det001_type_names() {
  static const std::set<std::string> kNames = {"random_device"};
  return kNames;
}
const std::set<std::string>& det001_call_names() {
  static const std::set<std::string> kNames = {
      "rand", "srand", "drand48", "lrand48", "mrand48",
      "srand48", "random_shuffle"};
  return kNames;
}

void run_det001(const std::vector<Token>& toks, const std::string& file,
                std::vector<Finding>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (det001_type_names().count(t.text) != 0) {
      add_finding(out, "DET-001", file, t.line,
                  "std::" + t.text +
                      " is nondeterministic; derive seeds from the task "
                      "seed (derive_task_seed) instead");
      continue;
    }
    if (det001_call_names().count(t.text) != 0 && is_call_context(toks, i)) {
      const std::size_t nx = next_code(toks, i + 1);
      if (nx < toks.size() && is_punct(toks[nx], "(")) {
        add_finding(out, "DET-001", file, t.line,
                    t.text +
                        "() draws from hidden global state; use a seeded "
                        "std::mt19937 derived from the task seed");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DET-002 — wall-clock reads

const std::set<std::string>& det002_clock_names() {
  static const std::set<std::string> kNames = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get"};
  return kNames;
}
const std::set<std::string>& det002_call_names() {
  static const std::set<std::string> kNames = {"time", "clock", "localtime",
                                               "gmtime"};
  return kNames;
}

void run_det002(const std::vector<Token>& toks, const std::string& file,
                std::vector<Finding>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    // Naming any host clock type is flagged, not just ::now(): an alias
    // (`using Clock = std::chrono::steady_clock`) would otherwise smuggle
    // every later Clock::now() past a call-site-only rule.
    if (det002_clock_names().count(t.text) != 0) {
      add_finding(out, "DET-002", file, t.line,
                  t.text +
                      " reads the host clock; simulator output must be a "
                      "function of the virtual clock only");
      continue;
    }
    if (det002_call_names().count(t.text) != 0 && is_call_context(toks, i)) {
      const std::size_t nx = next_code(toks, i + 1);
      if (nx < toks.size() && is_punct(toks[nx], "(")) {
        add_finding(out, "DET-002", file, t.line,
                    t.text +
                        "() reads the host clock; stamp with the virtual "
                        "clock or whitelist the module");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DET-003 — unordered iteration in export paths

const std::set<std::string>& unordered_names() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

/// Names declared (or received as parameters) with an unordered container
/// type anywhere in the file: `std::unordered_map<K, V> name` taints
/// `name`.  Template arguments are skipped with a balanced scan; `&`, `*`
/// and cv-qualifiers between the closer and the name are ignored.
std::set<std::string> tainted_names(const std::vector<Token>& toks) {
  std::set<std::string> tainted;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        unordered_names().count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = next_code(toks, i + 1);
    if (j < toks.size() && is_punct(toks[j], "<")) {
      j = skip_balanced(toks, j, '<', '>');
    }
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const") || toks[j].kind == TokKind::kComment)) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      tainted.insert(toks[j].text);
    }
  }
  return tainted;
}

void run_det003(const std::vector<Token>& toks, const std::string& file,
                std::vector<Finding>* out) {
  const std::set<std::string> tainted = tainted_names(toks);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "for")) continue;
    const std::size_t open = next_code(toks, i + 1);
    if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
    const std::size_t end = skip_balanced(toks, open, '(', ')');
    // Find a top-level ':' (range-for separator).  '::' never parses as
    // one because both halves are adjacent ':' puncts.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j < end; ++j) {
      const Token& t = toks[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (t.text == ":" && depth == 1) {
        const bool prev_colon = j > 0 && is_punct(toks[j - 1], ":");
        const bool next_colon = j + 1 < end && is_punct(toks[j + 1], ":");
        if (!prev_colon && !next_colon) {
          colon = j;
          break;
        }
      }
    }
    if (colon != 0) {
      // Range-for: any unordered name in the range expression is a
      // hash-order walk feeding the export.
      for (std::size_t j = colon + 1; j + 1 < end; ++j) {
        const Token& t = toks[j];
        if (t.kind != TokKind::kIdent) continue;
        if (unordered_names().count(t.text) != 0 ||
            tainted.count(t.text) != 0) {
          add_finding(out, "DET-003", file, toks[i].line,
                      "range-for over unordered container '" + t.text +
                          "' in an export path; iteration order is not "
                          "deterministic — sort first");
          break;
        }
      }
      continue;
    }
    // Classic iterator loop: `for (auto it = tainted.begin(); ...)`.
    // Copying out via `.begin()` elsewhere (into a sorted container) is
    // the sanctioned escape, so only loop headers are flagged.
    for (std::size_t j = open; j + 1 < end; ++j) {
      if (toks[j].kind != TokKind::kIdent || tainted.count(toks[j].text) == 0) {
        continue;
      }
      const std::size_t dot = next_code(toks, j + 1);
      if (dot >= end || !is_punct(toks[dot], ".")) continue;
      const std::size_t fn = next_code(toks, dot + 1);
      if (fn < end &&
          (is_ident(toks[fn], "begin") || is_ident(toks[fn], "cbegin"))) {
        add_finding(out, "DET-003", file, toks[i].line,
                    "iterator loop over unordered container '" +
                        toks[j].text +
                        "' in an export path; sort into a vector first");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OBS-001 — metric names must match the schema

const std::set<std::string>& metric_sinks() {
  static const std::set<std::string> kNames = {"counter", "gauge", "histogram",
                                               "epoch_sample"};
  return kNames;
}

void run_obs001(const std::vector<Token>& toks, const std::string& file,
                const Config& config, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || metric_sinks().count(t.text) == 0) {
      continue;
    }
    // Only member calls (`m.gauge(...)`, `probe->epoch_sample(...)`):
    // declarations and free functions with the same name stay out.
    if (!is_member_access(toks, i)) continue;
    const std::size_t open = next_code(toks, i + 1);
    if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
    const std::size_t arg = next_code(toks, open + 1);
    if (arg >= toks.size() || toks[arg].kind != TokKind::kString) {
      continue;  // dynamic name (prefix + ".hits"): not statically checkable
    }
    if (!metric_matches_schema(toks[arg].text, config.metric_schema)) {
      add_finding(out, "OBS-001", file, toks[arg].line,
                  "metric name \"" + toks[arg].text +
                      "\" is not in tools/nvms-lint/metric_schema.txt; add "
                      "it to the schema or fix the name");
    }
  }
}

// ---------------------------------------------------------------------------
// HYG-001 — raw new/delete

void run_hyg001(const std::vector<Token>& toks, const std::string& file,
                std::vector<Finding>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || (t.text != "new" && t.text != "delete")) {
      continue;
    }
    const std::size_t p = prev_code(toks, i);
    const bool after_eq =
        p != static_cast<std::size_t>(-1) && is_punct(toks[p], "=");
    // `operator new` / `operator delete` declarations are not raw usage.
    if (p != static_cast<std::size_t>(-1) && is_ident(toks[p], "operator")) {
      continue;
    }
    if (t.text == "delete") {
      // Deleted special member: `= delete ;` — the only benign spelling.
      const std::size_t nx = next_code(toks, i + 1);
      if (after_eq && nx < toks.size() && is_punct(toks[nx], ";")) continue;
      add_finding(out, "HYG-001", file, t.line,
                  "raw `delete`; use RAII owners instead of manual frees");
      continue;
    }
    // `x = new T` is exactly the raw-owning pattern; flag all `new`.
    add_finding(out, "HYG-001", file, t.line,
                "raw `new`; use std::make_unique/std::vector so ownership "
                "is explicit");
  }
}

// ---------------------------------------------------------------------------
// PERF-001 — heap allocation in `// NVMS_HOT` functions

// The epoch kernels (src/memsim/) are annotated `// NVMS_HOT`; their
// steady state must be allocation-free — per-epoch scratch lives in
// member arenas, not in the kernel.  The rule scans from the annotation
// to the end of the next balanced-brace body and flags allocation idioms
// (operator new, C allocators, make_unique/make_shared, and growing
// container calls) anywhere inside, nested lambdas included.
void run_perf001(const std::vector<Token>& toks, const std::string& file,
                 std::vector<Finding>* out) {
  static const std::set<std::string> kAllocIdioms = {
      "new",       "malloc",      "calloc",      "realloc",    "make_unique",
      "make_shared", "push_back", "emplace_back", "resize",    "reserve"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // The annotation is a comment *starting* with NVMS_HOT ("// NVMS_HOT:
    // ..."); prose that merely mentions the marker does not arm the rule.
    if (toks[i].kind != TokKind::kComment) continue;
    const std::size_t first = toks[i].text.find_first_not_of(" \t");
    if (first == std::string::npos ||
        toks[i].text.compare(first, 8, "NVMS_HOT") != 0) {
      continue;
    }
    // The annotated function's body opens at the next top-level '{'; a
    // ';' first means the annotation sits on a declaration (no body to
    // scan here — the definition carries its own annotation).
    std::size_t open = next_code(toks, i + 1);
    while (open < toks.size() && !is_punct(toks[open], "{") &&
           !is_punct(toks[open], ";")) {
      open = next_code(toks, open + 1);
    }
    if (open >= toks.size() || is_punct(toks[open], ";")) continue;
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "{")) {
        ++depth;
      } else if (is_punct(t, "}")) {
        if (--depth == 0) {
          i = j;
          break;
        }
      } else if (t.kind == TokKind::kIdent && kAllocIdioms.count(t.text) &&
                 !(t.text == "new" &&
                   is_ident(toks[prev_code(toks, j)], "operator"))) {
        add_finding(out, "PERF-001", file, t.line,
                    "`" + t.text +
                        "` can allocate inside an NVMS_HOT kernel; hoist "
                        "the buffer into a member scratch arena");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HYG-002 — swallowing catch (...)

void run_hyg002(const std::vector<Token>& toks, const std::string& file,
                std::vector<Finding>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "catch")) continue;
    const std::size_t open = next_code(toks, i + 1);
    if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
    // `catch (...)` is exactly three '.' puncts between the parens.
    std::size_t j = next_code(toks, open + 1);
    int dots = 0;
    while (j < toks.size() && is_punct(toks[j], ".")) {
      ++dots;
      j = next_code(toks, j + 1);
    }
    if (dots != 3 || j >= toks.size() || !is_punct(toks[j], ")")) continue;
    const std::size_t body = next_code(toks, j + 1);
    if (body >= toks.size() || !is_punct(toks[body], "{")) continue;
    const std::size_t end = skip_balanced(toks, body, '{', '}');
    bool handled = false;
    for (std::size_t k = body; k < end; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (toks[k].text == "throw" || toks[k].text == "current_exception" ||
          toks[k].text == "rethrow_exception") {
        handled = true;
        break;
      }
    }
    if (!handled) {
      add_finding(out, "HYG-002", file, toks[i].line,
                  "catch (...) swallows the exception; rethrow, or record "
                  "it via std::current_exception()");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions

std::vector<Suppression> collect_suppressions(const std::vector<Token>& toks,
                                              const std::string& file,
                                              std::vector<Finding>* findings) {
  // Lines that carry at least one non-comment token, so a standalone
  // suppression comment can bind to the next code line.
  std::set<int> code_lines;
  int max_line = 0;
  for (const Token& t : toks) {
    max_line = std::max(max_line, t.line);
    if (t.kind != TokKind::kComment) code_lines.insert(t.line);
  }

  std::vector<Suppression> out;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kComment) continue;
    const std::size_t at = t.text.find("NVMS_LINT(");
    if (at == std::string::npos) continue;
    const std::size_t open = at + std::string("NVMS_LINT").size();
    const std::size_t close = t.text.find(')', open);
    if (close == std::string::npos) {
      add_finding(findings, "SUP-001", file, t.line,
                  "malformed NVMS_LINT suppression: missing ')'");
      continue;
    }
    const std::string body = t.text.substr(open + 1, close - open - 1);
    const std::size_t colon = body.find(':');
    const std::string verb = colon == std::string::npos
                                 ? trim(body)
                                 : trim(body.substr(0, colon));
    if (verb != "allow" && verb != "allow-file") {
      add_finding(findings, "SUP-001", file, t.line,
                  "malformed NVMS_LINT suppression: expected "
                  "'allow:' or 'allow-file:'");
      continue;
    }
    const std::string rest =
        colon == std::string::npos ? "" : body.substr(colon + 1);
    const std::size_t comma = rest.find(',');
    const std::string rule = trim(comma == std::string::npos
                                      ? rest
                                      : rest.substr(0, comma));
    const std::string reason =
        comma == std::string::npos ? "" : trim(rest.substr(comma + 1));
    bool known = false;
    for (const RuleInfo& r : all_rules()) known = known || r.id == rule;
    if (!known) {
      add_finding(findings, "SUP-001", file, t.line,
                  "suppression names unknown rule '" + rule + "'");
      continue;
    }
    if (reason.empty()) {
      add_finding(findings, "SUP-001", file, t.line,
                  "suppression for " + rule +
                      " has no reason; the reason is mandatory");
      continue;
    }
    Suppression s;
    s.rule = rule;
    s.reason = reason;
    if (verb == "allow-file") {
      s.line = 0;  // file-wide
      out.push_back(std::move(s));
      continue;
    }
    if (code_lines.count(t.line) != 0) {
      s.line = t.line;  // trailing comment: same line
    } else {
      // Standalone comment: bind to the next line that has code.
      auto it = code_lines.upper_bound(t.line);
      s.line = it != code_lines.end() ? *it : t.line + 1;
      s.next_line = true;
    }
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Config / schema

bool Config::rule_enabled(const std::string& id) const {
  if (only_rules.empty()) return true;
  return std::find(only_rules.begin(), only_rules.end(), id) !=
         only_rules.end();
}

bool load_metric_schema(const std::string& path,
                        std::vector<std::string>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (!line.empty()) out->push_back(line);
  }
  return true;
}

bool load_metric_schema_entries(const std::string& path,
                                std::vector<SchemaEntry>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (!line.empty()) out->push_back({line, lineno});
  }
  return true;
}

void collect_metric_usage(const std::vector<Token>& toks, MetricUsage* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kString) {
      out->literals.push_back(t.text);
      continue;
    }
    if (t.kind != TokKind::kIdent || metric_sinks().count(t.text) == 0) {
      continue;
    }
    // The same sites OBS-001 validates: member calls with a literal name.
    if (!is_member_access(toks, i)) continue;
    const std::size_t open = next_code(toks, i + 1);
    if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
    const std::size_t arg = next_code(toks, open + 1);
    if (arg < toks.size() && toks[arg].kind == TokKind::kString) {
      out->sink_names.push_back(toks[arg].text);
    }
  }
}

std::vector<Finding> dead_metric_findings(const MetricUsage& usage,
                                          const std::vector<SchemaEntry>& schema,
                                          const std::string& schema_file) {
  const std::set<std::string> sinks(usage.sink_names.begin(),
                                    usage.sink_names.end());
  const std::set<std::string> literals(usage.literals.begin(),
                                       usage.literals.end());
  std::vector<Finding> out;
  for (const SchemaEntry& e : schema) {
    bool live = false;
    const bool is_prefix =
        e.pattern.size() >= 2 &&
        e.pattern.compare(e.pattern.size() - 2, 2, ".*") == 0;
    if (is_prefix) {
      const std::string dotted = e.pattern.substr(0, e.pattern.size() - 1);
      const std::string bare = e.pattern.substr(0, e.pattern.size() - 2);
      // Live when any emitted literal falls under the prefix, or the bare
      // prefix itself appears as a literal (dynamic `prefix + ".hits"`).
      for (const std::string& s : sinks) {
        if (s.size() > dotted.size() &&
            s.compare(0, dotted.size(), dotted) == 0) {
          live = true;
          break;
        }
      }
      live = live || literals.count(bare) != 0 || literals.count(dotted) != 0;
    } else {
      // Names routed through constants/helpers still appear as literals
      // somewhere; only a name gone from the whole tree is dead.
      live = sinks.count(e.pattern) != 0 || literals.count(e.pattern) != 0;
    }
    if (!live) {
      Finding f;
      f.rule = "OBS-002";
      f.file = schema_file;
      f.line = e.line;
      f.message = "schema entry \"" + e.pattern +
                  "\" has no remaining emitter in the scanned tree; delete "
                  "the entry or restore the metric";
      out.push_back(std::move(f));
    }
  }
  return out;
}

bool metric_matches_schema(const std::string& name,
                           const std::vector<std::string>& schema) {
  for (const std::string& entry : schema) {
    if (entry == name) return true;
    if (entry.size() >= 2 && entry.compare(entry.size() - 2, 2, ".*") == 0) {
      const std::string prefix = entry.substr(0, entry.size() - 1);  // "bw."
      if (name.compare(0, prefix.size(), prefix) == 0 &&
          name.size() > prefix.size()) {
        return true;
      }
    }
  }
  return false;
}

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"DET-001", "no unseeded randomness (std::random_device, rand, srand)"},
      {"DET-002", "no wall-clock reads outside the obs/executor whitelist"},
      {"DET-003", "no unordered-container iteration in export/report paths"},
      {"OBS-001", "metric name literals must match metric_schema.txt"},
      {"OBS-002", "every schema entry must keep an emitter (dead-metric rot)"},
      {"HYG-001", "no raw new/delete in src/"},
      {"HYG-002", "no catch (...) that swallows without rethrow/record"},
      {"PERF-001", "no heap allocation in NVMS_HOT kernels (src/memsim/)"},
      {"SUP-001", "NVMS_LINT suppressions must name a rule and a reason"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Engine

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const Config& config) {
  const std::vector<Token> toks = tokenize(source);

  std::vector<Finding> findings;
  std::vector<Finding> sup_findings;
  const std::vector<Suppression> supps =
      collect_suppressions(toks, path, &sup_findings);
  if (config.rule_enabled("SUP-001")) {
    findings.insert(findings.end(), sup_findings.begin(), sup_findings.end());
  }

  const bool in_export =
      config.all_paths || path_matches_any(path, config.export_paths);
  const bool in_src =
      config.all_paths || path_matches_any(path, config.src_paths);
  const bool wallclock_ok =
      !config.all_paths && path_matches_any(path, config.wallclock_whitelist);

  std::vector<Finding> raw;
  if (config.rule_enabled("DET-001")) run_det001(toks, path, &raw);
  if (config.rule_enabled("DET-002") && !wallclock_ok) {
    run_det002(toks, path, &raw);
  }
  if (config.rule_enabled("DET-003") && in_export) run_det003(toks, path, &raw);
  if (config.rule_enabled("OBS-001") && in_src) {
    run_obs001(toks, path, config, &raw);
  }
  if (config.rule_enabled("HYG-001") && in_src) run_hyg001(toks, path, &raw);
  if (config.rule_enabled("HYG-002") && in_src) run_hyg002(toks, path, &raw);
  const bool in_hot =
      config.all_paths || path_matches_any(path, config.hot_paths);
  if (config.rule_enabled("PERF-001") && in_hot) run_perf001(toks, path, &raw);

  for (Finding& f : raw) {
    bool suppressed = false;
    for (const Suppression& s : supps) {
      if (s.rule != f.rule) continue;
      if (s.line == 0 || s.line == f.line) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) findings.push_back(std::move(f));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const Config& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Finding f;
    f.rule = "IO";
    f.file = relativize(path, config.root);
    f.line = 0;
    f.message = "cannot read file";
    return {f};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(relativize(path, config.root), ss.str(), config);
}

std::string relativize(const std::string& path, const std::string& root) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  if (root.empty()) return p;
  std::string r = root;
  std::replace(r.begin(), r.end(), '\\', '/');
  if (!r.empty() && r.back() != '/') r += '/';
  if (p.compare(0, r.size(), r) == 0) return p.substr(r.size());
  return p;
}

}  // namespace nvmslint
