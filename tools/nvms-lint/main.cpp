// nvms-lint driver: walk the given files/directories and report every
// rule violation.  Exit 0 when clean, 1 on findings, 2 on usage errors —
// so `nvms-lint src tests bench examples` is directly a CI gate.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

void usage(std::ostream& out) {
  out << "usage: nvms-lint [options] <file-or-dir>...\n"
         "\n"
         "  --root DIR        repo root for path scoping/reporting "
         "(default: cwd)\n"
         "  --schema FILE     metric schema (default: "
         "<root>/tools/nvms-lint/metric_schema.txt)\n"
         "  --format FMT      human | json | sarif (default: human)\n"
         "  --rule ID         run only this rule (repeatable)\n"
         "  --all-paths       apply path-scoped rules everywhere "
         "(fixture tests)\n"
         "  --dead-metrics    also fail on schema entries with no emitter "
         "left (OBS-002)\n"
         "  --list-rules      print the rule catalogue and exit\n"
         "\n"
         "exit status: 0 clean, 1 findings, 2 usage error\n";
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx";
}

/// Expand files/directories into a deterministic (sorted) file list.
std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       std::ostream& err, bool* ok) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      err << "nvms-lint: no such file or directory: " << p << "\n";
      *ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  nvmslint::Config config;
  config.root = fs::current_path().string();
  std::string schema_path;
  std::string format = "human";
  std::vector<std::string> paths;
  bool dead_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "nvms-lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& r : nvmslint::all_rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--root") {
      config.root = value("--root");
    } else if (arg == "--schema") {
      schema_path = value("--schema");
    } else if (arg == "--format") {
      format = value("--format");
    } else if (arg == "--rule") {
      config.only_rules.push_back(value("--rule"));
    } else if (arg == "--all-paths") {
      config.all_paths = true;
    } else if (arg == "--dead-metrics") {
      dead_metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "nvms-lint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage(std::cerr);
    return 2;
  }
  if (format != "human" && format != "json" && format != "sarif") {
    std::cerr << "nvms-lint: unknown format " << format << "\n";
    return 2;
  }

  if (schema_path.empty()) {
    schema_path = (fs::path(config.root) / "tools" / "nvms-lint" /
                   "metric_schema.txt")
                      .string();
  }
  if (!nvmslint::load_metric_schema(schema_path, &config.metric_schema) &&
      config.rule_enabled("OBS-001")) {
    std::cerr << "nvms-lint: cannot read metric schema " << schema_path
              << "\n";
    return 2;
  }

  bool ok = true;
  const std::vector<std::string> files = collect_files(paths, std::cerr, &ok);
  if (!ok) return 2;

  std::vector<nvmslint::Finding> findings;
  nvmslint::MetricUsage usage;
  for (const std::string& f : files) {
    std::vector<nvmslint::Finding> fs_ = nvmslint::lint_file(f, config);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
    if (dead_metrics) {
      std::ifstream in(f, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      nvmslint::collect_metric_usage(nvmslint::tokenize(ss.str()), &usage);
    }
  }

  // OBS-002 is a whole-tree property: only after every file contributed
  // its emitters can a schema entry be declared dead.
  if (dead_metrics && config.rule_enabled("OBS-002")) {
    std::vector<nvmslint::SchemaEntry> entries;
    if (!nvmslint::load_metric_schema_entries(schema_path, &entries)) {
      std::cerr << "nvms-lint: cannot read metric schema " << schema_path
                << "\n";
      return 2;
    }
    const std::vector<nvmslint::Finding> dead = nvmslint::dead_metric_findings(
        usage, entries, nvmslint::relativize(schema_path, config.root));
    findings.insert(findings.end(), dead.begin(), dead.end());
  }

  if (format == "json") {
    std::cout << nvmslint::render_json(findings);
  } else if (format == "sarif") {
    std::cout << nvmslint::render_sarif(findings);
  } else {
    std::cout << nvmslint::render_human(findings);
  }
  return findings.empty() ? 0 : 1;
}
