// nvms-lint: a self-contained determinism & telemetry static-analysis pass.
//
// The simulator's headline guarantee is byte-identical output for any
// `--jobs` (CHANGES PRs 1-4).  That contract dies quietly: one stray
// std::random_device, one wall-clock stamp in an exporter, one range-for
// over an unordered_map feeding a CSV writer, and sweeps stop being
// reproducible without any test necessarily noticing.  This tool encodes
// those invariants as named, path-scoped rules and is wired into ctest
// (label `lint`) and CI so violations fail the build at review time.
//
// Design: a hand-rolled, preprocessor-aware tokenizer (comments, string
// and raw-string literals, char literals, line continuations) feeding a
// declarative rule engine.  No LLVM / libclang dependency — the rules are
// lexical and structural (balanced-token scans), which is exactly enough
// for the invariants below and keeps the tool buildable anywhere the
// repo builds.  C++17, no dependencies beyond the standard library.
//
// Rules (catalogued in docs/LINT.md):
//   DET-001  no unseeded randomness (std::random_device, rand, srand, ...)
//   DET-002  no wall-clock reads outside a whitelist (obs/ host stamping,
//            executor wall-time stats)
//   DET-003  no iteration over unordered containers in export/report paths
//   OBS-001  metric name literals must match tools/nvms-lint/metric_schema.txt
//   HYG-001  no raw new/delete in src/
//   HYG-002  no catch (...) that swallows without rethrow/record in src/
//   PERF-001 no heap allocation inside `// NVMS_HOT` kernels (src/memsim/)
//   SUP-001  malformed NVMS_LINT suppression (missing reason) — the
//            machinery polices itself
//
// Suppressions: `// NVMS_LINT(allow: DET-002, <reason>)` on the offending
// line, or alone on the line above it.  The reason is mandatory; an empty
// reason is itself a finding (SUP-001).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace nvmslint {

// ---------------------------------------------------------------------------
// Tokens

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // string literal (text excludes quotes; raw strings unescaped)
  kChar,     // character literal
  kPunct,    // one punctuation character
  kComment,  // // or /* */ comment, text excludes the delimiters
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;         // 1-based
  bool preproc = false; // token lies on a preprocessor directive line
};

/// Tokenize C++ source.  Never fails: unterminated constructs are closed at
/// end-of-file.  Comments are kept as tokens so suppressions can be read
/// from the same stream the rules walk.
std::vector<Token> tokenize(const std::string& source);

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string rule;     // "DET-001"
  std::string file;     // path as scanned (relative to root when possible)
  int line = 0;         // 1-based
  std::string message;  // human-readable, one sentence
};

// ---------------------------------------------------------------------------
// Suppressions

struct Suppression {
  std::string rule;    // rule id the comment allows
  int line = 0;        // line the comment sits on
  bool next_line = false;  // comment stands alone: applies to the line below
  std::string reason;  // mandatory free text
};

/// Parse every NVMS_LINT(...) comment out of a token stream.  Malformed
/// suppressions (no reason) are reported as SUP-001 findings.
std::vector<Suppression> collect_suppressions(const std::vector<Token>& toks,
                                              const std::string& file,
                                              std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Configuration

struct RuleInfo {
  std::string id;
  std::string summary;  // one line, shown by --list-rules and in SARIF
};

struct Config {
  /// Repo root used to relativize paths for reporting and scoping.
  std::string root;
  /// Only run these rule ids (empty = all).
  std::vector<std::string> only_rules;
  /// Treat every file as in scope for path-scoped rules (fixture tests).
  bool all_paths = false;
  /// OBS-001 schema: exact metric names plus "prefix.*" patterns.
  std::vector<std::string> metric_schema;

  /// DET-002 whitelist: path fragments where host-clock reads are part of
  /// the design (obs/ stamps spans on the host clock; the executor reports
  /// wall-time stats).  Matched against the relativized path.
  std::vector<std::string> wallclock_whitelist = {
      "src/obs/",
      "src/harness/executor",
      "src/harness/kernel_bench",  // replay timing is the deliverable
      "src/serve/",  // daemon: request latency metrics + socket deadlines
  };
  /// DET-003 scope: export/report/CSV paths where iteration order becomes
  /// bytes in a deliverable.
  std::vector<std::string> export_paths = {
      "src/obs/export",
      "src/harness/report",
      "src/harness/ascii_plot",
      "src/cli/",
  };
  /// OBS-001 / HYG-00x scope: production sources only.
  std::vector<std::string> src_paths = {"src/"};
  /// PERF-001 scope: the epoch-kernel hot path, where `// NVMS_HOT`
  /// functions must stay allocation-free in steady state.
  std::vector<std::string> hot_paths = {"src/memsim/"};

  bool rule_enabled(const std::string& id) const;
};

/// Load "name-per-line" schema file; '#' starts a comment.  Returns false
/// when the file cannot be read.
bool load_metric_schema(const std::string& path, std::vector<std::string>* out);

/// One schema line with its provenance, for findings that point back into
/// the schema file itself (OBS-002).
struct SchemaEntry {
  std::string pattern;  // exact name, or "prefix.*"
  int line = 0;         // 1-based line in the schema file
};

/// Like load_metric_schema, but keeps line numbers.
bool load_metric_schema_entries(const std::string& path,
                                std::vector<SchemaEntry>* out);

/// True when `name` matches an exact schema entry or a "prefix.*" pattern.
bool metric_matches_schema(const std::string& name,
                           const std::vector<std::string>& schema);

// ---------------------------------------------------------------------------
// OBS-002 — dead schema entries (tree-level)

/// Everything OBS-002 needs from one translation unit: the metric-name
/// literals at registry sink calls (the sites OBS-001 validates) plus
/// every other string literal (dynamic names are built as
/// `prefix + ".hits"`, so the bare prefix literal is the liveness signal
/// for "prefix.*" entries).
struct MetricUsage {
  std::vector<std::string> sink_names;  ///< literals at counter/gauge/... calls
  std::vector<std::string> literals;    ///< all other string literals
};

/// Scan one token stream for metric usage (pure; no findings).
void collect_metric_usage(const std::vector<Token>& toks, MetricUsage* out);

/// OBS-002: every schema entry must still have an emitter somewhere in
/// the scanned tree.  An exact entry is live when a sink literal matches
/// it, or when its name appears as any string literal (names routed
/// through constants or helpers); a "prefix.*" entry is live when a sink
/// literal falls under the prefix or the bare prefix appears as a
/// literal.  Dead entries are reported against `schema_file`:line —
/// schema rot is a finding, not a shrug.
std::vector<Finding> dead_metric_findings(const MetricUsage& usage,
                                          const std::vector<SchemaEntry>& schema,
                                          const std::string& schema_file);

/// All rules the engine knows, in report order.
const std::vector<RuleInfo>& all_rules();

// ---------------------------------------------------------------------------
// Engine

/// Lint one file's contents.  `path` should already be relativized against
/// the config root (see relativize()).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const Config& config);

/// Read and lint one file from disk.  I/O errors surface as a finding with
/// rule "IO" so a vanished file cannot silently pass the gate.
std::vector<Finding> lint_file(const std::string& path, const Config& config);

/// Make `path` relative to `root` when it lies underneath it; otherwise
/// return it unchanged.  Always forward slashes.
std::string relativize(const std::string& path, const std::string& root);

// ---------------------------------------------------------------------------
// Output

std::string render_human(const std::vector<Finding>& findings);
std::string render_json(const std::vector<Finding>& findings);
std::string render_sarif(const std::vector<Finding>& findings);

}  // namespace nvmslint
