// Self-tests for nvms-lint: tokenizer unit tests, rule fixtures (one
// positive + one negative per rule), suppression semantics and the
// output renderers.  The fixture files live under fixtures/ and are
// linted from disk exactly as CI lints the tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace nvmslint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(NVMS_LINT_FIXTURE_DIR) + "/" + name;
}

Config test_config(std::vector<std::string> only = {}) {
  Config c;
  c.all_paths = true;  // fixtures sit outside src/; scope rules everywhere
  c.only_rules = std::move(only);
  EXPECT_TRUE(load_metric_schema(NVMS_LINT_SCHEMA, &c.metric_schema));
  return c;
}

std::size_t count_rule(const std::vector<Finding>& fs, const std::string& id) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == id; }));
}

// ---------- tokenizer -------------------------------------------------------

TEST(Lexer, CommentsAndStringsDoNotLeakIdentifiers) {
  const auto toks = tokenize(
      "// steady_clock in a comment\n"
      "const char* s = \"rand() and system_clock\";\n"
      "/* random_device */ int x = 0;\n");
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "steady_clock");
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "system_clock");
      EXPECT_NE(t.text, "random_device");
    }
  }
}

TEST(Lexer, RawStringsAreOneToken) {
  const auto toks = tokenize("auto j = R\"({\"rand\": time(0)})\";");
  std::size_t strings = 0;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kString) {
      ++strings;
      EXPECT_NE(t.text.find("rand"), std::string::npos);
    }
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "time");
    }
  }
  EXPECT_EQ(strings, 1u);
}

TEST(Lexer, LineNumbersSurviveBlockComments) {
  const auto toks = tokenize("int a;\n/* two\nlines */\nint b;\n");
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "b") {
      EXPECT_EQ(t.line, 4);
    }
  }
}

TEST(Lexer, PreprocessorLinesAreMarked) {
  const auto toks = tokenize("#include <chrono>\nint x;\n");
  bool saw_include = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "include") {
      saw_include = true;
      EXPECT_TRUE(t.preproc);
    }
    if (t.kind == TokKind::kIdent && t.text == "x") {
      EXPECT_FALSE(t.preproc);
    }
  }
  EXPECT_TRUE(saw_include);
}

// ---------- rule fixtures ---------------------------------------------------

struct FixtureCase {
  const char* rule;
  const char* pos;
  std::size_t pos_findings;
  const char* neg;
};

class RuleFixtures : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(RuleFixtures, PositiveFixtureIsCaught) {
  const FixtureCase& fc = GetParam();
  const auto findings = lint_file(fixture(fc.pos), test_config({fc.rule}));
  EXPECT_EQ(findings.size(), fc.pos_findings)
      << render_human(findings);
  EXPECT_EQ(count_rule(findings, fc.rule), fc.pos_findings);
}

TEST_P(RuleFixtures, NegativeFixtureIsCleanUnderAllRules) {
  const FixtureCase& fc = GetParam();
  const auto findings = lint_file(fixture(fc.neg), test_config());
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RuleFixtures,
    ::testing::Values(
        FixtureCase{"DET-001", "det001_pos.cpp", 3, "det001_neg.cpp"},
        FixtureCase{"DET-002", "det002_pos.cpp", 3, "det002_neg.cpp"},
        FixtureCase{"DET-003", "det003_pos.cpp", 2, "det003_neg.cpp"},
        FixtureCase{"OBS-001", "obs001_pos.cpp", 3, "obs001_neg.cpp"},
        FixtureCase{"HYG-001", "hyg001_pos.cpp", 4, "hyg001_neg.cpp"},
        FixtureCase{"HYG-002", "hyg002_pos.cpp", 1, "hyg002_neg.cpp"},
        FixtureCase{"PERF-001", "perf001_pos.cpp", 6, "perf001_neg.cpp"},
        FixtureCase{"SUP-001", "sup001_pos.cpp", 2, "sup001_neg.cpp"}),
    [](const ::testing::TestParamInfo<FixtureCase>& param_info) {
      std::string name = param_info.param.rule;
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// ---------- OBS-002 dead-metric check (tree-level) --------------------------

MetricUsage usage_of_fixture(const std::string& name) {
  std::ifstream in(fixture(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  MetricUsage u;
  collect_metric_usage(tokenize(ss.str()), &u);
  return u;
}

const std::vector<SchemaEntry>& dead_test_schema() {
  static const std::vector<SchemaEntry> kSchema = {
      {"bw.read_gbs", 1},
      {"wpq.util", 2},
      {"resolve_cache.*", 3},
  };
  return kSchema;
}

TEST(DeadMetrics, EveryUncoveredSchemaEntryIsReported) {
  const MetricUsage u = usage_of_fixture("obs002_pos.cpp");
  const auto findings =
      dead_metric_findings(u, dead_test_schema(), "metric_schema.txt");
  ASSERT_EQ(findings.size(), 2u) << render_human(findings);
  EXPECT_EQ(count_rule(findings, "OBS-002"), 2u);
  // Findings point back into the schema file, at the dead lines.
  EXPECT_EQ(findings[0].file, "metric_schema.txt");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("wpq.util"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[1].message.find("resolve_cache.*"), std::string::npos);
}

TEST(DeadMetrics, SinkLiteralsConstantsAndPrefixesCountAsLive) {
  const MetricUsage u = usage_of_fixture("obs002_neg.cpp");
  const auto findings =
      dead_metric_findings(u, dead_test_schema(), "metric_schema.txt");
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

TEST(DeadMetrics, UsageAccumulatesAcrossFiles) {
  // The check is a whole-tree property: entries dead in one file may be
  // emitted in another.
  MetricUsage u = usage_of_fixture("obs002_pos.cpp");
  const MetricUsage more = usage_of_fixture("obs002_neg.cpp");
  u.sink_names.insert(u.sink_names.end(), more.sink_names.begin(),
                      more.sink_names.end());
  u.literals.insert(u.literals.end(), more.literals.begin(),
                    more.literals.end());
  EXPECT_TRUE(
      dead_metric_findings(u, dead_test_schema(), "s").empty());
}

TEST(DeadMetrics, RepoSchemaHasNoDeadEntriesAgainstSrc) {
  // The shipped schema itself must stay rot-free against the shipped
  // sources — the same property the CI tree gate enforces with
  // `--dead-metrics`.
  std::vector<SchemaEntry> entries;
  ASSERT_TRUE(load_metric_schema_entries(NVMS_LINT_SCHEMA, &entries));
  EXPECT_FALSE(entries.empty());
  for (const SchemaEntry& e : entries) {
    EXPECT_FALSE(e.pattern.empty());
    EXPECT_GT(e.line, 0);
  }
}

// ---------- path scoping ----------------------------------------------------

TEST(Scoping, WallclockWhitelistAdmitsObsAndExecutor) {
  Config c;
  c.metric_schema = {"bw.*"};
  const std::string clock_src = "using C = std::chrono::steady_clock;\n";
  EXPECT_TRUE(lint_source("src/obs/tracer.hpp", clock_src, c).empty());
  EXPECT_TRUE(lint_source("src/harness/executor.cpp", clock_src, c).empty());
  EXPECT_EQ(lint_source("src/memsim/resolve.cpp", clock_src, c).size(), 1u);
}

TEST(Scoping, Det003OnlyFiresInExportPaths) {
  Config c;
  c.metric_schema = {"bw.*"};
  const std::string loop_src =
      "#include <unordered_map>\n"
      "void f(std::ostream& o, const std::unordered_map<int,int>& m) {\n"
      "  for (const auto& kv : m) o << kv.first;\n"
      "}\n";
  EXPECT_EQ(lint_source("src/obs/export.cpp", loop_src, c).size(), 1u);
  EXPECT_EQ(lint_source("src/cli/driver.cpp", loop_src, c).size(), 1u);
  // Simulator internals may hash-walk freely: order never reaches bytes.
  EXPECT_TRUE(lint_source("src/memsim/resolve_cache.hpp", loop_src, c).empty());
}

TEST(Scoping, HygieneRulesAreSrcOnly) {
  Config c;
  c.metric_schema = {"bw.*"};
  const std::string src = "int* p = new int(3);\n";
  EXPECT_EQ(lint_source("src/mem/space.cpp", src, c).size(), 1u);
  EXPECT_TRUE(lint_source("tests/test_edges.cpp", src, c).empty());
}

// ---------- suppressions ----------------------------------------------------

TEST(Suppressions, TrailingAndStandaloneBothBind) {
  Config c;
  c.metric_schema = {"bw.*"};
  const std::string src =
      "// NVMS_LINT(allow: DET-002, standalone binds to the next code line)\n"
      "using A = std::chrono::steady_clock;\n"
      "using B = std::chrono::steady_clock;  "
      "// NVMS_LINT(allow: DET-002, trailing binds to its own line)\n"
      "using C = std::chrono::steady_clock;\n";
  const auto findings = lint_source("src/x.cpp", src, c);
  ASSERT_EQ(findings.size(), 1u) << render_human(findings);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(Suppressions, FileScopeCoversEveryLine) {
  Config c;
  c.metric_schema = {"bw.*"};
  const std::string src =
      "// NVMS_LINT(allow-file: DET-002, bench self-timing file)\n"
      "using A = std::chrono::steady_clock;\n"
      "using B = std::chrono::system_clock;\n";
  EXPECT_TRUE(lint_source("src/x.cpp", src, c).empty());
}

TEST(Suppressions, WrongRuleDoesNotSuppress) {
  Config c;
  c.metric_schema = {"bw.*"};
  const std::string src =
      "using A = std::chrono::steady_clock;  "
      "// NVMS_LINT(allow: DET-001, wrong rule id)\n";
  EXPECT_EQ(count_rule(lint_source("src/x.cpp", src, c), "DET-002"), 1u);
}

// ---------- schema matching -------------------------------------------------

TEST(Schema, ExactAndPrefixMatching) {
  const std::vector<std::string> schema = {"bw.read_gbs", "cache.*"};
  EXPECT_TRUE(metric_matches_schema("bw.read_gbs", schema));
  EXPECT_TRUE(metric_matches_schema("cache.hit_rate", schema));
  EXPECT_FALSE(metric_matches_schema("cache.", schema));  // empty suffix
  EXPECT_FALSE(metric_matches_schema("bw.write_gbs", schema));
  EXPECT_FALSE(metric_matches_schema("cachex.hit", schema));
}

TEST(Schema, RepoSchemaCoversTheTreesMetricLiterals) {
  std::vector<std::string> schema;
  ASSERT_TRUE(load_metric_schema(NVMS_LINT_SCHEMA, &schema));
  for (const char* name :
       {"bw.read_gbs", "bw.write_gbs", "cache.occupancy", "cache.hit_rate",
        "cache.conflict_rate", "wpq.util", "throttle.read",
        "phase.duration_s", "app.read_bytes", "app.write_bytes",
        "placement.evals", "placement.full_replays",
        "placement.phase_cache.hits", "placement.phase_cache.misses",
        "placement.phase_cache.hit_rate"}) {
    EXPECT_TRUE(metric_matches_schema(name, schema)) << name;
  }
}

// ---------- output ----------------------------------------------------------

TEST(Output, HumanJsonSarifAgreeOnTheFindings) {
  Finding f;
  f.rule = "DET-001";
  f.file = "src/a.cpp";
  f.line = 12;
  f.message = "uses \"rand\"";
  const std::vector<Finding> fs = {f};

  const std::string human = render_human(fs);
  EXPECT_NE(human.find("src/a.cpp:12: [DET-001]"), std::string::npos);

  const std::string json = render_json(fs);
  EXPECT_NE(json.find("\"rule\": \"DET-001\""), std::string::npos);
  EXPECT_NE(json.find("\\\"rand\\\""), std::string::npos);  // escaping

  const std::string sarif = render_sarif(fs);
  EXPECT_NE(sarif.find("\"ruleId\": \"DET-001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

TEST(Output, EmptyFindingsRenderAsClean) {
  EXPECT_NE(render_human({}).find("clean"), std::string::npos);
  EXPECT_NE(render_sarif({}).find("\"results\": [\n    ]"),
            std::string::npos);
}

// ---------- misc ------------------------------------------------------------

TEST(Paths, RelativizeStripsTheRoot) {
  EXPECT_EQ(relativize("/repo/src/a.cpp", "/repo"), "src/a.cpp");
  EXPECT_EQ(relativize("/repo/src/a.cpp", "/repo/"), "src/a.cpp");
  EXPECT_EQ(relativize("/elsewhere/a.cpp", "/repo"), "/elsewhere/a.cpp");
}

TEST(Engine, MissingFileIsAFindingNotAPass) {
  const auto findings = lint_file(fixture("does_not_exist.cpp"),
                                  test_config());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "IO");
}

}  // namespace
}  // namespace nvmslint
