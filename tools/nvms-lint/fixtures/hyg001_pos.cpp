// Fixture: HYG-001 positive — raw ownership.
struct Blob {
  int x = 0;
};

int leak_prone() {
  Blob* b = new Blob;        // finding: raw new
  int* arr = new int[16];    // finding: raw new[]
  const int v = b->x + arr[0];
  delete b;                  // finding: raw delete
  delete[] arr;              // finding: raw delete[]
  return v;
}
