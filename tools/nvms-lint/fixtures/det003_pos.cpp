// Fixture: DET-003 positive — exporting in hash order.
#include <ostream>
#include <string>
#include <unordered_map>

void write_csv(std::ostream& out,
               const std::unordered_map<std::string, double>& cells) {
  for (const auto& kv : cells) {  // finding: hash-order bytes in the export
    out << kv.first << "," << kv.second << "\n";
  }
}

void write_totals(std::ostream& out) {
  std::unordered_map<std::string, long> totals;
  totals["a"] = 1;
  // finding: classic iterator loop in an export path
  for (auto it = totals.begin(); it != totals.end(); ++it) {
    out << it->first << "\n";
  }
}
