// Fixture: OBS-001 negative — schema names, prefix families, and dynamic
// names the rule cannot (and must not pretend to) check.
#include <string>

struct Registry {
  int counter(const std::string&) { return 0; }
  int gauge(const std::string&) { return 0; }
  int histogram(const std::string&) { return 0; }
  void epoch_sample(const char*, const char*, double, double) {}
};

void publish(Registry& m, const std::string& prefix) {
  m.counter("app.write_bytes");
  m.histogram("phase.duration_s");
  m.epoch_sample("bw.read_gbs", "dram0", 0.0, 12.5);
  m.gauge("resolve_cache.hits");     // matches the resolve_cache.* family
  m.gauge(prefix + ".hit_rate");     // dynamic: skipped by design
}

// A free function named `gauge` is not a registry sink.
int gauge(const char*) { return 1; }
int use_free() { return gauge("anything-goes"); }
