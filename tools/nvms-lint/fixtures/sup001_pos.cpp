// Fixture: SUP-001 positive — suppressions that do not earn their keep.
#include <chrono>

// NVMS_LINT(allow: DET-002)   <- finding: no reason given
using BadClock = std::chrono::steady_clock;

// NVMS_LINT(allow: DET-999, made-up rule)   <- finding: unknown rule
using AlsoBad = std::chrono::system_clock;
