// Fixture: SUP-001 negative — well-formed suppressions, both placements.
#include <chrono>

// NVMS_LINT(allow: DET-002, fixture demonstrates a standalone suppression)
using Clock = std::chrono::steady_clock;

using Wall =
    std::chrono::system_clock;  // NVMS_LINT(allow: DET-002, trailing form)
