// Fixture: DET-002 negative — the virtual clock, a suppressed measurement,
// and clock-words in comments/strings only.
#include <string>

struct VirtualClock {
  double now_s = 0.0;  // virtual simulation time: deterministic by design
  void advance(double dt) { now_s += dt; }
  // The steady_clock alternative lives in src/obs (whitelisted there).
  double time(double scale) const { return now_s * scale; }  // member: fine
};

double step(VirtualClock& clk) {
  clk.advance(1.0 / 64.0);
  const std::string why = "wall time via system_clock is banned here";
  return clk.time(2.0) + static_cast<double>(why.size());
}
