// Fixture: DET-002 positive — host-clock reads, including the alias trick
// that a call-site-only rule would miss.
#include <chrono>
#include <ctime>

using Clock = std::chrono::steady_clock;  // finding: naming the clock

double stamp() {
  const auto t0 = std::chrono::system_clock::now();  // finding
  const std::time_t t1 = std::time(nullptr);         // finding
  (void)t0;
  return static_cast<double>(t1) + static_cast<double>(Clock::period::den);
}
