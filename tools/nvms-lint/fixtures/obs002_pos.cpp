// Fixture: OBS-002 positive — a tree whose only emitter covers one
// schema entry, leaving the rest of the schema dead (see the self-test's
// schema: wpq.util and resolve_cache.* have no emitter here).
struct Registry {
  int gauge(const char*) { return 0; }
};

void publish(Registry& m) {
  m.gauge("bw.read_gbs");
}
