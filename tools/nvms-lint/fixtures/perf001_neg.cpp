// Fixture: PERF-001 negative — an NVMS_HOT kernel running entirely on
// member scratch, with allocations confined to un-annotated setup.
#include <cstdint>
#include <vector>

struct Scratch {
  std::vector<double> lanes;
  // Cold path: growth happens before the kernel runs.
  void prepare(std::size_t n) {
    if (lanes.size() < n) lanes.resize(n);
  }
};

// NVMS_HOT declaration only (no body): nothing to scan here.
double hot_kernel(Scratch& sc, int n);

// NVMS_HOT: steady-state kernel — reads and writes pre-sized scratch,
// stack locals only.  Mentioning push_back or new in a comment is fine.
double hot_kernel(Scratch& sc, int n) {
  double acc = 0.0;
  double window[8] = {0.0};
  for (int i = 0; i < n; ++i) {
    window[i & 7] = sc.lanes[static_cast<std::size_t>(i) % sc.lanes.size()];
    acc += window[i & 7];
  }
  return acc;
}
