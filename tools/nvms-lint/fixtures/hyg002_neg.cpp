// Fixture: HYG-002 negative — catch-alls that rethrow or record, and a
// typed catch (outside the rule).
#include <exception>
#include <stdexcept>

int risky();

int transactional() {
  try {
    return risky();
  } catch (...) {
    // Roll back, then rethrow: the error still propagates.
    throw;
  }
}

std::exception_ptr capture() {
  try {
    (void)risky();
  } catch (...) {
    return std::current_exception();  // recorded for a later rethrow
  }
  return nullptr;
}

int typed() {
  try {
    return risky();
  } catch (const std::runtime_error&) {  // typed: HYG-002 does not apply
    return -1;
  }
}
