// Fixture: DET-001 negative — seeded generators, mentions in comments and
// strings, and member functions that merely share a name.
#include <random>
#include <string>

// std::random_device is banned (this comment must not trip the rule).
struct Sampler {
  explicit Sampler(unsigned seed) : rng(seed) {}
  double rand_like = 0.0;  // identifier containing "rand" is fine
  std::mt19937 rng;
};

double draw(Sampler& s) {
  const std::string doc = "do not use rand() here";  // string, not a call
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(s.rng) + static_cast<double>(doc.size());
}
