// Fixture: HYG-002 positive — a catch-all that eats the evidence.
int risky();

int swallow() {
  try {
    return risky();
  } catch (...) {  // finding: no rethrow, no record — the error vanishes
    return -1;
  }
}
