// Fixture: DET-003 negative — sort before you serialize.
#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

void write_csv(std::ostream& out,
               const std::unordered_map<std::string, double>& cells) {
  // The canonical escape: copy to a sorted container, iterate that.
  std::vector<std::pair<std::string, double>> rows(cells.begin(),
                                                   cells.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& kv : rows) {
    out << kv.first << "," << kv.second << "\n";
  }
}

void write_map(std::ostream& out, const std::map<std::string, long>& totals) {
  for (const auto& kv : totals) {  // std::map: ordered, fine
    out << kv.first << "," << kv.second << "\n";
  }
}
