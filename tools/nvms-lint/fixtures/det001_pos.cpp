// Fixture: DET-001 positive — every flavour of unseeded randomness.
#include <cstdlib>
#include <random>

int entropy() {
  std::random_device rd;           // finding: random_device
  std::srand(42);                  // finding: srand
  int x = std::rand();             // finding: rand
  return static_cast<int>(rd()) + x;
}
