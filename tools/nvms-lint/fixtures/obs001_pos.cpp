// Fixture: OBS-001 positive — metric names outside the schema.
struct Registry {
  int counter(const char*) { return 0; }
  int gauge(const char*) { return 0; }
  void epoch_sample(const char*, const char*, double, double) {}
};

void publish(Registry& m) {
  m.counter("app.read_bytes");          // in schema: fine
  m.gauge("bandwidht.read_gbs");        // finding: typo'd name
  m.counter("scratch.debug_events");    // finding: ad-hoc family
  m.epoch_sample("wpq.depth", "nvm0", 0.0, 1.0);  // finding: not in schema
}
