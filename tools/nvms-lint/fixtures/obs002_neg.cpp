// Fixture: OBS-002 negative — every schema entry the self-test checks
// keeps an emitter: a direct sink literal, a constant-routed name (live
// via the plain literal), and a dynamic prefix family whose bare prefix
// appears as a literal.
#include <string>

struct Registry {
  int gauge(const std::string&) { return 0; }
};

inline const char* kWpqName = "wpq.util";

void publish(Registry& m, const std::string& shard) {
  m.gauge("bw.read_gbs");
  m.gauge(kWpqName);  // routed through a constant: literal keeps it live
  const std::string prefix = "resolve_cache";
  m.gauge(prefix + "." + shard);  // dynamic family member
}
