// Fixture: HYG-001 negative — RAII owners and deleted special members.
#include <memory>
#include <vector>

struct Blob {
  int x = 0;
  Blob(const Blob&) = delete;             // deleted copy: fine
  Blob& operator=(const Blob&) = delete;  // deleted assign: fine
  Blob() = default;
};

int safe() {
  auto b = std::make_unique<Blob>();
  std::vector<int> arr(16, 0);
  // "new" appearing in a comment or string must not count: new delete new.
  return b->x + arr[0];
}
