// Fixture: PERF-001 positive — allocation inside an NVMS_HOT kernel.
#include <cstdlib>
#include <memory>
#include <vector>

struct Scratch {
  std::vector<double> lanes;
};

// NVMS_HOT: the per-epoch kernel; its steady state must not allocate.
double hot_kernel(Scratch& sc, int n) {
  std::vector<double> local;
  local.reserve(static_cast<std::size_t>(n));    // finding: reserve
  for (int i = 0; i < n; ++i) {
    local.push_back(static_cast<double>(i));     // finding: push_back
  }
  sc.lanes.resize(static_cast<std::size_t>(n));  // finding: resize
  auto owned = std::make_unique<double[]>(16);   // finding: make_unique
  void* raw = std::malloc(64);                   // finding: malloc
  std::free(raw);
  const auto nested = [&] {
    sc.lanes.emplace_back(1.0);                  // finding: emplace_back
  };
  nested();
  return local.empty() ? owned[0] : local.back();
}

// Not annotated: the same idioms outside an NVMS_HOT body are fine here
// (HYG-001 and friends police the rest of the tree).
void cold_setup(Scratch& sc, int n) {
  sc.lanes.resize(static_cast<std::size_t>(n));
}
