// bench-snapshot: record and compare epoch-kernel performance snapshots.
//
// `record` replays the harvested Fig. 2 corpora (harness/kernel_bench)
// through the pre-SoA scalar kernels and the SoA kernels, plus the
// memoized hot path under each --resolve-cache mode, and writes two
// schema-versioned JSON documents:
//
//   BENCH_epoch.json  — scalar-vs-SoA kernel throughput + speedup
//   BENCH_sweep.json  — memoized replay throughput per resolve-cache mode
//
// Raw seconds do not survive a change of host, so every gated metric is
// *machine-normalized*: work per calibration unit, where one unit is the
// measured duration of a fixed integer spin loop (calibrate_baseline()).
// Host speed cancels out of the ratio; kernel regressions do not.
//
// `compare` reads the gate block of a committed baseline and a freshly
// recorded snapshot and fails (exit 1) when any gated metric drops more
// than --tolerance percent below the baseline, or when a parity flag
// (identical resolution folds across kernels/modes) is false.  CI runs
// this against the committed snapshots on every push.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/kernel_bench.hpp"
#include "memsim/resolve.hpp"
#include "simcore/json.hpp"

namespace {

using namespace nvms;

constexpr int kSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Minimal JSON reader: flattens objects into dotted-path -> scalar maps.
// Only what the snapshot schema needs (objects, numbers, bools, strings);
// arrays are rejected, which doubles as a schema check.

struct FlatDoc {
  std::map<std::string, double> nums;
  std::map<std::string, bool> bools;
  std::map<std::string, std::string> strs;
};

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool fail(const std::string& m) {
    if (err.empty()) err = m + " at offset " + std::to_string(i);
    return false;
  }
  bool parse_string(std::string* out) {
    if (s[i] != '"') return fail("expected string");
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return fail("bad escape");
        switch (s[i]) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(s[i]); break;
        }
      } else {
        out->push_back(s[i]);
      }
      ++i;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }
  bool parse_value(const std::string& path, FlatDoc* doc) {
    skip_ws();
    if (i >= s.size()) return fail("unexpected end");
    const char c = s[i];
    if (c == '{') return parse_object(path, doc);
    if (c == '"') {
      std::string v;
      if (!parse_string(&v)) return false;
      doc->strs[path] = v;
      return true;
    }
    if (std::strncmp(s.c_str() + i, "true", 4) == 0) {
      doc->bools[path] = true;
      i += 4;
      return true;
    }
    if (std::strncmp(s.c_str() + i, "false", 5) == 0) {
      doc->bools[path] = false;
      i += 5;
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      char* end = nullptr;
      const double v = std::strtod(s.c_str() + i, &end);
      if (end == s.c_str() + i) return fail("bad number");
      doc->nums[path] = v;
      i = static_cast<std::size_t>(end - s.c_str());
      return true;
    }
    return fail("unsupported JSON value (arrays are not part of the schema)");
  }
  bool parse_object(const std::string& path, FlatDoc* doc) {
    ++i;  // '{'
    skip_ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= s.size() || s[i] != ':') return fail("expected ':'");
      ++i;
      if (!parse_value(path.empty() ? key : path + "." + key, doc)) {
        return false;
      }
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

bool read_snapshot(const std::string& path, FlatDoc* doc, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Parser p{text, 0, {}};
  p.skip_ws();
  if (!p.parse_value("", doc)) {
    *err = path + ": " + p.err;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// record

Json result_json(const ReplayResult& r) {
  Json j;
  j.set("seconds", r.seconds);
  j.set("epochs", r.epochs);
  j.set("epochs_per_s", r.epochs_per_s());
  j.set("sim_gb_per_s", r.stream_gbs());
  j.set("time_fold", r.time_fold);
  return j;
}

bool write_doc(const std::string& path, const Json& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench-snapshot: cannot write %s\n", path.c_str());
    return false;
  }
  out << doc.dump(2) << "\n";
  return out.good();
}

// One timed replay is vulnerable to scheduler noise, and noise only
// ever slows a run — so every recorded number is the fastest of
// `attempts` independent replays.  Determinism makes the pick safe:
// the resolution fold is byte-identical across attempts (fresh systems,
// same seeds), only the wall time varies.
template <typename Replay>
ReplayResult best_of(int attempts, Replay&& replay) {
  ReplayResult best = replay();
  for (int a = 1; a < attempts; ++a) {
    const ReplayResult r = replay();
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

int cmd_record(bool quick, int repeat, int attempts,
               const std::string& out_dir) {
  const std::string corpus_name = quick ? "fig2-quick" : "fig2";
  std::fprintf(stderr, "bench-snapshot: harvesting %s corpora...\n",
               corpus_name.c_str());
  const auto corpora = fig2_corpora(quick);
  std::fprintf(stderr, "bench-snapshot: calibrating baseline unit...\n");
  const double unit_s = calibrate_baseline();

  // Epoch snapshot: scalar reference vs SoA kernels, raw (no memo).
  std::fprintf(stderr,
               "bench-snapshot: replaying kernels (repeat %d, best of %d)...\n",
               repeat, attempts);
  set_reference_kernels(true);
  const ReplayResult ref =
      best_of(attempts, [&] { return replay_corpora(corpora, repeat); });
  set_reference_kernels(false);
  const ReplayResult soa =
      best_of(attempts, [&] { return replay_corpora(corpora, repeat); });
  const bool epoch_parity = ref.time_fold == soa.time_fold;

  Json epoch;
  epoch.set("schema_version", kSchemaVersion);
  epoch.set("kind", "nvms-bench-epoch");
  epoch.set("corpus", corpus_name);
  epoch.set("repeat", repeat);
  epoch.set("attempts", attempts);
  epoch.set("baseline_unit_s", unit_s);
  epoch.set("reference", result_json(ref));
  epoch.set("soa", result_json(soa));
  {
    Json gate;
    gate.set("speedup_vs_reference", ref.seconds / soa.seconds);
    gate.set("soa_epochs_per_unit", soa.epochs_per_s() * unit_s);
    gate.set("soa_gb_per_unit", soa.stream_gbs() * unit_s);
    epoch.set("gate", gate);
  }
  {
    Json parity;
    parity.set("time_fold_identical", epoch_parity);
    epoch.set("parity", parity);
  }

  // Sweep snapshot: the memoized hot path per resolve-cache mode (SoA
  // kernels; this is the configuration sweeps actually run).
  std::fprintf(stderr, "bench-snapshot: replaying resolve-cache modes...\n");
  const ReplayResult off = best_of(attempts, [&] {
    return replay_corpora(corpora, repeat, ResolveCacheMode::kOff);
  });
  const ReplayResult run = best_of(attempts, [&] {
    return replay_corpora(corpora, repeat, ResolveCacheMode::kPerRun);
  });
  const ReplayResult shared = best_of(attempts, [&] {
    return replay_corpora(corpora, repeat, ResolveCacheMode::kShared);
  });
  const bool sweep_parity =
      off.time_fold == run.time_fold && off.time_fold == shared.time_fold;

  Json sweep;
  sweep.set("schema_version", kSchemaVersion);
  sweep.set("kind", "nvms-bench-sweep");
  sweep.set("corpus", corpus_name);
  sweep.set("repeat", repeat);
  sweep.set("attempts", attempts);
  sweep.set("baseline_unit_s", unit_s);
  sweep.set("off", result_json(off));
  sweep.set("run", result_json(run));
  sweep.set("shared", result_json(shared));
  {
    Json gate;
    gate.set("epochs_per_unit_off", off.epochs_per_s() * unit_s);
    gate.set("epochs_per_unit_run", run.epochs_per_s() * unit_s);
    gate.set("epochs_per_unit_shared", shared.epochs_per_s() * unit_s);
    sweep.set("gate", gate);
  }
  {
    Json parity;
    parity.set("time_fold_identical", sweep_parity);
    sweep.set("parity", parity);
  }

  const std::string sep = out_dir.empty() || out_dir.back() == '/' ? "" : "/";
  if (!write_doc(out_dir + sep + "BENCH_epoch.json", epoch) ||
      !write_doc(out_dir + sep + "BENCH_sweep.json", sweep)) {
    return 1;
  }
  std::printf(
      "recorded %s: speedup %.2fx, soa %.1f epochs/unit, parity %s; "
      "sweep off/run/shared %.1f/%.1f/%.1f epochs/unit, parity %s\n",
      corpus_name.c_str(), ref.seconds / soa.seconds,
      soa.epochs_per_s() * unit_s, epoch_parity ? "ok" : "DIVERGED",
      off.epochs_per_s() * unit_s, run.epochs_per_s() * unit_s,
      shared.epochs_per_s() * unit_s, sweep_parity ? "ok" : "DIVERGED");
  return (epoch_parity && sweep_parity) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// compare

int cmd_compare(const std::string& baseline_path,
                const std::string& current_path, double tolerance_pct) {
  FlatDoc baseline, current;
  std::string err;
  if (!read_snapshot(baseline_path, &baseline, &err) ||
      !read_snapshot(current_path, &current, &err)) {
    std::fprintf(stderr, "bench-snapshot: %s\n", err.c_str());
    return 2;
  }
  for (const char* key : {"schema_version", "kind", "corpus"}) {
    const std::string k = key;
    const bool same = k == "schema_version"
                          ? baseline.nums[k] == current.nums[k]
                          : baseline.strs[k] == current.strs[k];
    if (!same) {
      std::fprintf(stderr,
                   "bench-snapshot: %s mismatch between %s and %s — "
                   "snapshots are not comparable\n",
                   key, baseline_path.c_str(), current_path.c_str());
      return 2;
    }
  }

  int violations = 0;
  // Every gated metric is work-per-unit or a pure ratio: higher is
  // better, and the tolerance band only guards the downside (a faster
  // kernel should never fail the gate).
  for (const auto& [path, base] : baseline.nums) {
    if (path.rfind("gate.", 0) != 0) continue;
    const auto it = current.nums.find(path);
    if (it == current.nums.end()) {
      std::printf("MISSING  %-28s baseline %.3f, absent in current\n",
                  path.c_str() + 5, base);
      ++violations;
      continue;
    }
    const double cur = it->second;
    const double floor = base * (1.0 - tolerance_pct / 100.0);
    const bool ok = cur >= floor;
    std::printf("%-8s %-28s baseline %10.3f  current %10.3f  (%+.1f%%)\n",
                ok ? "ok" : "REGRESSED", path.c_str() + 5, base, cur,
                base > 0.0 ? 100.0 * (cur / base - 1.0) : 0.0);
    if (!ok) ++violations;
  }
  for (const auto& [path, val] : current.bools) {
    if (path.rfind("parity.", 0) != 0) continue;
    std::printf("%-8s %-28s %s\n", val ? "ok" : "BROKEN", path.c_str() + 7,
                val ? "true" : "false");
    if (!val) ++violations;
  }
  if (violations != 0) {
    std::printf("bench-snapshot: %d gate violation(s) beyond %.0f%% "
                "tolerance\n",
                violations, tolerance_pct);
    return 1;
  }
  std::printf("bench-snapshot: all gates within %.0f%% tolerance\n",
              tolerance_pct);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bench-snapshot record [--quick] [--repeat N] [--attempts N]"
      " [--out DIR]\n"
      "  bench-snapshot compare BASELINE CURRENT [--tolerance PCT]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "record") {
    bool quick = false;
    int repeat = 3;
    int attempts = 3;
    std::string out_dir = ".";
    for (int a = 2; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--quick") {
        quick = true;
      } else if (arg == "--repeat" && a + 1 < argc) {
        repeat = std::atoi(argv[++a]);
      } else if (arg == "--attempts" && a + 1 < argc) {
        attempts = std::atoi(argv[++a]);
      } else if (arg == "--out" && a + 1 < argc) {
        out_dir = argv[++a];
      } else {
        return usage();
      }
    }
    if (repeat < 1 || attempts < 1) return usage();
    return cmd_record(quick, repeat, attempts, out_dir);
  }
  if (cmd == "compare") {
    std::vector<std::string> paths;
    double tolerance = 20.0;
    for (int a = 2; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--tolerance" && a + 1 < argc) {
        tolerance = std::atof(argv[++a]);
      } else {
        paths.push_back(arg);
      }
    }
    if (paths.size() != 2) return usage();
    return cmd_compare(paths[0], paths[1], tolerance);
  }
  return usage();
}
