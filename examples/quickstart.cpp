// Quickstart: run one application on the three main-memory organizations
// the paper evaluates and print a small comparison — the five-minute tour
// of the library.
//
//   ./quickstart [app]        (default: hypre)
//
// Everything needed is on the umbrella header.
#include <cstdio>
#include <string>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const std::string app = argc > 1 ? argv[1] : "hypre";

  std::printf("nvmsim quickstart: '%s' (%s)\n", app.c_str(),
              lookup_app(app).dwarf().c_str());
  std::printf("input problem: %s\n\n", lookup_app(app).input_problem().c_str());

  AppConfig cfg;
  cfg.threads = 36;  // the paper's working concurrency

  TextTable t({"memory", "runtime", "FoM", "read BW", "write BW"});
  for (Mode mode : kAllModes) {
    const AppResult r = run_app(app, mode, cfg);
    t.add_row({to_string(mode), format_time(r.runtime),
               TextTable::num(r.fom, r.fom < 100 ? 3 : 0) + " " + r.fom_unit,
               format_bandwidth(r.traces.avg_read_bw()),
               format_bandwidth(r.traces.avg_write_bw())});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Things to try next:\n"
      "  * sweep concurrency: AppConfig::threads (6..48)\n"
      "  * grow the problem:  AppConfig::size_scale (cached-NVM allows >1x"
      " DRAM)\n"
      "  * see ../bench for every table and figure of the paper\n");
  return 0;
}
