// Checkpoint-tier explorer (Sec. IV-E): run a time-stepped application
// with periodic snapshots and compare the overhead across the storage
// hierarchy — tmpfs, DAX ext4 on NVM, local RAID, Lustre.
//
//   ./checkpoint_tiers [interval_steps]      (default: 5)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const int interval = argc > 1 ? std::atoi(argv[1]) : 5;
  require(interval > 0, "interval must be positive");

  std::printf("Laghos with a snapshot every %d steps\n\n", interval);

  // App data lives in DRAM (AppDirect mode); NVM holds snapshot files.
  PlacementPlan in_dram;
  in_dram.set("mesh_state", Placement::kDram);
  in_dram.set("quadrature_data", Placement::kDram);

  auto run_tier = [&](const StorageTier* tier) {
    MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
    std::unique_ptr<SnapshotWriter> writer;
    AppConfig cfg;
    cfg.threads = 36;
    cfg.placement = &in_dram;
    if (tier != nullptr) {
      writer = std::make_unique<SnapshotWriter>(sys, *tier);
      cfg.step_hook = [&writer, interval](MemorySystem&, int step,
                                          BufferId state,
                                          std::uint64_t bytes) {
        if ((step + 1) % interval == 0) (void)writer->write(state, bytes, 36);
      };
    }
    AppContext ctx(sys, cfg);
    (void)lookup_app("laghos").run(ctx);
    return std::pair{sys.now(), writer ? writer->total_time() : 0.0};
  };

  const auto [base_time, unused] = run_tier(nullptr);
  (void)unused;
  TextTable t({"tier", "persistent", "runtime", "snapshot time", "overhead"});
  t.add_row({"(none)", "-", format_time(base_time), "-", "0%"});
  for (const auto& tier : StorageTier::all()) {
    const auto [total, snap] = run_tier(&tier);
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f%%", 100.0 * snap / total);
    t.add_row({tier.name, tier.persistent ? "yes" : "no", format_time(total),
               format_time(snap), pct});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "The DAX tier turns checkpoints nearly free (a few %% overhead)\n"
      "while remaining persistent — the paper's Sec. IV-E takeaway.\n");
  return 0;
}
