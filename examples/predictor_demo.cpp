// Prediction-model walkthrough (Sec. V-A): train the Eq. 1 IPC model from
// sampled-configuration runs and use it to pick a concurrency level for a
// target application without running the full sweep for it.
//
//   ./predictor_demo [eval_app]      (default: xsbench)
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const std::string eval_app = argc > 1 ? argv[1] : "xsbench";
  constexpr int kSampleHt = 36;
  const std::vector<int> levels = {12, 18, 24, 30, 42, 48};

  std::printf("Training the IPC model (sampled at ht=%d, cached-NVM)...\n",
              kSampleHt);

  // Collect per-phase features for the whole corpus at the sampled level,
  // and the observed IPCs at every target level.
  struct Data {
    std::map<int, std::vector<PhaseFeature>> by_ht;
    std::map<int, double> run_ipc;
  };
  std::map<std::string, Data> corpus;
  for (const auto& name : app_names()) {
    for (int ht : levels) {
      AppConfig cfg;
      cfg.threads = ht;
      const auto r = run_app(name, Mode::kCachedNvm, cfg);
      corpus[name].by_ht[ht] = aggregate_by_phase(r.samples);
      corpus[name].run_ipc[ht] = r.counters.ipc();
    }
    AppConfig cfg;
    cfg.threads = kSampleHt;
    const auto r = run_app(name, Mode::kCachedNvm, cfg);
    corpus[name].by_ht[kSampleHt] = aggregate_by_phase(r.samples);
    corpus[name].run_ipc[kSampleHt] = r.counters.ipc();
  }

  TextTable t({"ht", "predicted IPC", "observed IPC", "accuracy"});
  for (int ht : levels) {
    std::vector<TrainingRow> rows;
    for (const auto& [name, d] : corpus) {
      for (const auto& sf : d.by_ht.at(kSampleHt)) {
        for (const auto& tf : d.by_ht.at(ht)) {
          if (tf.phase != sf.phase) continue;
          rows.push_back({sf.events, sf.ipc, tf.ipc});
        }
      }
    }
    IpcPredictor model;
    model.fit(rows);

    const auto& d = corpus.at(eval_app);
    std::vector<double> insns;
    std::vector<double> ipcs;
    for (const auto& sf : d.by_ht.at(kSampleHt)) {
      insns.push_back(sf.instructions);
      ipcs.push_back(model.predict(sf.events, sf.ipc));
    }
    const double predicted = combine_phase_ipcs(insns, ipcs);
    const double observed = d.run_ipc.at(ht);
    t.add_row({std::to_string(ht), TextTable::num(predicted, 3),
               TextTable::num(observed, 3),
               TextTable::num(100.0 * prediction_accuracy(predicted, observed),
                              1) +
                   "%"});
  }
  std::printf("\nPrediction for '%s':\n%s\n", eval_app.c_str(),
              t.render().c_str());
  std::printf(
      "The model lets a developer pick a configuration from one sampled\n"
      "run per application instead of sweeping the whole space.\n");
  return 0;
}
