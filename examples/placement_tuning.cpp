// Placement tuning walkthrough: the full write-aware optimization loop of
// Sec. V-B, applied to any registered application.
//
//   ./placement_tuning [app] [dram_budget_percent]   (default: scalapack 35)
//
//   1. profile the app on uncached-NVM (data-centric per-buffer traffic),
//      capturing the phase trace of the same run;
//   2. plan: keep the most write-intensive structures in DRAM under the
//      budget, then let the trace-driven optimizer (delta-replay CELF)
//      search for a better plan on the recorded trace;
//   3. re-run with the plans and compare against DRAM-only / uncached-NVM,
//      plus the read-aware validation placement.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const std::string app = argc > 1 ? argv[1] : "scalapack";
  const int budget_pct = argc > 2 ? std::atoi(argv[2]) : 35;
  require(budget_pct > 0 && budget_pct <= 100, "budget must be in (0,100]");

  const SystemConfig sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const std::uint64_t budget =
      sys_cfg.dram.capacity * static_cast<unsigned>(budget_pct) / 100;
  AppConfig cfg;
  cfg.threads = 36;

  // -- 1. profile (and record the phase trace of the same run) ----------
  MemorySystem prof_sys(sys_cfg);
  TraceCapture capture(prof_sys);
  AppContext prof_ctx(prof_sys, cfg);
  (void)lookup_app(app).run(prof_ctx);
  const auto rec = capture.finish();
  const auto profiles = collect_data_profile(prof_sys);

  std::printf("Data-centric profile of '%s' (uncached-NVM):\n\n",
              app.c_str());
  TextTable prof_table({"buffer", "size", "read traffic", "write traffic",
                        "write intensity"});
  for (const auto& p : profiles) {
    prof_table.add_row({p.name, format_bytes(p.bytes),
                        format_bytes(p.read_bytes),
                        format_bytes(p.write_bytes),
                        TextTable::num(p.write_intensity(), 1)});
  }
  std::printf("%s\n", prof_table.render().c_str());

  // -- 2. plan ----------------------------------------------------------
  const auto wa = write_aware_plan(profiles, budget);
  const auto ra = read_aware_plan(profiles, budget, wa.in_dram);
  std::printf("Write-aware plan (budget %s = %d%% of DRAM):\n",
              format_bytes(budget).c_str(), budget_pct);
  if (wa.in_dram.empty()) std::printf("  (nothing promoted)\n");
  for (const auto& name : wa.in_dram)
    std::printf("  -> DRAM: %s\n", name.c_str());
  std::printf("  DRAM used: %s\n\n", format_bytes(wa.dram_bytes).c_str());

  // The trace-driven optimizer evaluates candidate plans exactly on the
  // recorded trace (delta-replay; microseconds per candidate) instead of
  // ranking by a traffic heuristic — it also finds read-bound promotions.
  const auto opt = optimize_placement(
      rec, budget, [&sys_cfg] { return MemorySystem(sys_cfg); });
  std::printf("Trace-optimized plan (%llu candidate evaluations):\n",
              static_cast<unsigned long long>(opt.stats.evals));
  if (opt.steps.empty()) std::printf("  (nothing promoted)\n");
  for (const auto& [name, runtime] : opt.steps) {
    std::printf("  -> DRAM: %s (replayed runtime %s)\n", name.c_str(),
                format_time(runtime).c_str());
  }
  std::printf("  DRAM used: %s\n\n", format_bytes(opt.dram_bytes).c_str());

  // -- 3. compare -------------------------------------------------------
  auto run_planned = [&](const PlacementPlan* plan) {
    AppConfig c = cfg;
    c.placement = plan;
    return run_app(app, Mode::kUncachedNvm, c);
  };
  const auto dram = run_app(app, Mode::kDramOnly, cfg);
  const auto uncached = run_planned(nullptr);
  const auto optimized = run_planned(&wa.plan);
  const auto validation = run_planned(&ra.plan);
  const auto trace_opt = run_planned(&opt.plan);

  TextTable t({"configuration", "runtime", "vs uncached"});
  auto row = [&](const char* name, const AppResult& r) {
    t.add_row({name, format_time(r.runtime),
               TextTable::num(uncached.runtime / r.runtime, 2) + "x"});
  };
  row("dram-only", dram);
  row("uncached-nvm", uncached);
  row("write-aware placement", optimized);
  row("read-aware (validation)", validation);
  row("trace-optimized placement", trace_opt);
  std::printf("%s\n", t.render().c_str());
  return 0;
}
