// What-if explorer: record one run of an application, then replay its
// phase trace against hypothetical next-generation NVM devices — the
// design-space question the paper's conclusion points at ("insights for
// designing and exploiting NVM-based main memory on future
// supercomputers"), answered in milliseconds per point via the trace.
//
//   ./whatif_explorer [app]        (default: ft)
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const std::string app = argc > 1 ? argv[1] : "ft";

  // 1. Record the phase trace once (uncached NVM, the paper's ht=36).
  AppConfig cfg;
  cfg.threads = 36;
  MemorySystem rec_sys(SystemConfig::testbed(Mode::kUncachedNvm));
  TraceCapture capture(rec_sys);
  AppContext ctx(rec_sys, cfg);
  (void)lookup_app(app).run(ctx);
  const PhaseRecording rec = capture.finish();
  const double dram_baseline = [&] {
    MemorySystem sys(SystemConfig::testbed(Mode::kDramOnly));
    return rec.replay(sys);
  }();

  std::printf("Recorded '%s': %zu phases, %s of traffic.\n", app.c_str(),
              rec.phases.size(), format_bytes(rec.total_bytes()).c_str());
  std::printf("DRAM-only baseline for the same trace: %s\n\n",
              format_time(dram_baseline).c_str());

  // 2. Hypothetical device generations.
  struct Device {
    const char* name;
    double write_mult;       ///< on the 13 GB/s write peak
    double read_mult;        ///< on the 39 GB/s read peak
    bool flat_write_scaling; ///< WPQ contention solved?
  };
  const Device generations[] = {
      {"Optane gen-1 (calibrated)", 1.0, 1.0, false},
      {"2x write bandwidth", 2.0, 1.0, false},
      {"2x write + no WPQ contention", 2.0, 1.0, true},
      {"2x read + 2x write", 2.0, 2.0, false},
      {"DRAM-class NVM (4x/3x, flat)", 3.0, 4.0, true},
  };

  // Each hypothetical device replays the same (const) recording on its
  // own MemorySystem — evaluate all generations concurrently.
  constexpr std::size_t kGenerations = std::size(generations);
  std::vector<double> times(kGenerations);
  parallel_for_index(kGenerations, [&](std::size_t i) {
    const Device& gen = generations[i];
    SystemConfig sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
    sys_cfg.nvm.write_bw_peak *= gen.write_mult;
    sys_cfg.nvm.read_bw_peak *= gen.read_mult;
    sys_cfg.nvm.combined_bw_peak *=
        std::max(gen.write_mult, gen.read_mult);
    if (gen.flat_write_scaling) {
      sys_cfg.nvm.write_scaling = ScalingCurve{{{1, 1.0}}};
    }
    MemorySystem sys(sys_cfg);
    times[i] = rec.replay(sys);
  });

  TextTable t({"device", "runtime", "slowdown vs DRAM"});
  for (std::size_t i = 0; i < kGenerations; ++i) {
    t.add_row({generations[i].name, format_time(times[i]),
               TextTable::num(times[i] / dram_baseline, 2) + "x"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading: for write-throttled workloads, fixing the concurrency\n"
      "collapse (the WPQ contention) matters more than raw write peaks —\n"
      "the same conclusion the ablation bench reaches from full reruns.\n");
  return 0;
}
