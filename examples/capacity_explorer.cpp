// Capacity explorer: how far beyond the DRAM capacity can a workload grow
// before cached-NVM stops paying off?  (The Fig. 3 question, as a tool.)
//
//   ./capacity_explorer [app] [max_scale]     (default: boxlib 6.0)
//
// Sweeps the input problem from half the DRAM capacity to `max_scale`
// times the baseline and reports footprint ratio, cached and uncached
// runtimes, and the cached speedup.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const std::string app = argc > 1 ? argv[1] : "boxlib";
  const double max_scale = argc > 2 ? std::atof(argv[2]) : 6.0;
  require(max_scale >= 1.0, "max_scale must be >= 1");

  const double dram_cap = static_cast<double>(
      SystemConfig::testbed(Mode::kDramOnly).dram.capacity);

  std::printf("Capacity exploration for '%s'\n\n", app.c_str());
  TextTable t({"scale", "footprint", "x DRAM", "uncached", "cached",
               "cached speedup", "fits DRAM?"});

  std::vector<double> scales = {0.5, 1.0};
  for (double s = 2.0; s <= max_scale; s *= 1.75) scales.push_back(s);
  scales.push_back(max_scale);

  for (double scale : scales) {
    AppConfig cfg;
    cfg.threads = 36;
    cfg.size_scale = scale;
    const auto un = run_app(app, Mode::kUncachedNvm, cfg);
    const auto ca = run_app(app, Mode::kCachedNvm, cfg);
    const double ratio = static_cast<double>(ca.footprint) / dram_cap;

    bool fits = true;
    try {
      (void)run_app(app, Mode::kDramOnly, cfg);
    } catch (const CapacityError&) {
      fits = false;
    }
    t.add_row({TextTable::num(scale, 2) + "x", format_bytes(ca.footprint),
               TextTable::num(ratio, 2), format_time(un.runtime),
               format_time(ca.runtime),
               TextTable::num(un.runtime / ca.runtime, 2) + "x",
               fits ? "yes" : "no"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading: the speedup collapses from the in-DRAM regime (where\n"
      "cached-NVM is nearly DRAM) to a steady ~2x once the footprint\n"
      "exceeds DRAM and the cache serves the temporal-reuse fraction.\n");
  return 0;
}
