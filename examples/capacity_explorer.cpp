// Capacity explorer: how far beyond the DRAM capacity can a workload grow
// before cached-NVM stops paying off?  (The Fig. 3 question, as a tool.)
//
//   ./capacity_explorer [app] [max_scale]     (default: boxlib 6.0)
//
// Sweeps the input problem from half the DRAM capacity to `max_scale`
// times the baseline and reports footprint ratio, cached and uncached
// runtimes, and the cached speedup.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nvms/nvms.hpp"

int main(int argc, char** argv) {
  using namespace nvms;
  const std::string app = argc > 1 ? argv[1] : "boxlib";
  const double max_scale = argc > 2 ? std::atof(argv[2]) : 6.0;
  require(max_scale >= 1.0, "max_scale must be >= 1");

  const double dram_cap = static_cast<double>(
      SystemConfig::testbed(Mode::kDramOnly).dram.capacity);

  std::printf("Capacity exploration for '%s'\n\n", app.c_str());

  std::vector<double> scales = {0.5, 1.0};
  for (double s = 2.0; s <= max_scale; s *= 1.75) scales.push_back(s);
  scales.push_back(max_scale);

  // All scale points are independent; each task runs its three
  // configurations (uncached, cached, DRAM fit-check) on private
  // MemorySystems, so the whole exploration fans out.
  struct Point {
    AppResult uncached, cached;
    bool fits = true;
  };
  init_registry();
  std::vector<Point> points(scales.size());
  parallel_for_index(points.size(), [&](std::size_t i) {
    AppConfig cfg;
    cfg.threads = 36;
    cfg.size_scale = scales[i];
    points[i].uncached = run_app(app, Mode::kUncachedNvm, cfg);
    points[i].cached = run_app(app, Mode::kCachedNvm, cfg);
    try {
      (void)run_app(app, Mode::kDramOnly, cfg);
    } catch (const CapacityError&) {
      points[i].fits = false;
    }
  });

  TextTable t({"scale", "footprint", "x DRAM", "uncached", "cached",
               "cached speedup", "fits DRAM?"});
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const Point& p = points[i];
    const double ratio = static_cast<double>(p.cached.footprint) / dram_cap;
    t.add_row({TextTable::num(scales[i], 2) + "x",
               format_bytes(p.cached.footprint), TextTable::num(ratio, 2),
               format_time(p.uncached.runtime), format_time(p.cached.runtime),
               TextTable::num(p.uncached.runtime / p.cached.runtime, 2) + "x",
               p.fits ? "yes" : "no"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading: the speedup collapses from the in-DRAM regime (where\n"
      "cached-NVM is nearly DRAM) to a steady ~2x once the footprint\n"
      "exceeds DRAM and the cache serves the temporal-reuse fraction.\n");
  return 0;
}
