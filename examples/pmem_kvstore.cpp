// A small crash-consistent key-value store on the persistent-memory
// substrate — the AppDirect programming model end to end: fixed-slot
// table in a PmemRegion, redo-logged updates, and a demonstrated
// power-failure + recovery cycle.
//
//   ./pmem_kvstore
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "nvms/nvms.hpp"

namespace {

using namespace nvms;

/// Fixed-size slots: [8B key][56B value] per 64B line; key 0 = empty.
class PmemKvStore {
 public:
  static constexpr std::size_t kSlot = 64;
  static constexpr std::size_t kValueLen = kSlot - sizeof(std::uint64_t);

  PmemKvStore(PmemRegion& data, PmemRegion& log) : data_(data), log_(log) {}

  void put(std::uint64_t key, const std::string& value) {
    require(key != 0, "kv: key 0 is reserved");
    require(value.size() <= kValueLen, "kv: value too long");
    const std::size_t slot = find_slot(key);
    std::byte buf[kSlot] = {};
    std::memcpy(buf, &key, sizeof key);
    std::memcpy(buf + sizeof key, value.data(), value.size());
    RedoLogTx tx(data_, log_);
    tx.begin();
    tx.write(slot * kSlot, {buf, kSlot});
    tx.commit();
  }

  std::optional<std::string> get(std::uint64_t key) const {
    const std::size_t slots = data_.size() / kSlot;
    for (std::size_t s = 0; s < slots; ++s) {
      std::uint64_t k = 0;
      std::memcpy(&k, data_.data().data() + s * kSlot, sizeof k);
      if (k == key) {
        const char* v = reinterpret_cast<const char*>(data_.data().data() +
                                                      s * kSlot + sizeof k);
        return std::string(v, strnlen(v, kValueLen));
      }
    }
    return std::nullopt;
  }

  /// Run after a power failure.
  static void recover(PmemRegion& data, PmemRegion& log) {
    (void)RedoLogTx::recover(data, log);
  }

 private:
  std::size_t find_slot(std::uint64_t key) const {
    const std::size_t slots = data_.size() / kSlot;
    std::size_t first_free = slots;
    for (std::size_t s = 0; s < slots; ++s) {
      std::uint64_t k = 0;
      std::memcpy(&k, data_.data().data() + s * kSlot, sizeof k);
      if (k == key) return s;
      if (k == 0 && first_free == slots) first_free = s;
    }
    require(first_free < slots, "kv: store full");
    return first_free;
  }

  PmemRegion& data_;
  PmemRegion& log_;
};

}  // namespace

int main() {
  using namespace nvms;
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  PmemRegion data(sys, "kv-data", 64 * KiB);
  PmemRegion log(sys, "kv-log", 64 * KiB);
  PmemKvStore kv(data, log);

  std::printf("1. Committing three keys...\n");
  kv.put(1, "persistent");
  kv.put(2, "memory");
  kv.put(3, "store");

  std::printf("2. Power failure + recovery: committed data survives.\n");
  data.crash();
  log.crash();
  PmemKvStore::recover(data, log);
  for (std::uint64_t k : {1, 2, 3}) {
    std::printf("   key %llu -> '%s'\n", static_cast<unsigned long long>(k),
                kv.get(k).value_or("<LOST!>").c_str());
  }

  std::printf(
      "3. Crash in the middle of an update: the old value must win.\n");
  {
    RedoLogTx tx(data, log);
    std::byte buf[64] = {};
    const std::uint64_t key = 2;
    std::memcpy(buf, &key, sizeof key);
    std::memcpy(buf + 8, "TORN-UPDATE", 11);
    tx.begin();
    // locate key 2's slot the cheap way: second insert -> slot 1
    tx.write(1 * PmemKvStore::kSlot, {buf, 64});
    // ... power fails before commit ...
    data.crash();
    log.crash();
    PmemKvStore::recover(data, log);
  }
  std::printf("   key 2 -> '%s' (expected 'memory')\n",
              kv.get(2).value_or("<LOST!>").c_str());

  std::printf("\nSimulated NVM time spent: %s; flush traffic: %s\n",
              format_time(sys.now()).c_str(),
              format_bytes(sys.traffic(data.buffer()).write_bytes +
                           sys.traffic(log.buffer()).write_bytes)
                  .c_str());
  return 0;
}
