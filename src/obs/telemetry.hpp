// Telemetry: the per-run observability bundle — one Tracer (spans) plus
// one MetricsRegistry (instruments + epoch series).
//
// Ownership model: the harness (or a test/bench) owns the Telemetry and
// attaches it to a MemorySystem with set_telemetry(); the simulator only
// ever borrows the pointer.  Like the MemorySystem that feeds it, a
// Telemetry instance is single-threaded — concurrent experiments each own
// a private instance and the exporters merge them in grid order.
//
// Capture::kNull builds the null sink: hooks still run (so their cost is
// measurable) but every record is dropped at emission.  Detaching
// telemetry entirely (set_telemetry(nullptr)) is the "compiled out"
// configuration where each hook is a single branch.
#pragma once

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace nvms {

class Telemetry {
 public:
  enum class Capture { kFull, kNull };

  explicit Telemetry(Capture c = Capture::kFull)
      : tracer_(c == Capture::kFull), metrics_(c == Capture::kFull) {}

  bool null() const { return !tracer_.capture(); }

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

}  // namespace nvms
