#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"

namespace nvms {

int QuantileSketch::bucket_of(double value) {
  int b = kBucketBias;
  if (value > 0.0) {
    b += static_cast<int>(std::floor(std::log2(value)));
  } else {
    b = 0;  // zero/negative observations collapse into the lowest bucket
  }
  return std::clamp(b, 0, kBuckets - 1);
}

double QuantileSketch::bucket_lo(int b) {
  if (b <= 0) return 0.0;
  return std::exp2(static_cast<double>(b - kBucketBias));
}

double QuantileSketch::bucket_hi(int b) {
  return std::exp2(static_cast<double>(b - kBucketBias + 1));
}

void QuantileSketch::add(double value) {
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

QuantileSketch QuantileSketch::from_metric(const Metric& m) {
  QuantileSketch s;
  if (m.buckets.size() == static_cast<std::size_t>(kBuckets)) {
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = m.buckets[static_cast<std::size_t>(b)];
      s.buckets_[static_cast<std::size_t>(b)] = n;
      s.count_ += n;
    }
  }
  // Histogram metrics track sum/min/max alongside the buckets; carry them
  // so interpolation clamps to the truly observed range.
  s.sum_ = m.sum;
  if (s.count_ > 0) {
    s.min_ = m.min;
    s.max_ = m.max;
  }
  return s;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, nearest-rank with interpolation
  // inside the landing bucket).
  const double rank = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double n =
        static_cast<double>(buckets_[static_cast<std::size_t>(b)]);
    if (n == 0.0) continue;
    if (cum + n >= rank) {
      const double frac = n > 0.0 ? (rank - cum) / n : 0.0;
      const double lo = bucket_lo(b);
      const double hi = bucket_hi(b);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, min(), max());
    }
    cum += n;
  }
  return max();
}

SlidingWindowAggregator::SlidingWindowAggregator(double window_s,
                                                 std::size_t max_windows)
    : window_s_(window_s), max_windows_(max_windows) {
  require(window_s > 0.0, "sliding window: window_s must be positive");
}

void SlidingWindowAggregator::observe(std::string_view name,
                                      std::string_view labels, double t,
                                      double value) {
  std::string key;
  key.reserve(name.size() + labels.size() + 1);
  key.append(name);
  key.push_back('|');
  key.append(labels);
  auto it = index_.find(key);
  if (it == index_.end()) {
    it = index_.emplace(std::move(key), streams_.size()).first;
    streams_.push_back({std::string(name), std::string(labels), {}});
  }
  Stream& st = streams_[it->second];

  const double w0 = std::floor(t / window_s_) * window_s_;
  if (st.windows.empty() || w0 > st.windows.back().t0) {
    st.windows.push_back({w0, w0 + window_s_, {}});
    if (max_windows_ > 0 && st.windows.size() > max_windows_) {
      st.windows.pop_front();
    }
  }
  // In-order per key by contract; a late sample folds into the newest
  // window so evicted history is never resurrected.
  st.windows.back().sketch.add(value);
}

void SlidingWindowAggregator::observe_series(const Metric& m) {
  for (const MetricPoint& p : m.series) {
    observe(m.name, m.labels, p.t, p.value);
  }
}

}  // namespace nvms
