#include "obs/export.hpp"

#include <cstdio>
#include <unordered_map>

#include "obs/sketch.hpp"
#include "simcore/json.hpp"

namespace nvms {
namespace {

/// Deterministic compact double rendering (%.9g round-trips the metric
/// magnitudes we emit and keeps traces small).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  return '"' + Json::escape(s) + '"';
}

void append_span_args(std::string& out, const SpanRecord& s,
                      const ExportOptions& opt) {
  bool first = true;
  for (const auto& [k, v] : s.args) {
    out += first ? "" : ",";
    out += quoted(k);
    out += ':';
    out += num(v);
    first = false;
  }
  if (opt.include_host_time) {
    out += first ? "" : ",";
    out += "\"host_s\":";
    out += num(s.host_s);
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<TelemetryPart>& parts,
                              const ExportOptions& opt) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  auto emit = [&](const std::string& ev) {
    if (!first_event) out += ',';
    out += '\n';
    out += ev;
    first_event = false;
  };

  int pid = 0;
  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
         quoted(part.name) + "}}");
    for (const auto& s : part.telemetry->tracer().spans()) {
      if (!s.closed) continue;  // abandoned scope (exception unwound)
      std::string ev = "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                       ",\"tid\":0,\"name\":" + quoted(s.name) +
                       ",\"cat\":" + quoted(s.category) +
                       ",\"ts\":" + num(s.t0 * 1e6) +
                       ",\"dur\":" + num((s.t1 - s.t0) * 1e6);
      if (!s.args.empty() || opt.include_host_time) {
        ev += ",\"args\":{";
        append_span_args(ev, s, opt);
        ev += '}';
      }
      ev += '}';
      emit(ev);
    }
    for (const auto& m : part.telemetry->metrics().metrics()) {
      if (m.series.empty()) continue;
      std::string track = m.name;
      if (!m.labels.empty()) track += '[' + m.labels + ']';
      const std::string head = "{\"ph\":\"C\",\"pid\":" +
                               std::to_string(pid) +
                               ",\"tid\":0,\"name\":" + quoted(track) +
                               ",\"ts\":";
      for (const auto& p : m.series) {
        emit(head + num(p.t * 1e6) + ",\"args\":{\"value\":" + num(p.value) +
             "}}");
      }
    }
    ++pid;
  }
  out += "\n]}\n";
  return out;
}

std::string telemetry_jsonl(const std::vector<TelemetryPart>& parts,
                            const ExportOptions& opt) {
  std::string out;
  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    const auto& spans = part.telemetry->tracer().spans();
    const auto& metrics = part.telemetry->metrics().metrics();
    std::size_t points = 0;
    for (const auto& m : metrics) points += m.series.size();
    out += "{\"type\":\"part\",\"name\":" + quoted(part.name) +
           ",\"spans\":" + std::to_string(spans.size()) +
           ",\"points\":" + std::to_string(points) + "}\n";
    for (const auto& s : spans) {
      if (!s.closed) continue;
      std::string line = "{\"type\":\"span\",\"part\":" + quoted(part.name) +
                         ",\"name\":" + quoted(s.name) +
                         ",\"cat\":" + quoted(s.category) +
                         ",\"t0_s\":" + num(s.t0) + ",\"t1_s\":" + num(s.t1) +
                         ",\"depth\":" + std::to_string(s.depth) +
                         ",\"parent\":" +
                         (s.parent == Tracer::kNone
                              ? std::string("-1")
                              : std::to_string(s.parent));
      if (!s.args.empty() || opt.include_host_time) {
        line += ",\"args\":{";
        append_span_args(line, s, opt);
        line += '}';
      }
      line += "}\n";
      out += line;
    }
    for (const auto& m : metrics) {
      for (const auto& p : m.series) {
        out += "{\"type\":\"point\",\"part\":" + quoted(part.name) +
               ",\"metric\":" + quoted(m.name) +
               ",\"labels\":" + quoted(m.labels) + ",\"t_s\":" + num(p.t) +
               ",\"value\":" + num(p.value) + "}\n";
      }
    }
  }
  return out;
}

std::string metrics_csv(const std::vector<TelemetryPart>& parts) {
  std::string out = "part,metric,labels,t_s,value\n";
  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    for (const auto& m : part.telemetry->metrics().metrics()) {
      // Multi-label metrics use ';' in the CSV cell so columns stay intact.
      std::string labels = m.labels;
      for (auto& c : labels) {
        if (c == ',') c = ';';
      }
      const std::string prefix = part.name + ',' + m.name + ',' + labels + ',';
      if (m.series.empty()) {
        out += prefix + ',' + num(m.value) + '\n';
        continue;
      }
      for (const auto& p : m.series) {
        out += prefix + num(p.t) + ',' + num(p.value) + '\n';
      }
    }
  }
  return out;
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; everything else maps
/// to '_' (dots in our dotted names, dashes, ...).
std::string prom_name(const std::string& name) {
  std::string out = "nvms_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Label *value* escaping per the exposition format: backslash, quote and
/// newline.
std::string prom_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// part="x" plus the metric's canonical "k=v,k=v" labels re-quoted.
std::string prom_labels(const std::string& part, const std::string& labels,
                        const std::string& extra = {}) {
  std::string out = "part=\"" + prom_label_value(part) + '"';
  std::size_t pos = 0;
  while (pos < labels.size()) {
    std::size_t comma = labels.find(',', pos);
    if (comma == std::string::npos) comma = labels.size();
    const std::string kv = labels.substr(pos, comma - pos);
    const std::size_t eq = kv.find('=');
    if (eq != std::string::npos) {
      std::string key = kv.substr(0, eq);
      for (auto& c : key) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) c = '_';
      }
      out += ',' + key + "=\"" + prom_label_value(kv.substr(eq + 1)) + '"';
    }
    pos = comma + 1;
  }
  if (!extra.empty()) out += ',' + extra;
  return out;
}

}  // namespace

std::string prometheus_text(const std::vector<TelemetryPart>& parts) {
  // Families group all samples of one metric name under a single # TYPE
  // header, as the exposition format requires; first-appearance order
  // keeps merged output deterministic in the part order.
  struct Family {
    std::string name;
    const char* type;
    std::vector<std::string> lines;
  };
  std::vector<Family> families;
  std::unordered_map<std::string, std::size_t> index;
  auto family = [&](const std::string& name, const char* type) -> Family& {
    auto it = index.find(name);
    if (it == index.end()) {
      it = index.emplace(name, families.size()).first;
      families.push_back({name, type, {}});
    }
    return families[it->second];
  };

  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    for (const auto& m : part.telemetry->metrics().metrics()) {
      switch (m.kind) {
        case MetricKind::kCounter: {
          Family& f = family(prom_name(m.name) + "_total", "counter");
          f.lines.push_back(f.name + '{' +
                            prom_labels(part.name, m.labels) + "} " +
                            num(m.value));
          break;
        }
        case MetricKind::kGauge: {
          Family& f = family(prom_name(m.name), "gauge");
          f.lines.push_back(f.name + '{' +
                            prom_labels(part.name, m.labels) + "} " +
                            num(m.value));
          break;
        }
        case MetricKind::kHistogram: {
          // Deterministic quantiles straight from the log2 buckets.
          const QuantileSketch sk = QuantileSketch::from_metric(m);
          const std::string base = prom_name(m.name);
          Family& f = family(base, "summary");
          const struct {
            const char* q;
            double v;
          } qs[] = {{"0.5", sk.p50()}, {"0.95", sk.p95()},
                    {"0.99", sk.p99()}};
          for (const auto& q : qs) {
            f.lines.push_back(
                base + '{' +
                prom_labels(part.name, m.labels,
                            std::string("quantile=\"") + q.q + '"') +
                "} " + num(q.v));
          }
          f.lines.push_back(base + "_sum{" +
                            prom_labels(part.name, m.labels) + "} " +
                            num(sk.sum()));
          f.lines.push_back(base + "_count{" +
                            prom_labels(part.name, m.labels) + "} " +
                            std::to_string(sk.count()));
          break;
        }
      }
    }
  }

  std::string out;
  for (const Family& f : families) {
    out += "# TYPE " + f.name + ' ' + f.type + '\n';
    for (const std::string& line : f.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

std::string chrome_trace_json(const Telemetry& t, const std::string& name,
                              const ExportOptions& opt) {
  return chrome_trace_json({{name, &t}}, opt);
}

std::string telemetry_jsonl(const Telemetry& t, const std::string& name,
                            const ExportOptions& opt) {
  return telemetry_jsonl({{name, &t}}, opt);
}

std::string metrics_csv(const Telemetry& t, const std::string& name) {
  return metrics_csv({{name, &t}});
}

std::string prometheus_text(const Telemetry& t, const std::string& name) {
  return prometheus_text({{name, &t}});
}

}  // namespace nvms
