#include "obs/export.hpp"

#include <cstdio>

#include "simcore/json.hpp"

namespace nvms {
namespace {

/// Deterministic compact double rendering (%.9g round-trips the metric
/// magnitudes we emit and keeps traces small).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  return '"' + Json::escape(s) + '"';
}

void append_span_args(std::string& out, const SpanRecord& s,
                      const ExportOptions& opt) {
  bool first = true;
  for (const auto& [k, v] : s.args) {
    out += first ? "" : ",";
    out += quoted(k);
    out += ':';
    out += num(v);
    first = false;
  }
  if (opt.include_host_time) {
    out += first ? "" : ",";
    out += "\"host_s\":";
    out += num(s.host_s);
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<TelemetryPart>& parts,
                              const ExportOptions& opt) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  auto emit = [&](const std::string& ev) {
    if (!first_event) out += ',';
    out += '\n';
    out += ev;
    first_event = false;
  };

  int pid = 0;
  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
         quoted(part.name) + "}}");
    for (const auto& s : part.telemetry->tracer().spans()) {
      if (!s.closed) continue;  // abandoned scope (exception unwound)
      std::string ev = "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                       ",\"tid\":0,\"name\":" + quoted(s.name) +
                       ",\"cat\":" + quoted(s.category) +
                       ",\"ts\":" + num(s.t0 * 1e6) +
                       ",\"dur\":" + num((s.t1 - s.t0) * 1e6);
      if (!s.args.empty() || opt.include_host_time) {
        ev += ",\"args\":{";
        append_span_args(ev, s, opt);
        ev += '}';
      }
      ev += '}';
      emit(ev);
    }
    for (const auto& m : part.telemetry->metrics().metrics()) {
      if (m.series.empty()) continue;
      std::string track = m.name;
      if (!m.labels.empty()) track += '[' + m.labels + ']';
      const std::string head = "{\"ph\":\"C\",\"pid\":" +
                               std::to_string(pid) +
                               ",\"tid\":0,\"name\":" + quoted(track) +
                               ",\"ts\":";
      for (const auto& p : m.series) {
        emit(head + num(p.t * 1e6) + ",\"args\":{\"value\":" + num(p.value) +
             "}}");
      }
    }
    ++pid;
  }
  out += "\n]}\n";
  return out;
}

std::string telemetry_jsonl(const std::vector<TelemetryPart>& parts,
                            const ExportOptions& opt) {
  std::string out;
  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    const auto& spans = part.telemetry->tracer().spans();
    const auto& metrics = part.telemetry->metrics().metrics();
    std::size_t points = 0;
    for (const auto& m : metrics) points += m.series.size();
    out += "{\"type\":\"part\",\"name\":" + quoted(part.name) +
           ",\"spans\":" + std::to_string(spans.size()) +
           ",\"points\":" + std::to_string(points) + "}\n";
    for (const auto& s : spans) {
      if (!s.closed) continue;
      std::string line = "{\"type\":\"span\",\"part\":" + quoted(part.name) +
                         ",\"name\":" + quoted(s.name) +
                         ",\"cat\":" + quoted(s.category) +
                         ",\"t0_s\":" + num(s.t0) + ",\"t1_s\":" + num(s.t1) +
                         ",\"depth\":" + std::to_string(s.depth) +
                         ",\"parent\":" +
                         (s.parent == Tracer::kNone
                              ? std::string("-1")
                              : std::to_string(s.parent));
      if (!s.args.empty() || opt.include_host_time) {
        line += ",\"args\":{";
        append_span_args(line, s, opt);
        line += '}';
      }
      line += "}\n";
      out += line;
    }
    for (const auto& m : metrics) {
      for (const auto& p : m.series) {
        out += "{\"type\":\"point\",\"part\":" + quoted(part.name) +
               ",\"metric\":" + quoted(m.name) +
               ",\"labels\":" + quoted(m.labels) + ",\"t_s\":" + num(p.t) +
               ",\"value\":" + num(p.value) + "}\n";
      }
    }
  }
  return out;
}

std::string metrics_csv(const std::vector<TelemetryPart>& parts) {
  std::string out = "part,metric,labels,t_s,value\n";
  for (const auto& part : parts) {
    if (part.telemetry == nullptr) continue;
    for (const auto& m : part.telemetry->metrics().metrics()) {
      // Multi-label metrics use ';' in the CSV cell so columns stay intact.
      std::string labels = m.labels;
      for (auto& c : labels) {
        if (c == ',') c = ';';
      }
      const std::string prefix = part.name + ',' + m.name + ',' + labels + ',';
      if (m.series.empty()) {
        out += prefix + ',' + num(m.value) + '\n';
        continue;
      }
      for (const auto& p : m.series) {
        out += prefix + num(p.t) + ',' + num(p.value) + '\n';
      }
    }
  }
  return out;
}

std::string chrome_trace_json(const Telemetry& t, const std::string& name,
                              const ExportOptions& opt) {
  return chrome_trace_json({{name, &t}}, opt);
}

std::string telemetry_jsonl(const Telemetry& t, const std::string& name,
                            const ExportOptions& opt) {
  return telemetry_jsonl({{name, &t}}, opt);
}

std::string metrics_csv(const Telemetry& t, const std::string& name) {
  return metrics_csv({{name, &t}});
}

}  // namespace nvms
