// Telemetry sinks: serialize one or many Telemetry instances to
//   * Chrome trace_event JSON — loadable in chrome://tracing / Perfetto
//     (spans become "X" complete events, epoch metric series become "C"
//     counter tracks),
//   * JSONL — one JSON object per span / metric point, for ad-hoc tooling,
//   * CSV — the epoch metric streams as flat rows.
//
// Merging: exporters take a list of named parts and emit them in the given
// order; the harness passes parts in grid order, so merged output is
// byte-identical for any worker count.  All timestamps come from the
// virtual simulation clock; host wall-clock span durations (which are not
// deterministic) are only emitted when ExportOptions::include_host_time is
// set.
#pragma once

#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace nvms {

/// One run's telemetry with the label it is merged under (the experiment
/// grid label, the app name, ...).
struct TelemetryPart {
  std::string name;
  const Telemetry* telemetry = nullptr;  ///< null parts are skipped
};

struct ExportOptions {
  /// Emit host wall-clock span durations (non-deterministic) as span args.
  bool include_host_time = false;
};

/// Chrome trace_event JSON.  Each part becomes one pid with a
/// process_name metadata record; spans keep their hierarchy through
/// ts/dur nesting on tid 0.
std::string chrome_trace_json(const std::vector<TelemetryPart>& parts,
                              const ExportOptions& opt = {});

/// One JSON object per line: {"type":"span",...} and {"type":"point",...}.
std::string telemetry_jsonl(const std::vector<TelemetryPart>& parts,
                            const ExportOptions& opt = {});

/// Epoch metric streams as CSV: part,metric,labels,t_s,value.  Scalar
/// instruments (counters/gauges without a series, histograms) emit one
/// summary row with an empty t_s.
std::string metrics_csv(const std::vector<TelemetryPart>& parts);

/// Prometheus text exposition (version 0.0.4) of the metric registries:
/// counters become `<name>_total`, gauges export their last value, and
/// histograms surface as summaries with deterministic p50/p95/p99
/// quantiles computed from the log2-bucket QuantileSketch.  Metric names
/// are sanitized to the Prometheus charset with an `nvms_` prefix; each
/// part's label set gains `part="<name>"`.  Families are grouped (one
/// `# TYPE` line each) in first-appearance order, so merged exposition is
/// byte-identical for any worker count — ready for the future `nvmsimd`
/// scrape endpoint.
std::string prometheus_text(const std::vector<TelemetryPart>& parts);

/// Single-run conveniences.
std::string chrome_trace_json(const Telemetry& t, const std::string& name,
                              const ExportOptions& opt = {});
std::string telemetry_jsonl(const Telemetry& t, const std::string& name,
                            const ExportOptions& opt = {});
std::string metrics_csv(const Telemetry& t, const std::string& name);
std::string prometheus_text(const Telemetry& t, const std::string& name);

}  // namespace nvms
