// MetricsRegistry: named counters, gauges and histograms with label
// support, plus per-metric epoch time series.
//
// Metrics are identified by (kind, name, labels); registration dedupes, so
// components can re-register idempotently and share an instrument.  Labels
// are key=value pairs canonicalized into a stable string
// ("device=nvm0,mode=memory") — the registry never reorders metrics, so
// iteration (and every export) follows registration order and is
// deterministic for a deterministic simulation.
//
// The registry implements EpochProbe: simulator components push one
// (metric, device, t, value) sample per resolve epoch, which lands in a
// gauge labeled device=<device> with a recorded time series.
//
// A registry constructed with capture == false is the null sink: every
// mutator is a branch-and-return (see bench_ablation_logging).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/epoch_probe.hpp"

namespace nvms {

enum class MetricKind { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind k);

/// One epoch sample of a gauge.
struct MetricPoint {
  double t = 0.0;
  double value = 0.0;
};

struct Metric {
  MetricKind kind = MetricKind::kGauge;
  std::string name;
  std::string labels;  ///< canonical "k=v,k=v" (possibly empty)

  /// Counter: running total.  Gauge: last set/sampled value.
  double value = 0.0;
  std::uint64_t count = 0;  ///< updates observed
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Histogram buckets: value v lands in bucket floor(log2(max(v,eps)))
  /// clamped to [-kBucketBias, kBuckets - kBucketBias - 1].
  static constexpr int kBuckets = 64;
  static constexpr int kBucketBias = 32;
  std::vector<std::uint64_t> buckets;  ///< sized kBuckets for histograms
  /// Epoch time series (gauges sampled via sample()/epoch_sample()).
  std::vector<MetricPoint> series;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct MetricId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

class MetricsRegistry final : public EpochProbe {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  explicit MetricsRegistry(bool capture = true) : capture_(capture) {}

  bool capture() const { return capture_; }

  /// Register (or find) an instrument.  Ids stay valid for the registry's
  /// lifetime.  With capture off, returns an invalid id.
  MetricId counter(std::string name, const Labels& labels = {});
  MetricId gauge(std::string name, const Labels& labels = {});
  MetricId histogram(std::string name, const Labels& labels = {});

  void add(MetricId id, double delta);      ///< counter increment
  void set(MetricId id, double value);      ///< gauge update (no series)
  void observe(MetricId id, double value);  ///< histogram observation
  /// Gauge update that also appends a (t, value) point to the series.
  void sample(MetricId id, double t, double value);

  /// EpochProbe: gauge named `name` labeled device=<device>, with series.
  void epoch_sample(std::string_view name, std::string_view device, double t,
                    double value) override;

  /// All metrics in registration order.
  const std::vector<Metric>& metrics() const { return metrics_; }

  /// Find a registered metric; nullptr when absent.
  const Metric* find(std::string_view name,
                     std::string_view labels = {}) const;

  /// Canonical label string: "k=v,k=v" in the given order.
  static std::string canon_labels(const Labels& labels);

 private:
  MetricId intern(MetricKind kind, std::string name, std::string labels);

  bool capture_;
  std::vector<Metric> metrics_;
  /// "kind|name|labels" -> index.
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace nvms
