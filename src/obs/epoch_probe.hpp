// EpochProbe: the hook simulator components call at each resolve step to
// emit time-series metric samples.
//
// The paper's methodology is built on PCM counter streams sampled over
// time (Sec. III); our simulator's equivalent of one PCM sampling epoch is
// one resolved phase.  Components that own an internal signal — the WPQ
// model (utilization), the resolver (applied read-throttle multiplier),
// the DRAM cache (occupancy, hit/conflict rates), the memory system
// (per-channel bandwidth) — push one sample per epoch through this
// interface instead of discarding the value after the fixed point.
//
// The probe is always optional: every call site guards with a null check,
// so a simulation without telemetry pays one predictable branch per hook
// (see bench_ablation_logging for the measured cost).
#pragma once

#include <string_view>

namespace nvms {

class EpochProbe {
 public:
  virtual ~EpochProbe() = default;

  /// Record that metric `name` on the sub-device `device` (e.g. "nvm0",
  /// "dram-cache") had `value` at virtual time `t`.
  virtual void epoch_sample(std::string_view name, std::string_view device,
                            double t, double value) = 0;
};

}  // namespace nvms
