#include "obs/tracer.hpp"

namespace nvms {

std::size_t Tracer::begin(std::string name, std::string category, double vt) {
  if (!capture_) return kNone;
  SpanRecord s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.t0 = vt;
  s.t1 = vt;
  s.depth = static_cast<int>(open_.size());
  s.parent = open_.empty() ? kNone : open_.back();
  const std::size_t id = spans_.size();
  spans_.push_back(std::move(s));
  open_.push_back(id);
  open_started_.push_back(HostClock::now());
  return id;
}

void Tracer::end(std::size_t id, double vt) {
  if (!capture_ || id == kNone) return;
  // Pop until `id` is closed; abandoned deeper scopes close at the same
  // virtual instant so the hierarchy of later spans stays consistent.
  while (!open_.empty()) {
    const std::size_t top = open_.back();
    SpanRecord& s = spans_[top];
    s.t1 = vt;
    s.host_s =
        std::chrono::duration<double>(HostClock::now() - open_started_.back())
            .count();
    s.closed = true;
    open_.pop_back();
    open_started_.pop_back();
    if (top == id) return;
  }
}

void Tracer::annotate(std::size_t id, std::string key, double value) {
  if (!capture_ || id == kNone || id >= spans_.size()) return;
  spans_[id].args.emplace_back(std::move(key), value);
}

std::size_t Tracer::count(std::string_view category) const {
  std::size_t n = 0;
  for (const auto& s : spans_) {
    if (s.closed && s.category == category) ++n;
  }
  return n;
}

}  // namespace nvms
