#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace nvms {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string MetricsRegistry::canon_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

MetricId MetricsRegistry::intern(MetricKind kind, std::string name,
                                 std::string labels) {
  if (!capture_) return {};
  std::string key = std::string(to_string(kind)) + '|' + name + '|' + labels;
  const auto it = index_.find(key);
  if (it != index_.end()) return {it->second};
  Metric m;
  m.kind = kind;
  m.name = std::move(name);
  m.labels = std::move(labels);
  if (kind == MetricKind::kHistogram)
    m.buckets.assign(Metric::kBuckets, 0);
  const std::size_t idx = metrics_.size();
  metrics_.push_back(std::move(m));
  index_.emplace(std::move(key), idx);
  return {idx};
}

MetricId MetricsRegistry::counter(std::string name, const Labels& labels) {
  return intern(MetricKind::kCounter, std::move(name), canon_labels(labels));
}

MetricId MetricsRegistry::gauge(std::string name, const Labels& labels) {
  return intern(MetricKind::kGauge, std::move(name), canon_labels(labels));
}

MetricId MetricsRegistry::histogram(std::string name, const Labels& labels) {
  return intern(MetricKind::kHistogram, std::move(name),
                canon_labels(labels));
}

namespace {

void touch_stats(Metric& m, double value) {
  ++m.count;
  m.sum += value;
  m.min = std::min(m.min, value);
  m.max = std::max(m.max, value);
}

}  // namespace

void MetricsRegistry::add(MetricId id, double delta) {
  if (!capture_ || !id.valid()) return;
  Metric& m = metrics_[id.index];
  m.value += delta;
  touch_stats(m, delta);
}

void MetricsRegistry::set(MetricId id, double value) {
  if (!capture_ || !id.valid()) return;
  Metric& m = metrics_[id.index];
  m.value = value;
  touch_stats(m, value);
}

void MetricsRegistry::observe(MetricId id, double value) {
  if (!capture_ || !id.valid()) return;
  Metric& m = metrics_[id.index];
  m.value = value;
  touch_stats(m, value);
  if (!m.buckets.empty()) {
    int b = Metric::kBucketBias;
    if (value > 0.0) {
      b += static_cast<int>(std::floor(std::log2(value)));
    } else {
      b = 0;  // zero/negative observations collapse into the lowest bucket
    }
    b = std::clamp(b, 0, Metric::kBuckets - 1);
    ++m.buckets[static_cast<std::size_t>(b)];
  }
}

void MetricsRegistry::sample(MetricId id, double t, double value) {
  if (!capture_ || !id.valid()) return;
  Metric& m = metrics_[id.index];
  m.value = value;
  touch_stats(m, value);
  m.series.push_back({t, value});
}

void MetricsRegistry::epoch_sample(std::string_view name,
                                   std::string_view device, double t,
                                   double value) {
  if (!capture_) return;
  std::string labels;
  if (!device.empty()) {
    labels = "device=";
    labels += device;
  }
  sample(intern(MetricKind::kGauge, std::string(name), std::move(labels)), t,
         value);
}

const Metric* MetricsRegistry::find(std::string_view name,
                                    std::string_view labels) const {
  for (const auto& m : metrics_) {
    if (m.name == name && m.labels == labels) return &m;
  }
  return nullptr;
}

}  // namespace nvms
