// Bottleneck attribution: from raw telemetry to "why is this slow".
//
// The paper's Sec. IV does not stop at counters — every application
// slowdown on Optane is attributed to a *mechanism*: WPQ saturation under
// write bursts (IV-C), reads throttled behind the shared write queue,
// DRAM-cache conflict misses in Memory mode (IV-B), or a plain bandwidth/
// latency ceiling.  The PR-2 telemetry layer records all the ingredients
// (`wpq.util`, `throttle.read`, `cache.*`, per-lane `bw.*`, device spans);
// this module turns them into structured verdicts.
//
// Pipeline (deterministic by construction — every input is the virtual-
// clock telemetry that is already byte-identical across worker counts and
// resolve-cache modes):
//   1. walk the Tracer's span forest: each top-level span is one phase
//      occurrence; nested device spans carry the per-lane achieved
//      bandwidths, WPQ utilization and read-throttle multiplier;
//   2. join the `cache.*` epoch series on the phase start time;
//   3. aggregate occurrences into per-phase equivalence classes (by name,
//      first-seen order) with time-weighted signal means;
//   4. score every class of the Sec.-IV taxonomy with fixed thresholds and
//      pick the arg-max (ties break in taxonomy order), attaching the
//      evidence — signal, value, threshold, contribution share — that a
//      reviewer would want to see;
//   5. roll phases up into the run verdict (duration-weighted signals) and
//      per-class runtime shares.
//
// RunProfile is the exchange format: the CLI `explain`/`diff`/`inspect`
// subcommands, the sweep-level merged profiles (harness/sweep) and the
// regression-explainer CI step all consume it through the JSON/CSV/human
// renderers below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/sketch.hpp"
#include "obs/telemetry.hpp"
#include "simcore/json.hpp"

namespace nvms {

struct SystemConfig;  // memsim/memory_system.hpp

/// The paper's Sec.-IV bottleneck taxonomy, in attribution priority order
/// (earlier classes win score ties).
enum class Bottleneck {
  kWpqSaturated,   ///< write bursts saturate the NVM write-pending queue
  kReadThrottled,  ///< reads starve behind the shared WPQ (Sec. IV-C)
  kCacheConflict,  ///< DRAM-cache conflict misses in Memory mode (IV-B)
  kBandwidthBound, ///< a device lane runs at its bandwidth ceiling
  kLatencyBound,   ///< memory-dominated but far from any bandwidth peak
  kUnconstrained,  ///< compute-bound or otherwise free of memory pressure
};
constexpr std::size_t kNumBottlenecks = 6;

const char* to_string(Bottleneck b);

/// One piece of verdict evidence: which signal fired, at what value,
/// against which threshold, and its share of the total class score.
struct Evidence {
  std::string signal;        ///< e.g. "wpq.util", "bw.util.nvm.read"
  double value = 0.0;
  double threshold = 0.0;
  double contribution = 0.0; ///< percent of the summed class scores
};

struct Verdict {
  Bottleneck cls = Bottleneck::kUnconstrained;
  double score = 0.0;              ///< winning class score in [0, 1]
  std::vector<Evidence> evidence;  ///< contribution-descending
};

/// Aggregated signals of one phase equivalence class (all occurrences of
/// one phase name).  Bandwidths are time-weighted means in GB/s; peak
/// utilizations are maxima; the throttle multiplier is the minimum (most
/// throttled) observed.
struct PhaseSignals {
  std::size_t count = 0;    ///< occurrences aggregated
  double total_s = 0.0;     ///< summed virtual duration
  double max_s = 0.0;       ///< longest single occurrence
  double dram_read_gbs = 0.0;
  double dram_write_gbs = 0.0;
  double nvm_read_gbs = 0.0;
  double nvm_write_gbs = 0.0;
  double nvm_wpq_util = 0.0;   ///< max over occurrences/lanes
  double nvm_throttle = 1.0;   ///< min read multiplier observed
  double mem_share = 0.0;      ///< busiest-lane busy fraction (t-weighted)
  double bw_util = 0.0;        ///< best lane's achieved/peak (t-weighted)
  std::string bw_lane;         ///< lane behind bw_util ("nvm.read", ...)
  double cache_conflict = 0.0; ///< mean cache.conflict_rate (Memory mode)
  double cache_hit = 0.0;      ///< mean cache.hit_rate
  double cache_s = 0.0;        ///< duration covered by cache samples
};

struct PhaseProfile {
  std::string name;
  PhaseSignals signals;
  Verdict verdict;
  double share = 0.0;  ///< total_s / run runtime
};

/// Runtime share attributed to one bottleneck class.
struct ClassShare {
  Bottleneck cls = Bottleneck::kUnconstrained;
  double seconds = 0.0;
  double share = 0.0;
  std::size_t phases = 0;  ///< phase classes with this verdict
};

struct RunProfile {
  std::string run;   ///< label: app name or sweep-cell label
  std::string mode;  ///< "dram-only" | "cached-nvm" | "uncached-nvm" | mixed
  double runtime_s = 0.0;
  std::size_t phase_count = 0;    ///< phase occurrences (span count)
  std::vector<PhaseProfile> phases;  ///< first-seen order
  std::vector<ClassShare> classes;   ///< all six classes, taxonomy order
  PhaseSignals totals;               ///< run-level duration-weighted signals
  Verdict verdict;                   ///< run-level attribution
  /// Deterministic phase-duration quantiles (log2-bucket sketch over
  /// phase occurrences; kept so merged profiles re-derive exact p50/95/99).
  QuantileSketch phase_sketch;
  double phase_p50_s = 0.0;
  double phase_p95_s = 0.0;
  double phase_p99_s = 0.0;
};

/// Attribution thresholds (documented in docs/OBSERVABILITY.md; fixed
/// defaults keep verdicts deterministic and comparable across runs).
struct AttributionThresholds {
  double wpq_util = 0.70;   ///< wpq-saturated above this utilization
  /// The queue counts as *pinned* (write bursts outpace the drain for the
  /// whole phase) at or above this utilization; a pinned queue favors
  /// wpq-saturated over read-throttled when both fire, a merely busy one
  /// favors read-throttled.
  double wpq_sat = 0.995;
  double throttle = 0.85;   ///< read-throttled below this multiplier
  double conflict = 0.05;   ///< cache-conflict above this rate
  double bw_util = 0.60;    ///< bandwidth-bound above this lane share
  double mem_share = 0.50;  ///< latency-bound needs memory-dominated time
  double lat_bw_util = 0.45; ///< ...with lane utilization below this
};

/// Everything build_run_profile needs besides the telemetry itself: a run
/// label, the system mode and the device bandwidth peaks the utilization
/// signals are normalized against.
struct AnalyzeContext {
  std::string run;
  std::string mode;
  double dram_read_peak_gbs = 0.0;
  double dram_write_peak_gbs = 0.0;
  double nvm_read_peak_gbs = 0.0;
  double nvm_write_peak_gbs = 0.0;
  AttributionThresholds thresholds;
};

/// Context for a run on `sys` (peaks from the config's device parameters).
AnalyzeContext analyze_context(const SystemConfig& sys, std::string run);

/// Score one phase's aggregated signals against the taxonomy.
Verdict attribute(const PhaseSignals& s, const AttributionThresholds& t);

/// The attribution pipeline over one run's telemetry.
RunProfile build_run_profile(const Telemetry& telemetry,
                             const AnalyzeContext& ctx);

/// Merge per-cell profiles (e.g. a sweep grid, in grid order) into one
/// profile: phases align by name, signals merge time-weighted, verdicts
/// are re-scored.  Deterministic in the input order.
RunProfile merge_profiles(const std::vector<RunProfile>& parts,
                          std::string run,
                          const AttributionThresholds& t = {});

/// Phase-name equivalence class: trailing iteration decorations
/// (digits and '-', '_', '.', '#', '/' separators) are stripped, so
/// "fft-pass-3" and "fft-pass-12" align in diffs.
std::string phase_equivalence_class(const std::string& name);

// -- renderers --------------------------------------------------------------

/// JSON document with recursively sorted keys (byte-stable for CI).
Json run_profile_json(const RunProfile& p);

/// Flat CSV: one row per phase class plus a trailing "run" row.
std::string run_profile_csv(const RunProfile& p);

/// Human report: verdict, class shares, per-phase table with evidence.
std::string render_run_profile(const RunProfile& p);

/// Publish the profile's summary as gauges (`analyze.*`) — the hook the
/// Prometheus exposition endpoint scrapes.
void publish_run_profile(const RunProfile& p, MetricsRegistry& m);

}  // namespace nvms
