// Run-vs-run diffing: the regression explainer.
//
// diff_profiles() aligns two RunProfiles phase-by-phase (exact name first,
// then the phase_equivalence_class so iteration-decorated names still
// pair up), attributes every phase's runtime delta to the signal that
// moved the most, and rolls the result up into a run-level explanation —
// exactly what the perf-gate CI step wants to print when a benchmark
// comparison trips: not "hypre got 30% slower" but "hypre got 30% slower
// because cache.conflict_rate went from 0.02 to 0.31 in phase solve".
//
// Everything is deterministic: phases are reported in descending
// |runtime delta| (ties broken by name), signals are scanned in a fixed
// order, and all rendering goes through the byte-stable formatters.
#pragma once

#include <string>
#include <vector>

#include "obs/analyze/profile.hpp"

namespace nvms {

enum class DiffPresence { kBoth, kOnlyA, kOnlyB };
const char* to_string(DiffPresence p);

/// One signal's movement between the two runs of a matched phase.
struct SignalDelta {
  std::string signal;  ///< e.g. "cache.conflict_rate", "bw.nvm.write_gbs"
  double a = 0.0;
  double b = 0.0;
  double impact = 0.0;  ///< normalized movement used for ranking
};

struct PhaseDiff {
  std::string name;  ///< phase name (run A's spelling when matched fuzzily)
  DiffPresence presence = DiffPresence::kBoth;
  double a_s = 0.0;      ///< total seconds in run A
  double b_s = 0.0;      ///< total seconds in run B
  double delta_s = 0.0;  ///< b_s - a_s (positive = regression)
  Bottleneck a_cls = Bottleneck::kUnconstrained;
  Bottleneck b_cls = Bottleneck::kUnconstrained;
  /// Signal attributed for the delta ("phase-added"/"phase-removed" for
  /// one-sided phases; empty when the delta is negligible).
  std::string moved;
  std::vector<SignalDelta> signals;  ///< impact-descending, fixed tiebreak
};

struct RunDiff {
  std::string a;  ///< run A label
  std::string b;  ///< run B label
  std::string a_mode;
  std::string b_mode;
  double a_runtime_s = 0.0;
  double b_runtime_s = 0.0;
  double delta_s = 0.0;   ///< b - a
  double speedup = 1.0;   ///< a / b (> 1 means B is faster)
  Bottleneck a_cls = Bottleneck::kUnconstrained;
  Bottleneck b_cls = Bottleneck::kUnconstrained;
  std::string moved;  ///< run-level attributed signal
  std::size_t regressions = 0;   ///< phases slower in B
  std::size_t improvements = 0;  ///< phases faster in B
  std::vector<PhaseDiff> phases;  ///< |delta| descending, name tiebreak
};

RunDiff diff_profiles(const RunProfile& a, const RunProfile& b);

/// JSON document with recursively sorted keys (byte-stable).
Json run_diff_json(const RunDiff& d);

/// Human explanation: headline, then the per-phase delta table.
std::string render_run_diff(const RunDiff& d);

/// Publish the diff summary as gauges (`diff.*`).
void publish_run_diff(const RunDiff& d, MetricsRegistry& m);

}  // namespace nvms
