#include "obs/analyze/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simcore/table.hpp"

namespace nvms {

namespace {

constexpr double kEps = 1e-12;
/// Runtime deltas below this fraction of the larger run are noise and get
/// no moved-signal attribution.
constexpr double kDeltaFloor = 1e-6;

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Signals scanned for movement, in fixed priority order (the tiebreak
/// when two signals moved equally).  Bounded ratios ([0,1] signals)
/// compare by absolute movement; rate signals by relative movement, so
/// the two kinds rank on a comparable [0,1] scale.
struct SignalDef {
  const char* name;
  double PhaseSignals::* field;
  bool bounded;
};
constexpr SignalDef kSignals[] = {
    {"wpq.util", &PhaseSignals::nvm_wpq_util, true},
    {"throttle.read", &PhaseSignals::nvm_throttle, true},
    {"cache.conflict_rate", &PhaseSignals::cache_conflict, true},
    {"bw.util", &PhaseSignals::bw_util, true},
    {"mem.share", &PhaseSignals::mem_share, true},
    {"bw.nvm.read_gbs", &PhaseSignals::nvm_read_gbs, false},
    {"bw.nvm.write_gbs", &PhaseSignals::nvm_write_gbs, false},
    {"bw.dram.read_gbs", &PhaseSignals::dram_read_gbs, false},
    {"bw.dram.write_gbs", &PhaseSignals::dram_write_gbs, false},
};

std::vector<SignalDelta> signal_deltas(const PhaseSignals& a,
                                       const PhaseSignals& b) {
  std::vector<SignalDelta> out;
  for (const SignalDef& def : kSignals) {
    SignalDelta d;
    d.signal = def.name;
    d.a = a.*(def.field);
    d.b = b.*(def.field);
    const double move = std::abs(d.b - d.a);
    d.impact = def.bounded
                   ? move
                   : move / std::max({std::abs(d.a), std::abs(d.b), kEps});
    out.push_back(std::move(d));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SignalDelta& x, const SignalDelta& y) {
                     return x.impact > y.impact + kEps;
                   });
  return out;
}

}  // namespace

const char* to_string(DiffPresence p) {
  switch (p) {
    case DiffPresence::kBoth:
      return "both";
    case DiffPresence::kOnlyA:
      return "only-a";
    case DiffPresence::kOnlyB:
      return "only-b";
  }
  return "both";
}

RunDiff diff_profiles(const RunProfile& a, const RunProfile& b) {
  RunDiff d;
  d.a = a.run;
  d.b = b.run;
  d.a_mode = a.mode;
  d.b_mode = b.mode;
  d.a_runtime_s = a.runtime_s;
  d.b_runtime_s = b.runtime_s;
  d.delta_s = b.runtime_s - a.runtime_s;
  d.speedup = b.runtime_s > kEps ? a.runtime_s / b.runtime_s : 1.0;
  d.a_cls = a.verdict.cls;
  d.b_cls = b.verdict.cls;

  // Align: exact name first, then equivalence class over the leftovers
  // (first unmatched B phase in order wins — deterministic).
  std::vector<int> b_match(b.phases.size(), -1);
  std::vector<int> a_match(a.phases.size(), -1);
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    for (std::size_t j = 0; j < b.phases.size(); ++j) {
      if (b_match[j] == -1 && a.phases[i].name == b.phases[j].name) {
        a_match[i] = static_cast<int>(j);
        b_match[j] = static_cast<int>(i);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    if (a_match[i] != -1) continue;
    const std::string eq = phase_equivalence_class(a.phases[i].name);
    for (std::size_t j = 0; j < b.phases.size(); ++j) {
      if (b_match[j] == -1 &&
          phase_equivalence_class(b.phases[j].name) == eq) {
        a_match[i] = static_cast<int>(j);
        b_match[j] = static_cast<int>(i);
        break;
      }
    }
  }

  const double scale = std::max(
      {a.runtime_s, b.runtime_s, kEps});  // noise floor reference
  auto attribute_delta = [&](PhaseDiff& pd, const PhaseSignals& sa,
                             const PhaseSignals& sb) {
    pd.signals = signal_deltas(sa, sb);
    if (std::abs(pd.delta_s) > kDeltaFloor * scale &&
        !pd.signals.empty() && pd.signals.front().impact > kEps) {
      pd.moved = pd.signals.front().signal;
    }
  };

  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const PhaseProfile& pa = a.phases[i];
    PhaseDiff pd;
    pd.name = pa.name;
    pd.a_s = pa.signals.total_s;
    pd.a_cls = pa.verdict.cls;
    if (a_match[i] != -1) {
      const PhaseProfile& pb =
          b.phases[static_cast<std::size_t>(a_match[i])];
      pd.presence = DiffPresence::kBoth;
      pd.b_s = pb.signals.total_s;
      pd.b_cls = pb.verdict.cls;
      pd.delta_s = pd.b_s - pd.a_s;
      attribute_delta(pd, pa.signals, pb.signals);
    } else {
      pd.presence = DiffPresence::kOnlyA;
      pd.delta_s = -pd.a_s;
      pd.moved = "phase-removed";
    }
    d.phases.push_back(std::move(pd));
  }
  for (std::size_t j = 0; j < b.phases.size(); ++j) {
    if (b_match[j] != -1) continue;
    const PhaseProfile& pb = b.phases[j];
    PhaseDiff pd;
    pd.name = pb.name;
    pd.presence = DiffPresence::kOnlyB;
    pd.b_s = pb.signals.total_s;
    pd.b_cls = pb.verdict.cls;
    pd.delta_s = pd.b_s;
    pd.moved = "phase-added";
    d.phases.push_back(std::move(pd));
  }

  std::stable_sort(d.phases.begin(), d.phases.end(),
                   [](const PhaseDiff& x, const PhaseDiff& y) {
                     const double ax = std::abs(x.delta_s);
                     const double ay = std::abs(y.delta_s);
                     if (ax != ay) return ax > ay;
                     return x.name < y.name;
                   });

  for (const PhaseDiff& pd : d.phases) {
    if (pd.delta_s > kDeltaFloor * scale) ++d.regressions;
    if (pd.delta_s < -kDeltaFloor * scale) ++d.improvements;
  }

  // Run-level attribution over the duration-weighted totals.
  const std::vector<SignalDelta> run_sig = signal_deltas(a.totals, b.totals);
  if (std::abs(d.delta_s) > kDeltaFloor * scale && !run_sig.empty() &&
      run_sig.front().impact > kEps) {
    d.moved = run_sig.front().signal;
  }
  return d;
}

Json run_diff_json(const RunDiff& d) {
  Json j;
  j.set("a", d.a);
  j.set("b", d.b);
  j.set("a_mode", d.a_mode);
  j.set("b_mode", d.b_mode);
  j.set("a_runtime_s", d.a_runtime_s);
  j.set("b_runtime_s", d.b_runtime_s);
  j.set("delta_s", d.delta_s);
  j.set("speedup", d.speedup);
  j.set("a_class", to_string(d.a_cls));
  j.set("b_class", to_string(d.b_cls));
  j.set("moved", d.moved);
  j.set("regressions", static_cast<std::uint64_t>(d.regressions));
  j.set("improvements", static_cast<std::uint64_t>(d.improvements));
  Json phases = Json::array();
  for (const PhaseDiff& pd : d.phases) {
    Json jp;
    jp.set("name", pd.name);
    jp.set("presence", to_string(pd.presence));
    jp.set("a_s", pd.a_s);
    jp.set("b_s", pd.b_s);
    jp.set("delta_s", pd.delta_s);
    jp.set("a_class", to_string(pd.a_cls));
    jp.set("b_class", to_string(pd.b_cls));
    jp.set("moved", pd.moved);
    Json sigs = Json::array();
    for (const SignalDelta& sd : pd.signals) {
      if (sd.impact <= kEps) continue;  // quiet signals are noise
      Json js;
      js.set("signal", sd.signal);
      js.set("a", sd.a);
      js.set("b", sd.b);
      js.set("impact", sd.impact);
      sigs.push(std::move(js));
    }
    jp.set("signals", std::move(sigs));
    phases.push(std::move(jp));
  }
  j.set("phases", std::move(phases));
  j.sort_keys();
  return j;
}

std::string render_run_diff(const RunDiff& d) {
  std::string out;
  out += "diff " + d.a + " (" + d.a_mode + ", " + num(d.a_runtime_s) +
         " s, " + to_string(d.a_cls) + ") vs " + d.b + " (" + d.b_mode +
         ", " + num(d.b_runtime_s) + " s, " + to_string(d.b_cls) + ")\n";
  out += "delta " + num(d.delta_s) + " s (speedup x" + num(d.speedup) +
         "); " + std::to_string(d.regressions) + " regression(s), " +
         std::to_string(d.improvements) + " improvement(s)";
  if (!d.moved.empty()) out += "; moved: " + d.moved;
  out += "\n\n";

  TextTable t({"phase", "a_s", "b_s", "delta_s", "a_class", "b_class",
               "moved"});
  for (const PhaseDiff& pd : d.phases) {
    std::string moved = pd.moved;
    if (pd.presence == DiffPresence::kBoth && !pd.signals.empty() &&
        !moved.empty()) {
      const SignalDelta& top = pd.signals.front();
      moved += " (" + num(top.a) + " -> " + num(top.b) + ")";
    }
    t.add_row({pd.name, num(pd.a_s), num(pd.b_s), num(pd.delta_s),
               to_string(pd.a_cls), to_string(pd.b_cls), moved});
  }
  out += t.render();
  return out;
}

void publish_run_diff(const RunDiff& d, MetricsRegistry& m) {
  m.set(m.gauge("diff.delta_s"), d.delta_s);
  m.set(m.gauge("diff.speedup"), d.speedup);
  m.set(m.gauge("diff.regressions"), static_cast<double>(d.regressions));
  m.set(m.gauge("diff.improvements"),
        static_cast<double>(d.improvements));
}

}  // namespace nvms
