#include "obs/analyze/profile.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "memsim/memory_system.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

namespace nvms {

namespace {

constexpr double kEps = 1e-12;

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Threshold-crossing score: 0 below the threshold, at least 0.5 the
/// moment it fires, ramping to 1 as the signal spans `span` past it.  The
/// 0.5 floor is what guarantees a fired mechanism always outranks the
/// unconstrained fallback (whose score is the residual headroom).
double fired(double value, double threshold, double span) {
  if (value <= threshold) return 0.0;
  return 0.5 + 0.5 * clamp01((value - threshold) / std::max(span, kEps));
}

/// Deterministic %.9g float formatting (matches obs/export.cpp).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string pct(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * v);
  return buf;
}

/// One occurrence of a top-level span plus the lane/cache signals seen
/// inside it, before aggregation into the per-name phase class.
struct Occurrence {
  double t0 = 0.0;
  double dur = 0.0;
  double dram_read_gbs = 0.0;
  double dram_write_gbs = 0.0;
  double nvm_read_gbs = 0.0;
  double nvm_write_gbs = 0.0;
  double nvm_wpq_util = 0.0;
  double nvm_throttle = 1.0;
  double max_busy = 0.0;  ///< busiest lane's device-span duration
  bool saw_device = false;
};

double span_arg(const SpanRecord& sp, const char* key) {
  for (const auto& [k, v] : sp.args) {
    if (k == key) return v;
  }
  return 0.0;
}

bool is_nvm_lane(const std::string& name) {
  return name.size() >= 3 && name.compare(0, 3, "nvm") == 0;
}

/// Class accumulator while folding occurrences (weighted sums; finalized
/// into PhaseSignals means at the end).
struct PhaseAccum {
  std::string name;
  PhaseSignals s;
  double w = 0.0;        ///< duration weight accumulated
  double sum_dram_r = 0.0, sum_dram_w = 0.0;
  double sum_nvm_r = 0.0, sum_nvm_w = 0.0;
  double sum_mem_share = 0.0;
  double sum_conflict = 0.0, sum_hit = 0.0;
};

}  // namespace

const char* to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::kWpqSaturated:
      return "wpq-saturated";
    case Bottleneck::kReadThrottled:
      return "read-throttled";
    case Bottleneck::kCacheConflict:
      return "cache-conflict";
    case Bottleneck::kBandwidthBound:
      return "bandwidth-bound";
    case Bottleneck::kLatencyBound:
      return "latency-bound";
    case Bottleneck::kUnconstrained:
      return "unconstrained";
  }
  return "unconstrained";
}

AnalyzeContext analyze_context(const SystemConfig& sys, std::string run) {
  AnalyzeContext ctx;
  ctx.run = std::move(run);
  ctx.mode = to_string(sys.mode);
  // Utilization is normalized against the node's aggregate per-class
  // ceiling: per-socket peaks times the socket count the traffic can
  // actually spread over.
  const double sockets = sys.sockets == 2 ? 2.0 : 1.0;
  ctx.dram_read_peak_gbs = sockets * sys.dram.read_bw_peak / GB;
  ctx.dram_write_peak_gbs = sockets * sys.dram.write_bw_peak / GB;
  ctx.nvm_read_peak_gbs = sockets * sys.nvm.read_bw_peak / GB;
  ctx.nvm_write_peak_gbs = sockets * sys.nvm.write_bw_peak / GB;
  return ctx;
}

Verdict attribute(const PhaseSignals& s, const AttributionThresholds& t) {
  const double rw = s.nvm_read_gbs + s.nvm_write_gbs;
  const bool any_traffic =
      s.dram_read_gbs + s.dram_write_gbs + rw > kEps;

  double score[kNumBottlenecks] = {};

  // WPQ saturation needs NVM writes in flight; read throttling needs NVM
  // reads suffering behind them.  The throttle curve is a function of WPQ
  // occupancy, so when one fires both usually fire; which mechanism
  // *explains the time* is decided by whether the queue is pinned at
  // capacity.  A hard-saturated WPQ (util >= wpq_sat) means write bursts
  // outpace the drain for the whole phase — the paper's FT-transpose
  // story — while a queue hovering below full leaves throttled reads as
  // the dominant symptom.  The favored side keeps its full score, the
  // other is slightly discounted (never below the 0.5 fired floor times
  // 0.8, so both still outrank unconstrained).
  const bool wpq_pinned = s.nvm_wpq_util >= t.wpq_sat;
  if (s.nvm_write_gbs > kEps) {
    score[static_cast<int>(Bottleneck::kWpqSaturated)] =
        fired(s.nvm_wpq_util, t.wpq_util, 1.0 - t.wpq_util) *
        (wpq_pinned ? 1.0 : 0.8);
  }
  if (s.nvm_read_gbs > kEps) {
    score[static_cast<int>(Bottleneck::kReadThrottled)] =
        fired(1.0 - s.nvm_throttle, 1.0 - t.throttle, 1.0 - t.throttle) *
        (wpq_pinned ? 0.8 : 1.0);
  }
  if (s.cache_s > kEps) {
    score[static_cast<int>(Bottleneck::kCacheConflict)] =
        fired(s.cache_conflict, t.conflict, 0.5 - t.conflict);
  }
  if (any_traffic) {
    score[static_cast<int>(Bottleneck::kBandwidthBound)] =
        fired(s.bw_util, t.bw_util, 1.0 - t.bw_util);
    // Latency-bound: the run spends its time in the memory system while
    // every lane sits far below its bandwidth ceiling.
    if (s.bw_util < t.lat_bw_util) {
      score[static_cast<int>(Bottleneck::kLatencyBound)] =
          fired(s.mem_share, t.mem_share, 1.0 - t.mem_share) *
          (0.5 + 0.5 * clamp01((t.lat_bw_util - s.bw_util) /
                               std::max(t.lat_bw_util, kEps)));
    }
  }

  double max_fired = 0.0;
  for (std::size_t i = 0; i + 1 < kNumBottlenecks; ++i) {
    max_fired = std::max(max_fired, score[i]);
  }
  score[static_cast<int>(Bottleneck::kUnconstrained)] =
      max_fired > 0.0 ? 0.0 : clamp01(1.0 - std::max({
          t.wpq_util > 0 ? s.nvm_wpq_util / t.wpq_util : 0.0,
          (1.0 - s.nvm_throttle) / std::max(1.0 - t.throttle, kEps),
          t.conflict > 0 ? s.cache_conflict / t.conflict : 0.0,
          t.bw_util > 0 ? s.bw_util / t.bw_util : 0.0,
      }));
  // The fallback verdict always carries a nonzero score so every phase
  // gets a classification even with zero headroom.
  if (max_fired == 0.0) {
    score[static_cast<int>(Bottleneck::kUnconstrained)] = std::max(
        score[static_cast<int>(Bottleneck::kUnconstrained)], 0.05);
  }

  Verdict v;
  double best = -1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < kNumBottlenecks; ++i) {
    total += score[i];
    if (score[i] > best + kEps) {  // strict: earlier class wins ties
      best = score[i];
      v.cls = static_cast<Bottleneck>(i);
    }
  }
  v.score = std::max(best, 0.0);

  // Evidence: one entry per scored class, contribution-ranked (ties break
  // in taxonomy order because the sort is stable over that order).
  struct Row {
    Bottleneck cls;
    Evidence e;
  };
  std::vector<Row> rows;
  auto add = [&](Bottleneck cls, std::string signal, double value,
                 double threshold) {
    const double sc = score[static_cast<int>(cls)];
    if (sc <= 0.0) return;
    rows.push_back(
        {cls, {std::move(signal), value, threshold,
               total > kEps ? 100.0 * sc / total : 0.0}});
  };
  add(Bottleneck::kWpqSaturated, "wpq.util", s.nvm_wpq_util, t.wpq_util);
  add(Bottleneck::kReadThrottled, "throttle.read", s.nvm_throttle,
      t.throttle);
  add(Bottleneck::kCacheConflict, "cache.conflict_rate", s.cache_conflict,
      t.conflict);
  add(Bottleneck::kBandwidthBound,
      s.bw_lane.empty() ? std::string("bw.util")
                        : "bw.util." + s.bw_lane,
      s.bw_util, t.bw_util);
  add(Bottleneck::kLatencyBound, "mem.share", s.mem_share, t.mem_share);
  add(Bottleneck::kUnconstrained, "headroom",
      score[static_cast<int>(Bottleneck::kUnconstrained)], 0.0);
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.e.contribution > b.e.contribution;
  });
  for (auto& r : rows) v.evidence.push_back(std::move(r.e));
  return v;
}

std::string phase_equivalence_class(const std::string& name) {
  std::size_t n = name.size();
  auto strippable = [](char c) {
    return (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '-' ||
           c == '_' || c == '.' || c == '#' || c == '/';
  };
  while (n > 0 && strippable(name[n - 1])) --n;
  if (n == 0) return name;  // all-decoration names stay as-is
  return name.substr(0, n);
}

namespace {

/// Finalize a PhaseAccum's weighted sums into signal means and compute
/// the derived lane utilization against the context peaks.
void finalize_signals(PhaseAccum& a, const AnalyzeContext& ctx) {
  PhaseSignals& s = a.s;
  const double w = a.w > kEps ? a.w : static_cast<double>(s.count);
  if (w > kEps) {
    s.dram_read_gbs = a.sum_dram_r / w;
    s.dram_write_gbs = a.sum_dram_w / w;
    s.nvm_read_gbs = a.sum_nvm_r / w;
    s.nvm_write_gbs = a.sum_nvm_w / w;
    s.mem_share = a.sum_mem_share / w;
  }
  if (s.cache_s > kEps) {
    s.cache_conflict = a.sum_conflict / s.cache_s;
    s.cache_hit = a.sum_hit / s.cache_s;
  }
  // Best lane utilization, fixed candidate order so ties are stable.
  struct Cand {
    const char* lane;
    double gbs;
    double peak;
  } cands[4] = {
      {"dram.read", s.dram_read_gbs, ctx.dram_read_peak_gbs},
      {"dram.write", s.dram_write_gbs, ctx.dram_write_peak_gbs},
      {"nvm.read", s.nvm_read_gbs, ctx.nvm_read_peak_gbs},
      {"nvm.write", s.nvm_write_gbs, ctx.nvm_write_peak_gbs},
  };
  s.bw_util = 0.0;
  s.bw_lane.clear();
  for (const Cand& c : cands) {
    if (c.peak <= kEps) continue;
    const double u = c.gbs / c.peak;
    if (u > s.bw_util + kEps) {
      s.bw_util = u;
      s.bw_lane = c.lane;
    }
  }
}

void fold_occurrence(PhaseAccum& a, const Occurrence& o) {
  PhaseSignals& s = a.s;
  s.count += 1;
  s.total_s += o.dur;
  s.max_s = std::max(s.max_s, o.dur);
  const double w = o.dur > kEps ? o.dur : 0.0;
  a.w += w;
  // Zero-duration occurrences carry no meaningful rates: weight by the
  // duration so they do not dilute the means (extremes still register).
  const double ww = w > kEps ? w : (a.w > kEps ? 0.0 : 1e-30);
  a.sum_dram_r += o.dram_read_gbs * ww;
  a.sum_dram_w += o.dram_write_gbs * ww;
  a.sum_nvm_r += o.nvm_read_gbs * ww;
  a.sum_nvm_w += o.nvm_write_gbs * ww;
  a.sum_mem_share += (o.dur > kEps ? o.max_busy / o.dur : 0.0) * ww;
  if (o.saw_device) {
    s.nvm_wpq_util = std::max(s.nvm_wpq_util, o.nvm_wpq_util);
    s.nvm_throttle = std::min(s.nvm_throttle, o.nvm_throttle);
  }
}

/// Shared tail of build/merge: shares, class rollup, run verdict,
/// quantiles.  `accums` hold finalized per-phase signals + verdicts.
void finish_profile(RunProfile& p, std::vector<PhaseAccum>& accums,
                    const AttributionThresholds& t) {
  p.phases.clear();
  double class_s[kNumBottlenecks] = {};
  std::size_t class_n[kNumBottlenecks] = {};
  // Run-level totals: duration-weighted phase means, worst-case extremes.
  PhaseAccum run;
  for (PhaseAccum& a : accums) {
    PhaseProfile pp;
    pp.name = a.name;
    pp.signals = a.s;
    pp.verdict = attribute(a.s, t);
    pp.share = p.runtime_s > kEps ? a.s.total_s / p.runtime_s : 0.0;
    class_s[static_cast<int>(pp.verdict.cls)] += a.s.total_s;
    class_n[static_cast<int>(pp.verdict.cls)] += 1;

    const double w = a.s.total_s;
    run.s.count += a.s.count;
    run.s.total_s += a.s.total_s;
    run.s.max_s = std::max(run.s.max_s, a.s.max_s);
    run.w += w;
    run.sum_dram_r += a.s.dram_read_gbs * w;
    run.sum_dram_w += a.s.dram_write_gbs * w;
    run.sum_nvm_r += a.s.nvm_read_gbs * w;
    run.sum_nvm_w += a.s.nvm_write_gbs * w;
    run.sum_mem_share += a.s.mem_share * w;
    run.s.nvm_wpq_util = std::max(run.s.nvm_wpq_util, a.s.nvm_wpq_util);
    run.s.nvm_throttle = std::min(run.s.nvm_throttle, a.s.nvm_throttle);
    run.s.cache_s += a.s.cache_s;
    run.sum_conflict += a.s.cache_conflict * a.s.cache_s;
    run.sum_hit += a.s.cache_hit * a.s.cache_s;
    p.phases.push_back(std::move(pp));
  }
  // The run totals were weighted against context peaks already baked into
  // each phase's bw_util; re-derive the run-level best lane the same way
  // using a time-weighted mean of the phase bw_utils.
  if (run.w > kEps) {
    run.s.dram_read_gbs = run.sum_dram_r / run.w;
    run.s.dram_write_gbs = run.sum_dram_w / run.w;
    run.s.nvm_read_gbs = run.sum_nvm_r / run.w;
    run.s.nvm_write_gbs = run.sum_nvm_w / run.w;
    run.s.mem_share = run.sum_mem_share / run.w;
  }
  if (run.s.cache_s > kEps) {
    run.s.cache_conflict = run.sum_conflict / run.s.cache_s;
    run.s.cache_hit = run.sum_hit / run.s.cache_s;
  }
  double wsum = 0.0;
  double usum = 0.0;
  for (const PhaseProfile& pp : p.phases) {
    usum += pp.signals.bw_util * pp.signals.total_s;
    wsum += pp.signals.total_s;
    if (pp.signals.bw_util >= run.s.bw_util &&
        !pp.signals.bw_lane.empty() && run.s.bw_lane.empty()) {
      run.s.bw_lane = pp.signals.bw_lane;
    }
    if (pp.signals.bw_util > run.s.bw_util) {
      run.s.bw_util = pp.signals.bw_util;
      run.s.bw_lane = pp.signals.bw_lane;
    }
  }
  // Run verdict scores on the *time-weighted* utilization (a run is only
  // bandwidth-bound if it spends its time there), but reports the peak
  // lane as evidence detail.
  const std::string peak_lane = run.s.bw_lane;
  run.s.bw_util = wsum > kEps ? usum / wsum : 0.0;
  run.s.bw_lane = peak_lane;

  p.totals = run.s;
  p.verdict = attribute(p.totals, t);

  p.classes.clear();
  for (std::size_t i = 0; i < kNumBottlenecks; ++i) {
    ClassShare cs;
    cs.cls = static_cast<Bottleneck>(i);
    cs.seconds = class_s[i];
    cs.share = p.runtime_s > kEps ? class_s[i] / p.runtime_s : 0.0;
    cs.phases = class_n[i];
    p.classes.push_back(cs);
  }
  p.phase_p50_s = p.phase_sketch.p50();
  p.phase_p95_s = p.phase_sketch.p95();
  p.phase_p99_s = p.phase_sketch.p99();
}

}  // namespace

RunProfile build_run_profile(const Telemetry& telemetry,
                             const AnalyzeContext& ctx) {
  RunProfile p;
  p.run = ctx.run;
  p.mode = ctx.mode;

  const auto& spans = telemetry.tracer().spans();

  // Pass 1: fold the span forest into per-occurrence signals.  Spans are
  // stored in begin order, so every device span follows its enclosing
  // top-level phase span and precedes the next one — a single cursor walk.
  std::vector<Occurrence> occs;
  std::vector<std::string> occ_name;
  for (const SpanRecord& sp : spans) {
    if (sp.depth == 0 &&
        (sp.category == "phase" || sp.category == "advance")) {
      Occurrence o;
      o.t0 = sp.t0;
      o.dur = std::max(0.0, sp.t1 - sp.t0);
      occs.push_back(o);
      occ_name.push_back(sp.name);
      continue;
    }
    if (sp.category == "device" && !occs.empty()) {
      Occurrence& o = occs.back();
      o.saw_device = true;
      const double r = span_arg(sp, "read_gbs");
      const double w = span_arg(sp, "write_gbs");
      if (is_nvm_lane(sp.name)) {
        o.nvm_read_gbs += r;
        o.nvm_write_gbs += w;
        o.nvm_wpq_util = std::max(o.nvm_wpq_util, span_arg(sp, "wpq_util"));
        o.nvm_throttle = std::min(o.nvm_throttle, span_arg(sp, "throttle"));
      } else {
        o.dram_read_gbs += r;
        o.dram_write_gbs += w;
      }
      o.max_busy = std::max(o.max_busy, std::max(0.0, sp.t1 - sp.t0));
    }
  }

  // Pass 2: join cache.* epoch series on the phase start time.  The DRAM
  // cache stamps its per-phase rates at the submit()'s virtual t0, so a
  // cursor over the (time-ordered) occurrences matches each point to the
  // last occurrence starting at or before it.
  std::vector<double> occ_conflict(occs.size(), 0.0);
  std::vector<double> occ_hit(occs.size(), 0.0);
  std::vector<bool> occ_cache(occs.size(), false);
  auto join_series = [&](const char* name, std::vector<double>& dst,
                         std::vector<bool>* flag) {
    for (const Metric& m : telemetry.metrics().metrics()) {
      if (m.name != name) continue;
      std::size_t cur = 0;
      for (const MetricPoint& pt : m.series) {
        while (cur + 1 < occs.size() && occs[cur + 1].t0 <= pt.t) ++cur;
        if (cur < occs.size() && occs[cur].t0 <= pt.t) {
          dst[cur] = pt.value;
          if (flag != nullptr) (*flag)[cur] = true;
        }
      }
    }
  };
  if (!occs.empty()) {
    join_series("cache.conflict_rate", occ_conflict, &occ_cache);
    join_series("cache.hit_rate", occ_hit, nullptr);
  }

  // Pass 3: aggregate occurrences into phase classes (by name, first-seen
  // order) and the run-wide duration sketch.
  std::vector<PhaseAccum> accums;
  std::unordered_map<std::string, std::size_t> by_name;
  double t_end = 0.0;
  for (std::size_t i = 0; i < occs.size(); ++i) {
    const std::string& name = occ_name[i];
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      it = by_name.emplace(name, accums.size()).first;
      accums.push_back({});
      accums.back().name = name;
    }
    PhaseAccum& a = accums[it->second];
    fold_occurrence(a, occs[i]);
    if (occ_cache[i]) {
      const double w = std::max(occs[i].dur, kEps);
      a.s.cache_s += w;
      a.sum_conflict += occ_conflict[i] * w;
      a.sum_hit += occ_hit[i] * w;
    }
    p.phase_sketch.add(occs[i].dur);
    t_end = std::max(t_end, occs[i].t0 + occs[i].dur);
  }
  p.phase_count = occs.size();
  p.runtime_s = t_end;

  for (PhaseAccum& a : accums) finalize_signals(a, ctx);
  finish_profile(p, accums, ctx.thresholds);
  return p;
}

RunProfile merge_profiles(const std::vector<RunProfile>& parts,
                          std::string run, const AttributionThresholds& t) {
  RunProfile p;
  p.run = std::move(run);
  std::vector<PhaseAccum> accums;
  std::unordered_map<std::string, std::size_t> by_name;
  for (const RunProfile& part : parts) {
    if (p.mode.empty()) {
      p.mode = part.mode;
    } else if (p.mode != part.mode) {
      p.mode = "mixed";
    }
    p.runtime_s += part.runtime_s;
    p.phase_count += part.phase_count;
    p.phase_sketch.merge(part.phase_sketch);
    for (const PhaseProfile& pp : part.phases) {
      auto it = by_name.find(pp.name);
      if (it == by_name.end()) {
        it = by_name.emplace(pp.name, accums.size()).first;
        accums.push_back({});
        accums.back().name = pp.name;
      }
      PhaseAccum& a = accums[it->second];
      const PhaseSignals& s = pp.signals;
      const double w = s.total_s > kEps
                           ? s.total_s
                           : static_cast<double>(s.count) * kEps;
      a.s.count += s.count;
      a.s.total_s += s.total_s;
      a.s.max_s = std::max(a.s.max_s, s.max_s);
      a.w += w;
      a.sum_dram_r += s.dram_read_gbs * w;
      a.sum_dram_w += s.dram_write_gbs * w;
      a.sum_nvm_r += s.nvm_read_gbs * w;
      a.sum_nvm_w += s.nvm_write_gbs * w;
      a.sum_mem_share += s.mem_share * w;
      a.s.nvm_wpq_util = std::max(a.s.nvm_wpq_util, s.nvm_wpq_util);
      a.s.nvm_throttle = std::min(a.s.nvm_throttle, s.nvm_throttle);
      a.s.cache_s += s.cache_s;
      a.sum_conflict += s.cache_conflict * s.cache_s;
      a.sum_hit += s.cache_hit * s.cache_s;
      // Merged bw_util is the time-weighted mean of the parts' lane
      // utilizations; the reported lane is the heaviest part's.
      if (a.s.bw_lane.empty() || s.total_s > a.s.max_s - kEps) {
        if (!s.bw_lane.empty()) a.s.bw_lane = s.bw_lane;
      }
      a.s.bw_util += s.bw_util * w;  // finalized below
    }
  }
  for (PhaseAccum& a : accums) {
    const double w = a.w > kEps ? a.w : static_cast<double>(a.s.count);
    if (w > kEps) {
      a.s.dram_read_gbs = a.sum_dram_r / w;
      a.s.dram_write_gbs = a.sum_dram_w / w;
      a.s.nvm_read_gbs = a.sum_nvm_r / w;
      a.s.nvm_write_gbs = a.sum_nvm_w / w;
      a.s.mem_share = a.sum_mem_share / w;
      a.s.bw_util = a.s.bw_util / w;
    } else {
      a.s.bw_util = 0.0;
    }
    if (a.s.cache_s > kEps) {
      a.s.cache_conflict = a.sum_conflict / a.s.cache_s;
      a.s.cache_hit = a.sum_hit / a.s.cache_s;
    }
  }
  finish_profile(p, accums, t);
  return p;
}

// -- renderers --------------------------------------------------------------

namespace {

Json evidence_json(const std::vector<Evidence>& ev) {
  Json arr = Json::array();
  for (const Evidence& e : ev) {
    Json je;
    je.set("signal", e.signal);
    je.set("value", e.value);
    je.set("threshold", e.threshold);
    je.set("contribution_pct", e.contribution);
    arr.push(std::move(je));
  }
  return arr;
}

Json verdict_json(const Verdict& v) {
  Json jv;
  jv.set("class", to_string(v.cls));
  jv.set("score", v.score);
  jv.set("evidence", evidence_json(v.evidence));
  return jv;
}

Json signals_json(const PhaseSignals& s) {
  Json js;
  js.set("count", static_cast<std::uint64_t>(s.count));
  js.set("total_s", s.total_s);
  js.set("max_s", s.max_s);
  js.set("dram_read_gbs", s.dram_read_gbs);
  js.set("dram_write_gbs", s.dram_write_gbs);
  js.set("nvm_read_gbs", s.nvm_read_gbs);
  js.set("nvm_write_gbs", s.nvm_write_gbs);
  js.set("nvm_wpq_util", s.nvm_wpq_util);
  js.set("nvm_throttle", s.nvm_throttle);
  js.set("mem_share", s.mem_share);
  js.set("bw_util", s.bw_util);
  js.set("bw_lane", s.bw_lane);
  js.set("cache_conflict", s.cache_conflict);
  js.set("cache_hit", s.cache_hit);
  js.set("cache_s", s.cache_s);
  return js;
}

}  // namespace

Json run_profile_json(const RunProfile& p) {
  Json j;
  j.set("run", p.run);
  j.set("mode", p.mode);
  j.set("runtime_s", p.runtime_s);
  j.set("phase_count", static_cast<std::uint64_t>(p.phase_count));
  j.set("phase_p50_s", p.phase_p50_s);
  j.set("phase_p95_s", p.phase_p95_s);
  j.set("phase_p99_s", p.phase_p99_s);
  j.set("verdict", verdict_json(p.verdict));
  Json classes = Json::array();
  for (const ClassShare& c : p.classes) {
    Json jc;
    jc.set("class", to_string(c.cls));
    jc.set("seconds", c.seconds);
    jc.set("share", c.share);
    jc.set("phases", static_cast<std::uint64_t>(c.phases));
    classes.push(std::move(jc));
  }
  j.set("classes", std::move(classes));
  Json phases = Json::array();
  for (const PhaseProfile& pp : p.phases) {
    Json jp;
    jp.set("name", pp.name);
    jp.set("class", to_string(pp.verdict.cls));
    jp.set("share", pp.share);
    jp.set("verdict", verdict_json(pp.verdict));
    jp.set("signals", signals_json(pp.signals));
    phases.push(std::move(jp));
  }
  j.set("phases", std::move(phases));
  j.sort_keys();
  return j;
}

std::string run_profile_csv(const RunProfile& p) {
  std::string out =
      "phase,class,score,count,total_s,share,nvm_wpq_util,nvm_throttle,"
      "cache_conflict,bw_util,bw_lane,nvm_read_gbs,nvm_write_gbs,"
      "dram_read_gbs,dram_write_gbs,mem_share\n";
  auto row = [&](const std::string& name, const Verdict& v,
                 const PhaseSignals& s, double share) {
    out += name;
    out += ',';
    out += to_string(v.cls);
    out += ',';
    out += num(v.score);
    out += ',';
    out += std::to_string(s.count);
    out += ',';
    out += num(s.total_s);
    out += ',';
    out += num(share);
    out += ',';
    out += num(s.nvm_wpq_util);
    out += ',';
    out += num(s.nvm_throttle);
    out += ',';
    out += num(s.cache_conflict);
    out += ',';
    out += num(s.bw_util);
    out += ',';
    out += s.bw_lane;
    out += ',';
    out += num(s.nvm_read_gbs);
    out += ',';
    out += num(s.nvm_write_gbs);
    out += ',';
    out += num(s.dram_read_gbs);
    out += ',';
    out += num(s.dram_write_gbs);
    out += ',';
    out += num(s.mem_share);
    out += '\n';
  };
  for (const PhaseProfile& pp : p.phases) {
    row(pp.name, pp.verdict, pp.signals, pp.share);
  }
  row("(run)", p.verdict, p.totals, 1.0);
  return out;
}

namespace {

std::string evidence_line(const std::vector<Evidence>& ev,
                          std::size_t max_items = 3) {
  std::string out;
  std::size_t n = 0;
  for (const Evidence& e : ev) {
    if (n == max_items) break;
    if (n > 0) out += ", ";
    out += e.signal;
    out += '=';
    out += num(e.value);
    if (e.threshold > 0.0) {
      out += " (thr ";
      out += num(e.threshold);
      out += ')';
    }
    out += ' ';
    out += pct(e.contribution / 100.0);
    ++n;
  }
  return out;
}

}  // namespace

std::string render_run_profile(const RunProfile& p) {
  std::string out;
  out += "run " + p.run + " (" + p.mode + "): " +
         to_string(p.verdict.cls) + " (score " + num(p.verdict.score) +
         ")\n";
  out += "runtime " + num(p.runtime_s) + " s over " +
         std::to_string(p.phase_count) + " phase occurrence(s); phase " +
         "p50/p95/p99 = " + num(p.phase_p50_s) + "/" + num(p.phase_p95_s) +
         "/" + num(p.phase_p99_s) + " s\n";
  out += "evidence: " + evidence_line(p.verdict.evidence) + "\n\n";

  TextTable classes({"class", "share", "seconds", "phases"});
  for (const ClassShare& c : p.classes) {
    classes.add_row({to_string(c.cls), pct(c.share), num(c.seconds),
                     std::to_string(c.phases)});
  }
  out += classes.render();
  out += '\n';

  TextTable phases({"phase", "class", "share", "count", "total_s",
                    "evidence"});
  for (const PhaseProfile& pp : p.phases) {
    phases.add_row({pp.name, to_string(pp.verdict.cls), pct(pp.share),
                    std::to_string(pp.signals.count),
                    num(pp.signals.total_s),
                    evidence_line(pp.verdict.evidence, 2)});
  }
  out += phases.render();
  return out;
}

void publish_run_profile(const RunProfile& p, MetricsRegistry& m) {
  m.set(m.gauge("analyze.runtime_s"), p.runtime_s);
  m.set(m.gauge("analyze.phase_count"),
        static_cast<double>(p.phase_count));
  m.set(m.gauge("analyze.verdict_score"), p.verdict.score);
  m.set(m.gauge("analyze.phase_p50_s"), p.phase_p50_s);
  m.set(m.gauge("analyze.phase_p95_s"), p.phase_p95_s);
  m.set(m.gauge("analyze.phase_p99_s"), p.phase_p99_s);
  for (const ClassShare& c : p.classes) {
    m.set(m.gauge("analyze.class_share", {{"class", to_string(c.cls)}}),
          c.share);
  }
}

}  // namespace nvms
