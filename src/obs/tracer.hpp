// Tracer: hierarchical scoped spans over the simulation.
//
// Spans are stamped on BOTH clocks:
//   * the virtual simulation clock (deterministic; what every exporter
//     emits by default, so trace files are byte-identical across runs and
//     worker counts), and
//   * the host wall clock (how long the simulator itself spent inside the
//     span; non-deterministic, exported only on request).
//
// A Tracer is single-threaded, like the MemorySystem that drives it: each
// concurrent experiment owns a private Tracer and the harness merges them
// in grid order (obs/export.hpp).  Spans nest through an explicit open
// stack — begin() records depth and parent, end() closes the span and any
// deeper spans left open (exception safety: an abandoned scope cannot
// corrupt the hierarchy of later spans).
//
// A Tracer constructed with capture == false is the null sink: begin/end
// compile down to a branch and a return, which is what keeps disabled
// telemetry under the 2% overhead budget (bench_ablation_logging).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nvms {

struct SpanRecord {
  std::string name;
  std::string category;  ///< span taxonomy level: "phase", "resolve", ...
  double t0 = 0.0;       ///< virtual start, seconds
  double t1 = 0.0;       ///< virtual end, seconds
  double host_s = 0.0;   ///< host wall-clock time spent inside the span
  int depth = 0;         ///< nesting depth at begin (0 = root)
  std::size_t parent = static_cast<std::size_t>(-1);  ///< span index; -1 root
  bool closed = false;   ///< false when the scope was abandoned (exception)
  /// Numeric annotations ("read_gbs", 12.4); emitted as Chrome trace args.
  std::vector<std::pair<std::string, double>> args;
};

class Tracer {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  explicit Tracer(bool capture = true) : capture_(capture) {}

  bool capture() const { return capture_; }

  /// Open a span at virtual time `vt`.  Returns its index (kNone when
  /// capture is off).
  std::size_t begin(std::string name, std::string category, double vt);

  /// Close span `id` at virtual time `vt`; deeper spans still open are
  /// closed at the same instant.  kNone is ignored.
  void end(std::size_t id, double vt);

  /// Attach a numeric annotation to an open or closed span.
  void annotate(std::size_t id, std::string key, double value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::size_t open_depth() const { return open_.size(); }

  /// Spans (closed) whose category equals `category`.
  std::size_t count(std::string_view category) const;

 private:
  using HostClock = std::chrono::steady_clock;

  bool capture_;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> open_;  ///< stack of open span indices
  std::vector<HostClock::time_point> open_started_;
};

}  // namespace nvms
