// Deterministic fixed-bucket quantile sketches and label-keyed sliding
// windows — the service-ready aggregation layer on top of the metrics
// registry.
//
// QuantileSketch shares its bucket geometry with Metric's log2 histogram
// (value v lands in bucket floor(log2 v) + bias), so a sketch can be
// built either by streaming observations or directly from a recorded
// Metric's buckets.  Quantiles are answered by cumulative bucket walk plus
// linear interpolation inside the landing bucket — a pure function of the
// bucket counts, so p50/p95/p99 are byte-stable across runs, worker
// counts and platforms (no sampling, no randomized mergeability tricks).
// The relative error is bounded by the bucket width (a factor of 2),
// which is the paper-appropriate resolution for phase durations and
// bandwidth samples spanning many orders of magnitude.
//
// SlidingWindowAggregator buckets (t, value) samples of many labeled
// streams into fixed-width time windows and keeps, per (key, window):
// count/sum/min/max plus a QuantileSketch.  Keys are kept in first-seen
// order and windows in time order, so iteration (and any export built on
// it) is deterministic for a deterministic simulation.  "Sliding" is
// bounded: at most `max_windows` trailing windows are retained per key —
// the admission shape a long-running service daemon needs (the ROADMAP's
// `nvmsimd`), where series must not grow without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace nvms {

class QuantileSketch {
 public:
  static constexpr int kBuckets = Metric::kBuckets;
  static constexpr int kBucketBias = Metric::kBucketBias;

  /// Bucket index for `value` — identical to MetricsRegistry::observe.
  static int bucket_of(double value);
  /// Inclusive value range [lo, hi) covered by bucket `b`.  The lowest
  /// bucket absorbs everything <= its upper bound (zero/negative
  /// observations), the highest everything above its lower bound.
  static double bucket_lo(int b);
  static double bucket_hi(int b);

  void add(double value);
  void merge(const QuantileSketch& other);

  /// Seed a sketch from a recorded histogram Metric's buckets (count/sum/
  /// min/max come along, so quantile() can clamp to the observed range).
  static QuantileSketch from_metric(const Metric& m);

  /// Quantile estimate for q in [0, 1]: cumulative bucket walk, linear
  /// interpolation inside the landing bucket, clamped to [min, max].
  /// Returns 0 for an empty sketch.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  std::vector<std::uint64_t> buckets_ =
      std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One aggregated window of one labeled stream.
struct WindowCell {
  double t0 = 0.0;  ///< window start (inclusive)
  double t1 = 0.0;  ///< window end (exclusive)
  QuantileSketch sketch;
};

class SlidingWindowAggregator {
 public:
  /// `window_s` is the fixed bucket width; `max_windows` bounds the
  /// trailing windows retained per key (0 = unbounded).
  explicit SlidingWindowAggregator(double window_s,
                                   std::size_t max_windows = 0);

  /// Route one sample into the window floor(t / window_s) of the stream
  /// keyed by (name, labels).  Samples must arrive in non-decreasing time
  /// order per key (epoch series do); an older sample is folded into the
  /// key's current window rather than resurrecting an evicted one.
  void observe(std::string_view name, std::string_view labels, double t,
               double value);

  /// Aggregate a whole recorded gauge series.
  void observe_series(const Metric& m);

  struct Stream {
    std::string name;
    std::string labels;
    std::deque<WindowCell> windows;  ///< time order, trailing `max_windows`
  };

  /// Streams in first-seen key order.
  const std::vector<Stream>& streams() const { return streams_; }

  double window_s() const { return window_s_; }

 private:
  double window_s_;
  std::size_t max_windows_;
  std::vector<Stream> streams_;
  std::unordered_map<std::string, std::size_t> index_;  ///< "name|labels"
};

}  // namespace nvms
