#include "harness/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <optional>

#include "harness/registry.hpp"
#include "simcore/error.hpp"
#include "simcore/rng.hpp"
#include "simcore/thread_pool.hpp"

namespace nvms {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::size_t ExecutorStats::skipped() const {
  std::size_t n = 0;
  for (const auto& t : tasks) n += t.skipped ? 1 : 0;
  return n;
}

double ExecutorStats::total_task_s() const {
  double s = 0.0;
  for (const auto& t : tasks) s += t.wall_s;
  return s;
}

double ExecutorStats::avg_queue_wait_s() const {
  if (tasks.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : tasks) s += t.queue_wait_s;
  return s / static_cast<double>(tasks.size());
}

double ExecutorStats::worker_utilization() const {
  const double available = static_cast<double>(jobs) * batch_wall_s;
  if (available <= 0.0) return 0.0;
  return std::min(1.0, total_task_s() / available);
}

std::string ExecutorStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "executor: %zu task(s), %zu skipped, jobs=%d, wall %.3f s, "
                "task time %.3f s, avg queue wait %.1f ms, utilization %.0f%%",
                tasks.size(), skipped(), jobs, batch_wall_s, total_task_s(),
                1e3 * avg_queue_wait_s(), 100.0 * worker_utilization());
  return buf;
}

std::string ExecutorStats::csv() const {
  std::string out = "task,label,worker,queue_wait_s,wall_s,skipped\n";
  out.reserve(out.size() + tasks.size() * 64);
  char line[192];
  for (const auto& t : tasks) {
    std::snprintf(line, sizeof line, "%zu,%s,%d,%.6f,%.6f,%d\n", t.index,
                  t.label.c_str(), t.worker, t.queue_wait_s, t.wall_s,
                  t.skipped ? 1 : 0);
    out += line;
  }
  return out;
}

std::uint64_t derive_task_seed(std::uint64_t base, std::size_t index) {
  // Two splitmix64 steps over (base, index): tasks of one batch land far
  // apart in seed space, and the result depends only on (base, index).
  std::uint64_t state = base ^ (0x9E3779B97F4A7C15ull * (index + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

std::vector<ExperimentOutcome> run_experiments(
    const std::vector<ExperimentConfig>& tasks, int jobs,
    ExecutorStats* stats) {
  if (jobs <= 0) jobs = ThreadPool::default_jobs();
  jobs = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(jobs), std::max<std::size_t>(tasks.size(), 1)));

  // Touch the registry serially: lookups are const-after-init, and an
  // unknown app fails fast here rather than from a worker thread.
  for (const auto& t : tasks) (void)lookup_app(t.app);

  std::vector<ExperimentOutcome> outcomes(tasks.size());
  ExecutorStats local;
  local.jobs = jobs;
  local.tasks.resize(tasks.size());
  std::vector<std::exception_ptr> errors(tasks.size());
  std::vector<Clock::time_point> submitted(tasks.size());

  const Clock::time_point batch_start = Clock::now();
  auto run_one = [&](std::size_t i) {
    const Clock::time_point start = Clock::now();
    TaskStats& ts = local.tasks[i];
    ts.index = i;
    ts.label = tasks[i].label;
    ts.worker = std::max(ThreadPool::current_worker(), 0);
    ts.queue_wait_s = seconds_between(submitted[i], start);
    try {
      if (tasks[i].telemetry) {
        outcomes[i].telemetry = std::make_shared<Telemetry>();
      }
      // A private cache lives on this worker's stack for the task's
      // duration; a shared one is borrowed from the caller.
      std::optional<ResolveCache> priv;
      ResolveCache* cache = tasks[i].resolve_cache;
      if (cache == nullptr && tasks[i].private_resolve_cache) {
        cache = &priv.emplace(/*shards=*/1);
      }
      outcomes[i].result =
          run_app_on(tasks[i].app, tasks[i].sys, tasks[i].cfg,
                     outcomes[i].telemetry.get(), cache);
    } catch (const CapacityError& e) {
      outcomes[i].skipped = true;
      outcomes[i].skip_reason = e.what();
      ts.skipped = true;
    } catch (...) {
      errors[i] = std::current_exception();
    }
    ts.wall_s = seconds_between(start, Clock::now());
  };

  if (jobs == 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      submitted[i] = Clock::now();
      run_one(i);
    }
  } else {
    ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      submitted[i] = Clock::now();
      futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
    }
    for (auto& f : futures) f.get();  // run_one never throws
  }
  local.batch_wall_s = seconds_between(batch_start, Clock::now());

  // Rethrow the lowest-index non-capacity failure, independent of
  // scheduling order.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  if (stats != nullptr) *stats = std::move(local);
  return outcomes;
}

std::vector<TelemetryPart> telemetry_parts(
    const std::vector<ExperimentConfig>& tasks,
    const std::vector<ExperimentOutcome>& outcomes) {
  std::vector<TelemetryPart> parts;
  const std::size_t n = std::min(tasks.size(), outcomes.size());
  parts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (outcomes[i].telemetry == nullptr) continue;
    parts.push_back({tasks[i].label, outcomes[i].telemetry.get()});
  }
  return parts;
}

}  // namespace nvms
