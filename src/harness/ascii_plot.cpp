#include "harness/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {

std::string ascii_plot(const std::vector<PlotSeries>& series,
                       std::size_t width, std::size_t height) {
  require(!series.empty(), "plot: need at least one series");
  require(width >= 8 && height >= 4, "plot: canvas too small");

  // Resample everything and find the global ranges.
  std::vector<std::vector<double>> data;
  double y_max = 0.0;
  double t0 = 1e300;
  double t1 = -1e300;
  for (const auto& s : series) {
    NVMS_ASSERT(s.series != nullptr, "plot series without data");
    data.push_back(s.series->resample(width));
    for (const double v : data.back()) y_max = std::max(y_max, v);
    if (!s.series->empty()) {
      t0 = std::min(t0, s.series->start());
      t1 = std::max(t1, s.series->end());
    }
  }
  if (y_max <= 0.0) y_max = 1.0;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (std::size_t x = 0; x < width; ++x) {
      const double v = data[si][x];
      if (v <= 0.0) continue;
      const auto row = static_cast<std::size_t>(std::min(
          static_cast<double>(height - 1),
          std::floor(v / y_max * static_cast<double>(height - 1) + 0.5)));
      canvas[height - 1 - row][x] = series[si].glyph;
    }
  }

  std::string out;
  char label[48];
  for (std::size_t r = 0; r < height; ++r) {
    const double y =
        y_max * static_cast<double>(height - 1 - r) /
        static_cast<double>(height - 1);
    if (r % 4 == 0 || r + 1 == height) {
      std::snprintf(label, sizeof label, "%7.1f |", y / GB);
    } else {
      std::snprintf(label, sizeof label, "        |");
    }
    out += label;
    out += canvas[r];
    out += '\n';
  }
  out += "        +";
  out += std::string(width, '-');
  out += '\n';
  if (t1 > t0) {
    std::snprintf(label, sizeof label, "GB/s     t = %.1f .. %.1f ms   ",
                  t0 * 1e3, t1 * 1e3);
    out += label;
  }
  for (const auto& s : series) {
    out += " [";
    out += s.glyph;
    out += "] " + s.label;
  }
  out += '\n';
  return out;
}

}  // namespace nvms
