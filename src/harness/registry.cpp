#include "harness/registry.hpp"

#include <map>

#include "dwarfs/dense/scalapack.hpp"
#include "dwarfs/laghos/laghos.hpp"
#include "dwarfs/mc/xsbench.hpp"
#include "dwarfs/nbody/hacc.hpp"
#include "dwarfs/sgrid/hypre.hpp"
#include "dwarfs/sparse/superlu.hpp"
#include "dwarfs/synth/gups.hpp"
#include "dwarfs/synth/stream.hpp"
#include "dwarfs/spectral/ft.hpp"
#include "dwarfs/ugrid/boxlib.hpp"
#include "simcore/error.hpp"

namespace nvms {
namespace {

// Const-after-init: built once under the C++11 static-initialization
// guarantee and never mutated, so lock-free concurrent lookups are safe.
const std::vector<std::unique_ptr<App>>& all_apps() {
  static const auto apps = [] {
    std::vector<std::unique_ptr<App>> v;
    v.push_back(std::make_unique<HaccApp>());
    v.push_back(std::make_unique<LaghosApp>());
    v.push_back(std::make_unique<ScalapackApp>());
    v.push_back(std::make_unique<XsBenchApp>());
    v.push_back(std::make_unique<HypreApp>());
    v.push_back(std::make_unique<SuperLuApp>());
    v.push_back(std::make_unique<BoxLibApp>());
    v.push_back(std::make_unique<FtApp>());
    // extras beyond the paper's eight follow
    v.push_back(std::make_unique<StreamApp>());
    v.push_back(std::make_unique<GupsApp>());
    return v;
  }();
  return apps;
}

}  // namespace

namespace {
constexpr std::size_t kPaperApps = 8;
}

const std::vector<std::string>& app_names() {
  static const auto names = [] {
    std::vector<std::string> v;
    for (std::size_t i = 0; i < kPaperApps; ++i)
      v.push_back(all_apps()[i]->name());
    return v;
  }();
  return names;
}

const std::vector<std::string>& extra_app_names() {
  static const auto names = [] {
    std::vector<std::string> v;
    for (std::size_t i = kPaperApps; i < all_apps().size(); ++i)
      v.push_back(all_apps()[i]->name());
    return v;
  }();
  return names;
}

void init_registry() {
  (void)all_apps();
  (void)app_names();
  (void)extra_app_names();
}

const App& lookup_app(const std::string& name) {
  for (const auto& a : all_apps()) {
    if (a->name() == name) return *a;
  }
  throw ConfigError("unknown app '" + name + "'");
}

AppResult run_app(const std::string& name, Mode mode, const AppConfig& cfg) {
  return run_app_on(name, SystemConfig::testbed(mode), cfg);
}

AppResult run_app_on(const std::string& name, SystemConfig sys_cfg,
                     const AppConfig& cfg, Telemetry* telemetry,
                     ResolveCache* resolve_cache) {
  MemorySystem sys(std::move(sys_cfg));
  if (telemetry != nullptr) sys.set_telemetry(telemetry);
  if (resolve_cache != nullptr) sys.set_resolve_cache(resolve_cache);
  AppContext ctx(sys, cfg);
  return lookup_app(name).run(ctx);
}

}  // namespace nvms
