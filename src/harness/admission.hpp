// Admission control for long-running frontends sitting in front of the
// executor: a bounded multi-priority work queue and per-client token
// budgets.  nvmsimd (serve/daemon.cpp) uses both so one flooding client
// can neither wedge the process (the queue rejects instead of growing)
// nor starve every other tenant (budgets cap a client's lifetime spend).
//
// Both classes are plain mutex/condvar constructions — deliberately no
// lock-free cleverness: admission sits in front of simulation work that
// runs for milliseconds, so queue synchronization is never the
// bottleneck, and the simple form is easy to reason about under
// shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace nvms {

/// Bounded priority queue: `lanes` priority levels (0 = most urgent),
/// FIFO within a lane, a shared capacity across lanes.  try_push never
/// blocks — a full queue is the caller's cue to send a structured
/// "queue_full" rejection, which is the whole point of admission control:
/// overload surfaces as fast feedback, not unbounded memory.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity, int lanes = 10)
      : capacity_(capacity == 0 ? 1 : capacity),
        lanes_(static_cast<std::size_t>(lanes < 1 ? 1 : lanes)) {}

  /// Admit one item at `priority` (clamped to the lane range).  False
  /// when the queue is full or closed; the item is then not consumed.
  bool try_push(T& item, int priority) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      std::size_t lane = priority < 0 ? 0 : static_cast<std::size_t>(priority);
      if (lane >= lanes_.size()) lane = lanes_.size() - 1;
      lanes_[lane].push_back(std::move(item));
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking take: most urgent lane first, FIFO within a lane.  After
  /// close(), remaining items are still drained; nullopt means closed
  /// *and* empty — the worker's signal to exit.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      T item = std::move(lane.front());
      lane.pop_front();
      --size_;
      return item;
    }
    return std::nullopt;  // unreachable: size_ > 0 implies a non-empty lane
  }

  /// Stop admitting; wake every waiter.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t capacity_;
  std::vector<std::deque<T>> lanes_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

/// Per-client lifetime token budgets.  Every client id gets the same
/// allowance; a request is charged its cost atomically-or-not-at-all, so
/// concurrent requests from one client cannot overdraw.  An allowance of
/// 0 means unlimited (accounting still tracks spend for observability).
class TokenBudget {
 public:
  explicit TokenBudget(std::uint64_t per_client) : per_client_(per_client) {}

  /// Charge `cost` tokens to `client`; false (and nothing charged) when
  /// the remaining allowance cannot cover it.
  bool charge(const std::string& client, std::uint64_t cost) {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t& spent = spent_[client];
    if (per_client_ != 0 && (cost > per_client_ || spent > per_client_ - cost)) {
      return false;
    }
    spent += cost;
    return true;
  }

  /// Return `cost` previously charged to `client` — used when admission
  /// fails *after* the charge (queue full), so the rejected request does
  /// not burn allowance.  Clamped at zero.
  void refund(const std::string& client, std::uint64_t cost) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = spent_.find(client);
    if (it == spent_.end()) return;
    it->second = it->second > cost ? it->second - cost : 0;
  }

  /// Remaining allowance for `client`; UINT64_MAX when unlimited.
  std::uint64_t remaining(const std::string& client) const {
    if (per_client_ == 0) return UINT64_MAX;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = spent_.find(client);
    const std::uint64_t spent = it == spent_.end() ? 0 : it->second;
    return spent >= per_client_ ? 0 : per_client_ - spent;
  }

  std::uint64_t allowance() const { return per_client_; }

  /// Number of distinct clients seen so far.
  std::size_t clients() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spent_.size();
  }

 private:
  std::uint64_t per_client_;
  mutable std::mutex mu_;
  // std::map: deterministic iteration if anyone ever exports per-client
  // spend (DET-003 applies to export paths).
  std::map<std::string, std::uint64_t> spent_;
};

}  // namespace nvms
