// ASCII bandwidth-trace plots, so the trace figures (4, 5, 7, 8, 9b)
// render as actual curves in a terminal, not just number columns.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simcore/time_series.hpp"

namespace nvms {

/// One labelled series to draw; all series share the time axis.
struct PlotSeries {
  std::string label;
  const TimeSeries* series = nullptr;
  char glyph = '*';
};

/// Render the series as a `width` x `height` character plot with a y-axis
/// in GB/s and a shared time axis, followed by a legend.  Series are
/// resampled to `width` columns; overlapping points show the later
/// series' glyph.
std::string ascii_plot(const std::vector<PlotSeries>& series,
                       std::size_t width = 72, std::size_t height = 14);

}  // namespace nvms
