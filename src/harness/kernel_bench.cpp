#include "harness/kernel_bench.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "appfw/context.hpp"
#include "harness/registry.hpp"
#include "memsim/resolve_cache.hpp"

namespace nvms {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

PhaseCorpus harvest_corpus(const std::string& app, Mode mode, int threads) {
  PhaseCorpus corpus;
  corpus.app = app;
  corpus.config = SystemConfig::testbed(mode);

  MemorySystem sys(corpus.config);
  sys.set_phase_observer([&corpus](const Phase& p) {
    corpus.phases.push_back(p);
    corpus.stream_bytes += p.total_bytes();
  });
  AppConfig cfg;
  cfg.threads = threads;
  AppContext ctx(sys, cfg);
  (void)lookup_app(app).run(ctx);

  for (const BufferInfo& b : sys.buffers()) {
    corpus.buffers.push_back({b.name, b.bytes, b.placement});
  }
  return corpus;
}

ReplayResult replay_corpora(const std::vector<PhaseCorpus>& corpora,
                            int repeat, ResolveCacheMode cache_mode) {
  ReplayResult r;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < repeat; ++rep) {
    std::unique_ptr<ResolveCache> shared;
    if (cache_mode == ResolveCacheMode::kShared) {
      shared = std::make_unique<ResolveCache>(1);
    }
    for (const PhaseCorpus& corpus : corpora) {
      // Fresh system per corpus: registrations replay in order, so base
      // addresses — and with them the DRAM-cache trajectory — match the
      // harvested run exactly.  strict_capacity is off because released
      // buffers are replayed as live (keeping the address map identical).
      SystemConfig cfg = corpus.config;
      cfg.strict_capacity = false;
      MemorySystem sys(cfg);
      std::unique_ptr<ResolveCache> per_run;
      if (cache_mode == ResolveCacheMode::kPerRun) {
        per_run = std::make_unique<ResolveCache>(1);
      }
      if (cache_mode != ResolveCacheMode::kOff) {
        sys.set_resolve_cache(per_run ? per_run.get() : shared.get());
      }
      for (const auto& reg : corpus.buffers) {
        (void)sys.register_buffer(reg.name, reg.bytes, reg.placement);
      }
      for (const Phase& p : corpus.phases) {
        r.time_fold += sys.submit(p).time;
      }
      r.epochs += corpus.phases.size();
      r.stream_bytes += corpus.stream_bytes;
    }
  }
  const auto t1 = Clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

double calibrate_baseline() {
  // One unit = kSpins FNV-1a folds over a fixed seed: pure integer
  // latency-bound work, immune to frequency-independent noise sources
  // like allocator or page-cache state.  Median of five passes.
  constexpr std::uint64_t kSpins = 1u << 24;
  auto one_pass = [] {
    std::uint64_t h = 0xCBF29CE484222325ull;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kSpins; ++i) {
      h = (h ^ i) * 0x100000001B3ull;
    }
    const auto t1 = Clock::now();
    // Fold the hash into the duration at ~1e-18 relative magnitude: keeps
    // the loop alive without perturbing the measurement.
    return std::chrono::duration<double>(t1 - t0).count() +
           static_cast<double>(h & 1) * 1e-18;
  };
  double samples[5];
  for (double& s : samples) s = one_pass();
  std::sort(std::begin(samples), std::end(samples));
  return samples[2];
}

std::vector<PhaseCorpus> fig2_corpora(bool quick) {
  init_registry();
  std::vector<std::string> apps = app_names();
  if (quick) {
    // One walk-heavy and one resolve-heavy representative keep the CI
    // perf job fast while exercising both kernel families.
    apps = {"xsbench", "scalapack"};
  }
  std::vector<PhaseCorpus> corpora;
  for (const auto& app : apps) {
    for (const Mode mode :
         {Mode::kDramOnly, Mode::kCachedNvm, Mode::kUncachedNvm}) {
      corpora.push_back(harvest_corpus(app, mode));
    }
  }
  return corpora;
}

}  // namespace nvms
