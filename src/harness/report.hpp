// Report helpers shared by the bench binaries: textual bandwidth-trace
// rendering (the paper's trace figures as aligned columns / CSV).
#pragma once

#include <cstddef>
#include <string>

#include "trace/run_traces.hpp"

namespace nvms {

/// Render the four bandwidth series resampled to `points` rows:
/// time, DRAM read/write, NVM read/write, all in GB/s.
std::string render_trace_table(const RunTraces& traces, std::size_t points);

/// Same data as CSV (for plotting).
std::string render_trace_csv(const RunTraces& traces, std::size_t points);

/// Fraction of run time spent in phases with the given name prefix,
/// formatted as a percentage string.
std::string phase_share(const RunTraces& traces, const std::string& prefix);

}  // namespace nvms
