#include "harness/sweep.hpp"

#include <cstdio>
#include <memory>
#include <optional>

#include "harness/registry.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {

void SweepSpec::validate() const {
  require(!app.empty(), "sweep: app name required");
  require(!modes.empty() && !threads.empty() && !scales.empty(),
          "sweep: every dimension needs at least one point");
  for (const int t : threads) require(t >= 1, "sweep: threads must be >= 1");
  for (const double s : scales)
    require(s > 0.0, "sweep: scales must be positive");
  require(jobs >= 0, "sweep: jobs must be >= 0 (0 = hardware)");
}

SweepResult run_sweep(const SweepSpec& spec) {
  spec.validate();
  (void)lookup_app(spec.app);  // fail fast on unknown apps

  // Resolve-cache plumbing: one striped instance for the whole grid
  // (kShared) or one single-shard instance per cell (kPerRun) — the
  // latter owned here, not inside the executor, so statistics survive the
  // tasks and can be aggregated into the result.
  const std::size_t cells =
      spec.modes.size() * spec.threads.size() * spec.scales.size();
  std::optional<ResolveCache> shared_cache;
  ResolveCache* shared = nullptr;
  std::vector<std::unique_ptr<ResolveCache>> cell_caches;
  if (spec.resolve_cache == ResolveCacheMode::kShared) {
    if (spec.external_cache != nullptr) {
      shared = spec.external_cache;
    } else {
      shared_cache.emplace(
          static_cast<std::size_t>(spec.jobs > 0 ? spec.jobs : 0));
      shared = &*shared_cache;
    }
  } else if (spec.resolve_cache == ResolveCacheMode::kPerRun) {
    cell_caches.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      cell_caches.push_back(std::make_unique<ResolveCache>(/*shards=*/1));
    }
  }

  // Build the grid in mode-major order; the executor returns outcomes in
  // this same order regardless of worker interleaving.
  std::vector<ExperimentConfig> grid;
  grid.reserve(cells);
  for (const Mode mode : spec.modes) {
    for (const int threads : spec.threads) {
      for (const double scale : spec.scales) {
        ExperimentConfig task;
        task.app = spec.app;
        task.sys = SystemConfig::testbed(mode);
        task.cfg.threads = threads;
        task.cfg.size_scale = scale;
        task.cfg.seed = derive_task_seed(spec.seed, grid.size());
        task.telemetry = spec.telemetry;
        if (shared != nullptr) {
          task.resolve_cache = shared;
        } else if (!cell_caches.empty()) {
          task.resolve_cache = cell_caches[grid.size()].get();
        }
        char label[96];
        std::snprintf(label, sizeof label, "%s/%d/%.4g", to_string(mode),
                      threads, scale);
        task.label = label;
        grid.push_back(std::move(task));
      }
    }
  }

  SweepResult result;
  const auto outcomes = run_experiments(grid, spec.jobs, &result.stats);

  if (shared != nullptr) {
    result.cache_stats = shared->stats();
    result.stream_stats = shared->stream_stats();
  } else {
    for (const auto& c : cell_caches) {
      for (const auto& [into, from] :
           {std::pair{&result.cache_stats, c->stats()},
            std::pair{&result.stream_stats, c->stream_stats()}}) {
        into->hits += from.hits;
        into->misses += from.misses;
        into->evictions += from.evictions;
        into->entries += from.entries;
      }
    }
  }

  if (spec.telemetry) {
    // Keep grid order (including skipped cells that collected anything
    // before their CapacityError) so merged exports are deterministic.
    for (std::size_t k = 0; k < outcomes.size(); ++k) {
      if (outcomes[k].telemetry == nullptr) continue;
      result.telemetry.push_back(outcomes[k].telemetry);
      result.telemetry_labels.push_back(grid[k].label);
    }
  }

  std::size_t i = 0;
  for (const Mode mode : spec.modes) {
    for (const int threads : spec.threads) {
      for (const double scale : spec.scales) {
        const ExperimentOutcome& o = outcomes[i++];
        if (o.skipped) {
          result.skipped.push_back({mode, threads, scale, o.skip_reason});
          continue;
        }
        SweepRow row;
        row.mode = mode;
        row.threads = threads;
        row.scale = scale;
        row.result = o.result;
        result.rows.push_back(std::move(row));
      }
    }
  }
  return result;
}

std::string sweep_csv(const std::vector<SweepRow>& rows) {
  std::string out =
      "mode,threads,scale,runtime_s,fom,fom_unit,higher_is_better,"
      "read_bw_gbs,write_bw_gbs,ipc,footprint_bytes\n";
  out.reserve(out.size() + rows.size() * 128);
  char line[320];
  for (const auto& r : rows) {
    std::snprintf(line, sizeof line,
                  "%s,%d,%.4g,%.9g,%.9g,%s,%d,%.4f,%.4f,%.4f,%llu\n",
                  to_string(r.mode), r.threads, r.scale, r.result.runtime,
                  r.result.fom, r.result.fom_unit.c_str(),
                  r.result.higher_is_better ? 1 : 0,
                  r.result.traces.avg_read_bw() / GB,
                  r.result.traces.avg_write_bw() / GB, r.result.counters.ipc(),
                  static_cast<unsigned long long>(r.result.footprint));
    out += line;
  }
  return out;
}

std::string sweep_stats_csv(const SweepResult& result) {
  return result.stats.csv();
}

std::vector<TelemetryPart> SweepResult::parts() const {
  std::vector<TelemetryPart> out;
  const std::size_t n = std::min(telemetry.size(), telemetry_labels.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({telemetry_labels[i], telemetry[i].get()});
  }
  return out;
}

std::string sweep_chrome_trace(const SweepResult& result) {
  return chrome_trace_json(result.parts());
}

std::string sweep_metrics_csv(const SweepResult& result) {
  return metrics_csv(result.parts());
}

std::string sweep_telemetry_jsonl(const SweepResult& result) {
  return telemetry_jsonl(result.parts());
}

std::string sweep_prometheus(const SweepResult& result) {
  return prometheus_text(result.parts());
}

namespace {

/// Recover the mode from a sweep cell label ("mode/threads/scale").
Mode mode_from_label(const std::string& label) {
  const std::size_t slash = label.find('/');
  const std::string head =
      slash == std::string::npos ? label : label.substr(0, slash);
  for (const Mode m :
       {Mode::kDramOnly, Mode::kCachedNvm, Mode::kUncachedNvm}) {
    if (head == to_string(m)) return m;
  }
  return Mode::kDramOnly;
}

}  // namespace

std::vector<RunProfile> sweep_profiles(const SweepResult& result) {
  std::vector<RunProfile> out;
  const std::size_t n =
      std::min(result.telemetry.size(), result.telemetry_labels.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (result.telemetry[i] == nullptr) continue;
    const std::string& label = result.telemetry_labels[i];
    const SystemConfig sys = SystemConfig::testbed(mode_from_label(label));
    out.push_back(
        build_run_profile(*result.telemetry[i], analyze_context(sys, label)));
  }
  return out;
}

RunProfile sweep_profile(const SweepResult& result, const std::string& run) {
  return merge_profiles(sweep_profiles(result), run);
}

}  // namespace nvms
