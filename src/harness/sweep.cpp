#include "harness/sweep.hpp"

#include <cstdio>

#include "harness/registry.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {

void SweepSpec::validate() const {
  require(!app.empty(), "sweep: app name required");
  require(!modes.empty() && !threads.empty() && !scales.empty(),
          "sweep: every dimension needs at least one point");
  for (const int t : threads) require(t >= 1, "sweep: threads must be >= 1");
  for (const double s : scales)
    require(s > 0.0, "sweep: scales must be positive");
}

std::vector<SweepRow> run_sweep(const SweepSpec& spec) {
  spec.validate();
  (void)lookup_app(spec.app);  // fail fast on unknown apps
  std::vector<SweepRow> rows;
  for (const Mode mode : spec.modes) {
    for (const int threads : spec.threads) {
      for (const double scale : spec.scales) {
        AppConfig cfg;
        cfg.threads = threads;
        cfg.size_scale = scale;
        cfg.seed = spec.seed;
        SweepRow row;
        row.mode = mode;
        row.threads = threads;
        row.scale = scale;
        try {
          row.result = run_app(spec.app, mode, cfg);
        } catch (const CapacityError&) {
          continue;  // oversized for this mode: skip the row
        }
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

std::string sweep_csv(const std::vector<SweepRow>& rows) {
  std::string out =
      "mode,threads,scale,runtime_s,fom,fom_unit,higher_is_better,"
      "read_bw_gbs,write_bw_gbs,ipc,footprint_bytes\n";
  char line[320];
  for (const auto& r : rows) {
    std::snprintf(line, sizeof line,
                  "%s,%d,%.4g,%.9g,%.9g,%s,%d,%.4f,%.4f,%.4f,%llu\n",
                  to_string(r.mode), r.threads, r.scale, r.result.runtime,
                  r.result.fom, r.result.fom_unit.c_str(),
                  r.result.higher_is_better ? 1 : 0,
                  r.result.traces.avg_read_bw() / GB,
                  r.result.traces.avg_write_bw() / GB, r.result.counters.ipc(),
                  static_cast<unsigned long long>(r.result.footprint));
    out += line;
  }
  return out;
}

}  // namespace nvms
