// Parallel experiment executor: run a batch of independent (app, system,
// config) experiments across a worker pool with deterministic results.
//
// Contract:
//   * every task constructs its own MemorySystem, so nothing is shared
//     between concurrent experiments (MemorySystem itself is
//     single-threaded; see memsim/memory_system.hpp);
//   * outcomes are returned in task order — outcome[i] always belongs to
//     tasks[i] no matter which worker ran it or when it finished;
//   * task seeds come from the configs verbatim.  Grid builders that
//     want per-task isolation derive them with derive_task_seed(base, i),
//     which is a pure function of (base seed, task index) — never of
//     shared RNG state — so jobs=1 and jobs=N produce identical bytes;
//   * a task that throws CapacityError is recorded as skipped (the
//     oversized-configuration semantics of run_sweep); any other
//     exception aborts the batch after all tasks finished, rethrowing
//     the lowest-index failure.
//
// The executor also records lightweight observability per task — queue
// wait, wall time, the worker that ran it — plus batch wall time and
// worker utilization, exposed as a human summary and a CSV export.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "appfw/app.hpp"
#include "memsim/memory_system.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"

namespace nvms {

/// One experiment of a batch, executed on a private MemorySystem.
struct ExperimentConfig {
  std::string app;
  SystemConfig sys;
  AppConfig cfg;
  /// Free-form tag carried into the per-task stats ("uncached-nvm/36/1").
  std::string label;
  /// Collect spans + metric streams for this task.  Each task gets its own
  /// Telemetry (returned in the outcome), so worker interleaving never
  /// mixes streams; merged exports follow task order and stay
  /// byte-identical for any jobs count.
  bool telemetry = false;
  /// Borrowed phase-resolution cache attached to the task's MemorySystem
  /// (null: resolve every phase).  A ResolveCache is mutex-striped, so one
  /// instance may back every task of a batch; results and telemetry stay
  /// byte-identical regardless (memsim/resolve_cache.hpp).
  ResolveCache* resolve_cache = nullptr;
  /// Give this task a private single-shard cache instead (reuse across the
  /// task's own phases only).  Mutually exclusive with `resolve_cache`.
  bool private_resolve_cache = false;
};

/// Per-task observability record.
struct TaskStats {
  std::size_t index = 0;
  std::string label;
  int worker = -1;           ///< pool worker that ran the task (0 if serial)
  double queue_wait_s = 0.0; ///< submission -> execution start
  double wall_s = 0.0;       ///< execution start -> finish
  bool skipped = false;      ///< CapacityError: configuration did not fit
};

/// Batch-level observability: per-task records plus derived aggregates.
struct ExecutorStats {
  int jobs = 1;              ///< workers actually used
  double batch_wall_s = 0.0; ///< submission of the first task -> last finish
  std::vector<TaskStats> tasks;

  std::size_t skipped() const;
  double total_task_s() const;
  double avg_queue_wait_s() const;
  /// Busy worker-seconds over available worker-seconds, in [0, 1].
  double worker_utilization() const;
  /// Human-readable one-block summary for CLI/bench output.
  std::string summary() const;
  /// Per-task CSV: index,label,worker,queue_wait_s,wall_s,skipped.
  std::string csv() const;
};

/// Result slot for one experiment; `result` is default-initialized when
/// `skipped` is set.
struct ExperimentOutcome {
  AppResult result;
  bool skipped = false;
  std::string skip_reason;
  /// Per-task telemetry when the config asked for it (null otherwise; a
  /// skipped task keeps whatever was collected before the CapacityError).
  std::shared_ptr<Telemetry> telemetry;
};

/// Grid-order telemetry parts of a batch (tasks that collected telemetry,
/// labeled with their config labels) — ready for the obs exporters.
std::vector<TelemetryPart> telemetry_parts(
    const std::vector<ExperimentConfig>& tasks,
    const std::vector<ExperimentOutcome>& outcomes);

/// Mix a base seed with a task index (splitmix64) — the seed-isolation
/// scheme used by run_sweep: stable across worker counts and platforms.
std::uint64_t derive_task_seed(std::uint64_t base, std::size_t index);

/// Execute every task, `jobs` wide (jobs <= 0: hardware concurrency;
/// clamped to the batch size).  Outcomes are in task order; `stats`, when
/// non-null, receives the observability records.
std::vector<ExperimentOutcome> run_experiments(
    const std::vector<ExperimentConfig>& tasks, int jobs = 0,
    ExecutorStats* stats = nullptr);

}  // namespace nvms
