// Structured experiment sweeps: the cartesian product of modes x threads
// x problem scales for one application, with CSV export — the building
// block behind the CLI `sweep` command and custom studies.
//
// Sweeps run on the parallel executor (harness/executor.hpp).  Results
// are deterministic in the worker count: rows keep the mode-major grid
// order and every configuration's seed is derived from (spec.seed, grid
// index), so `jobs=1` and `jobs=N` emit byte-identical CSVs.
#pragma once

#include <string>
#include <vector>

#include "appfw/app.hpp"
#include "harness/executor.hpp"
#include "memsim/memory_system.hpp"
#include "obs/analyze/profile.hpp"

namespace nvms {

struct SweepSpec {
  std::string app;
  std::vector<Mode> modes = {Mode::kDramOnly, Mode::kCachedNvm,
                             Mode::kUncachedNvm};
  std::vector<int> threads = {12, 24, 36, 48};
  std::vector<double> scales = {1.0};
  std::uint64_t seed = 7;
  /// Worker count for the grid; 0 = hardware concurrency.  Any value
  /// yields the same rows and CSV bytes.
  int jobs = 0;
  /// Collect per-task telemetry (spans + epoch metric streams).  Each
  /// grid cell records into its own Telemetry; the merged exports follow
  /// grid order, so they too are byte-identical for any jobs count.
  bool telemetry = false;
  /// Phase-resolution memoization for the grid (resolve_cache.hpp):
  /// kShared gives every cell one striped cache (one shard per worker),
  /// kPerRun a private cache per cell.  Either way rows and exports are
  /// byte-identical to kOff — only the wall clock changes.
  ResolveCacheMode resolve_cache = ResolveCacheMode::kOff;
  /// With kShared, a caller-owned cache to use instead of a grid-local
  /// one — how nvmsimd keeps one process-lifetime cache warm across
  /// requests.  Ignored for kOff/kPerRun.  The reported cache statistics
  /// are then the external cache's cumulative totals, but rows and
  /// exports remain byte-identical (memoization is semantically
  /// transparent).  Must outlive run_sweep.
  ResolveCache* external_cache = nullptr;

  void validate() const;
};

struct SweepRow {
  Mode mode = Mode::kDramOnly;
  int threads = 0;
  double scale = 1.0;
  AppResult result;
};

/// A configuration dropped because it exceeded a device capacity.
struct SweepSkip {
  Mode mode = Mode::kDramOnly;
  int threads = 0;
  double scale = 1.0;
  std::string reason;
};

struct SweepResult {
  /// Completed configurations, ordered mode-major, then threads, then
  /// scale (grid order, independent of execution interleaving).
  std::vector<SweepRow> rows;
  /// Capacity-skipped configurations in grid order — formerly dropped
  /// silently; callers decide whether to warn.
  std::vector<SweepSkip> skipped;
  /// Executor observability for the grid (wall time, queue waits,
  /// utilization).
  ExecutorStats stats;
  /// Grid-order telemetry (one part per cell, labeled "mode/threads/scale")
  /// when the spec asked for it; empty otherwise.  The shared_ptrs in
  /// `telemetry` keep the parts' pointees alive.
  std::vector<std::shared_ptr<Telemetry>> telemetry;
  std::vector<std::string> telemetry_labels;
  /// Resolve-cache statistics for the grid (all zero when the spec ran
  /// with ResolveCacheMode::kOff; per-cell caches are aggregated).
  ResolveCacheStats cache_stats;
  /// DRAM-cache stream-memo statistics (nonzero only for Memory-mode
  /// cells; the sampler walks dominate those cells' wall clock).
  ResolveCacheStats stream_stats;

  /// Labeled views over `telemetry` for the obs exporters.
  std::vector<TelemetryPart> parts() const;
};

/// Run the full cartesian product, `spec.jobs` wide.  Configurations that
/// exceed a device capacity are recorded in `skipped` rather than
/// aborting the sweep.
SweepResult run_sweep(const SweepSpec& spec);

/// CSV with one row per configuration: mode, threads, scale, runtime,
/// FoM, bandwidths, IPC.
std::string sweep_csv(const std::vector<SweepRow>& rows);
inline std::string sweep_csv(const SweepResult& result) {
  return sweep_csv(result.rows);
}

/// Per-task executor timing CSV for the sweep grid (observability; the
/// values are wall-clock measurements and thus not deterministic).
std::string sweep_stats_csv(const SweepResult& result);

/// Merged Chrome trace_event JSON over every telemetry-collecting cell of
/// the sweep, in grid order (byte-identical for any jobs count).
std::string sweep_chrome_trace(const SweepResult& result);

/// Merged per-epoch metrics CSV over the sweep's telemetry parts.
std::string sweep_metrics_csv(const SweepResult& result);

/// Merged JSONL telemetry (one span/point object per line) over the
/// sweep's telemetry parts, in grid order.
std::string sweep_telemetry_jsonl(const SweepResult& result);

/// Merged Prometheus text exposition over the sweep's telemetry parts,
/// in grid order (byte-identical for any jobs count).
std::string sweep_prometheus(const SweepResult& result);

/// Per-cell bottleneck attribution over the sweep's telemetry parts, in
/// grid order: each cell is scored against its own mode's testbed device
/// peaks (the cell label "mode/threads/scale" carries the mode).
/// Requires the sweep to have run with `telemetry = true`.
std::vector<RunProfile> sweep_profiles(const SweepResult& result);

/// The grid-merged RunProfile (phases aligned by name across cells,
/// verdicts re-scored on the merged signals), labeled `run`.  Grid-order
/// deterministic: byte-identical rendering for any jobs count.
RunProfile sweep_profile(const SweepResult& result, const std::string& run);

}  // namespace nvms
