// Structured experiment sweeps: the cartesian product of modes x threads
// x problem scales for one application, with CSV export — the building
// block behind the CLI `sweep` command and custom studies.
#pragma once

#include <string>
#include <vector>

#include "appfw/app.hpp"
#include "memsim/memory_system.hpp"

namespace nvms {

struct SweepSpec {
  std::string app;
  std::vector<Mode> modes = {Mode::kDramOnly, Mode::kCachedNvm,
                             Mode::kUncachedNvm};
  std::vector<int> threads = {12, 24, 36, 48};
  std::vector<double> scales = {1.0};
  std::uint64_t seed = 7;

  void validate() const;
};

struct SweepRow {
  Mode mode = Mode::kDramOnly;
  int threads = 0;
  double scale = 1.0;
  AppResult result;
};

/// Run the full cartesian product; rows are ordered mode-major, then
/// threads, then scale.  Configurations that exceed a device capacity are
/// skipped (the row is omitted) rather than aborting the sweep.
std::vector<SweepRow> run_sweep(const SweepSpec& spec);

/// CSV with one row per configuration: mode, threads, scale, runtime,
/// FoM, bandwidths, IPC.
std::string sweep_csv(const std::vector<SweepRow>& rows);

}  // namespace nvms
