#include "harness/report.hpp"

#include <cstdio>

#include "simcore/table.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

struct Resampled {
  double t0 = 0.0;
  double bin = 0.0;
  std::vector<double> dr, dw, nr, nw;
};

Resampled resample_all(const RunTraces& traces, std::size_t points) {
  Resampled r;
  r.dr = traces.dram_read.resample(points);
  r.dw = traces.dram_write.resample(points);
  r.nr = traces.nvm_read.resample(points);
  r.nw = traces.nvm_write.resample(points);
  const TimeSeries* any = nullptr;
  for (const TimeSeries* s : {&traces.dram_read, &traces.nvm_read,
                              &traces.dram_write, &traces.nvm_write}) {
    if (!s->empty()) {
      any = s;
      break;
    }
  }
  if (any != nullptr) {
    r.t0 = any->start();
    r.bin = (any->end() - any->start()) / static_cast<double>(points);
  }
  return r;
}

}  // namespace

std::string render_trace_table(const RunTraces& traces, std::size_t points) {
  const Resampled r = resample_all(traces, points);
  TextTable t({"t (ms)", "DRAM rd", "DRAM wr", "NVM rd", "NVM wr"});
  for (std::size_t i = 0; i < points; ++i) {
    const double tm = (r.t0 + r.bin * (static_cast<double>(i) + 0.5)) * 1e3;
    t.add_row({TextTable::num(tm, 2), TextTable::num(r.dr[i] / GB, 2),
               TextTable::num(r.dw[i] / GB, 2), TextTable::num(r.nr[i] / GB, 2),
               TextTable::num(r.nw[i] / GB, 2)});
  }
  return t.render();
}

std::string render_trace_csv(const RunTraces& traces, std::size_t points) {
  const Resampled r = resample_all(traces, points);
  std::string out = "t_s,dram_read_gbs,dram_write_gbs,nvm_read_gbs,nvm_write_gbs\n";
  out.reserve(out.size() + points * 48);
  char row[160];
  for (std::size_t i = 0; i < points; ++i) {
    std::snprintf(row, sizeof row, "%.6f,%.3f,%.3f,%.3f,%.3f\n",
                  r.t0 + r.bin * (static_cast<double>(i) + 0.5), r.dr[i] / GB,
                  r.dw[i] / GB, r.nr[i] / GB, r.nw[i] / GB);
    out += row;
  }
  return out;
}

std::string phase_share(const RunTraces& traces, const std::string& prefix) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%",
                100.0 * traces.phase_time_fraction(prefix));
  return buf;
}

}  // namespace nvms
