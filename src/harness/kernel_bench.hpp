// Kernel benchmarking harness: harvest-and-replay measurement of the
// epoch hot path (resolve_lanes fixed point + DramCache sampled walks).
//
// A *corpus* is everything one app run feeds the memory system — the
// system configuration, the buffer registrations in order, and every
// submitted phase.  Replaying a corpus into a fresh MemorySystem drives
// exactly the per-epoch kernel work of the original run (same demand
// routing, same cache trajectory, same fixed points) with zero app-side
// arithmetic in the timed region, so epochs/second of a replay *is* the
// epoch-kernel throughput.  Combined with the runtime reference-kernel
// switch (set_reference_kernels), the same corpus measures the SoA and
// the pre-SoA scalar kernels in one binary — the self-measured speedup
// recorded in BENCH_epoch.json.
//
// Machine normalization: raw seconds do not survive a change of CI host.
// calibrate_baseline() times a fixed integer spin loop; snapshots report
// ratios of (work per second) to (baseline spins per second), which track
// kernel quality rather than host speed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/memory_system.hpp"
#include "trace/phase.hpp"

namespace nvms {

/// One harvested app run: the inputs the memory system consumed, in order.
struct PhaseCorpus {
  std::string app;
  SystemConfig config;
  struct BufferReg {
    std::string name;
    std::uint64_t bytes = 0;
    Placement placement = Placement::kAuto;
  };
  /// Every registration in order (released buffers included, so replayed
  /// base addresses — and thus the cache trajectory — match the run).
  std::vector<BufferReg> buffers;
  std::vector<Phase> phases;
  std::uint64_t stream_bytes = 0;  ///< total bytes across all phase streams
};

/// Run `app` on the scaled testbed in `mode` and capture its corpus.
PhaseCorpus harvest_corpus(const std::string& app, Mode mode,
                           int threads = 36);

/// Replay measurement.  `seconds` is host wall clock of the timed replay
/// loop only (corpus harvesting and calibration are outside it).
struct ReplayResult {
  double seconds = 0.0;
  std::uint64_t epochs = 0;        ///< phases submitted across all repeats
  std::uint64_t stream_bytes = 0;  ///< simulated bytes across all repeats
  /// Fold of every resolved phase duration: a cross-kernel parity check
  /// (reference and SoA replays must produce the identical fold) that
  /// also anchors the timed loop against dead-code elimination.
  double time_fold = 0.0;

  double epochs_per_s() const {
    return seconds > 0.0 ? static_cast<double>(epochs) / seconds : 0.0;
  }
  /// Simulated stream traffic pushed through the kernel per host second.
  double stream_gbs() const {
    return seconds > 0.0
               ? static_cast<double>(stream_bytes) / seconds / 1e9
               : 0.0;
  }
};

/// Replay `corpora` through fresh systems `repeat` times each, timed as
/// one loop.  `cache_mode` attaches a per-replay ResolveCache (kPerRun /
/// kShared measure the memoized hot path; kOff measures the raw kernels).
ReplayResult replay_corpora(const std::vector<PhaseCorpus>& corpora,
                            int repeat,
                            ResolveCacheMode cache_mode =
                                ResolveCacheMode::kOff);

/// Host seconds per calibration unit: one pass of a fixed integer spin
/// loop (FNV-1a folds, compile-time constant trip count).  Median of
/// several timed passes, so one scheduler hiccup cannot skew a snapshot.
double calibrate_baseline();

/// The standard corpus behind BENCH_epoch.json: the Fig. 2 grid (the
/// paper's eight apps x three memory modes) at 36 threads.  `quick`
/// restricts to two representative apps for CI.
std::vector<PhaseCorpus> fig2_corpora(bool quick = false);

}  // namespace nvms
