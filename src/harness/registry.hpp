// Application registry and experiment runner.
//
// The registry exposes the paper's eight applications by name, in the
// presentation order of Table III.  run_app() builds a fresh scaled
// testbed MemorySystem for the requested mode and executes the app —
// the core primitive every bench binary is built on.
//
// Thread safety: the registry is const-after-init.  The app and name
// tables are function-local statics (thread-safe initialization) and are
// never mutated afterwards; App instances are stateless (run() is const
// and touches only its AppContext), so concurrent run_app()/run_app_on()
// calls from executor workers are safe.  Call init_registry() (or any
// lookup) before fanning out to keep initialization off the hot path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "appfw/app.hpp"
#include "obs/telemetry.hpp"

namespace nvms {

/// The paper's eight applications in Table III order (ascending
/// slowdown): hacc, laghos, scalapack, xsbench, hypre, superlu, boxlib,
/// ft.  Benches iterate this list.
const std::vector<std::string>& app_names();

/// Extra applications shipped beyond the paper's eight (synthetic
/// probes); runnable via lookup_app()/run_app() and the CLI.
const std::vector<std::string>& extra_app_names();

/// Force construction of the registry tables (idempotent).  Concurrent
/// first-use is already safe; this just front-loads the work before a
/// parallel section.
void init_registry();

/// Look up an app by name; throws ConfigError for unknown names.
const App& lookup_app(const std::string& name);

/// Build the scaled testbed and run `name` on it.
AppResult run_app(const std::string& name, Mode mode, const AppConfig& cfg);

/// As run_app, but with a caller-customized system configuration (the
/// mode field of `sys_cfg` is used as-is).  When `telemetry` is non-null
/// it is attached to the run's MemorySystem, collecting spans and epoch
/// metric streams for the whole execution.  When `resolve_cache` is
/// non-null it memoizes the run's phase resolutions (results and exports
/// are byte-identical either way; see memsim/resolve_cache.hpp).
AppResult run_app_on(const std::string& name, SystemConfig sys_cfg,
                     const AppConfig& cfg, Telemetry* telemetry = nullptr,
                     ResolveCache* resolve_cache = nullptr);

}  // namespace nvms
