// A placement plan maps buffer names to explicit placements.  Produced by
// the write-aware placement tool (Sec. V-B) from a profiling run, and
// consumed by apps when allocating their data structures on uncached-NVM.
#pragma once

#include <string>
#include <unordered_map>

#include "memsim/memory_system.hpp"

namespace nvms {

class PlacementPlan {
 public:
  PlacementPlan() = default;

  void set(const std::string& buffer_name, Placement p) {
    by_name_[buffer_name] = p;
  }

  /// Placement for `buffer_name`; kAuto when the plan has no entry.
  Placement lookup(const std::string& buffer_name) const {
    const auto it = by_name_.find(buffer_name);
    return it == by_name_.end() ? Placement::kAuto : it->second;
  }

  std::size_t size() const { return by_name_.size(); }
  bool empty() const { return by_name_.empty(); }
  const std::unordered_map<std::string, Placement>& entries() const {
    return by_name_;
  }

 private:
  std::unordered_map<std::string, Placement> by_name_;
};

}  // namespace nvms
