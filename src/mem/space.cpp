#include "mem/space.hpp"

namespace nvms {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kAuto:
      return "auto";
    case Placement::kDram:
      return "dram";
    case Placement::kNvm:
      return "nvm";
  }
  return "?";
}

std::optional<Mode> parse_mode(const std::string& s) {
  if (s == "dram-only" || s == "dram") return Mode::kDramOnly;
  if (s == "cached-nvm" || s == "cached") return Mode::kCachedNvm;
  if (s == "uncached-nvm" || s == "uncached") return Mode::kUncachedNvm;
  return std::nullopt;
}

}  // namespace nvms
