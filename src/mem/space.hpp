// Naming and parsing helpers for memory modes and placements (used by the
// harness CLI and report printers).
#pragma once

#include <optional>
#include <string>

#include "memsim/memory_system.hpp"

namespace nvms {

const char* to_string(Placement p);

/// Parse "dram-only" / "cached-nvm" / "uncached-nvm".
std::optional<Mode> parse_mode(const std::string& s);

/// All three modes in the paper's presentation order.
inline constexpr Mode kAllModes[] = {Mode::kDramOnly, Mode::kCachedNvm,
                                     Mode::kUncachedNvm};

}  // namespace nvms
