// Typed, RAII-managed simulation buffers.
//
// A Buffer<T> owns real host storage (so kernels compute verifiable
// numerics) and registers a corresponding virtual allocation with the
// MemorySystem (so the simulator knows its size, address, and placement).
// Host storage and simulated placement are decoupled: moving a buffer to
// simulated DRAM/NVM never copies host data.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "memsim/memory_system.hpp"
#include "simcore/error.hpp"

namespace nvms {

template <typename T>
class Buffer {
 public:
  Buffer() = default;

  Buffer(MemorySystem& sys, std::string name, std::size_t count,
         Placement placement = Placement::kAuto)
      : Buffer(sys, std::move(name), count, count, placement) {}

  /// Self-similar scaling: host storage holds `count` elements (the
  /// representative compute problem), while the simulator registers
  /// `virtual_count` elements — the size of the *modelled* data structure.
  /// Kernels emit traffic for the virtual size; numerics stay testable.
  Buffer(MemorySystem& sys, std::string name, std::size_t count,
         std::size_t virtual_count, Placement placement = Placement::kAuto)
      : sys_(&sys), data_(count) {
    require(count > 0, "buffer '" + name + "' must have positive size");
    require(virtual_count >= count,
            "buffer '" + name + "': virtual size below host size");
    id_ = sys.register_buffer(std::move(name), virtual_count * sizeof(T),
                              placement);
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  Buffer(Buffer&& other) noexcept { swap(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  ~Buffer() { reset(); }

  /// Release the simulated allocation and host storage.
  void reset() {
    if (sys_ != nullptr && id_ != kInvalidBuffer) {
      sys_->release_buffer(id_);
    }
    sys_ = nullptr;
    id_ = kInvalidBuffer;
    data_.clear();
    data_.shrink_to_fit();
  }

  bool valid() const { return sys_ != nullptr && id_ != kInvalidBuffer; }

  BufferId id() const { return id_; }
  /// Host (compute) element count.
  std::size_t size() const { return data_.size(); }
  /// Simulated (virtual) footprint in bytes.
  std::uint64_t bytes() const {
    return valid() ? sys_->buffer(id_).bytes : data_.size() * sizeof(T);
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void place(Placement p) {
    NVMS_ASSERT(valid(), "placement on invalid buffer");
    sys_->set_placement(id_, p);
  }
  Placement placement() const { return sys_->buffer(id_).placement; }

 private:
  void swap(Buffer& other) noexcept {
    std::swap(sys_, other.sys_);
    std::swap(id_, other.id_);
    data_.swap(other.data_);
  }

  MemorySystem* sys_ = nullptr;
  BufferId id_ = kInvalidBuffer;
  std::vector<T> data_;
};

}  // namespace nvms
