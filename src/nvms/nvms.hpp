// Umbrella header for the nvmsim public API.
//
// Pull in everything a downstream user needs:
//   * the heterogeneous memory simulator (MemorySystem, devices, modes),
//   * typed buffers and placement plans,
//   * the application framework and the eight dwarf mini-apps,
//   * profiling (counters, per-phase samples, data-centric profiles),
//   * the Eq. 1 IPC prediction model,
//   * write-aware placement and the storage-tier snapshot machinery,
//   * the registry/harness and report helpers,
//   * the telemetry layer (tracer spans, metric streams, exporters).
#pragma once

#include "appfw/app.hpp"
#include "appfw/context.hpp"
#include "appfw/result.hpp"
#include "dwarfs/dense/scalapack.hpp"
#include "dwarfs/laghos/laghos.hpp"
#include "dwarfs/mc/xsbench.hpp"
#include "dwarfs/nbody/hacc.hpp"
#include "dwarfs/sgrid/hypre.hpp"
#include "dwarfs/sparse/superlu.hpp"
#include "dwarfs/synth/gups.hpp"
#include "dwarfs/synth/stream.hpp"
#include "dwarfs/spectral/ft.hpp"
#include "dwarfs/ugrid/boxlib.hpp"
#include "harness/executor.hpp"
#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "mem/buffer.hpp"
#include "mem/placement_plan.hpp"
#include "mem/space.hpp"
#include "memsim/memory_system.hpp"
#include "model/predictor.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "placement/trace_optimizer.hpp"
#include "placement/write_aware.hpp"
#include "pmem/log.hpp"
#include "pmem/region.hpp"
#include "prof/data_profile.hpp"
#include "prof/windows.hpp"
#include "replay/recording.hpp"
#include "prof/run_recorder.hpp"
#include "simcore/stats.hpp"
#include "simcore/table.hpp"
#include "simcore/thread_pool.hpp"
#include "simcore/units.hpp"
#include "storage/tiers.hpp"
