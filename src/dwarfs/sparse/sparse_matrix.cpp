#include "dwarfs/sparse/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"

namespace nvms {

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
    if (col_idx[p] == j) return values[p];
    if (col_idx[p] > j) break;  // sorted
  }
  return 0.0;
}

void CsrMatrix::validate() const {
  require(row_ptr.size() == n + 1, "csr: row_ptr size mismatch");
  require(col_idx.size() == values.size(), "csr: index/value size mismatch");
  require(row_ptr.front() == 0 && row_ptr.back() == values.size(),
          "csr: row_ptr bounds");
  for (std::size_t i = 0; i < n; ++i) {
    require(row_ptr[i] <= row_ptr[i + 1], "csr: row_ptr not monotone");
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      require(col_idx[p] < n, "csr: column out of range");
      if (p + 1 < row_ptr[i + 1])
        require(col_idx[p] < col_idx[p + 1], "csr: columns not sorted");
    }
  }
}

CsrMatrix make_synthetic_matrix(std::size_t n, std::size_t band,
                                std::size_t extra_per_row,
                                std::uint64_t seed) {
  require(n >= 2 && band >= 1, "synthetic matrix: n >= 2, band >= 1");
  Rng rng(seed);
  CsrMatrix a;
  a.n = n;
  a.row_ptr.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> cols;
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n - 1, i + band);
    for (std::size_t j = lo; j <= hi; ++j) cols.insert(j);
    for (std::size_t e = 0; e < extra_per_row; ++e) {
      cols.insert(rng.below(n));
    }
    double offdiag_sum = 0.0;
    std::vector<std::pair<std::size_t, double>> row;
    for (const std::size_t j : cols) {
      if (j == i) continue;
      const double v = rng.uniform(-1.0, 1.0);
      offdiag_sum += std::abs(v);
      row.emplace_back(j, v);
    }
    row.emplace_back(i, offdiag_sum + rng.uniform(1.0, 2.0));  // dominance
    std::sort(row.begin(), row.end());
    for (const auto& [j, v] : row) {
      a.col_idx.push_back(j);
      a.values.push_back(v);
    }
    a.row_ptr.push_back(a.col_idx.size());
  }
  a.validate();
  return a;
}

std::vector<double> csr_matvec(const CsrMatrix& a,
                               const std::vector<double>& x) {
  require(x.size() == a.n, "csr matvec: size mismatch");
  std::vector<double> y(a.n, 0.0);
  for (std::size_t i = 0; i < a.n; ++i) {
    double sum = 0.0;
    for (std::size_t p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
      sum += a.values[p] * x[a.col_idx[p]];
    }
    y[i] = sum;
  }
  return y;
}

SparseLu sparse_lu_factor(const CsrMatrix& a) {
  a.validate();
  const std::size_t n = a.n;
  SparseLu lu;
  lu.l.n = n;
  lu.u.n = n;
  lu.l.row_ptr.push_back(0);
  lu.u.row_ptr.push_back(0);

  // Dense working row + sorted active-column set for the symbolic part.
  std::vector<double> work(n, 0.0);
  std::vector<double> u_diag(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    // scatter A(i, :)
    std::set<std::size_t> active;
    for (std::size_t p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
      work[a.col_idx[p]] = a.values[p];
      active.insert(a.col_idx[p]);
    }
    // eliminate columns k < i in increasing order (fill-in may extend the
    // active set beyond A's pattern)
    for (auto it = active.begin(); it != active.end() && *it < i;) {
      const std::size_t k = *it;
      const double pivot = u_diag[k];
      require(std::abs(pivot) > 1e-300, "sparse lu: zero pivot");
      const double lik = work[k] / pivot;
      work[k] = lik;
      // w -= lik * U(k, j>k)
      for (std::size_t p = lu.u.row_ptr[k]; p < lu.u.row_ptr[k + 1]; ++p) {
        const std::size_t j = lu.u.col_idx[p];
        if (j <= k) continue;
        if (work[j] == 0.0 && active.find(j) == active.end()) {
          active.insert(j);  // symbolic fill-in
        }
        work[j] -= lik * lu.u.values[p];
      }
      ++it;
      while (it != active.end() && *it < k) ++it;  // defensive (sorted set)
    }
    // gather L(i, <i) and U(i, >=i)
    for (const std::size_t j : active) {
      const double v = work[j];
      work[j] = 0.0;
      if (v == 0.0) continue;
      if (j < i) {
        lu.l.col_idx.push_back(j);
        lu.l.values.push_back(v);
      } else {
        if (j == i) u_diag[i] = v;
        lu.u.col_idx.push_back(j);
        lu.u.values.push_back(v);
      }
    }
    require(std::abs(u_diag[i]) > 1e-300, "sparse lu: singular row");
    lu.l.row_ptr.push_back(lu.l.col_idx.size());
    lu.u.row_ptr.push_back(lu.u.col_idx.size());
  }
  lu.l.validate();
  lu.u.validate();
  lu.fill_ratio =
      static_cast<double>(lu.l.nnz() + lu.u.nnz()) /
      static_cast<double>(std::max<std::size_t>(a.nnz(), 1));
  return lu;
}

std::vector<double> sparse_lu_solve(const SparseLu& lu,
                                    std::vector<double> b) {
  const std::size_t n = lu.u.n;
  require(b.size() == n, "sparse lu solve: rhs size mismatch");
  // forward: L y = b (unit diagonal, L strictly lower)
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t p = lu.l.row_ptr[i]; p < lu.l.row_ptr[i + 1]; ++p) {
      sum -= lu.l.values[p] * b[lu.l.col_idx[p]];
    }
    b[i] = sum;
  }
  // backward: U x = y
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    double diag = 0.0;
    for (std::size_t p = lu.u.row_ptr[ii]; p < lu.u.row_ptr[ii + 1]; ++p) {
      const std::size_t j = lu.u.col_idx[p];
      if (j == ii) {
        diag = lu.u.values[p];
      } else {
        sum -= lu.u.values[p] * b[j];
      }
    }
    b[ii] = sum / diag;
  }
  return b;
}

}  // namespace nvms
