// General sparse (CSR) matrices and an up-looking sparse LU factorization
// with symbolic fill-in — the real numerical core behind the SuperLU
// proxy (the banded kernel in superlu.hpp remains as the fast reference
// used by tests).
//
// The factorization is row-wise ("up-looking") without pivoting, which is
// exact for the diagonally dominant synthetic systems the generator
// produces (the UF-collection stand-ins of Fig. 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nvms {

/// Compressed sparse row matrix, column indices sorted within each row.
struct CsrMatrix {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr;  ///< n + 1 entries
  std::vector<std::size_t> col_idx;
  std::vector<double> values;

  std::size_t nnz() const { return values.size(); }
  /// Value at (i, j); 0 when the entry is not stored.
  double at(std::size_t i, std::size_t j) const;
  void validate() const;
};

/// Synthetic diagonally-dominant matrix: a tridiagonal-ish band of width
/// `band` plus `extra_per_row` random off-band entries — the controlled
/// fill pattern used to model the UF datasets.
CsrMatrix make_synthetic_matrix(std::size_t n, std::size_t band,
                                std::size_t extra_per_row,
                                std::uint64_t seed);

/// y = A x.
std::vector<double> csr_matvec(const CsrMatrix& a,
                               const std::vector<double>& x);

/// LU factors: L is unit lower triangular (diagonal not stored), U upper
/// triangular including the diagonal.
struct SparseLu {
  CsrMatrix l;
  CsrMatrix u;
  /// Fill-in ratio: (nnz(L) + nnz(U)) / nnz(A).
  double fill_ratio = 0.0;
};

/// Up-looking sparse LU without pivoting.  Throws Error on a (near-)zero
/// pivot; intended for diagonally dominant inputs.
SparseLu sparse_lu_factor(const CsrMatrix& a);

/// Solve L U x = b.
std::vector<double> sparse_lu_solve(const SparseLu& lu,
                                    std::vector<double> b);

}  // namespace nvms
