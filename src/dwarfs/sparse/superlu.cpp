#include "dwarfs/sparse/superlu.hpp"

#include <algorithm>
#include <cmath>

#include "appfw/result.hpp"
#include "dwarfs/sparse/sparse_matrix.hpp"

namespace nvms {

const std::array<SuperLuDataset, 5>& superlu_datasets() {
  // Footprints are the published memory requirements scaled 1/1024 (the
  // largest, nlpkkt120, required 490 GB on the testbed, Sec. IV-B).
  static const std::array<SuperLuDataset, 5> sets = {{
      {"kim2", 6 * MiB, 6.0e8, 12},
      {"offshore", 12 * MiB, 1.4e9, 16},
      {"Ge87H76", 50 * MiB, 2.0e9, 24},
      {"nlpkkt80", 150 * MiB, 8.0e9, 32},
      {"nlpkkt120", 490 * MiB, 3.2e10, 48},
  }};
  return sets;
}

SuperLuParams SuperLuParams::from(const AppConfig& cfg) {
  SuperLuParams p;
  // Baseline problem: Ge87H76 (52% of the scaled per-socket DRAM), with
  // the footprint ladder driven through size_scale.
  p.dataset = superlu_datasets()[2];
  p.dataset.footprint = static_cast<std::uint64_t>(
      static_cast<double>(p.dataset.footprint) * cfg.size_scale);
  p.dataset.factor_flops *= std::pow(cfg.size_scale, 1.2);
  if (cfg.iterations > 0) p.solve_sweeps = cfg.iterations;
  return p;
}

void banded_lu_factor(std::vector<double>& a, std::size_t n, std::size_t b) {
  require(a.size() == n * (2 * b + 1), "banded_lu: storage size mismatch");
  const std::size_t w = 2 * b + 1;
  // a(i, j) stored at a[i*w + (j - i + b)] for |i-j| <= b.
  for (std::size_t k = 0; k < n; ++k) {
    const double piv = a[k * w + b];
    require(std::abs(piv) > 1e-300, "banded_lu: zero pivot");
    const std::size_t iend = std::min(n, k + b + 1);
    for (std::size_t i = k + 1; i < iend; ++i) {
      const std::size_t off_ik = k + b - i;  // column k in row i
      const double lik = a[i * w + off_ik] / piv;
      a[i * w + off_ik] = lik;  // store L
      const std::size_t jend = std::min(n, k + b + 1);
      for (std::size_t j = k + 1; j < jend; ++j) {
        a[i * w + (j + b - i)] -= lik * a[k * w + (j + b - k)];
      }
    }
  }
}

std::vector<double> banded_lu_solve(const std::vector<double>& a,
                                    std::size_t n, std::size_t b,
                                    std::vector<double> rhs) {
  require(rhs.size() == n, "banded_lu_solve: rhs size mismatch");
  const std::size_t w = 2 * b + 1;
  // forward: L y = rhs (unit diagonal)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j0 = i > b ? i - b : 0;
    for (std::size_t j = j0; j < i; ++j)
      rhs[i] -= a[i * w + (j + b - i)] * rhs[j];
  }
  // backward: U x = y
  for (std::size_t ii = n; ii-- > 0;) {
    const std::size_t jend = std::min(n, ii + b + 1);
    for (std::size_t j = ii + 1; j < jend; ++j)
      rhs[ii] -= a[ii * w + (j + b - ii)] * rhs[j];
    rhs[ii] /= a[ii * w + b];
  }
  return rhs;
}

std::vector<double> banded_matvec(const std::vector<double>& a, std::size_t n,
                                  std::size_t b, const std::vector<double>& x) {
  require(x.size() == n, "banded_matvec: x size mismatch");
  const std::size_t w = 2 * b + 1;
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j0 = i > b ? i - b : 0;
    const std::size_t j1 = std::min(n, i + b + 1);
    for (std::size_t j = j0; j < j1; ++j)
      y[i] += a[i * w + (j + b - i)] * x[j];
  }
  return y;
}

AppResult SuperLuApp::run(AppContext& ctx) const {
  const auto p = SuperLuParams::from(ctx.cfg());
  const std::uint64_t F = p.dataset.footprint;

  // Modelled structures: original matrix + L/U factors (the bulk) and the
  // solve vectors.
  auto factors = ctx.alloc<double>("lu_factors",
                                   p.real_n * (2 * p.real_band + 1),
                                   std::max<std::uint64_t>(
                                       (F * 7 / 8) / sizeof(double),
                                       p.real_n * (2 * p.real_band + 1)));
  auto vectors = ctx.alloc<double>("solve_vectors", 2 * p.real_n,
                                   std::max<std::uint64_t>(
                                       (F / 8) / sizeof(double),
                                       2 * p.real_n));

  // Host numerics: an actual sparse LU (symbolic fill-in and all) on a
  // synthetic diagonally-dominant matrix with the dataset's band+random
  // pattern.
  const CsrMatrix a_csr =
      make_synthetic_matrix(p.real_n, p.real_band, 2, ctx.cfg().seed);
  std::vector<double> b_rhs(p.real_n);
  for (auto& v : b_rhs) v = ctx.rng().uniform(-1.0, 1.0);

  const int threads = ctx.cfg().threads;

  // ---- stage 1: supernodal panel factorization (write-heavy) ----------
  const SparseLu lu = sparse_lu_factor(a_csr);
  std::copy(lu.u.values.begin(),
            lu.u.values.begin() +
                static_cast<std::ptrdiff_t>(std::min(
                    lu.u.values.size(),
                    static_cast<std::size_t>(factors.size()))),
            factors.data());
  // Supernodal panel updates have a bounded active window (the panel plus
  // its trailing update region): per-panel traffic is capped so large
  // datasets keep the working set the DRAM cache can hold (Fig. 3a).
  const auto window = [](double bytes, std::uint64_t cap) {
    return std::min(static_cast<std::uint64_t>(bytes), cap);
  };
  const std::uint64_t rd_bytes =
      window(static_cast<double>(F) * p.stage1_read_frac, p.stage1_window);
  const std::uint64_t wr_bytes = window(
      static_cast<double>(F) * p.stage1_write_frac, p.stage1_window * 3 / 4);
  const double stage1_flops =
      p.stage1_flops_per_byte * static_cast<double>(rd_bytes);
  for (int k = 0; k < p.dataset.panels; ++k) {
    ctx.run(PhaseBuilder("factor:panel")
                .threads(threads)
                .flops(stage1_flops)
                .overlap(0.9)
                .stream(seq_read(factors.id(), rd_bytes).with_reuse(3))
                .stream(seq_write(factors.id(), wr_bytes).with_reuse(3))
                .build());
  }

  // ---- stage 2: triangular solves / refinement (read-dominant) --------
  const std::vector<double> x = sparse_lu_solve(lu, b_rhs);
  const double stage2_flops = 1.3e9 * static_cast<double>(F) /
                              static_cast<double>(50 * MiB);
  const auto seq_bytes =
      window(0.7 * static_cast<double>(F), p.stage2_window);
  const auto rand_bytes =
      window(0.3 * static_cast<double>(F), p.stage2_window * 3 / 8);
  for (int s = 0; s < p.solve_sweeps; ++s) {
    ctx.run(PhaseBuilder("solve:sweep")
                .threads(threads)
                .flops(stage2_flops)
                .mlp(p.gather_mlp)
                .stream(seq_read(factors.id(), seq_bytes).with_reuse(3))
                .stream(rand_read(factors.id(), rand_bytes).with_granule(64))
                .stream(seq_write(vectors.id(),
                                  static_cast<std::uint64_t>(
                                      static_cast<double>(F) *
                                      p.stage2_write_frac)))
                .build());
  }

  AppResult r = finalize_result(ctx, name());
  // The paper's FoM is the factorization rate over both factor phases.
  const double total_flops =
      stage1_flops * static_cast<double>(p.dataset.panels) +
      stage2_flops * static_cast<double>(p.solve_sweeps);
  r.fom = total_flops / r.runtime / 1e6;
  r.fom_unit = "factor Mflop/s";
  r.higher_is_better = true;
  // Residual || A x - b || as checksum (should be ~0), plus the factor
  // fill ratio (deterministic for the seeded pattern).
  const auto ax = csr_matvec(a_csr, x);
  double res = 0.0;
  for (std::size_t i = 0; i < p.real_n; ++i) {
    res += (ax[i] - b_rhs[i]) * (ax[i] - b_rhs[i]);
  }
  r.checksum = std::sqrt(res) + lu.fill_ratio;
  return r;
}

}  // namespace nvms
