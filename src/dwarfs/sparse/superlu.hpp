// SuperLU proxy (Sparse Linear Algebra dwarf).
//
// Models the distributed PDGSSVX driver (Table II): a "factor" computation
// with two dramatically different stages (Sec. IV-C, Fig. 5c/d):
//   stage 1 — supernodal panel factorization with heavy fill-in writes
//             (~54 GB/s read, ~33 GB/s write demand on DRAM; collapses
//             ~14x on uncached NVM — the write-throttling showcase);
//   stage 2 — triangular solves / refinement, read-dominant streaming
//             with a moderate, bandwidth-proportional slowdown.
// On DRAM stage 1 is ~20% of the execution; on uncached NVM it extends to
// ~70% — this phase flip is the paper's headline write-throttling result.
//
// Real numerics: an actual banded LU factorization (no pivoting,
// diagonally dominant) plus forward/backward solves on the host; tests
// verify the residual of A x = b.
//
// The five University of Florida collection datasets used in Fig. 3 are
// provided as presets with footprints scaled 1/1024 from the published
// sizes (the largest, nlpkkt120, needed 490 GB on the testbed).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

/// A synthetic stand-in for one UF-collection matrix: only the quantities
/// that determine traffic and flops are modelled.
struct SuperLuDataset {
  std::string name;
  std::uint64_t footprint;     ///< bytes of factors + matrix (scaled)
  double factor_flops;         ///< numeric factorization flops
  int panels = 24;             ///< supernodal panels in stage 1
};

/// The Fig. 3 ladder: kim2, offshore, Ge87H76, nlpkkt80, nlpkkt120.
const std::array<SuperLuDataset, 5>& superlu_datasets();

struct SuperLuParams {
  SuperLuDataset dataset;
  /// Stage-1 traffic rates relative to footprint (per panel).
  double stage1_read_frac = 0.30;
  double stage1_write_frac = 0.23;
  /// Active-window caps on per-phase traffic (bytes): supernodal panels
  /// and cache-blocked update sweeps keep bounded working sets.
  std::uint64_t stage1_window = 48 * MiB;
  std::uint64_t stage2_window = 64 * MiB;
  /// Stage-1 arithmetic intensity (flops per byte read).
  double stage1_flops_per_byte = 5.5;
  /// Stage-2 streaming passes over the factors.
  int solve_sweeps = 10;
  double stage2_write_frac = 0.05;
  double gather_mlp = 4.0;
  /// Host (real) problem.
  std::size_t real_n = 700;
  std::size_t real_band = 24;

  static SuperLuParams from(const AppConfig& cfg);
};

/// Host banded LU: factors `a` (banded storage, (2b+1) diagonals) in
/// place; exposed for unit tests.
void banded_lu_factor(std::vector<double>& a, std::size_t n, std::size_t b);
/// Solve L U x = rhs with the factored banded matrix.
std::vector<double> banded_lu_solve(const std::vector<double>& a,
                                    std::size_t n, std::size_t b,
                                    std::vector<double> rhs);
/// Multiply the *original* banded matrix by x (for residual checks).
std::vector<double> banded_matvec(const std::vector<double>& a, std::size_t n,
                                  std::size_t b, const std::vector<double>& x);

class SuperLuApp final : public App {
 public:
  std::string name() const override { return "superlu"; }
  std::string dwarf() const override { return "Sparse Linear Algebra"; }
  std::string input_problem() const override {
    return "distributed PDGSSVX, UF collection datasets";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
