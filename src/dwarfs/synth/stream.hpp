// STREAM-like synthetic workload (extra application, not part of the
// paper's eight).
//
// The classic copy/scale/add/triad kernels with configurable array size:
// a pure sequential-bandwidth probe that is handy for validating memory
// configurations, demonstrating the API, and calibrating device models.
// FoM is the triad bandwidth (higher is better).
//
// Real numerics: actual STREAM kernels run on host arrays and are
// verified against the analytically-known result.
#pragma once

#include "appfw/app.hpp"

namespace nvms {

struct StreamParams {
  std::uint64_t virtual_elems = 2'500'000;  ///< per array (3 arrays)
  std::size_t real_elems = 1 << 16;
  int repetitions = 20;
  double scalar = 3.0;

  static StreamParams from(const AppConfig& cfg);
};

class StreamApp final : public App {
 public:
  std::string name() const override { return "stream"; }
  std::string dwarf() const override { return "Synthetic (bandwidth probe)"; }
  std::string input_problem() const override {
    return "STREAM copy/scale/add/triad over three arrays";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
