#include "dwarfs/synth/gups.hpp"

#include "appfw/result.hpp"

namespace nvms {

GupsParams GupsParams::from(const AppConfig& cfg) {
  GupsParams p;
  p.virtual_words = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_words) * cfg.size_scale);
  p.updates = static_cast<std::uint64_t>(
      static_cast<double>(p.updates) * cfg.size_scale);
  if (cfg.iterations > 0) p.batches = cfg.iterations;
  return p;
}

AppResult GupsApp::run(AppContext& ctx) const {
  const auto p = GupsParams::from(ctx.cfg());
  auto table = ctx.alloc<std::uint64_t>("gups_table", p.real_words,
                                        p.virtual_words);

  // Host numerics: XOR updates are self-inverse; the checksum after
  // applying the stream twice must equal the initial table sum.
  for (std::size_t i = 0; i < p.real_words; ++i) {
    table[i] = 0x1234'5678'9ABC'DEF0ull ^ (static_cast<std::uint64_t>(i) << 17);
  }
  std::uint64_t initial_sum = 0;
  for (std::size_t i = 0; i < p.real_words; ++i) initial_sum += table[i];

  const std::uint64_t real_updates = 4 * p.real_words;
  auto apply_stream = [&](std::uint64_t seed) {
    Rng rng(seed);
    for (std::uint64_t u = 0; u < real_updates; ++u) {
      const std::uint64_t idx = rng.below(p.real_words);
      table[idx] ^= rng() | 1;
    }
  };
  apply_stream(p.updates);
  apply_stream(p.updates);  // second pass restores the table
  std::uint64_t final_sum = 0;
  for (std::size_t i = 0; i < p.real_words; ++i) final_sum += table[i];

  // Each update is a random 8B read-modify-write: one 64B line in, one
  // 64B line out, at sub-media granularity.
  const std::uint64_t per_batch = p.updates / p.batches;
  for (int b = 0; b < p.batches; ++b) {
    ctx.run(PhaseBuilder("update")
                .threads(ctx.cfg().threads)
                .flops(3.0 * static_cast<double>(per_batch))
                .mlp(p.mlp)
                .stream(rand_read(table.id(), per_batch * 64).with_granule(64))
                .stream(rand_write(table.id(), per_batch * 64).with_granule(64))
                .build());
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = static_cast<double>(p.updates) / r.runtime / 1e6;
  r.fom_unit = "MUPS";
  r.higher_is_better = true;
  // 0 when the XOR stream round-tripped correctly.
  r.checksum = static_cast<double>(final_sum - initial_sum);
  return r;
}

}  // namespace nvms
