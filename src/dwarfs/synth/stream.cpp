#include "dwarfs/synth/stream.hpp"

#include <cmath>

#include "appfw/result.hpp"

namespace nvms {

StreamParams StreamParams::from(const AppConfig& cfg) {
  StreamParams p;
  p.virtual_elems = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_elems) * cfg.size_scale);
  if (cfg.iterations > 0) p.repetitions = cfg.iterations;
  return p;
}

AppResult StreamApp::run(AppContext& ctx) const {
  const auto p = StreamParams::from(ctx.cfg());
  const std::uint64_t bytes = p.virtual_elems * sizeof(double);

  auto a = ctx.alloc<double>("stream_a", p.real_elems, p.virtual_elems);
  auto b = ctx.alloc<double>("stream_b", p.real_elems, p.virtual_elems);
  auto c = ctx.alloc<double>("stream_c", p.real_elems, p.virtual_elems);

  for (std::size_t i = 0; i < p.real_elems; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }

  const int threads = ctx.cfg().threads;
  double triad_time = 0.0;
  for (int rep = 0; rep < p.repetitions; ++rep) {
    // copy: c = a
    for (std::size_t i = 0; i < p.real_elems; ++i) c[i] = a[i];
    ctx.run(PhaseBuilder("copy")
                .threads(threads)
                .stream(seq_read(a.id(), bytes))
                .stream(seq_write(c.id(), bytes))
                .build());
    // scale: b = s * c
    for (std::size_t i = 0; i < p.real_elems; ++i) b[i] = p.scalar * c[i];
    ctx.run(PhaseBuilder("scale")
                .threads(threads)
                .flops(static_cast<double>(p.virtual_elems))
                .stream(seq_read(c.id(), bytes))
                .stream(seq_write(b.id(), bytes))
                .build());
    // add: c = a + b
    for (std::size_t i = 0; i < p.real_elems; ++i) c[i] = a[i] + b[i];
    ctx.run(PhaseBuilder("add")
                .threads(threads)
                .flops(static_cast<double>(p.virtual_elems))
                .stream(seq_read(a.id(), bytes))
                .stream(seq_read(b.id(), bytes))
                .stream(seq_write(c.id(), bytes))
                .build());
    // triad: a = b + s * c
    for (std::size_t i = 0; i < p.real_elems; ++i)
      a[i] = b[i] + p.scalar * c[i];
    const double t0 = ctx.sys().now();
    ctx.run(PhaseBuilder("triad")
                .threads(threads)
                .flops(2.0 * static_cast<double>(p.virtual_elems))
                .stream(seq_read(b.id(), bytes))
                .stream(seq_read(c.id(), bytes))
                .stream(seq_write(a.id(), bytes))
                .build());
    triad_time += ctx.sys().now() - t0;
  }

  AppResult r = finalize_result(ctx, name());
  // FoM: sustained triad bandwidth.
  r.fom = static_cast<double>(p.repetitions) * 3.0 *
          static_cast<double>(bytes) / triad_time / GB;
  r.fom_unit = "GB/s (triad)";
  r.higher_is_better = true;
  // After k reps starting from a=1, b=2: closed form is finite; just fold
  // the arrays' current sums (verified in tests against a direct rerun).
  double sum = 0.0;
  for (std::size_t i = 0; i < p.real_elems; ++i) sum += a[i] + b[i] + c[i];
  r.checksum = sum / static_cast<double>(p.real_elems);
  return r;
}

}  // namespace nvms
