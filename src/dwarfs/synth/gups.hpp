// GUPS-like random-access probe (extra application, not part of the
// paper's eight).
//
// Giga-updates-per-second: read-modify-write of random 8-byte words over a
// large table.  On NVM this is the worst case the device can see — random
// sub-media-granularity reads *and* writes — and it cleanly exposes the
// latency and write-amplification corners of the device model.  FoM is
// MUPS (million updates per second).
//
// Real numerics: the classic XOR-update over an actual table with the
// verifiable property that re-applying the same update stream restores
// the initial table.
#pragma once

#include "appfw/app.hpp"

namespace nvms {

struct GupsParams {
  std::uint64_t virtual_words = 8'000'000;  ///< 8B words in the table
  std::size_t real_words = 1 << 16;
  std::uint64_t updates = 4'000'000;
  int batches = 16;
  double mlp = 4.0;  ///< independent update chains in flight

  static GupsParams from(const AppConfig& cfg);
};

class GupsApp final : public App {
 public:
  std::string name() const override { return "gups"; }
  std::string dwarf() const override { return "Synthetic (latency probe)"; }
  std::string input_problem() const override {
    return "random 8B XOR updates over a 64 MB table";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
