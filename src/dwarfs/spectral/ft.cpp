#include "dwarfs/spectral/ft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "appfw/result.hpp"

namespace nvms {

FtParams FtParams::from(const AppConfig& cfg) {
  FtParams p;
  p.virtual_elems = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_elems) * cfg.size_scale);
  if (cfg.iterations > 0) p.iterations = cfg.iterations;
  return p;
}

void fft1d(std::complex<double>* data, std::size_t n, int sign) {
  require(n > 0 && (n & (n - 1)) == 0, "fft1d: n must be a power of two");
  // bit-reversal permutation
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        static_cast<double>(sign) * 2.0 * std::numbers::pi /
        static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft3d(std::vector<std::complex<double>>& cube, std::size_t n,
           int sign) {
  require(cube.size() == n * n * n, "fft3d: cube size mismatch");
  std::vector<std::complex<double>> line(n);
  const auto idx = [n](std::size_t x, std::size_t y, std::size_t z) {
    return x + n * (y + n * z);
  };
  // x lines (contiguous)
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      fft1d(&cube[idx(0, y, z)], n, sign);
  // y lines (stride n)
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) line[y] = cube[idx(x, y, z)];
      fft1d(line.data(), n, sign);
      for (std::size_t y = 0; y < n; ++y) cube[idx(x, y, z)] = line[y];
    }
  // z lines (stride n*n)
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t z = 0; z < n; ++z) line[z] = cube[idx(x, y, z)];
      fft1d(line.data(), n, sign);
      for (std::size_t z = 0; z < n; ++z) cube[idx(x, y, z)] = line[z];
    }
}

AppResult FtApp::run(AppContext& ctx) const {
  const auto p = FtParams::from(ctx.cfg());
  const std::uint64_t nv = p.virtual_elems;
  const std::uint64_t array_bytes = nv * sizeof(std::complex<double>);
  const std::size_t real_elems = p.real_dim * p.real_dim * p.real_dim;

  auto u0 = ctx.alloc<std::complex<double>>("u0", real_elems, nv);
  auto u1 = ctx.alloc<std::complex<double>>("u1", real_elems, nv);

  // Host initialization: pseudo-random field, forward-transformed once (as
  // NPB FT does in its setup).
  std::vector<std::complex<double>> host(real_elems);
  for (auto& c : host)
    c = {ctx.rng().uniform(-1.0, 1.0), ctx.rng().uniform(-1.0, 1.0)};
  fft3d(host, p.real_dim, -1);
  std::copy(host.begin(), host.end(), u0.data());

  const int threads = ctx.cfg().threads;
  const std::uint64_t wr_bytes = static_cast<std::uint64_t>(
      static_cast<double>(array_bytes) * p.write_absorption);
  // 5 N log2 N flops per 1D FFT pass over the whole array.
  const double pass_flops =
      5.0 * static_cast<double>(nv) *
      std::log2(static_cast<double>(std::max<std::uint64_t>(nv, 2)));

  std::complex<double> chk{0.0, 0.0};
  std::vector<std::complex<double>> work(real_elems);
  for (int it = 1; it <= p.iterations; ++it) {
    // evolve: u1 = u0 * exp(i * t * k^2) — pointwise, stream both arrays.
    for (std::size_t i = 0; i < real_elems; ++i) {
      const double phase =
          1e-6 * static_cast<double>(it) * static_cast<double>(i % 1024);
      work[i] = host[i] * std::complex<double>(std::cos(phase),
                                               std::sin(phase));
    }
    ctx.run(PhaseBuilder("evolve")
                .threads(threads)
                .flops(8.0 * static_cast<double>(nv))
                .stream(seq_read(u0.id(), array_bytes))
                .stream(seq_write(u1.id(), wr_bytes))
                .build());

    // inverse 3D FFT: one contiguous pass, two transpose-like passes.
    fft3d(work, p.real_dim, +1);
    ctx.run(PhaseBuilder("fftx")
                .threads(threads)
                .flops(pass_flops)
                .stream(seq_read(u1.id(), array_bytes + array_bytes / 2))
                .stream(seq_write(u1.id(), wr_bytes))
                .build());
    for (const char* pass : {"ffty", "fftz"}) {
      ctx.run(PhaseBuilder(pass)
                  .threads(threads)
                  .flops(pass_flops)
                  .stream(strided_read(u1.id(), array_bytes + array_bytes / 2))
                  .stream(strided_write(u1.id(), wr_bytes))
                  .build());
    }
    // transpose coordination: serial cost growing with participants.
    ctx.run(PhaseBuilder("sync")
                .threads(threads)
                .flops(p.sync_flops_per_thread * static_cast<double>(threads))
                .parallel_fraction(0.0)
                .build());

    // NPB-style checksum over a deterministic element subset.
    std::complex<double> local{0.0, 0.0};
    for (std::size_t q = 0; q < 1024; ++q) {
      local += work[(q * 17 + static_cast<std::size_t>(it)) % real_elems];
    }
    chk += local / static_cast<double>(real_elems);
    ctx.run(PhaseBuilder("checksum")
                .threads(threads)
                .flops(2.0 * 1024.0)
                .stream(rand_read(u1.id(), 1024 * sizeof(std::complex<double>)))
                .build());
  }

  AppResult r = finalize_result(ctx, name());
  // NPB FoM: total Mop/s of the transform work.
  const double total_flops =
      static_cast<double>(p.iterations) * (3.0 * pass_flops);
  r.fom = total_flops / r.runtime / 1e6;
  r.fom_unit = "Mop/s";
  r.higher_is_better = true;
  r.checksum = chk.real() + chk.imag();
  return r;
}

}  // namespace nvms
