// NPB FT proxy (Spectral Methods dwarf).
//
// Models the class-D discrete 3D FFT benchmark (Table II): per iteration an
// `evolve` pointwise multiply followed by an inverse 3D FFT (three axis
// passes, two of them strided/transpose-like) and a checksum reduction.
// The signature is the paper's "bottlenecked" tier poster child: high write
// ratio (~39%), moderate bandwidth, and a 14.9x slowdown on uncached NVM
// driven by write throttling; concurrency has the diverging read/write
// effect of Fig. 7.
//
// Real numerics: an actual radix-2 Cooley-Tukey 3D FFT over a
// representative cube, verified in tests against a naive DFT and by
// Parseval's identity; the NPB-style complex checksum is the app checksum.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

struct FtParams {
  /// Modelled grid (class D scaled 1/1024): 2 complex arrays.
  std::uint64_t virtual_elems = 2'000'000;  ///< per array
  std::size_t real_dim = 32;                ///< host cube edge (power of 2)
  int iterations = 20;
  double write_absorption = 0.9;  ///< fraction of stores reaching memory
  /// Serial transpose-coordination cost, flops per participating thread
  /// (the all-to-all grows with thread count; drives the <1 concurrency
  /// ratio the paper measures for FT even on DRAM, Fig. 6).
  double sync_flops_per_thread = 1.8e6;

  static FtParams from(const AppConfig& cfg);
};

/// In-place radix-2 complex FFT (sign=-1 forward, +1 inverse, unscaled).
/// Exposed for unit testing.  n must be a power of two.
void fft1d(std::complex<double>* data, std::size_t n, int sign);

/// 3D FFT over a cube of edge n stored x-fastest.  Unscaled.
void fft3d(std::vector<std::complex<double>>& cube, std::size_t n, int sign);

class FtApp final : public App {
 public:
  std::string name() const override { return "ft"; }
  std::string dwarf() const override { return "Spectral Methods"; }
  std::string input_problem() const override {
    return "discrete 3D FFT, NPB class D";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
