// XSBench proxy (Monte Carlo dwarf).
//
// Models the unionized-energy-grid macroscopic cross-section lookup kernel
// of XSBench [27] with the paper's "XL problem, 34 million lookups" input
// (Table II).  Each lookup binary-searches the unionized grid and
// interpolates the five cross sections of every isotope in the sampled
// material — a pure random-read, zero-write, latency-bound access
// signature (Table III: 16.1 GB/s read, ~0% write ratio on uncached NVM).
//
// Real numerics: an actual sorted grid is built and actual binary-search +
// linear interpolation runs per (subsampled) lookup; the verification hash
// is the checksum, mirroring XSBench's own verification scheme.
#pragma once

#include "appfw/app.hpp"

namespace nvms {

struct XsBenchParams {
  std::uint64_t total_lookups = 34'000'000;
  int batches = 17;                 ///< lookups are submitted in batches
  std::uint64_t bytes_per_lookup = 1536;  ///< grid walk + xs rows touched
  double flops_per_lookup = 250;
  double mlp = 3.0;                 ///< independent lookups in flight
  std::uint64_t grid_footprint = 64 * MiB;  ///< unionized grid + xs data
  std::size_t real_points = 1 << 14;  ///< host-side unionized grid points
  std::uint64_t real_lookups = 50'000;  ///< host-side lookups executed

  static XsBenchParams from(const AppConfig& cfg);
};

class XsBenchApp final : public App {
 public:
  std::string name() const override { return "xsbench"; }
  std::string dwarf() const override { return "Monte Carlo"; }
  std::string input_problem() const override {
    return "unionized grid, XL problem, 34M lookups";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
