#include "dwarfs/mc/xsbench.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "appfw/result.hpp"

namespace nvms {

XsBenchParams XsBenchParams::from(const AppConfig& cfg) {
  XsBenchParams p;
  p.grid_footprint = static_cast<std::uint64_t>(
      static_cast<double>(p.grid_footprint) * cfg.size_scale);
  p.total_lookups = static_cast<std::uint64_t>(
      static_cast<double>(p.total_lookups) * cfg.size_scale);
  if (cfg.iterations > 0) p.batches = cfg.iterations;
  return p;
}

namespace {

/// Five reaction channels, as in XSBench (total, elastic, absorption,
/// fission, nu-fission).
constexpr int kChannels = 5;
constexpr int kNuclides = 12;

/// Unionized energy grid plus per-nuclide cross-section tables and the
/// material -> nuclide composition of the reactor model.
struct HostGrid {
  std::vector<double> energy;            ///< sorted unionized energies
  std::vector<double> xs;                ///< [nuclide][point][channel]
  std::vector<std::vector<int>> materials;  ///< nuclide lists
  std::vector<double> material_probs;       ///< sampling distribution

  double xs_at(int nuclide, std::size_t point, int channel) const {
    return xs[(static_cast<std::size_t>(nuclide) * energy.size() + point) *
                  kChannels +
              static_cast<std::size_t>(channel)];
  }
};

HostGrid build_grid(std::size_t n, Rng& rng) {
  HostGrid g;
  g.energy.resize(n);
  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    e += rng.uniform(1e-6, 1e-3);
    g.energy[i] = e;
  }
  g.xs.resize(static_cast<std::size_t>(kNuclides) * n * kChannels);
  for (double& v : g.xs) v = rng.uniform(0.1, 10.0);
  // XSBench's 12 materials: fuel carries the most nuclides, the rest a
  // handful each; fuel dominates the sampling distribution.
  g.materials.resize(12);
  for (std::size_t m = 0; m < g.materials.size(); ++m) {
    const int count = m == 0 ? kNuclides : 2 + static_cast<int>(rng.below(4));
    for (int k = 0; k < count; ++k) {
      g.materials[m].push_back(static_cast<int>(rng.below(kNuclides)));
    }
    g.material_probs.push_back(m == 0 ? 0.45 : 0.05);
  }
  return g;
}

int sample_material(const HostGrid& g, Rng& rng) {
  double u = rng.uniform() * 1.0;
  for (std::size_t m = 0; m < g.materials.size(); ++m) {
    u -= g.material_probs[m];
    if (u <= 0.0) return static_cast<int>(m);
  }
  return 0;
}

/// One macroscopic lookup: one unionized binary search, then an
/// interpolation of all five channels for every nuclide in the sampled
/// material; returns the summed macro xs (the verification hash term).
double lookup(const HostGrid& g, double e, int material) {
  const auto it = std::lower_bound(g.energy.begin(), g.energy.end(), e);
  std::size_t hi = static_cast<std::size_t>(it - g.energy.begin());
  hi = std::clamp<std::size_t>(hi, 1, g.energy.size() - 1);
  const std::size_t lo = hi - 1;
  const double f =
      (e - g.energy[lo]) / (g.energy[hi] - g.energy[lo] + 1e-300);
  double macro = 0.0;
  for (const int nuc : g.materials[static_cast<std::size_t>(material)]) {
    for (int c = 0; c < kChannels; ++c) {
      const double a = g.xs_at(nuc, lo, c);
      const double b = g.xs_at(nuc, hi, c);
      macro += a + f * (b - a);
    }
  }
  return macro;
}

}  // namespace

AppResult XsBenchApp::run(AppContext& ctx) const {
  const auto p = XsBenchParams::from(ctx.cfg());
  require(p.batches > 0, "xsbench: batches must be positive");

  // Unionized grid (energies + per-isotope indices) and cross-section data.
  // The grid is ~1/4 of the footprint, the xs tables the rest.
  const std::uint64_t grid_bytes = p.grid_footprint / 4;
  const std::uint64_t xs_bytes = p.grid_footprint - grid_bytes;
  auto grid = ctx.alloc<double>("unionized_grid", p.real_points,
                                grid_bytes / sizeof(double));
  auto xs = ctx.alloc<double>("nuclide_xs", p.real_points * kChannels,
                              std::max<std::uint64_t>(
                                  xs_bytes / sizeof(double),
                                  p.real_points * kChannels));

  // Host-side numerics.
  HostGrid host = build_grid(p.real_points, ctx.rng());
  std::copy(host.energy.begin(), host.energy.end(), grid.data());
  std::copy(host.xs.begin(),
            host.xs.begin() + static_cast<std::ptrdiff_t>(std::min(
                                  host.xs.size(), xs.size())),
            xs.data());
  const double e_max = host.energy.back();

  double vhash = 0.0;
  const std::uint64_t lookups_per_batch = p.total_lookups / p.batches;
  const std::uint64_t real_per_batch =
      std::max<std::uint64_t>(1, p.real_lookups / p.batches);

  for (int b = 0; b < p.batches; ++b) {
    // Real lookups for the verification hash: sample a material, then the
    // unionized search + per-nuclide interpolation.
    for (std::uint64_t i = 0; i < real_per_batch; ++i) {
      const double e = ctx.rng().uniform(0.0, e_max);
      const int material = sample_material(host, ctx.rng());
      vhash += lookup(host, e, material);
    }
    // Exact traffic of the full batch: every lookup walks the search path
    // in the unionized grid (~1/3 of the touched bytes) and reads the xs
    // rows of the sampled material's isotopes (~2/3).
    const std::uint64_t batch_bytes = lookups_per_batch * p.bytes_per_lookup;
    ctx.run(PhaseBuilder("lookup")
                .threads(ctx.cfg().threads)
                .flops(static_cast<double>(lookups_per_batch) *
                       p.flops_per_lookup)
                .mlp(p.mlp)
                // Binary-search hops touch single cache lines; the xs rows
                // of the sampled isotopes are ~1.5 KB contiguous reads.
                .stream(rand_read(grid.id(), batch_bytes / 5).with_granule(64))
                .stream(rand_read(xs.id(), batch_bytes - batch_bytes / 5)
                            .with_granule(1536))
                .build());
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = static_cast<double>(p.total_lookups) / r.runtime;
  r.fom_unit = "lookups/s";
  r.higher_is_better = true;
  r.checksum = vhash;
  return r;
}

}  // namespace nvms
