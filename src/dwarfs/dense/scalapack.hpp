// ScaLAPACK proxy (Dense Linear Algebra dwarf).
//
// Models the distributed level-3 matrix multiply (pdgemm, SUMMA form) of
// Table II.  Each k-panel iteration has two stages mirroring Fig. 8:
//   stage 1 "bcast"  — panel broadcast into workspace (copy-bound, modest
//                      parallelism, write traffic);
//   stage 2 "update" — the local rank-nb update C += A_k B_k (streaming
//                      panel reads, C tile read-modify-write).
// On uncached NVM the write stream makes the phase mildly write-throttled
// (Table III: ~12 GB/s, 16% write ratio, 2.99x slowdown), which is exactly
// what write-aware placement of C removes (Fig. 12).
//
// Real numerics: an actual blocked GEMM over a representative matrix,
// verified against a naive triple loop in tests; checksum is the Frobenius
// norm of C.
#pragma once

#include <cstddef>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

struct ScalapackParams {
  std::size_t virtual_n = 1792;  ///< modelled matrix dimension
  std::size_t panel_nb = 128;    ///< panel width
  std::size_t real_n = 192;      ///< host matrix dimension
  std::size_t real_nb = 48;      ///< host block size
  /// Fraction of C streamed per panel update (cache-blocking reuse).
  double c_read_frac = 2.0;
  double c_write_frac = 0.2;
  /// Fraction of broadcast panel bytes written to workspace.
  double bcast_write_frac = 0.5;
  /// Effective fraction of peak flop rate the local dgemm sustains.
  double gemm_efficiency = 0.85;

  static ScalapackParams from(const AppConfig& cfg);
};

/// Blocked host GEMM: C += A * B, all n x n row-major, block size nb.
/// Exposed for unit testing.
void blocked_gemm(const double* a, const double* b, double* c, std::size_t n,
                  std::size_t nb);

class ScalapackApp final : public App {
 public:
  std::string name() const override { return "scalapack"; }
  std::string dwarf() const override { return "Dense Linear Algebra"; }
  std::string input_problem() const override {
    return "distributed matrix multiply (pdgemm), NxN";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
