#include "dwarfs/dense/scalapack.hpp"

#include <algorithm>
#include <cmath>

#include "appfw/result.hpp"

namespace nvms {

ScalapackParams ScalapackParams::from(const AppConfig& cfg) {
  ScalapackParams p;
  // Footprint scales with size_scale; dimension with its square root.
  const double dim_scale = std::sqrt(cfg.size_scale);
  p.virtual_n = static_cast<std::size_t>(
      static_cast<double>(p.virtual_n) * dim_scale);
  // Keep the dimension a multiple of the panel width.
  p.virtual_n = std::max<std::size_t>(p.panel_nb,
                                      p.virtual_n / p.panel_nb * p.panel_nb);
  return p;
}

void blocked_gemm(const double* a, const double* b, double* c, std::size_t n,
                  std::size_t nb) {
  require(nb > 0 && nb <= n, "blocked_gemm: bad block size");
  for (std::size_t ii = 0; ii < n; ii += nb) {
    for (std::size_t kk = 0; kk < n; kk += nb) {
      for (std::size_t jj = 0; jj < n; jj += nb) {
        const std::size_t ie = std::min(ii + nb, n);
        const std::size_t ke = std::min(kk + nb, n);
        const std::size_t je = std::min(jj + nb, n);
        for (std::size_t i = ii; i < ie; ++i) {
          for (std::size_t k = kk; k < ke; ++k) {
            const double aik = a[i * n + k];
            for (std::size_t j = jj; j < je; ++j) {
              c[i * n + j] += aik * b[k * n + j];
            }
          }
        }
      }
    }
  }
}

AppResult ScalapackApp::run(AppContext& ctx) const {
  const auto p = ScalapackParams::from(ctx.cfg());
  const std::size_t nv = p.virtual_n;
  const std::uint64_t mat_elems = static_cast<std::uint64_t>(nv) * nv;
  const std::size_t real_elems = p.real_n * p.real_n;

  auto a = ctx.alloc<double>("mat_a", real_elems, mat_elems);
  auto b = ctx.alloc<double>("mat_b", real_elems, mat_elems);
  auto c = ctx.alloc<double>("mat_c", real_elems, mat_elems);
  // Broadcast workspace: one A panel and one B panel.
  const std::uint64_t panel_elems = static_cast<std::uint64_t>(nv) * p.panel_nb;
  auto work = ctx.alloc<double>("panel_workspace", p.real_n * p.real_nb * 2,
                                panel_elems * 2);

  // Host numerics.
  for (std::size_t i = 0; i < real_elems; ++i) {
    a[i] = ctx.rng().uniform(-1.0, 1.0);
    b[i] = ctx.rng().uniform(-1.0, 1.0);
    c[i] = 0.0;
  }
  blocked_gemm(a.data(), b.data(), c.data(), p.real_n, p.real_nb);

  const int threads = ctx.cfg().threads;
  const std::uint64_t panel_bytes = panel_elems * sizeof(double);
  const std::uint64_t c_bytes = mat_elems * sizeof(double);
  const std::size_t panels = nv / p.panel_nb;
  const double update_flops =
      2.0 * static_cast<double>(mat_elems) * static_cast<double>(p.panel_nb) /
      p.gemm_efficiency;

  for (std::size_t k = 0; k < panels; ++k) {
    // Stage 1: broadcast A(:,k) and B(k,:) panels into workspace.
    ctx.run(PhaseBuilder("bcast")
                .threads(threads)
                .flops(1e6)
                .parallel_fraction(0.3)
                .stream(seq_read(a.id(), panel_bytes))
                .stream(seq_read(b.id(), panel_bytes))
                .stream(seq_write(work.id(),
                                  static_cast<std::uint64_t>(
                                      2.0 * static_cast<double>(panel_bytes) *
                                      p.bcast_write_frac)))
                .build());

    // Stage 2: rank-nb update of C from the workspace panels.  The C tile
    // traffic is half streaming (row panels) and half scattered block
    // gathers — the stage is read-bound on NVM, so its time shrinks as
    // read bandwidth scales with concurrency (Fig. 8).
    const auto c_read_half = static_cast<std::uint64_t>(
        static_cast<double>(c_bytes) * p.c_read_frac / 2.0);
    ctx.run(
        PhaseBuilder("update")
            .threads(threads)
            .flops(update_flops)
            .overlap(0.85)
            .mlp(2.5)
            .stream(seq_read(work.id(), 2 * panel_bytes))
            .stream(strided_read(c.id(), c_read_half))
            .stream(rand_read(c.id(), c_read_half).with_granule(64))
            .stream(strided_write(c.id(),
                                  static_cast<std::uint64_t>(
                                      static_cast<double>(c_bytes) *
                                      p.c_write_frac)))
            .build());
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = r.runtime;
  r.fom_unit = "s";
  r.higher_is_better = false;
  double frob = 0.0;
  for (std::size_t i = 0; i < real_elems; ++i) frob += c[i] * c[i];
  r.checksum = std::sqrt(frob);
  return r;
}

}  // namespace nvms
