// Laghos proxy (high-order Lagrangian hydrodynamics, the paper's eighth
// application).
//
// Models the Sedov blast wave Q3-Q2 3D computation (Table II) in two
// temporally distinct stages, matching the Fig. 5a/b traces:
//   stage 1 "assembly" — mass-matrix / quadrature-data assembly passes,
//     ~20% of execution, moving-average write bandwidth ~1.3 GB/s with a
//     read/write ratio of 3 — *below* the NVM throttling threshold, so the
//     stage keeps its share on uncached NVM;
//   stage 2 "timeloop" — corner-force + state update steps, compute-bound
//     with modest memory traffic.
// Laghos is the paper's second "insensitive" application (1.27x).
//
// Real numerics: an actual 1D staggered-grid Lagrangian hydro scheme
// (Sedov-like point blast, artificial viscosity, adaptive dt); tests check
// total-energy conservation and shock propagation.
#pragma once

#include <cstddef>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

struct LaghosParams {
  std::uint64_t virtual_zones = 500'000;  ///< modelled mesh zones
  std::size_t real_zones = 512;           ///< host 1D zones
  int assembly_passes = 8;
  int timesteps = 32;
  double gather_mlp = 1.5;

  static LaghosParams from(const AppConfig& cfg);
};

/// Host-side 1D Lagrangian hydro state (staggered: velocities on nodes).
struct HydroState {
  std::vector<double> x;    ///< node positions (zones+1)
  std::vector<double> v;    ///< node velocities (zones+1)
  std::vector<double> rho;  ///< zone density
  std::vector<double> e;    ///< zone specific internal energy
  double gamma = 1.4;

  std::size_t zones() const { return rho.size(); }
  double total_energy() const;
};

/// Sedov-like setup: uniform gas, energy spike in the central zone.
HydroState make_sedov(std::size_t zones, double blast_energy);
/// One explicit Lagrangian step; returns the stable dt actually used.
double hydro_step(HydroState& s, double cfl);
/// Position of the outward-moving shock (max |velocity| node).
double shock_position(const HydroState& s);

class LaghosApp final : public App {
 public:
  std::string name() const override { return "laghos"; }
  std::string dwarf() const override {
    return "Lagrangian hydrodynamics (proxy)";
  }
  std::string input_problem() const override {
    return "Sedov blast wave Q3-Q2 3D computation";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
