#include "dwarfs/laghos/laghos.hpp"

#include <algorithm>
#include <cmath>

#include "appfw/result.hpp"

namespace nvms {

LaghosParams LaghosParams::from(const AppConfig& cfg) {
  LaghosParams p;
  p.virtual_zones = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_zones) * cfg.size_scale);
  if (cfg.iterations > 0) p.timesteps = cfg.iterations;
  return p;
}

double HydroState::total_energy() const {
  double total = 0.0;
  for (std::size_t i = 0; i < zones(); ++i) {
    const double m = rho[i] * (x[i + 1] - x[i]);
    const double vz = 0.5 * (v[i] + v[i + 1]);
    total += m * (e[i] + 0.5 * vz * vz);
  }
  return total;
}

HydroState make_sedov(std::size_t zones, double blast_energy) {
  require(zones >= 8, "laghos: need at least 8 zones");
  HydroState s;
  s.x.resize(zones + 1);
  s.v.assign(zones + 1, 0.0);
  s.rho.assign(zones, 1.0);
  s.e.assign(zones, 1e-6);
  for (std::size_t i = 0; i <= zones; ++i)
    s.x[i] = static_cast<double>(i) / static_cast<double>(zones);
  s.e[0] = blast_energy / (s.rho[0] * (s.x[1] - s.x[0]));
  return s;
}

double hydro_step(HydroState& s, double cfl) {
  const std::size_t n = s.zones();
  // zone pressure with von Neumann-Richtmyer artificial viscosity
  std::vector<double> p(n);
  double max_speed = 1e-12;
  double min_dx = 1e300;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = s.x[i + 1] - s.x[i];
    const double dv = s.v[i + 1] - s.v[i];
    double q = 0.0;
    if (dv < 0.0) q = 2.0 * s.rho[i] * dv * dv;  // compression only
    p[i] = (s.gamma - 1.0) * s.rho[i] * s.e[i] + q;
    const double cs = std::sqrt(s.gamma * std::max(p[i], 1e-12) / s.rho[i]);
    max_speed = std::max(max_speed, cs + std::abs(dv));
    min_dx = std::min(min_dx, dx);
  }
  const double dt = cfl * min_dx / max_speed;

  // node acceleration from pressure gradient (reflective boundaries)
  for (std::size_t i = 1; i < n; ++i) {
    const double m_node =
        0.5 * (s.rho[i - 1] * (s.x[i] - s.x[i - 1]) +
               s.rho[i] * (s.x[i + 1] - s.x[i]));
    const double a = -(p[i] - p[i - 1]) / std::max(m_node, 1e-12);
    s.v[i] += dt * a;
  }
  s.v[0] = 0.0;
  s.v[n] = 0.0;

  // move mesh, update density (mass conservation) and energy (pdV work)
  for (std::size_t i = 0; i < n; ++i) {
    const double dx_old = s.x[i + 1] - s.x[i];
    const double m = s.rho[i] * dx_old;
    const double de = -p[i] * (s.v[i + 1] - s.v[i]) * dt / m;
    s.e[i] = std::max(s.e[i] + de, 1e-12);
    // positions advance after energy so pdV uses the begin-of-step p
  }
  for (std::size_t i = 0; i <= n; ++i) s.x[i] += dt * s.v[i];
  for (std::size_t i = 0; i < n; ++i) {
    const double dx_new = std::max(s.x[i + 1] - s.x[i], 1e-9);
    // zone mass is invariant; recover it from the pre-step state is not
    // possible here, so track via rho*dx continuity:
    s.rho[i] = s.rho[i] * (dx_new > 0 ? ((s.x[i + 1] - dt * s.v[i + 1]) -
                                         (s.x[i] - dt * s.v[i])) /
                                            dx_new
                                      : 1.0);
    s.rho[i] = std::max(s.rho[i], 1e-9);
  }
  return dt;
}

double shock_position(const HydroState& s) {
  std::size_t best = 0;
  double vmax = 0.0;
  for (std::size_t i = 0; i < s.v.size(); ++i) {
    if (std::abs(s.v[i]) > vmax) {
      vmax = std::abs(s.v[i]);
      best = i;
    }
  }
  return s.x[best];
}

AppResult LaghosApp::run(AppContext& ctx) const {
  const auto p = LaghosParams::from(ctx.cfg());
  const std::uint64_t Z = p.virtual_zones;
  // ~14 doubles per zone: positions, velocities, forces, quadrature data.
  const std::uint64_t mesh_elems = 6 * Z;
  const std::uint64_t quad_elems = 8 * Z;

  auto mesh = ctx.alloc<double>("mesh_state", 4 * p.real_zones, mesh_elems);
  auto quad = ctx.alloc<double>("quadrature_data", 4 * p.real_zones,
                                quad_elems);

  HydroState host = make_sedov(p.real_zones, 0.3);
  const double e0 = host.total_energy();

  const int threads = ctx.cfg().threads;
  const std::uint64_t fp = (mesh_elems + quad_elems) * sizeof(double);
  auto frac = [fp](double f) {
    return static_cast<std::uint64_t>(static_cast<double>(fp) * f);
  };

  // Stage 1: assembly passes (~20% of execution; writes stay below the
  // NVM throttling threshold at ~1.3 GB/s demand).
  const double assembly_flops = 1.25e10;
  for (int a = 0; a < p.assembly_passes; ++a) {
    ctx.run(PhaseBuilder("assembly")
                .threads(threads)
                .flops(assembly_flops)
                .parallel_fraction(0.995)
                .overlap(0.5)
                .mlp(p.gather_mlp)
                .stream(strided_read(quad.id(), frac(2.0)))
                .stream(rand_read(mesh.id(), frac(0.3)).with_granule(64))
                .stream(seq_write(quad.id(), frac(0.75)))
                .build());
  }

  // Stage 2: the time loop (corner force + state update), compute-bound.
  const double step_flops = 1.25e10;
  for (int t = 0; t < p.timesteps; ++t) {
    hydro_step(host, 0.4);
    ctx.run(PhaseBuilder("timeloop:force")
                .threads(threads)
                .flops(0.7 * step_flops)
                .parallel_fraction(0.995)
                .overlap(0.4)
                .mlp(p.gather_mlp)
                .stream(strided_read(quad.id(), frac(1.3)))
                .stream(rand_read(mesh.id(), frac(0.2)).with_granule(64))
                .stream(seq_write(mesh.id(), frac(0.3)))
                .build());
    ctx.run(PhaseBuilder("timeloop:update")
                .threads(threads)
                .flops(0.3 * step_flops)
                .parallel_fraction(0.995)
                .overlap(0.4)
                .stream(seq_read(mesh.id(), frac(0.35)))
                .stream(seq_write(mesh.id(), frac(0.2)))
                .build());
    if (ctx.cfg().step_hook) {
      ctx.cfg().step_hook(ctx.sys(), t, mesh.id(),
                          mesh_elems * sizeof(double));
    }
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = r.runtime;
  r.fom_unit = "s";
  r.higher_is_better = false;
  // Energy conservation error plus shock position: both physical checks.
  r.checksum = (host.total_energy() - e0) / e0 + shock_position(host);
  return r;
}

}  // namespace nvms
