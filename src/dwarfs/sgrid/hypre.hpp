// Hypre proxy (Structured Grids dwarf).
//
// Models an algebraic-multigrid preconditioned solve of the paper's "3D
// electromagnetic diffusion problem" (Table II): V-cycles of Jacobi
// smoothing, residual, restriction and prolongation over a 7-point stencil
// hierarchy.  The access signature is read-dominant (Table III: ~8% write
// ratio), a blend of strided coefficient streams and low-MLP random
// gathers, which lands Hypre in the "scaled" tier (4.67x) on uncached NVM
// and loses ~28% in cached-NVM because its footprint occupies ~85% of the
// DRAM cache (Fig. 4).
//
// Real numerics: an actual geometric multigrid V-cycle solving a 3D
// Poisson problem on the host cube; tests verify residual reduction.
#pragma once

#include <cstddef>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

struct HypreParams {
  std::uint64_t virtual_cells = 810'000;  ///< fine-grid cells (modelled)
  std::size_t real_dim = 32;              ///< host cube edge
  int vcycles = 12;
  int levels = 4;
  int pre_smooth = 2;
  /// Bytes of matrix data read per cell per sweep (coefficients + column
  /// indices of the 7-point rows).
  double matrix_bytes_per_cell = 80.0;
  /// Fraction of the matrix stream that behaves as random-small on the
  /// unstructured coarse hierarchy (vs strided on the fine grid).
  double random_fraction = 0.63;
  double gather_mlp = 2.0;

  static HypreParams from(const AppConfig& cfg);
};

/// Host-side multigrid solver on an n^3 Poisson problem (h=1), exposed for
/// unit tests.  Returns the relative residual after `vcycles` V-cycles.
double poisson_mg_solve(std::size_t n, int vcycles, int levels,
                        int pre_smooth, std::vector<double>& u,
                        const std::vector<double>& rhs);

class HypreApp final : public App {
 public:
  std::string name() const override { return "hypre"; }
  std::string dwarf() const override { return "Structured Grids"; }
  std::string input_problem() const override {
    return "3D electromagnetic diffusion (AMG V-cycles)";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
