#include "dwarfs/sgrid/hypre.hpp"

#include <algorithm>
#include <cmath>

#include "appfw/result.hpp"

namespace nvms {

HypreParams HypreParams::from(const AppConfig& cfg) {
  HypreParams p;
  p.virtual_cells = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_cells) * cfg.size_scale);
  if (cfg.iterations > 0) p.vcycles = cfg.iterations;
  return p;
}

namespace {

// ---- host geometric multigrid on an n^3 Poisson problem ---------------

struct Level {
  std::size_t n;  // cube edge
  std::vector<double> u, rhs, res;
};

std::size_t idx(std::size_t n, std::size_t i, std::size_t j, std::size_t k) {
  return i + n * (j + n * k);
}

/// Weighted Jacobi sweep for -laplace(u) = rhs (Dirichlet-0 boundary,
/// interior points only), omega = 2/3.
void jacobi(Level& L, int sweeps) {
  const std::size_t n = L.n;
  std::vector<double> tmp(L.u.size());
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t k = 1; k + 1 < n; ++k)
      for (std::size_t j = 1; j + 1 < n; ++j)
        for (std::size_t i = 1; i + 1 < n; ++i) {
          const double nb = L.u[idx(n, i - 1, j, k)] +
                            L.u[idx(n, i + 1, j, k)] +
                            L.u[idx(n, i, j - 1, k)] +
                            L.u[idx(n, i, j + 1, k)] +
                            L.u[idx(n, i, j, k - 1)] +
                            L.u[idx(n, i, j, k + 1)];
          const double jac = (L.rhs[idx(n, i, j, k)] + nb) / 6.0;
          tmp[idx(n, i, j, k)] =
              L.u[idx(n, i, j, k)] + (2.0 / 3.0) * (jac - L.u[idx(n, i, j, k)]);
        }
    for (std::size_t k = 1; k + 1 < n; ++k)
      for (std::size_t j = 1; j + 1 < n; ++j)
        for (std::size_t i = 1; i + 1 < n; ++i)
          L.u[idx(n, i, j, k)] = tmp[idx(n, i, j, k)];
  }
}

void residual(Level& L) {
  const std::size_t n = L.n;
  std::fill(L.res.begin(), L.res.end(), 0.0);
  for (std::size_t k = 1; k + 1 < n; ++k)
    for (std::size_t j = 1; j + 1 < n; ++j)
      for (std::size_t i = 1; i + 1 < n; ++i) {
        const double nb = L.u[idx(n, i - 1, j, k)] + L.u[idx(n, i + 1, j, k)] +
                          L.u[idx(n, i, j - 1, k)] + L.u[idx(n, i, j + 1, k)] +
                          L.u[idx(n, i, j, k - 1)] + L.u[idx(n, i, j, k + 1)];
        L.res[idx(n, i, j, k)] =
            L.rhs[idx(n, i, j, k)] - (6.0 * L.u[idx(n, i, j, k)] - nb);
      }
}

void restrict_to(const Level& fine, Level& coarse) {
  const std::size_t nc = coarse.n;
  const std::size_t nf = fine.n;
  std::fill(coarse.rhs.begin(), coarse.rhs.end(), 0.0);
  std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
  for (std::size_t k = 1; k + 1 < nc; ++k)
    for (std::size_t j = 1; j + 1 < nc; ++j)
      for (std::size_t i = 1; i + 1 < nc; ++i) {
        // full-weighting-style restriction (mean over the 2^3 children),
        // scaled 4x for the coarser spacing h -> 2h
        double sum = 0.0;
        for (std::size_t dk = 0; dk < 2; ++dk)
          for (std::size_t dj = 0; dj < 2; ++dj)
            for (std::size_t di = 0; di < 2; ++di)
              sum += fine.res[idx(nf, 2 * i + di, 2 * j + dj, 2 * k + dk)];
        coarse.rhs[idx(nc, i, j, k)] = 4.0 * sum / 8.0;
      }
}

void prolong_add(Level& fine, const Level& coarse) {
  const std::size_t nc = coarse.n;
  const std::size_t nf = fine.n;
  for (std::size_t k = 1; k + 1 < nc; ++k)
    for (std::size_t j = 1; j + 1 < nc; ++j)
      for (std::size_t i = 1; i + 1 < nc; ++i) {
        const double v = coarse.u[idx(nc, i, j, k)];
        for (std::size_t dk = 0; dk < 2; ++dk)
          for (std::size_t dj = 0; dj < 2; ++dj)
            for (std::size_t di = 0; di < 2; ++di) {
              const std::size_t fi = 2 * i + di;
              const std::size_t fj = 2 * j + dj;
              const std::size_t fk = 2 * k + dk;
              if (fi + 1 < nf && fj + 1 < nf && fk + 1 < nf)
                fine.u[idx(nf, fi, fj, fk)] += v;
            }
      }
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

double poisson_mg_solve(std::size_t n, int vcycles, int levels,
                        int pre_smooth, std::vector<double>& u,
                        const std::vector<double>& rhs) {
  require(n >= 8 && (n & (n - 1)) == 0, "hypre: host dim must be 2^k >= 8");
  require(levels >= 1, "hypre: need at least one level");
  std::vector<Level> hier;
  std::size_t dim = n;
  for (int l = 0; l < levels && dim >= 8; ++l, dim /= 2) {
    Level L;
    L.n = dim;
    L.u.assign(dim * dim * dim, 0.0);
    L.rhs.assign(dim * dim * dim, 0.0);
    L.res.assign(dim * dim * dim, 0.0);
    hier.push_back(std::move(L));
  }
  hier[0].u = u;
  hier[0].rhs = rhs;
  const double rhs_norm = std::max(norm2(rhs), 1e-300);

  for (int c = 0; c < vcycles; ++c) {
    for (std::size_t l = 0; l + 1 < hier.size(); ++l) {
      jacobi(hier[l], pre_smooth);
      residual(hier[l]);
      restrict_to(hier[l], hier[l + 1]);
    }
    jacobi(hier.back(), 8 * pre_smooth);  // coarse "solve"
    for (std::size_t l = hier.size() - 1; l-- > 0;) {
      prolong_add(hier[l], hier[l + 1]);
      jacobi(hier[l], pre_smooth);
    }
  }
  residual(hier[0]);
  u = hier[0].u;
  return norm2(hier[0].res) / rhs_norm;
}

AppResult HypreApp::run(AppContext& ctx) const {
  const auto p = HypreParams::from(ctx.cfg());
  const std::uint64_t nv = p.virtual_cells;
  const std::size_t real_cells = p.real_dim * p.real_dim * p.real_dim;

  // Modelled data: stencil matrix (coefficients + indices) and the vector
  // set (u, rhs, residual, temp).
  auto mat = ctx.alloc<double>(
      "amg_matrix", real_cells,
      static_cast<std::uint64_t>(static_cast<double>(nv) *
                                 p.matrix_bytes_per_cell / sizeof(double)));
  auto vec = ctx.alloc<double>("grid_vectors", 4 * real_cells, 4 * nv);

  // Host numerics: point source in the cube center.
  std::vector<double> u(real_cells, 0.0);
  std::vector<double> rhs(real_cells, 0.0);
  rhs[idx(p.real_dim, p.real_dim / 2, p.real_dim / 2, p.real_dim / 2)] = 1.0;
  const double rel_res =
      poisson_mg_solve(p.real_dim, p.vcycles, p.levels, p.pre_smooth, u, rhs);
  std::copy(u.begin(), u.end(), vec.data());

  const int threads = ctx.cfg().threads;
  // Per-sweep traffic at level l (cells / 8^l).
  auto sweep = [&](const char* phase_name, std::uint64_t cells,
                   double write_cells_frac) {
    const double mat_bytes = static_cast<double>(cells) *
                             p.matrix_bytes_per_cell;
    const std::uint64_t strided_bytes = static_cast<std::uint64_t>(
        mat_bytes * (1.0 - p.random_fraction));
    const std::uint64_t mat_random = static_cast<std::uint64_t>(
        mat_bytes * p.random_fraction);
    const std::uint64_t gather_bytes = 16 * cells;  // u-gathers
    const std::uint64_t vec_read = 8 * cells;       // rhs stream
    const std::uint64_t vec_write = static_cast<std::uint64_t>(
        8.0 * static_cast<double>(cells) * write_cells_frac);
    ctx.run(PhaseBuilder(phase_name)
                .threads(threads)
                .flops(12.0 * static_cast<double>(cells))
                .mlp(p.gather_mlp)
                .stream(strided_read(mat.id(), strided_bytes).with_reuse(3))
                .stream(rand_read(mat.id(), mat_random).with_granule(64))
                .stream(rand_read(vec.id(), gather_bytes).with_granule(64))
                .stream(seq_read(vec.id(), vec_read))
                .stream(seq_write(vec.id(), vec_write))
                .build());
  };

  for (int c = 0; c < p.vcycles; ++c) {
    std::uint64_t cells = nv;
    for (int l = 0; l < p.levels; ++l, cells /= 8) {
      for (int s = 0; s < p.pre_smooth; ++s) sweep("smooth-down", cells, 1.0);
      sweep("residual+restrict", cells, 0.25);
    }
    for (int l = p.levels; l-- > 0;) {
      cells = nv >> (3 * l);
      sweep("prolong", cells, 1.0);
      for (int s = 0; s < p.pre_smooth; ++s) sweep("smooth-up", cells, 1.0);
    }
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = r.runtime;
  r.fom_unit = "s";
  r.higher_is_better = false;
  r.checksum = rel_res + norm2(u);
  return r;
}

}  // namespace nvms
