#include "dwarfs/ugrid/boxlib.hpp"

#include <algorithm>
#include <cmath>

#include "appfw/result.hpp"

namespace nvms {

BoxLibParams BoxLibParams::from(const AppConfig& cfg) {
  BoxLibParams p;
  p.virtual_cells_l0 = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_cells_l0) * cfg.size_scale);
  if (cfg.iterations > 0) p.steps = cfg.iterations;
  return p;
}

double WaveState::total_mass() const {
  double m = 0.0;
  for (double v : c) m += v;
  return m;
}

WaveState make_wave(std::size_t n, double radius) {
  WaveState s;
  s.n = n;
  s.c.assign(n * n, 0.0);
  const double cx = static_cast<double>(n) / 2.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - cx;
      const double dy = static_cast<double>(j) - cx;
      const double r = std::sqrt(dx * dx + dy * dy);
      s.c[j * n + i] = r < radius ? 1.0 : 0.0;
    }
  return s;
}

void wave_step(WaveState& s, double v, double dt, double react_rate) {
  const std::size_t n = s.n;
  const double cx = static_cast<double>(n) / 2.0;
  std::vector<double> next(s.c.size());
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - cx;
      const double dy = static_cast<double>(j) - cx;
      const double r = std::max(std::sqrt(dx * dx + dy * dy), 1e-9);
      // radial outward velocity components
      const double vx = v * dx / r;
      const double vy = v * dy / r;
      // first-order upwind gradients
      const std::size_t im = i > 0 ? i - 1 : i;
      const std::size_t ip = i + 1 < n ? i + 1 : i;
      const std::size_t jm = j > 0 ? j - 1 : j;
      const std::size_t jp = j + 1 < n ? j + 1 : j;
      const double cij = s.c[j * n + i];
      const double gx = vx >= 0 ? cij - s.c[j * n + im]
                                : s.c[j * n + ip] - cij;
      const double gy = vy >= 0 ? cij - s.c[jm * n + i]
                                : s.c[jp * n + i] - cij;
      double cn = cij - dt * (std::abs(vx) * gx + std::abs(vy) * gy);
      cn += dt * react_rate * cn * (1.0 - cn);  // logistic reaction
      next[j * n + i] = std::clamp(cn, 0.0, 1.0);
    }
  }
  s.c.swap(next);
}

double wave_front_radius(const WaveState& s) {
  const std::size_t n = s.n;
  const double cx = static_cast<double>(n) / 2.0;
  double sum_r = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double a = s.c[j * n + i];
      const double b = s.c[j * n + i + 1];
      if ((a - 0.5) * (b - 0.5) <= 0.0 && a != b) {
        const double dx = static_cast<double>(i) - cx;
        const double dy = static_cast<double>(j) - cx;
        sum_r += std::sqrt(dx * dx + dy * dy);
        ++count;
      }
    }
  return count > 0 ? sum_r / static_cast<double>(count) : 0.0;
}

AppResult BoxLibApp::run(AppContext& ctx) const {
  const auto p = BoxLibParams::from(ctx.cfg());
  const std::uint64_t l0_cells = p.virtual_cells_l0;
  const std::uint64_t l1_cells = static_cast<std::uint64_t>(
      static_cast<double>(l0_cells) * p.refined_fraction *
      p.refine_ratio * p.refine_ratio);
  const std::uint64_t cell_bytes = p.ncomp * sizeof(double);
  const std::uint64_t l0_bytes = l0_cells * cell_bytes;
  const std::uint64_t l1_bytes = l1_cells * cell_bytes;

  auto level0 = ctx.alloc<double>("amr_level0",
                                  p.real_dim * p.real_dim,
                                  l0_cells * p.ncomp);
  auto level1 = ctx.alloc<double>(
      "amr_level1", p.real_dim * p.real_dim,
      std::max<std::uint64_t>(l1_cells * p.ncomp, p.real_dim * p.real_dim));

  // Host numerics: circular wave on level 0 resolution.
  WaveState wave = make_wave(p.real_dim, static_cast<double>(p.real_dim) / 10);
  const double r0 = wave_front_radius(wave);

  const int threads = ctx.cfg().threads;
  auto frac = [](std::uint64_t b, double f) {
    return static_cast<std::uint64_t>(static_cast<double>(b) * f);
  };

  for (int step = 0; step < p.steps; ++step) {
    wave_step(wave, 0.4, 0.5, 0.35);
    std::copy(wave.c.begin(), wave.c.end(), level0.data());

    // Level-0 advection + reaction: stencil reads, new-state writes.
    ctx.run(PhaseBuilder("advect:l0")
                .threads(threads)
                .flops(30.0 * static_cast<double>(l0_cells))
                .stream(strided_read(level0.id(), frac(l0_bytes, 1.8)).with_reuse(3))
                .stream(seq_write(level0.id(), frac(l0_bytes, 0.33)).with_reuse(3))
                .build());

    // Fillpatch: interpolate level-0 ghost data into level-1 boxes.
    ctx.run(PhaseBuilder("fillpatch")
                .threads(threads)
                .flops(4.0 * static_cast<double>(l1_cells) * 0.2)
                .mlp(p.gather_mlp)
                .stream(strided_read(level0.id(), frac(l0_bytes, 0.3)))
                .stream(rand_write(level1.id(), frac(l1_bytes, 0.03))
                            .with_granule(64))
                .build());

    // Level-1 advection + reaction on the refined boxes.
    ctx.run(PhaseBuilder("advect:l1")
                .threads(threads)
                .flops(30.0 * static_cast<double>(l1_cells))
                .stream(strided_read(level1.id(), frac(l1_bytes, 1.8)).with_reuse(3))
                .stream(seq_write(level1.id(), frac(l1_bytes, 0.33)).with_reuse(3))
                .build());

    // Reflux + regrid: move boxes with the front, copy state into the new
    // layout (write-heavy, partially random).
    if ((step + 1) % p.regrid_interval == 0) {
      ctx.run(PhaseBuilder("regrid")
                  .threads(threads)
                  .flops(2.0 * static_cast<double>(l1_cells))
                  .mlp(p.gather_mlp)
                  .stream(strided_read(level1.id(), frac(l1_bytes, 1.0)).with_reuse(3))
                  .stream(seq_write(level1.id(), frac(l1_bytes, 0.5)).with_reuse(3))
                  .stream(rand_write(level0.id(), frac(l0_bytes, 0.05))
                              .with_granule(64))
                  .build());
    }
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = r.runtime;
  r.fom_unit = "s";
  r.higher_is_better = false;
  // The front must have moved outward; fold position + mass into checksum.
  r.checksum = wave_front_radius(wave) - r0 + wave.total_mass();
  return r;
}

}  // namespace nvms
