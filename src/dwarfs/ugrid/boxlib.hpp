// BoxLib/AMReX proxy (Unstructured Grids dwarf).
//
// Models the spherical chemical-wave propagation benchmark (Table II) on a
// two-level block-structured AMR hierarchy.  Each step advects and reacts
// the species field on level 0 and on the refined boxes tracking the wave
// front, exchanges ghost cells (fillpatch), and periodically refluxes /
// regrids.  The signature combines substantial write traffic (new state +
// ghost scatter + regrid copies, ~21% write ratio) with strided/irregular
// reads — the paper's "bottlenecked" tier (8.94x on uncached NVM), driven
// by write throttling like FT.
//
// Real numerics: an actual 2D upwind advection + logistic reaction of a
// circular wave with a refined annulus around the front; tests verify wave
// propagation and concentration bounds.
#pragma once

#include <cstddef>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

struct BoxLibParams {
  std::uint64_t virtual_cells_l0 = 620'000;  ///< level-0 cells (modelled)
  double refined_fraction = 0.35;  ///< of level 0 covered by level 1 boxes
  int refine_ratio = 2;            ///< per dimension (2D -> 4x cells)
  std::size_t real_dim = 96;       ///< host level-0 grid edge (2D)
  int steps = 16;
  int regrid_interval = 4;
  /// State components per cell (species + velocity + work).
  int ncomp = 6;
  double gather_mlp = 3.0;

  static BoxLibParams from(const AppConfig& cfg);
};

/// Host-side wave state, exposed for unit tests.
struct WaveState {
  std::size_t n = 0;          ///< grid edge
  std::vector<double> c;      ///< concentration field (n*n)
  double total_mass() const;
};

WaveState make_wave(std::size_t n, double radius);
/// One upwind advection (radial, speed v) + logistic reaction step.
void wave_step(WaveState& s, double v, double dt, double react_rate);
/// Mean radius of the c=0.5 contour (wave front position).
double wave_front_radius(const WaveState& s);

class BoxLibApp final : public App {
 public:
  std::string name() const override { return "boxlib"; }
  std::string dwarf() const override { return "Unstructured Grids"; }
  std::string input_problem() const override {
    return "spherical chemical wave propagation (2-level AMR)";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
