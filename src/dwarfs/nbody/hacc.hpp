// HACC proxy (N-body dwarf).
//
// Models the short-range particle force kernel of HACC [10] on the paper's
// "252 Mpc simulation box, 384 grids" CORAL input (Table II).  The kernel
// is compute-bound: per step the O(N * neighbours) force evaluation
// dominates while memory traffic stays tiny (Table III: 40 MB/s total,
// 36% write ratio, 1.01x slowdown on uncached NVM — the "insensitive"
// tier).
//
// Real numerics: a cell-list short-range gravity integrator (leapfrog) on
// a representative particle set; the checksum folds total kinetic energy
// and momentum, which tests verify for conservation properties.
#pragma once

#include <array>
#include <vector>

#include "appfw/app.hpp"

namespace nvms {

struct HaccParams {
  std::uint64_t virtual_particles = 800'000;  ///< modelled particle count
  std::size_t real_particles = 8'192;           ///< host-side particles
  int steps = 8;
  double neighbours = 64.0;  ///< avg short-range interaction partners
  double flops_per_interaction = 22.0;  ///< rsqrt + fma kernel

  static HaccParams from(const AppConfig& cfg);
};

/// Host-side particle state (SoA, unit periodic box).
struct ParticleSet {
  std::vector<double> pos;  ///< 3N
  std::vector<double> vel;  ///< 3N
  std::vector<double> acc;  ///< 3N
  std::size_t count() const { return pos.size() / 3; }
};

/// Uniform random particles with small velocities.
ParticleSet make_particles(std::size_t n, std::uint64_t seed);

/// Short-range softened gravity via a 3D cell list with periodic
/// minimum-image distances; forces are pairwise symmetric (Newton's third
/// law), so total momentum is conserved exactly.  Exposed for testing.
void cell_list_forces(ParticleSet& s, double cutoff);

/// Kick-drift update.
void leapfrog_step(ParticleSet& s, double dt);

/// Sum of 0.5 v^2 over all particles.
double kinetic_energy(const ParticleSet& s);
/// Total momentum component sums (3 values).
std::array<double, 3> total_momentum(const ParticleSet& s);

class HaccApp final : public App {
 public:
  std::string name() const override { return "hacc"; }
  std::string dwarf() const override { return "N-body"; }
  std::string input_problem() const override {
    return "252 Mpc box, 384^3 grid (CORAL), short-range force";
  }
  AppResult run(AppContext& ctx) const override;
};

}  // namespace nvms
