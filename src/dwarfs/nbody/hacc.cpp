#include "dwarfs/nbody/hacc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "appfw/result.hpp"

namespace nvms {

HaccParams HaccParams::from(const AppConfig& cfg) {
  HaccParams p;
  p.virtual_particles = static_cast<std::uint64_t>(
      static_cast<double>(p.virtual_particles) * cfg.size_scale);
  if (cfg.iterations > 0) p.steps = cfg.iterations;
  return p;
}

namespace {

/// Plummer-softened pairwise kernel used by the real host integrator.
constexpr double kSoftening2 = 1e-4;

}  // namespace

ParticleSet make_particles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ParticleSet s;
  s.pos.resize(3 * n);
  s.vel.resize(3 * n);
  s.acc.assign(3 * n, 0.0);
  for (std::size_t i = 0; i < 3 * n; ++i) {
    s.pos[i] = rng.uniform(0.0, 1.0);
    s.vel[i] = rng.uniform(-0.01, 0.01);
  }
  return s;
}

/// Short-range force via a real 3D cell list over the unit box: particles
/// are binned into cells of edge >= the cutoff, and pairs interact only
/// within the 27-cell neighbourhood — HACC's short-range structure.
void cell_list_forces(ParticleSet& s, double cutoff) {
  const std::size_t n = s.pos.size() / 3;
  std::fill(s.acc.begin(), s.acc.end(), 0.0);
  const int grid = std::max(1, static_cast<int>(1.0 / cutoff));
  const double cell_edge = 1.0 / grid;
  const double rc2 = cutoff * cutoff;

  auto cell_of = [&](std::size_t i) {
    int c[3];
    for (int k = 0; k < 3; ++k) {
      const double x = s.pos[3 * i + k] - std::floor(s.pos[3 * i + k]);
      c[k] = std::min(grid - 1,
                      static_cast<int>(x / cell_edge));
    }
    return (c[2] * grid + c[1]) * grid + c[0];
  };
  // bucket sort into cells
  std::vector<std::vector<std::size_t>> cells(
      static_cast<std::size_t>(grid) * grid * grid);
  for (std::size_t i = 0; i < n; ++i) cells[cell_of(i)].push_back(i);

  auto interact = [&](std::size_t i, std::size_t j) {
    double d[3];
    double r2 = kSoftening2;
    for (int k = 0; k < 3; ++k) {
      d[k] = s.pos[3 * j + k] - s.pos[3 * i + k];
      d[k] -= std::round(d[k]);  // periodic box
      r2 += d[k] * d[k];
    }
    if (r2 > rc2 + kSoftening2) return;
    const double inv_r = 1.0 / std::sqrt(r2);
    const double w = inv_r * inv_r * inv_r;
    for (int k = 0; k < 3; ++k) {
      s.acc[3 * i + k] += w * d[k];
      s.acc[3 * j + k] -= w * d[k];
    }
  };

  for (int cz = 0; cz < grid; ++cz) {
    for (int cy = 0; cy < grid; ++cy) {
      for (int cx = 0; cx < grid; ++cx) {
        const auto& home =
            cells[static_cast<std::size_t>((cz * grid + cy) * grid + cx)];
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx = (cx + dx + grid) % grid;
              const int ny = (cy + dy + grid) % grid;
              const int nz = (cz + dz + grid) % grid;
              const std::size_t nc =
                  static_cast<std::size_t>((nz * grid + ny) * grid + nx);
              const std::size_t hc =
                  static_cast<std::size_t>((cz * grid + cy) * grid + cx);
              if (nc < hc) continue;  // each cell pair once
              const auto& other = cells[nc];
              for (std::size_t a = 0; a < home.size(); ++a) {
                const std::size_t b0 = (nc == hc) ? a + 1 : 0;
                for (std::size_t b = b0; b < other.size(); ++b) {
                  interact(home[a], other[b]);
                }
              }
            }
          }
        }
      }
    }
  }
}

void leapfrog_step(ParticleSet& s, double dt) {
  const std::size_t n3 = s.pos.size();
  for (std::size_t i = 0; i < n3; ++i) {
    s.vel[i] += dt * s.acc[i];
    s.pos[i] += dt * s.vel[i];
  }
}

double kinetic_energy(const ParticleSet& s) {
  double ke = 0.0;
  for (double v : s.vel) ke += 0.5 * v * v;
  return ke;
}

std::array<double, 3> total_momentum(const ParticleSet& s) {
  std::array<double, 3> p = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < s.count(); ++i) {
    for (int k = 0; k < 3; ++k) p[static_cast<std::size_t>(k)] += s.vel[3 * i + k];
  }
  return p;
}

AppResult HaccApp::run(AppContext& ctx) const {
  const auto p = HaccParams::from(ctx.cfg());
  const std::uint64_t nv = p.virtual_particles;

  auto pos = ctx.alloc<double>("particles_pos", 3 * p.real_particles, 3 * nv);
  auto vel = ctx.alloc<double>("particles_vel", 3 * p.real_particles, 3 * nv);
  auto acc = ctx.alloc<double>("particles_acc", 3 * p.real_particles, 3 * nv);

  ParticleSet host = make_particles(p.real_particles, ctx.cfg().seed);
  std::copy(host.pos.begin(), host.pos.end(), pos.data());

  // HACC subcycles the short-range force many times per long (memory
  // visible) step; particle tiles live in cache during subcycling, so DRAM
  // traffic only occurs at step boundaries.
  constexpr int kSubcycles = 400;
  const double flops_per_step = static_cast<double>(nv) * p.neighbours *
                                p.flops_per_interaction * kSubcycles;

  for (int step = 0; step < p.steps; ++step) {
    cell_list_forces(host, 0.1);
    leapfrog_step(host, 1e-3);

    // Streaming pass over positions (read) plus the velocity/acceleration
    // update writes: matches the ~36% write ratio of Table III.
    ctx.run(PhaseBuilder("force+kick")
                .threads(ctx.cfg().threads)
                .flops(flops_per_step)
                .parallel_fraction(0.995)
                .stream(seq_read(pos.id(), 3 * nv * sizeof(double)))
                .stream(seq_read(vel.id(), nv * sizeof(double)))
                .stream(seq_write(vel.id(), nv * sizeof(double)))
                .stream(seq_write(acc.id(), nv * sizeof(double) * 3 / 4))
                .build());
  }

  AppResult r = finalize_result(ctx, name());
  r.fom = r.runtime;
  r.fom_unit = "s";
  r.higher_is_better = false;
  r.checksum = kinetic_energy(host);
  return r;
}

}  // namespace nvms
