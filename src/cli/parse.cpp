#include "cli/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "simcore/units.hpp"

namespace nvms {

namespace {

/// True when `s` looks like a number strtol/strtod may parse from the
/// first byte: no leading whitespace (strtol would skip it and we would
/// accept " 12"), not empty.
bool starts_numeric(const std::string& s) {
  if (s.empty()) return false;
  return !std::isspace(static_cast<unsigned char>(s.front()));
}

}  // namespace

std::optional<long> parse_long(const std::string& s) {
  if (!starts_numeric(s)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<double> parse_double(const std::string& s) {
  if (!starts_numeric(s)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE && (v == 0.0 || std::isinf(v))) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;  // "inf", "nan"
  return v;
}

std::optional<std::vector<int>> parse_int_csv(const std::string& s, long min,
                                              std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  if (s.empty()) return fail("empty list");
  std::vector<int> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string cell = s.substr(begin, end - begin);
    if (cell.empty()) {
      return fail("empty cell at position " + std::to_string(begin));
    }
    const auto v = parse_long(cell);
    if (!v) return fail("'" + cell + "' is not an integer");
    if (*v < min) {
      return fail("'" + cell + "' is below the minimum of " +
                  std::to_string(min));
    }
    if (*v > std::numeric_limits<int>::max()) {
      return fail("'" + cell + "' is out of range");
    }
    out.push_back(static_cast<int>(*v));
    if (comma == std::string::npos) break;
    begin = comma + 1;
    if (begin == s.size()) return fail("trailing comma");
  }
  return out;
}

std::optional<std::uint64_t> parse_budget_spec(const std::string& s,
                                               std::uint64_t dram_capacity,
                                               std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  if (!starts_numeric(s)) return fail("expected a number, got '" + s + "'");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return fail("expected a number, got '" + s + "'");
  if (errno == ERANGE || !std::isfinite(value)) {
    return fail("'" + s + "' is out of range");
  }
  if (value < 0.0) return fail("budget must not be negative");
  const std::string suffix(end);
  if (suffix == "%") {
    if (value <= 0.0 || value > 100.0) {
      return fail("budget percent must be in (0,100]");
    }
    return static_cast<std::uint64_t>(static_cast<double>(dram_capacity) *
                                      value / 100.0);
  }
  double mult = 1.0;
  if (suffix == "KiB") {
    mult = static_cast<double>(KiB);
  } else if (suffix == "MiB") {
    mult = static_cast<double>(MiB);
  } else if (suffix == "GiB") {
    mult = static_cast<double>(GiB);
  } else if (!suffix.empty()) {
    return fail("bad suffix '" + suffix + "' (want %, KiB, MiB or GiB)");
  }
  return static_cast<std::uint64_t>(value * mult);
}

}  // namespace nvms
