// Entry point of the nvmsim command-line driver.
//
// The service-mode commands (`serve`, `client`) are routed here, before
// cli_main, so the cli module never depends on the serve module (serve
// links cli, not the other way around).
#include <iostream>
#include <string>

#include "cli/driver.hpp"
#include "serve/daemon.hpp"

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string cmd = argv[1];
    if (cmd == "serve") {
      return nvms::serve_main(argc, argv, std::cout, std::cerr);
    }
    if (cmd == "client") {
      return nvms::client_main(argc, argv, std::cin, std::cout, std::cerr);
    }
  }
  return nvms::cli_main(argc, argv, std::cout, std::cerr);
}
