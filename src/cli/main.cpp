// Entry point of the nvmsim command-line driver.
#include <iostream>

#include "cli/driver.hpp"

int main(int argc, char** argv) {
  return nvms::cli_main(argc, argv, std::cout, std::cerr);
}
