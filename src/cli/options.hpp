// Tiny command-line option parser for the nvmsim driver: positional
// command + `--key value` / `--flag` pairs, with typed accessors and
// unknown-option detection.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nvms {

class Options {
 public:
  /// Parse argv after the command word.  Throws ConfigError on malformed
  /// input ("--key" at the end expecting a value is treated as a flag).
  static Options parse(int argc, char** argv, int first = 1);

  /// Build an option set directly from key/value pairs and positionals —
  /// the entry point for non-argv frontends (the nvmsimd request layer
  /// maps a JSON request's fields onto the same accessors the CLI uses,
  /// so both paths share one validation story).  Flag-like keys should
  /// map to "true", matching what parse() stores for a bare `--flag`.
  static Options from_map(std::map<std::string, std::string> kv,
                          std::vector<std::string> positionals);

  const std::vector<std::string>& positional() const { return positional_; }
  bool has(const std::string& key) const { return kv_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  /// As get_int, but rejects values below `min` (range validation for
  /// count-like options such as --jobs / --threads).
  long get_int_at_least(const std::string& key, long fallback, long min) const;
  double get_double(const std::string& key, double fallback) const;

  /// Keys the program never asked about (typo detection).
  std::vector<std::string> unused() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace nvms
