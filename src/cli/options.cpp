#include "cli/options.hpp"

#include <utility>

#include "cli/parse.hpp"
#include "simcore/error.hpp"

namespace nvms {

Options Options::parse(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      require(!key.empty(), "empty option name");
      // --key=value binds inline; a bare "--key=" means the empty value.
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        o.kv_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        o.kv_[key] = argv[++i];
      } else {
        o.kv_[key] = "true";  // bare flag
      }
    } else {
      o.positional_.push_back(arg);
    }
  }
  return o;
}

Options Options::from_map(std::map<std::string, std::string> kv,
                          std::vector<std::string> positionals) {
  Options o;
  o.kv_ = std::move(kv);
  o.positional_ = std::move(positionals);
  return o;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long Options::get_int(const std::string& key, long fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  // parse_long consumes the whole value or rejects it: trailing garbage
  // ("10xyz") and out-of-range values fail instead of truncating.
  const auto v = parse_long(it->second);
  require(v.has_value(),
          "option --" + key + " expects an integer, got '" + it->second +
              "'");
  return *v;
}

long Options::get_int_at_least(const std::string& key, long fallback,
                               long min) const {
  const long v = get_int(key, fallback);
  require(v >= min, "option --" + key + " must be >= " + std::to_string(min) +
                        ", got " + std::to_string(v));
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  // Rejects trailing garbage ("1.5q"), inf/nan and out-of-range values —
  // a malformed scale must be a diagnostic, never a silent truncation.
  const auto v = parse_double(it->second);
  require(v.has_value(),
          "option --" + key + " expects a number, got '" + it->second + "'");
  return *v;
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : kv_) {
    if (touched_.find(key) == touched_.end()) out.push_back(key);
  }
  return out;
}

}  // namespace nvms
