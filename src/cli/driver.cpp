#include "cli/driver.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli/options.hpp"
#include "cli/parse.hpp"
#include "harness/registry.hpp"
#include "harness/sweep.hpp"
#include "harness/report.hpp"
#include "mem/space.hpp"
#include "obs/analyze/diff.hpp"
#include "obs/analyze/profile.hpp"
#include "obs/export.hpp"
#include "placement/trace_optimizer.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "replay/recording.hpp"
#include "simcore/error.hpp"
#include "simcore/json.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

constexpr const char* kUsage = R"(nvmsim — NVM-based memory system simulator

usage: nvmsim <command> [options]

commands:
  list                      registered applications
  devices                   calibrated device parameters
  run <app>                 run one application
      --mode dram-only|cached-nvm|uncached-nvm   (default uncached-nvm)
      --threads N           simulated concurrency       (default 36)
      --scale S             input-problem scale         (default 1.0)
      --iters K             iteration override          (default app)
      --trace FILE          write the bandwidth trace as CSV
      --remote-nvm          access NVM on the remote socket over UPI
      --numa local|interleave|remote   two-socket placement policy
      --json                emit the result as JSON
      --trace-out FILE      write a Chrome trace (chrome://tracing, Perfetto)
      --metrics-out FILE    write per-epoch metric streams as CSV
      --resolve-cache[=off|run|shared]   memoize phase resolutions
                            (results are byte-identical; default off)
  sweep <app>               run across modes x concurrency
      --modes a,b,c         (default: all three)
      --threads a,b,c       (default: 12,24,36,48)
      --scale S
      --jobs N              parallel experiment workers
                            (default: hardware concurrency; results are
                            byte-identical for any N)
      --csv                 emit CSV instead of a table
      --stats FILE          write per-task executor timings as CSV
      --trace-out FILE      merged Chrome trace over the whole grid
      --metrics-out FILE    merged per-epoch metrics CSV over the grid
      --jsonl FILE          merged JSONL telemetry over the grid
      --resolve-cache[=off|run|shared]   memoize phase resolutions
                            (shared: one cache for the grid; rows and
                            exports are byte-identical either way)
  inspect <app>             run once with telemetry and summarize it
      --mode M --threads N --scale S --iters K
      --format human|json   byte-stable sorted-key JSON for scripts
      --trace-out FILE --metrics-out FILE --jsonl FILE
  explain <app|trace>       bottleneck attribution: why is this slow
      --mode M --threads N --scale S
      --jobs N              (app form; output byte-identical for any N)
      --resolve-cache[=off|run|shared]   (output byte-identical either way)
      --format human|json|csv            (default human)
      --metrics-out FILE    analyze.* gauges as Prometheus exposition text
  diff <a> <b>              explain what changed between two runs/traces
      --mode M --threads N --scale S --jobs N
      --mode-a M --mode-b M per-side mode override (compare modes)
      --resolve-cache[=off|run|shared]
      --format human|json                (default human)
      --metrics-out FILE    diff.* gauges as Prometheus exposition text
  profile <app>             data-centric profile + write-aware plan
      --threads N --scale S
      --budget PCT          DRAM budget percent        (default 35)
  record <app> --out FILE   capture the phase trace of a run
      --mode M --threads N --scale S
  replay FILE               re-execute a trace on another configuration
      --mode M              (default uncached-nvm)
      --nvm-write-bw GBS    override the NVM write peak (what-if)
      --nvm-read-bw GBS     override the NVM read peak (what-if)
  optimize <app|FILE>       trace-driven placement plan (delta-replay CELF)
      --budget B            DRAM budget: percent ("35%") or bytes with an
                            optional KiB/MiB/GiB suffix   (default 35%)
      --mode M              (default uncached-nvm)
      --threads N --scale S --iters K   recording options (app form)
      --jobs N              parallel candidate evaluation workers
                            (plan and tables are identical for any N)
      --min-gain G          stop below this relative gain (default 1e-3)
  serve                     nvmsimd: long-running service answering JSONL
                            requests over a socket (docs/SERVICE.md)
      --socket PATH | --port N       listen endpoint
      --workers N --queue N --client-budget N
  client                    send JSONL requests from stdin to a daemon
      --socket PATH | --host H --port N
)";

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Write `content` to `path`; on failure reports "<cmd>: cannot write ..."
// and returns false.
bool write_file(const std::string& path, const std::string& content,
                std::ostream& err, const char* cmd) {
  std::ofstream f(path);
  if (!f) {
    err << cmd << ": cannot write " << path << "\n";
    return false;
  }
  f << content;
  return true;
}

// Parse --resolve-cache[=off|run|shared]; a bare flag means "shared".
// Reports and returns nullopt on unknown values.
std::optional<ResolveCacheMode> cache_mode_from(const Options& opt,
                                                std::ostream& err,
                                                const char* cmd) {
  const std::string v = opt.get("resolve-cache", "off");
  const auto mode = parse_resolve_cache_mode(v == "true" ? "shared" : v);
  if (!mode) {
    err << cmd << ": unknown --resolve-cache mode '" << v
        << "' (want off|run|shared)\n";
  }
  return mode;
}

void report_cache_line(const char* what, const ResolveCacheStats& s,
                       std::ostream& err) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s: %llu hit(s), %llu miss(es), %llu "
                "eviction(s), %zu entr%s, hit rate %.1f%%",
                what, static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.evictions), s.entries,
                s.entries == 1 ? "y" : "ies", 100.0 * s.hit_rate());
  err << buf << "\n";
}

void report_cache_stats(const ResolveCacheStats& phases,
                        const ResolveCacheStats& streams,
                        std::ostream& err) {
  report_cache_line("resolve-cache", phases, err);
  // The stream memo only sees Memory-mode cells; stay quiet otherwise.
  if (streams.hits + streams.misses > 0) {
    report_cache_line("stream-memo", streams, err);
  }
}

AppConfig config_from(const Options& opt) {
  AppConfig cfg;
  cfg.threads = static_cast<int>(opt.get_int("threads", 36));
  cfg.size_scale = opt.get_double("scale", 1.0);
  cfg.iterations = static_cast<int>(opt.get_int("iters", 0));
  cfg.validate();
  return cfg;
}

int cmd_list(std::ostream& out) {
  TextTable t({"name", "dwarf", "input problem"});
  for (const auto& name : app_names()) {
    const App& app = lookup_app(name);
    t.add_row({name, app.dwarf(), app.input_problem()});
  }
  for (const auto& name : extra_app_names()) {
    const App& app = lookup_app(name);
    t.add_row({name, app.dwarf(), app.input_problem()});
  }
  out << t.render();
  return 0;
}

int cmd_devices(std::ostream& out) {
  const auto cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  TextTable t({"parameter", "DRAM (ddr4)", "NVM (optane)"});
  auto row = [&](const std::string& name, const std::string& d,
                 const std::string& n) { t.add_row({name, d, n}); };
  row("capacity (scaled 1/1024)", format_bytes(cfg.dram.capacity),
      format_bytes(cfg.nvm.capacity));
  row("read latency seq/rand",
      format_time(cfg.dram.read_lat_seq) + " / " +
          format_time(cfg.dram.read_lat_rand),
      format_time(cfg.nvm.read_lat_seq) + " / " +
          format_time(cfg.nvm.read_lat_rand));
  row("read / write peak",
      format_bandwidth(cfg.dram.read_bw_peak) + " / " +
          format_bandwidth(cfg.dram.write_bw_peak),
      format_bandwidth(cfg.nvm.read_bw_peak) + " / " +
          format_bandwidth(cfg.nvm.write_bw_peak));
  row("media granularity", std::to_string(cfg.dram.media_granularity) + " B",
      std::to_string(cfg.nvm.media_granularity) + " B");
  row("write scaling sweet spot",
      TextTable::num(cfg.dram.write_scaling.argmax(), 0) + " thr",
      TextTable::num(cfg.nvm.write_scaling.argmax(), 0) + " thr");
  row("throttle alpha", TextTable::num(cfg.dram.throttle_alpha, 2),
      TextTable::num(cfg.nvm.throttle_alpha, 2));
  out << t.render();
  return 0;
}

int cmd_run(const Options& opt, std::ostream& out, std::ostream& err,
            const CommandContext* ctx) {
  if (opt.positional().empty()) {
    err << "run: missing application name\n";
    return 2;
  }
  const std::string app = opt.positional()[0];
  const auto mode = parse_mode(opt.get("mode", "uncached-nvm"));
  if (!mode) {
    err << "run: unknown mode\n";
    return 2;
  }
  SystemConfig sys_cfg = SystemConfig::testbed(*mode);
  if (opt.has("remote-nvm")) {
    (void)opt.get("remote-nvm", "");
    sys_cfg.remote_nvm = true;
  }
  const std::string numa = opt.get("numa", "");
  if (!numa.empty()) {
    sys_cfg.sockets = 2;
    if (numa == "local") {
      sys_cfg.numa_policy = NumaPolicy::kLocalSocket;
    } else if (numa == "interleave") {
      sys_cfg.numa_policy = NumaPolicy::kInterleave;
    } else if (numa == "remote") {
      sys_cfg.numa_policy = NumaPolicy::kRemoteSocket;
    } else {
      err << "run: unknown --numa policy '" << numa << "'\n";
      return 2;
    }
  }
  const AppConfig cfg = config_from(opt);
  const auto cache_mode = cache_mode_from(opt, err, "run");
  if (!cache_mode) return 2;
  const std::string trace_out = opt.get("trace-out", "");
  const std::string metrics_out = opt.get("metrics-out", "");
  Telemetry telemetry;
  const bool want_telemetry = !trace_out.empty() || !metrics_out.empty();
  // A single one-shot run has nothing to share across: both non-off modes
  // are one private cache reused across the run's phases.  Under a
  // daemon, shared mode instead borrows the process-lifetime cache so the
  // next request over the same app starts warm.
  std::optional<ResolveCache> cache;
  ResolveCache* use_cache = nullptr;
  if (*cache_mode == ResolveCacheMode::kShared && ctx != nullptr &&
      ctx->shared_cache != nullptr) {
    use_cache = ctx->shared_cache;
  } else if (*cache_mode != ResolveCacheMode::kOff) {
    cache.emplace(/*shards=*/1);
    use_cache = &*cache;
  }
  const AppResult r = run_app_on(
      app, sys_cfg, cfg, want_telemetry ? &telemetry : nullptr, use_cache);
  if (use_cache != nullptr) {
    report_cache_stats(use_cache->stats(), use_cache->stream_stats(), err);
  }

  if (!trace_out.empty() &&
      !write_file(trace_out, chrome_trace_json(telemetry, app), err, "run")) {
    return 1;
  }
  if (!metrics_out.empty() &&
      !write_file(metrics_out, metrics_csv(telemetry, app), err, "run")) {
    return 1;
  }

  if (opt.has("json")) {
    (void)opt.get("json", "");
    Json j;
    j.set("app", r.app)
        .set("dwarf", lookup_app(app).dwarf())
        .set("mode", r.mode)
        .set("threads", cfg.threads)
        .set("size_scale", cfg.size_scale)
        .set("footprint_bytes", r.footprint)
        .set("runtime_s", r.runtime)
        .set("fom", r.fom)
        .set("fom_unit", r.fom_unit)
        .set("higher_is_better", r.higher_is_better)
        .set("avg_read_bw_gbs", r.traces.avg_read_bw() / GB)
        .set("avg_write_bw_gbs", r.traces.avg_write_bw() / GB)
        .set("ipc", r.counters.ipc())
        .set("checksum", r.checksum);
    Json counters;
    counters.set("instructions", r.counters.instructions)
        .set("cycles_active", r.counters.cycles_active)
        .set("stall_cycles", r.counters.stall_cycles)
        .set("offcore_wait", r.counters.offcore_wait)
        .set("imc_reads", r.counters.imc_reads)
        .set("imc_writes", r.counters.imc_writes);
    j.set("counters", counters);
    out << j.dump(2) << "\n";
    return 0;
  }

  TextTable t({"metric", "value"});
  t.add_row({"app", r.app + " (" + lookup_app(app).dwarf() + ")"});
  t.add_row({"mode", r.mode});
  t.add_row({"threads", std::to_string(cfg.threads)});
  t.add_row({"footprint", format_bytes(r.footprint)});
  t.add_row({"runtime", format_time(r.runtime)});
  t.add_row({"FoM", TextTable::num(r.fom, 2) + " " + r.fom_unit +
                        (r.higher_is_better ? " (higher better)"
                                            : " (lower better)")});
  t.add_row({"avg read BW", format_bandwidth(r.traces.avg_read_bw())});
  t.add_row({"avg write BW", format_bandwidth(r.traces.avg_write_bw())});
  t.add_row({"IPC", TextTable::num(r.counters.ipc(), 3)});
  t.add_row({"checksum", TextTable::num(r.checksum, 6)});
  out << t.render();

  const std::string trace_file = opt.get("trace", "");
  if (!trace_file.empty()) {
    std::ofstream f(trace_file);
    if (!f) {
      err << "run: cannot write " << trace_file << "\n";
      return 1;
    }
    f << render_trace_csv(r.traces, 256);
    out << "trace written to " << trace_file << " (256 samples)\n";
  }
  return 0;
}

int cmd_sweep(const Options& opt, std::ostream& out, std::ostream& err,
              const CommandContext* ctx) {
  if (opt.positional().empty()) {
    err << "sweep: missing application name\n";
    return 2;
  }
  const std::string app = opt.positional()[0];
  std::vector<Mode> modes;
  for (const auto& m :
       split_csv(opt.get("modes", "dram-only,cached-nvm,uncached-nvm"))) {
    const auto parsed = parse_mode(m);
    if (!parsed) {
      err << "sweep: unknown mode '" << m << "'\n";
      return 2;
    }
    modes.push_back(*parsed);
  }
  SweepSpec spec;
  spec.app = app;
  spec.modes = modes;
  // Checked CSV parsing: "12,abc" used to reach an unguarded std::stoi
  // and kill the process with an uncaught std::invalid_argument.
  std::string why;
  const auto threads =
      parse_int_csv(opt.get("threads", "12,24,36,48"), /*min=*/1, &why);
  if (!threads) {
    err << "sweep: bad --threads: " << why << "\n";
    return 2;
  }
  spec.threads = *threads;
  spec.scales = {opt.get_double("scale", 1.0)};
  spec.jobs = static_cast<int>(opt.get_int_at_least("jobs", 0, 0));
  const auto cache_mode = cache_mode_from(opt, err, "sweep");
  if (!cache_mode) return 2;
  spec.resolve_cache = *cache_mode;
  if (*cache_mode == ResolveCacheMode::kShared && ctx != nullptr) {
    spec.external_cache = ctx->shared_cache;
  }
  const std::string trace_out = opt.get("trace-out", "");
  const std::string metrics_out = opt.get("metrics-out", "");
  const std::string jsonl_out = opt.get("jsonl", "");
  spec.telemetry =
      !trace_out.empty() || !metrics_out.empty() || !jsonl_out.empty();
  const auto result = run_sweep(spec);
  if (spec.resolve_cache != ResolveCacheMode::kOff) {
    report_cache_stats(result.cache_stats, result.stream_stats, err);
  }

  if (!trace_out.empty() &&
      !write_file(trace_out, sweep_chrome_trace(result), err, "sweep")) {
    return 1;
  }
  if (!metrics_out.empty() &&
      !write_file(metrics_out, sweep_metrics_csv(result), err, "sweep")) {
    return 1;
  }
  if (!jsonl_out.empty() &&
      !write_file(jsonl_out, sweep_telemetry_jsonl(result), err, "sweep")) {
    return 1;
  }

  // Capacity-skipped configurations are reported, never silently dropped.
  if (!result.skipped.empty()) {
    err << "sweep: skipped " << result.skipped.size()
        << " configuration(s) exceeding device capacity:\n";
    for (const auto& s : result.skipped) {
      err << "  " << to_string(s.mode) << " threads=" << s.threads
          << " scale=" << s.scale << "\n";
    }
  }

  const std::string stats_file = opt.get("stats", "");
  if (!stats_file.empty()) {
    std::ofstream f(stats_file);
    if (!f) {
      err << "sweep: cannot write " << stats_file << "\n";
      return 1;
    }
    f << sweep_stats_csv(result);
  }

  if (opt.has("csv")) {
    (void)opt.get("csv", "");
    out << sweep_csv(result);
    // Keep stdout pure CSV; the execution summary goes to stderr.
    err << result.stats.summary() << "\n";
    return 0;
  }
  TextTable t({"mode", "threads", "runtime", "FoM"});
  for (const auto& r : result.rows) {
    t.add_row({to_string(r.mode), std::to_string(r.threads),
               format_time(r.result.runtime),
               TextTable::num(r.result.fom, 2) + " " + r.result.fom_unit});
  }
  out << t.render();
  out << "\n" << result.stats.summary() << "\n";
  return 0;
}

int cmd_inspect(const Options& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional().empty()) {
    err << "inspect: missing application name\n";
    return 2;
  }
  const std::string app = opt.positional()[0];
  const auto mode = parse_mode(opt.get("mode", "uncached-nvm"));
  if (!mode) {
    err << "inspect: unknown mode\n";
    return 2;
  }
  const std::string format = opt.get("format", "human");
  if (format != "human" && format != "json") {
    err << "inspect: unknown --format '" << format << "' (want human|json)\n";
    return 2;
  }
  const AppConfig cfg = config_from(opt);
  const SystemConfig sys_cfg = SystemConfig::testbed(*mode);
  Telemetry telemetry;
  const AppResult r = run_app_on(app, sys_cfg, cfg, &telemetry);
  const RunProfile profile =
      build_run_profile(telemetry, analyze_context(sys_cfg, app));

  const auto& spans = telemetry.tracer().spans();
  const auto& metrics = telemetry.metrics().metrics();

  // Span taxonomy, aggregated by (category, name) in first-seen order.
  struct SpanAgg {
    std::string name, category;
    std::size_t depth = 0;
    std::size_t count = 0;
    double total_s = 0.0;
  };
  std::vector<SpanAgg> agg;
  std::map<std::pair<std::string, std::string>, std::size_t> index;
  for (const auto& s : spans) {
    if (!s.closed) continue;
    const auto key = std::make_pair(s.category, s.name);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, agg.size()).first;
      agg.push_back(
          {s.name, s.category, static_cast<std::size_t>(s.depth), 0, 0.0});
    }
    SpanAgg& a = agg[it->second];
    a.count += 1;
    a.total_s += s.t1 - s.t0;
  }

  if (format == "json") {
    // Machine form: sorted keys, stable field set — byte-stable for CI.
    Json j;
    j.set("app", app)
        .set("mode", r.mode)
        .set("runtime_s", r.runtime)
        .set("span_count", spans.size())
        .set("metric_count", metrics.size());
    Json jspans = Json::array();
    for (const auto& a : agg) {
      Json js;
      js.set("name", a.name)
          .set("category", a.category)
          .set("depth", a.depth)
          .set("count", a.count)
          .set("total_s", a.total_s);
      jspans.push(std::move(js));
    }
    j.set("spans", std::move(jspans));
    Json jmetrics = Json::array();
    for (const auto& m : metrics) {
      Json jm;
      jm.set("name", m.name)
          .set("labels", m.labels)
          .set("kind", to_string(m.kind))
          .set("points", m.kind == MetricKind::kHistogram ? m.count
                                                          : m.series.size())
          .set("value",
               m.kind == MetricKind::kHistogram ? m.mean() : m.value);
      if (m.count > 0) jm.set("min", m.min).set("max", m.max);
      jmetrics.push(std::move(jm));
    }
    j.set("metrics", std::move(jmetrics));
    j.set("profile", run_profile_json(profile));
    j.sort_keys();
    out << j.dump(2) << "\n";
  } else {
    out << app << " (" << r.mode << "): " << format_time(r.runtime) << ", "
        << spans.size() << " span(s), " << metrics.size()
        << " metric stream(s)\n\n";
    TextTable ts({"span", "category", "depth", "count", "sim time"});
    for (const auto& a : agg) {
      ts.add_row({a.name, a.category, std::to_string(a.depth),
                  std::to_string(a.count), format_time(a.total_s)});
    }
    out << ts.render();

    TextTable tm(
        {"metric", "labels", "kind", "points", "value", "min", "max"});
    for (const auto& m : metrics) {
      std::string points = std::to_string(
          m.kind == MetricKind::kHistogram ? m.count : m.series.size());
      // Counters/gauges show their final value; histograms their mean.
      const double value =
          m.kind == MetricKind::kHistogram ? m.mean() : m.value;
      const bool stats = m.count > 0;
      tm.add_row({m.name, m.labels, to_string(m.kind), points,
                  TextTable::num(value, 4),
                  stats ? TextTable::num(m.min, 4) : "-",
                  stats ? TextTable::num(m.max, 4) : "-"});
    }
    out << "\n" << tm.render();
    out << "\n" << render_run_profile(profile);
  }

  // File-export confirmations go to stderr in JSON mode so stdout stays a
  // single parseable document.
  std::ostream& note = format == "json" ? err : out;
  const std::string trace_out = opt.get("trace-out", "");
  if (!trace_out.empty()) {
    if (!write_file(trace_out, chrome_trace_json(telemetry, app), err,
                    "inspect")) {
      return 1;
    }
    note << "\ntrace written to " << trace_out << "\n";
  }
  const std::string metrics_out = opt.get("metrics-out", "");
  if (!metrics_out.empty()) {
    if (!write_file(metrics_out, metrics_csv(telemetry, app), err,
                    "inspect")) {
      return 1;
    }
    note << "metrics written to " << metrics_out << "\n";
  }
  const std::string jsonl_out = opt.get("jsonl", "");
  if (!jsonl_out.empty()) {
    if (!write_file(jsonl_out, telemetry_jsonl(telemetry, app), err,
                    "inspect")) {
      return 1;
    }
    note << "jsonl written to " << jsonl_out << "\n";
  }
  return 0;
}

int cmd_profile(const Options& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional().empty()) {
    err << "profile: missing application name\n";
    return 2;
  }
  const std::string app = opt.positional()[0];
  const AppConfig cfg = config_from(opt);
  const long budget_pct = opt.get_int("budget", 35);
  if (budget_pct <= 0 || budget_pct > 100) {
    err << "profile: --budget must be in (0,100]\n";
    return 2;
  }

  const auto sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  MemorySystem sys(sys_cfg);
  AppContext ctx(sys, cfg);
  (void)lookup_app(app).run(ctx);
  const auto profiles = collect_data_profile(sys);

  TextTable t({"buffer", "size", "reads", "writes", "write intensity"});
  for (const auto& p : profiles) {
    t.add_row({p.name, format_bytes(p.bytes), format_bytes(p.read_bytes),
               format_bytes(p.write_bytes),
               TextTable::num(p.write_intensity(), 1)});
  }
  out << t.render();

  const auto wa = write_aware_plan(
      profiles, sys_cfg.dram.capacity * static_cast<unsigned>(budget_pct) /
                    100);
  out << "\nwrite-aware plan (" << budget_pct
      << "% DRAM budget): " << wa.in_dram.size() << " buffer(s) -> DRAM, "
      << format_bytes(wa.dram_bytes) << " used\n";
  for (const auto& name : wa.in_dram) out << "  -> DRAM: " << name << "\n";
  return 0;
}

int cmd_record(const Options& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional().empty()) {
    err << "record: missing application name\n";
    return 2;
  }
  const std::string file = opt.get("out", "");
  if (file.empty()) {
    err << "record: --out FILE is required\n";
    return 2;
  }
  const auto mode = parse_mode(opt.get("mode", "uncached-nvm"));
  if (!mode) {
    err << "record: unknown mode\n";
    return 2;
  }
  const AppConfig cfg = config_from(opt);
  MemorySystem sys(SystemConfig::testbed(*mode));
  TraceCapture capture(sys);
  AppContext ctx(sys, cfg);
  (void)lookup_app(opt.positional()[0]).run(ctx);
  const auto rec = capture.finish();
  std::ofstream f(file);
  if (!f) {
    err << "record: cannot write " << file << "\n";
    return 1;
  }
  f << rec.save();
  out << "recorded " << rec.phases.size() << " phases over "
      << rec.buffers.size() << " buffers ("
      << format_bytes(rec.total_bytes()) << " of traffic) to " << file
      << "\n";
  return 0;
}

int cmd_replay(const Options& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional().empty()) {
    err << "replay: missing trace file\n";
    return 2;
  }
  std::ifstream f(opt.positional()[0]);
  if (!f) {
    err << "replay: cannot read " << opt.positional()[0] << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const auto rec = PhaseRecording::load(buf.str());

  const auto mode = parse_mode(opt.get("mode", "uncached-nvm"));
  if (!mode) {
    err << "replay: unknown mode\n";
    return 2;
  }
  SystemConfig sys_cfg = SystemConfig::testbed(*mode);
  const double wbw = opt.get_double("nvm-write-bw", 0.0);
  if (wbw > 0.0) sys_cfg.nvm.write_bw_peak = gbps(wbw);
  const double rbw = opt.get_double("nvm-read-bw", 0.0);
  if (rbw > 0.0) sys_cfg.nvm.read_bw_peak = gbps(rbw);

  MemorySystem sys(sys_cfg);
  const double time = rec.replay(sys);
  TextTable t({"metric", "value"});
  t.add_row({"phases", std::to_string(rec.phases.size())});
  t.add_row({"mode", to_string(*mode)});
  t.add_row({"replayed runtime", format_time(time)});
  t.add_row({"avg read BW", format_bandwidth(sys.traces().avg_read_bw())});
  t.add_row({"avg write BW", format_bandwidth(sys.traces().avg_write_bw())});
  out << t.render();
  return 0;
}

bool is_registered_app(const std::string& name) {
  for (const auto& a : app_names())
    if (a == name) return true;
  for (const auto& a : extra_app_names())
    if (a == name) return true;
  return false;
}

// Resolve an `explain`/`diff` target — a saved `nvmstrace v1` recording
// or a registered application name — into a RunProfile.  The app form
// routes through run_sweep (a 1-cell grid honoring --jobs and
// --resolve-cache), so the profile is grid-order deterministic: output is
// byte-identical for any jobs count and any resolve-cache mode.  The
// trace form replays the recording once with telemetry attached.
std::optional<RunProfile> profile_of_target(const std::string& target,
                                            const Options& opt,
                                            std::ostream& err,
                                            const char* cmd,
                                            const CommandContext* ctx,
                                            const char* mode_opt = "mode") {
  const auto mode =
      parse_mode(opt.get(mode_opt, opt.get("mode", "uncached-nvm")));
  if (!mode) {
    err << cmd << ": unknown mode\n";
    return std::nullopt;
  }
  const auto cache_mode = cache_mode_from(opt, err, cmd);
  if (!cache_mode) return std::nullopt;

  std::ifstream f(target);
  if (f) {
    std::stringstream buf;
    buf << f.rdbuf();
    const auto rec = PhaseRecording::load(buf.str());
    const SystemConfig sys_cfg = SystemConfig::testbed(*mode);
    MemorySystem sys(sys_cfg);
    Telemetry telemetry;
    sys.set_telemetry(&telemetry);
    std::optional<ResolveCache> cache;
    if (*cache_mode == ResolveCacheMode::kShared && ctx != nullptr &&
        ctx->shared_cache != nullptr) {
      sys.set_resolve_cache(ctx->shared_cache);
    } else if (*cache_mode != ResolveCacheMode::kOff) {
      cache.emplace(/*shards=*/1);
      sys.set_resolve_cache(&*cache);
    }
    (void)rec.replay(sys);
    return build_run_profile(telemetry, analyze_context(sys_cfg, target));
  }
  if (!is_registered_app(target)) {
    err << cmd << ": '" << target
        << "' is neither a readable trace file nor a registered "
           "application\n";
    return std::nullopt;
  }
  SweepSpec spec;
  spec.app = target;
  spec.modes = {*mode};
  spec.threads = {static_cast<int>(opt.get_int("threads", 36))};
  spec.scales = {opt.get_double("scale", 1.0)};
  spec.jobs = static_cast<int>(opt.get_int_at_least("jobs", 0, 0));
  spec.telemetry = true;
  spec.resolve_cache = *cache_mode;
  if (*cache_mode == ResolveCacheMode::kShared && ctx != nullptr) {
    spec.external_cache = ctx->shared_cache;
  }
  const auto result = run_sweep(spec);
  if (result.rows.empty()) {
    err << cmd << ": configuration skipped"
        << (result.skipped.empty() ? ""
                                   : ": " + result.skipped.front().reason)
        << "\n";
    return std::nullopt;
  }
  return sweep_profile(result, target);
}

int cmd_explain(const Options& opt, std::ostream& out, std::ostream& err,
                const CommandContext* ctx) {
  if (opt.positional().empty()) {
    err << "explain: missing application name or trace file\n";
    return 2;
  }
  const auto profile =
      profile_of_target(opt.positional()[0], opt, err, "explain", ctx);
  if (!profile) return 2;
  const std::string format = opt.get("format", "human");
  if (format == "human") {
    out << render_run_profile(*profile);
  } else if (format == "json") {
    out << run_profile_json(*profile).dump(2) << "\n";
  } else if (format == "csv") {
    out << run_profile_csv(*profile);
  } else {
    err << "explain: unknown --format '" << format
        << "' (want human|json|csv)\n";
    return 2;
  }
  const std::string metrics_out = opt.get("metrics-out", "");
  if (!metrics_out.empty()) {
    Telemetry summary;
    publish_run_profile(*profile, summary.metrics());
    if (!write_file(metrics_out, prometheus_text(summary, profile->run),
                    err, "explain")) {
      return 1;
    }
  }
  return 0;
}

int cmd_diff(const Options& opt, std::ostream& out, std::ostream& err,
             const CommandContext* ctx) {
  if (opt.positional().size() < 2) {
    err << "diff: need two applications or trace files\n";
    return 2;
  }
  // Each side may override the shared --mode (e.g. `diff hypre hypre
  // --mode-a cached-nvm --mode-b uncached-nvm` asks why Memory mode and
  // App-Direct diverge on the same application).
  const auto a =
      profile_of_target(opt.positional()[0], opt, err, "diff", ctx, "mode-a");
  if (!a) return 2;
  const auto b =
      profile_of_target(opt.positional()[1], opt, err, "diff", ctx, "mode-b");
  if (!b) return 2;
  const RunDiff d = diff_profiles(*a, *b);
  const std::string format = opt.get("format", "human");
  if (format == "human") {
    out << render_run_diff(d);
  } else if (format == "json") {
    out << run_diff_json(d).dump(2) << "\n";
  } else {
    err << "diff: unknown --format '" << format << "' (want human|json)\n";
    return 2;
  }
  const std::string metrics_out = opt.get("metrics-out", "");
  if (!metrics_out.empty()) {
    Telemetry summary;
    publish_run_diff(d, summary.metrics());
    if (!write_file(metrics_out, prometheus_text(summary, d.a + "-vs-" + d.b),
                    err, "diff")) {
      return 1;
    }
  }
  return 0;
}

int cmd_optimize(const Options& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional().empty()) {
    err << "optimize: missing application name or trace file\n";
    return 2;
  }
  const std::string target = opt.positional()[0];
  const auto mode = parse_mode(opt.get("mode", "uncached-nvm"));
  if (!mode) {
    err << "optimize: unknown mode\n";
    return 2;
  }
  const SystemConfig sys_cfg = SystemConfig::testbed(*mode);

  // The target is either a saved `nvmstrace v1` recording or the name of
  // a registered application (recorded here under the same system mode).
  PhaseRecording rec;
  std::ifstream f(target);
  if (f) {
    std::stringstream buf;
    buf << f.rdbuf();
    rec = PhaseRecording::load(buf.str());
  } else if (is_registered_app(target)) {
    const AppConfig cfg = config_from(opt);
    MemorySystem sys(sys_cfg);
    TraceCapture capture(sys);
    AppContext ctx(sys, cfg);
    (void)lookup_app(target).run(ctx);
    rec = capture.finish();
  } else {
    err << "optimize: '" << target
        << "' is neither a readable trace file nor a registered "
           "application\n";
    return 2;
  }

  // Checked budget parsing (cli/parse.hpp): "10xyz" or "1.5q" used to be
  // silently truncated by std::stod's partial match; now they're errors.
  std::string why;
  const auto budget = parse_budget_spec(opt.get("budget", "35%"),
                                        sys_cfg.dram.capacity, &why);
  if (!budget) {
    err << "optimize: bad --budget: " << why << "\n";
    return 2;
  }

  TraceOptimizerOptions oopt;
  oopt.jobs = static_cast<int>(opt.get_int_at_least("jobs", 0, 0));
  oopt.min_gain = opt.get_double("min-gain", 1e-3);
  const auto r = optimize_placement(
      rec, *budget, [&sys_cfg] { return MemorySystem(sys_cfg); }, oopt);

  TextTable t({"metric", "value"});
  t.add_row({"phases", std::to_string(rec.phases.size())});
  t.add_row({"buffers", std::to_string(rec.buffers.size())});
  t.add_row({"mode", to_string(*mode)});
  t.add_row({"DRAM budget", format_bytes(*budget)});
  t.add_row({"DRAM used", format_bytes(r.dram_bytes)});
  t.add_row({"baseline runtime", format_time(r.baseline_runtime)});
  t.add_row({"optimized runtime", format_time(r.optimized_runtime)});
  t.add_row({"speedup", TextTable::num(r.speedup(), 2) + "x"});
  out << t.render();

  if (r.steps.empty()) {
    out << "\nno promotion improves the replayed runtime under this "
           "budget\n";
  } else {
    TextTable s({"step", "buffer -> DRAM", "runtime", "gain"});
    double prev = r.baseline_runtime;
    for (std::size_t i = 0; i < r.steps.size(); ++i) {
      const auto& [name, runtime] = r.steps[i];
      s.add_row({std::to_string(i + 1), name, format_time(runtime),
                 TextTable::num(100.0 * (prev - runtime) / prev, 1) + "%"});
      prev = runtime;
    }
    out << "\n" << s.render();
  }

  // Evaluator accounting goes to stderr: the memo hit/miss split can vary
  // across worker counts, while stdout must stay byte-identical.
  err << "optimize: " << r.stats.evals << " candidate evaluation(s), "
      << r.stats.full_replays << " full replay(s)\n";
  report_cache_line("phase-cache", r.stats.phase_cache, err);
  if (r.stats.stream_memo.hits + r.stats.stream_memo.misses > 0) {
    report_cache_line("stream-memo", r.stats.stream_memo, err);
  }
  return 0;
}

}  // namespace

int run_command(const std::string& cmd, const Options& opt,
                std::ostream& out, std::ostream& err,
                const CommandContext* ctx) {
  int rc;
  if (cmd == "list") {
    rc = cmd_list(out);
  } else if (cmd == "devices") {
    rc = cmd_devices(out);
  } else if (cmd == "run") {
    rc = cmd_run(opt, out, err, ctx);
  } else if (cmd == "sweep") {
    rc = cmd_sweep(opt, out, err, ctx);
  } else if (cmd == "inspect") {
    rc = cmd_inspect(opt, out, err);
  } else if (cmd == "explain") {
    rc = cmd_explain(opt, out, err, ctx);
  } else if (cmd == "diff") {
    rc = cmd_diff(opt, out, err, ctx);
  } else if (cmd == "profile") {
    rc = cmd_profile(opt, out, err);
  } else if (cmd == "record") {
    rc = cmd_record(opt, out, err);
  } else if (cmd == "replay") {
    rc = cmd_replay(opt, out, err);
  } else if (cmd == "optimize") {
    rc = cmd_optimize(opt, out, err);
  } else if (cmd == "help" || cmd == "--help") {
    out << kUsage;
    rc = 0;
  } else {
    err << "unknown command '" << cmd << "'\n" << kUsage;
    return 2;
  }
  for (const auto& key : opt.unused()) {
    err << "warning: unused option --" << key << "\n";
  }
  return rc;
}

int run_command_guarded(const std::string& cmd, const Options& opt,
                        std::ostream& out, std::ostream& err,
                        const CommandContext* ctx) {
  try {
    return run_command(cmd, opt, out, err, ctx);
  } catch (const ConfigError& e) {
    // Bad input is a usage error, same as malformed option syntax.
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Last-resort net: under nvmsimd one malformed request must never
    // take the process (and every other tenant's warm cache) down.
    err << "internal error: " << e.what() << "\n";
    return 1;
  }
}

int cli_main(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string cmd = argv[1];
  std::optional<Options> opt;
  try {
    opt.emplace(Options::parse(argc, argv, 2));
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  return run_command_guarded(cmd, *opt, out, err);
}

}  // namespace nvms
