// The nvmsim command-line driver (library part, so tests can call it).
//
// Commands:
//   list                              — registered applications
//   run <app> [--mode M] [--threads N] [--scale S] [--iters K]
//             [--trace FILE.csv] [--remote-nvm]
//   sweep <app> [--modes a,b,c] [--threads 12,24,36] [--scale S]
//   profile <app> [--threads N] [--scale S] [--budget PCT]
//   devices                           — calibrated device parameters
//
// Two frontends share the dispatch below: the one-shot CLI (cli_main,
// argv) and the nvmsimd daemon (serve/, JSON requests mapped onto the
// same Options accessors).  Both route through run_command*, so a query
// answered by the daemon produces byte-identical stdout to the same
// query run as a one-shot command.
#pragma once

#include <iosfwd>
#include <string>

namespace nvms {

class Options;
class ResolveCache;

/// Process-level context a long-running frontend threads through
/// run_command.  A null context reproduces the one-shot CLI exactly.
struct CommandContext {
  /// When non-null and the command asks for --resolve-cache=shared, this
  /// caller-owned process-lifetime cache is used instead of a
  /// request-local one, so repeated daemon queries hit warm entries.
  /// Memoization is semantically transparent: stdout stays byte-identical
  /// either way; only the stderr cache-statistics lines (cumulative for a
  /// shared cache) and the wall clock change.
  ResolveCache* shared_cache = nullptr;
};

/// Dispatch one parsed command.  Returns the exit code for handled
/// commands (0 ok, 2 usage) and throws ConfigError / Error for failures
/// detected below the option layer — use run_command_guarded for the
/// exit-code-only form.
int run_command(const std::string& cmd, const Options& opt,
                std::ostream& out, std::ostream& err,
                const CommandContext* ctx = nullptr);

/// run_command with the process error policy applied: ConfigError (bad
/// input) → "error: ..." on `err` + exit 2; any other Error (runtime
/// failure) → exit 1; any other std::exception → "internal error: ..."
/// + exit 1.  This is the safety net a resident daemon relies on — no
/// request may terminate the process via an uncaught exception.
int run_command_guarded(const std::string& cmd, const Options& opt,
                        std::ostream& out, std::ostream& err,
                        const CommandContext* ctx = nullptr);

/// Run the driver; returns a process exit code.  Output goes to `out`,
/// errors are reported on `err`.
int cli_main(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace nvms
