// The nvmsim command-line driver (library part, so tests can call it).
//
// Commands:
//   list                              — registered applications
//   run <app> [--mode M] [--threads N] [--scale S] [--iters K]
//             [--trace FILE.csv] [--remote-nvm]
//   sweep <app> [--modes a,b,c] [--threads 12,24,36] [--scale S]
//   profile <app> [--threads N] [--scale S] [--budget PCT]
//   devices                           — calibrated device parameters
#pragma once

#include <iosfwd>

namespace nvms {

/// Run the driver; returns a process exit code.  Output goes to `out`,
/// errors are reported on `err`.
int cli_main(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace nvms
