// Checked scalar parsing shared by the CLI driver and the nvmsimd
// request layer (serve/request.cpp).
//
// Motivation (PR 8): the sweep `--threads` list used to go through an
// unguarded std::stoi, so `nvmsim sweep --threads 12,abc` threw an
// uncaught std::invalid_argument straight past the Error-only handler
// and killed the process.  Tolerable in a one-shot CLI, fatal in a
// daemon.  Every parser here is total: it consumes the *entire* input or
// reports why not — no trailing garbage ("10xyz", "1.5q"), no silent
// truncation, no exceptions.  Failures come back as std::nullopt with a
// human-readable reason, so both frontends (argv and JSON requests)
// reject bad input with a diagnostic instead of crashing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nvms {

/// Strict base-10 integer: optional sign, digits, nothing else.  Rejects
/// empty input, whitespace, trailing garbage and out-of-range values.
std::optional<long> parse_long(const std::string& s);

/// Strict finite double: everything strtod accepts *except* trailing
/// garbage, hex floats with junk, inf/nan and empty input.
std::optional<double> parse_double(const std::string& s);

/// Parse a comma-separated list of integers, each >= `min`.  Unlike a
/// split-then-stoi loop this rejects empty cells ("12,,24"), non-numeric
/// cells ("12,abc") and below-minimum values ("0", "-3"), and says which
/// cell was bad.  On failure returns nullopt and stores a one-line
/// reason in `*why` (when non-null).
std::optional<std::vector<int>> parse_int_csv(const std::string& s, long min,
                                              std::string* why);

/// Parse a DRAM budget: "35%" (of `dram_capacity`), a plain byte count,
/// or a byte count with a KiB/MiB/GiB suffix.  Rejects trailing garbage
/// ("10xyz"), non-finite values, negative values and percents outside
/// (0,100].  On failure returns nullopt with a reason in `*why`.
std::optional<std::uint64_t> parse_budget_spec(const std::string& s,
                                               std::uint64_t dram_capacity,
                                               std::string* why);

}  // namespace nvms
