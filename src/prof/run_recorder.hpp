// RunRecorder: the in-application profiling routine.
//
// Mirrors the paper's methodology (Sec. III): profiling hooks are
// integrated into the application so that only the main computation phases
// are measured — the recorder snapshots the PCM-like counters around every
// submitted phase and keeps per-phase samples.
#pragma once

#include <vector>

#include "memsim/memory_system.hpp"
#include "prof/sample.hpp"

namespace nvms {

class RunRecorder {
 public:
  explicit RunRecorder(MemorySystem& sys) : sys_(&sys) {}

  /// Submit a phase to the memory system and record its counter delta.
  PhaseResolution submit(const Phase& phase);

  const std::vector<CounterSample>& samples() const { return samples_; }

  /// Aggregate counters over all recorded samples.
  HwCounters total() const;

  /// Virtual time covered by the recorded samples.
  double recorded_time() const;

 private:
  MemorySystem* sys_;
  std::vector<CounterSample> samples_;
};

}  // namespace nvms
