#include "prof/data_profile.hpp"

#include <algorithm>
#include <unordered_map>

namespace nvms {

std::vector<BufferProfile> collect_data_profile(const MemorySystem& sys) {
  std::unordered_map<std::string, BufferProfile> by_name;
  for (const auto& info : sys.buffers()) {
    const auto& traffic = sys.traffic(info.id);
    auto& p = by_name[info.name];
    p.name = info.name;
    // Re-allocations of the same logical structure keep the max size (it
    // is resident once at a time), and accumulate traffic.
    p.bytes = std::max(p.bytes, info.bytes);
    p.read_bytes += traffic.read_bytes;
    p.write_bytes += traffic.write_bytes;
  }
  std::vector<BufferProfile> out;
  out.reserve(by_name.size());
  for (auto& [name, p] : by_name) out.push_back(std::move(p));
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.write_intensity() != b.write_intensity())
      return a.write_intensity() > b.write_intensity();
    return a.name < b.name;
  });
  return out;
}

}  // namespace nvms
