// Per-phase counter samples: the unit of training data for the paper's
// prediction model (Sec. V-A) and the basis of trace-level analysis.
#pragma once

#include <cstddef>
#include <string>

#include "memsim/counters.hpp"

namespace nvms {

struct CounterSample {
  std::string phase;     ///< name of the phase that produced the delta
  double t0 = 0.0;       ///< virtual start time
  double t1 = 0.0;       ///< virtual end time
  HwCounters delta;      ///< counter increments over [t0, t1]

  /// Telemetry context: index of the phase span covering this sample in
  /// the attached Telemetry's tracer (Tracer::kNone without telemetry),
  /// plus the NVM-lane epoch metrics resolved for the phase — the signals
  /// that explain the counter deltas (write throttling, Sec. IV-C).
  std::size_t span_id = static_cast<std::size_t>(-1);
  double nvm_wpq_util = 0.0;
  double nvm_throttle = 1.0;

  double duration() const { return t1 - t0; }
  double ipc() const { return delta.ipc(); }
};

}  // namespace nvms
