// Per-phase counter samples: the unit of training data for the paper's
// prediction model (Sec. V-A) and the basis of trace-level analysis.
#pragma once

#include <string>

#include "memsim/counters.hpp"

namespace nvms {

struct CounterSample {
  std::string phase;     ///< name of the phase that produced the delta
  double t0 = 0.0;       ///< virtual start time
  double t1 = 0.0;       ///< virtual end time
  HwCounters delta;      ///< counter increments over [t0, t1]

  double duration() const { return t1 - t0; }
  double ipc() const { return delta.ipc(); }
};

}  // namespace nvms
