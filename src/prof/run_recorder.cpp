#include "prof/run_recorder.hpp"

namespace nvms {

PhaseResolution RunRecorder::submit(const Phase& phase) {
  const HwCounters before = sys_->counters();
  const double t0 = sys_->now();
  const PhaseResolution res = sys_->submit(phase);

  CounterSample s;
  s.phase = phase.name;
  s.t0 = t0;
  s.t1 = sys_->now();
  s.delta = sys_->counters() - before;
  s.span_id = sys_->last_phase_span();
  s.nvm_wpq_util = res.nvm.wpq_util;
  s.nvm_throttle = res.nvm.throttle;
  samples_.push_back(std::move(s));
  return res;
}

HwCounters RunRecorder::total() const {
  HwCounters t;
  for (const auto& s : samples_) t += s.delta;
  return t;
}

double RunRecorder::recorded_time() const {
  double t = 0.0;
  for (const auto& s : samples_) t += s.duration();
  return t;
}

}  // namespace nvms
