#include "prof/run_recorder.hpp"

namespace nvms {

PhaseResolution RunRecorder::submit(const Phase& phase) {
  const HwCounters before = sys_->counters();
  const double t0 = sys_->now();
  const PhaseResolution res = sys_->submit(phase);
  const HwCounters after = sys_->counters();

  CounterSample s;
  s.phase = phase.name;
  s.t0 = t0;
  s.t1 = sys_->now();
  s.delta.instructions = after.instructions - before.instructions;
  s.delta.cycles_active = after.cycles_active - before.cycles_active;
  s.delta.stall_cycles = after.stall_cycles - before.stall_cycles;
  s.delta.offcore_wait = after.offcore_wait - before.offcore_wait;
  s.delta.imc_reads = after.imc_reads - before.imc_reads;
  s.delta.imc_writes = after.imc_writes - before.imc_writes;
  samples_.push_back(std::move(s));
  return res;
}

HwCounters RunRecorder::total() const {
  HwCounters t;
  for (const auto& s : samples_) t += s.delta;
  return t;
}

double RunRecorder::recorded_time() const {
  double t = 0.0;
  for (const auto& s : samples_) t += s.duration();
  return t;
}

}  // namespace nvms
