// Data-centric profiling (the RTHMS-like tool of Sec. V-B [22]): per
// data-structure traffic intensities collected from a profiling run, used
// to drive write-aware placement.
#pragma once

#include <string>
#include <vector>

#include "memsim/memory_system.hpp"

namespace nvms {

struct BufferProfile {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;

  /// Write traffic per resident byte — the placement ranking key.
  double write_intensity() const {
    return bytes > 0 ? static_cast<double>(write_bytes) /
                           static_cast<double>(bytes)
                     : 0.0;
  }
  double read_intensity() const {
    return bytes > 0 ? static_cast<double>(read_bytes) /
                           static_cast<double>(bytes)
                     : 0.0;
  }
};

/// Snapshot per-buffer profiles of all buffers ever registered with `sys`
/// (including released ones, which carry their observed traffic), sorted by
/// descending write intensity.  Buffers with identical names (re-allocated
/// across iterations) are merged.
std::vector<BufferProfile> collect_data_profile(const MemorySystem& sys);

}  // namespace nvms
