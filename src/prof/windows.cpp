#include "prof/windows.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"

namespace nvms {

std::vector<CounterSample> rebin_windows(
    const std::vector<CounterSample>& samples, double window_s) {
  require(window_s > 0.0, "rebin: window must be positive");
  std::vector<CounterSample> out;
  if (samples.empty()) return out;

  const double t_begin = samples.front().t0;
  double t_end = t_begin;
  for (const auto& s : samples) t_end = std::max(t_end, s.t1);
  if (t_end <= t_begin) return out;

  const auto n_windows = static_cast<std::size_t>(
      std::ceil((t_end - t_begin) / window_s - 1e-12));
  out.resize(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    out[w].phase = "window";
    out[w].t0 = t_begin + static_cast<double>(w) * window_s;
    out[w].t1 = std::min(out[w].t0 + window_s, t_end);
  }

  for (const auto& s : samples) {
    const double dur = s.duration();
    if (dur <= 0.0) {
      // Zero-duration phases still carry counts (instructions scale with
      // flops, not time); deposit the whole delta into the window holding
      // t0 so re-binning conserves totals.
      const auto w = std::min(
          n_windows - 1,
          static_cast<std::size_t>(
              std::max(0.0, (s.t0 - t_begin) / window_s)));
      out[w].delta += s.delta;
      continue;
    }
    const auto first = static_cast<std::size_t>(
        std::max(0.0, (s.t0 - t_begin) / window_s));
    for (std::size_t w = first; w < n_windows; ++w) {
      const double lo = std::max(s.t0, out[w].t0);
      const double hi = std::min(s.t1, out[w].t1);
      if (hi <= lo) {
        if (out[w].t0 >= s.t1) break;
        continue;
      }
      out[w].delta += s.delta * ((hi - lo) / dur);
    }
  }
  return out;
}

SlidingWindowAggregator window_metrics(const MetricsRegistry& m,
                                       double window_s,
                                       std::size_t max_windows) {
  SlidingWindowAggregator agg(window_s, max_windows);
  for (const Metric& metric : m.metrics()) {
    if (metric.series.empty()) continue;
    agg.observe_series(metric);
  }
  return agg;
}

}  // namespace nvms
