// Fixed-window re-binning of per-phase counter samples.
//
// The paper's PCM methodology samples counters on a fixed wall-clock
// period; our recorder is exact per phase.  Re-binning the per-phase
// deltas onto a fixed time grid (splitting a phase's counts
// proportionally across the windows it spans) reproduces the sampled view
// — useful for plotting trace figures at PCM-like granularity and for
// training the prediction model on uniform windows.
#pragma once

#include <vector>

#include "prof/sample.hpp"

namespace nvms {

/// Re-bin `samples` (contiguous on the virtual timeline) into windows of
/// `window_s` seconds.  Counter deltas are split proportionally to the
/// time overlap; window phase names are "window".  The last window may be
/// shorter.  Empty input yields an empty result.
std::vector<CounterSample> rebin_windows(
    const std::vector<CounterSample>& samples, double window_s);

}  // namespace nvms
