// Fixed-window re-binning of per-phase counter samples.
//
// The paper's PCM methodology samples counters on a fixed wall-clock
// period; our recorder is exact per phase.  Re-binning the per-phase
// deltas onto a fixed time grid (splitting a phase's counts
// proportionally across the windows it spans) reproduces the sampled view
// — useful for plotting trace figures at PCM-like granularity and for
// training the prediction model on uniform windows.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/sketch.hpp"
#include "prof/sample.hpp"

namespace nvms {

/// Re-bin `samples` (contiguous on the virtual timeline) into windows of
/// `window_s` seconds.  Counter deltas are split proportionally to the
/// time overlap; window phase names are "window".  The last window may be
/// shorter.  Empty input yields an empty result.
std::vector<CounterSample> rebin_windows(
    const std::vector<CounterSample>& samples, double window_s);

/// Windowed view of a metric registry's epoch series: every gauge series
/// (bw.*, wpq.util, throttle.read, cache.*) is folded, in registration
/// order, into a SlidingWindowAggregator keyed by (name, labels) — the
/// per-window count/min/max/mean/p50/p95/p99 a scraping service reports
/// instead of raw points.  `max_windows` bounds retained history per key
/// (0 = unbounded); iteration order is deterministic.
SlidingWindowAggregator window_metrics(const MetricsRegistry& m,
                                       double window_s,
                                       std::size_t max_windows = 0);

}  // namespace nvms
