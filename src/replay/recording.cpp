#include "replay/recording.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "mem/space.hpp"
#include "simcore/error.hpp"

namespace nvms {
namespace {

const char* pattern_token(Pattern p) {
  switch (p) {
    case Pattern::kSequential:
      return "seq";
    case Pattern::kStrided:
      return "strided";
    case Pattern::kRandom:
      return "rand";
  }
  return "?";
}

Pattern parse_pattern(const std::string& s) {
  if (s == "seq") return Pattern::kSequential;
  if (s == "strided") return Pattern::kStrided;
  if (s == "rand") return Pattern::kRandom;
  throw ConfigError("trace: unknown pattern '" + s + "'");
}

Placement parse_placement(const std::string& s) {
  if (s == "auto") return Placement::kAuto;
  if (s == "dram") return Placement::kDram;
  if (s == "nvm") return Placement::kNvm;
  throw ConfigError("trace: unknown placement '" + s + "'");
}

void check_name(const std::string& name) {
  require(!name.empty() &&
              name.find_first_of(" \t\n") == std::string::npos,
          "trace: name '" + name + "' must be non-empty without whitespace");
}

}  // namespace

std::vector<std::vector<BufferId>> PhaseRecording::phase_buffers() const {
  std::vector<std::vector<BufferId>> out(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    auto& ids = out[i];
    ids.reserve(phases[i].streams.size());
    for (const auto& s : phases[i].streams) ids.push_back(s.buffer);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return out;
}

std::uint64_t PhaseRecording::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : phases) total += p.total_bytes();
  return total;
}

std::string PhaseRecording::save() const {
  std::ostringstream out;
  // round-trip precision for flops / fractions
  out << std::setprecision(17);
  out << "nvmstrace v1\n";
  for (const auto& b : buffers) {
    check_name(b.name);
    out << "buffer " << b.name << ' ' << b.bytes << ' ' << to_string(b.placement)
        << '\n';
  }
  for (const auto& p : phases) {
    check_name(p.name);
    out << "phase " << p.name << ' ' << p.threads << ' ' << p.flops << ' '
        << p.parallel_fraction << ' ' << p.mlp << ' ' << p.overlap << ' '
        << p.streams.size() << '\n';
    for (const auto& s : p.streams) {
      out << "stream " << s.buffer << ' ' << s.bytes << ' '
          << pattern_token(s.pattern) << ' '
          << (s.dir == Dir::kRead ? "read" : "write") << ' ' << s.granule
          << ' ' << s.reuse << ' ' << s.reuse_block << '\n';
    }
  }
  return out.str();
}

PhaseRecording PhaseRecording::load(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  require(header == "nvmstrace v1", "trace: bad header '" + header + "'");

  PhaseRecording rec;
  std::string tok;
  std::size_t pending_streams = 0;
  while (in >> tok) {
    if (tok == "buffer") {
      require(pending_streams == 0, "trace: buffer inside phase");
      RecordedBuffer b;
      std::string placement;
      require(static_cast<bool>(in >> b.name >> b.bytes >> placement),
              "trace: truncated buffer line");
      b.placement = parse_placement(placement);
      // Placement plans address buffers by name, so a recording with two
      // equally-named buffers would silently alias them — reject it.
      for (const auto& existing : rec.buffers) {
        require(existing.name != b.name,
                "trace: duplicate buffer name '" + b.name + "'");
      }
      rec.buffers.push_back(std::move(b));
    } else if (tok == "phase") {
      require(pending_streams == 0, "trace: phase while streams pending");
      Phase p;
      require(static_cast<bool>(in >> p.name >> p.threads >> p.flops >>
                                p.parallel_fraction >> p.mlp >> p.overlap >>
                                pending_streams),
              "trace: truncated phase line");
      rec.phases.push_back(std::move(p));
    } else if (tok == "stream") {
      require(!rec.phases.empty() && pending_streams > 0,
              "trace: stream outside phase");
      StreamDesc s;
      std::string pattern;
      std::string dir;
      require(static_cast<bool>(in >> s.buffer >> s.bytes >> pattern >> dir >>
                                s.granule >> s.reuse >> s.reuse_block),
              "trace: truncated stream line");
      s.pattern = parse_pattern(pattern);
      require(dir == "read" || dir == "write",
              "trace: unknown direction '" + dir + "'");
      s.dir = dir == "read" ? Dir::kRead : Dir::kWrite;
      require(s.buffer < rec.buffers.size(),
              "trace: stream references unknown buffer");
      rec.phases.back().streams.push_back(s);
      --pending_streams;
    } else {
      throw ConfigError("trace: unknown token '" + tok + "'");
    }
  }
  require(pending_streams == 0, "trace: truncated stream list");
  return rec;
}

double PhaseRecording::replay(MemorySystem& sys,
                              const PlacementPlan* placement) const {
  require(sys.buffers().empty(), "trace replay: system already has buffers");
  const double t0 = sys.now();
  for (const auto& b : buffers) {
    Placement p = b.placement;
    if (placement != nullptr) {
      const Placement override_p = placement->lookup(b.name);
      if (override_p != Placement::kAuto) p = override_p;
    }
    (void)sys.register_buffer(b.name, b.bytes, p);
  }
  for (const auto& p : phases) (void)sys.submit(p);
  return sys.now() - t0;
}

TraceCapture::TraceCapture(MemorySystem& sys) : sys_(&sys) {
  sys.set_phase_observer([this](const Phase& p) { phases_.push_back(p); });
}

TraceCapture::~TraceCapture() {
  if (!finished_) sys_->set_phase_observer(nullptr);
}

PhaseRecording TraceCapture::finish() {
  require(!finished_, "trace capture: finish called twice");
  finished_ = true;
  sys_->set_phase_observer(nullptr);
  PhaseRecording rec;
  for (const auto& b : sys_->buffers()) {
    rec.buffers.push_back({b.name, b.bytes, b.placement});
  }
  rec.phases = std::move(phases_);
  return rec;
}

}  // namespace nvms
