// Phase-trace recording and replay.
//
// A recording captures everything the simulator needs to re-execute a
// run's *memory behaviour* without the application: the buffer table and
// the exact phase stream.  Replaying it on a differently-configured
// MemorySystem answers what-if questions (different mode, device
// parameters, cache geometry) in microseconds — the classic trace-driven
// simulation workflow.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mem/placement_plan.hpp"
#include "memsim/memory_system.hpp"
#include "trace/phase.hpp"

namespace nvms {

struct RecordedBuffer {
  std::string name;
  std::uint64_t bytes = 0;
  Placement placement = Placement::kAuto;
};

class PhaseRecording {
 public:
  std::vector<RecordedBuffer> buffers;
  std::vector<Phase> phases;

  bool empty() const { return phases.empty(); }
  std::uint64_t total_bytes() const;

  /// The distinct buffers each phase's streams touch, sorted and
  /// deduplicated: phase_buffers()[p] lists the recording indices phase p
  /// references.  This is the phase-set index the delta-replay placement
  /// evaluator keys on: in the modes without cross-phase state a plan
  /// that flips one buffer can only change the resolution of the phases
  /// listed against it.
  std::vector<std::vector<BufferId>> phase_buffers() const;

  /// Serialize to the line-based `nvmstrace v1` text format.
  /// Buffer and phase names must not contain whitespace.
  std::string save() const;
  /// Parse a recording; throws ConfigError on malformed input.
  static PhaseRecording load(const std::string& text);

  /// Re-execute on a fresh system: registers the buffer table (ids are
  /// assigned in order, matching the recorded stream references) and
  /// submits every phase.  Returns the replayed virtual runtime.
  /// An optional placement plan overrides recorded buffer placements by
  /// name (entries mapping to kAuto keep the recorded placement).
  double replay(MemorySystem& sys,
                const PlacementPlan* placement = nullptr) const;
};

/// Captures the phases submitted to a MemorySystem between construction
/// and finish().  Uses the system's phase observer hook.
class TraceCapture {
 public:
  explicit TraceCapture(MemorySystem& sys);
  ~TraceCapture();

  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  /// Stop capturing and assemble the recording (buffer table snapshot +
  /// captured phases).
  PhaseRecording finish();

 private:
  MemorySystem* sys_;
  std::vector<Phase> phases_;
  bool finished_ = false;
};

}  // namespace nvms
