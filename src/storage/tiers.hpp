// Storage-tier models for the persistence study (Sec. IV-E, Fig. 9).
//
// The paper writes Laghos visualization snapshots to four tiers: tmpfs on
// DRAM (non-persistent upper bound), a DAX-aware ext4 on the Optane, ext4
// on local RAID, and Lustre over the interconnect.  DAX writes go through
// the simulated NVM device (64B store path); block tiers are modelled with
// a per-snapshot setup latency plus streaming bandwidth.
#pragma once

#include <string>
#include <vector>

#include "memsim/memory_system.hpp"

namespace nvms {

enum class TierKind { kTmpfs, kDaxNvm, kRaidExt4, kLustre };

struct StorageTier {
  TierKind kind = TierKind::kTmpfs;
  std::string name = "tmpfs";
  bool persistent = false;
  double write_bw = 0.0;   ///< bytes/s (block tiers; unused for dax)
  double setup_latency = 0.0;  ///< per-snapshot syscall/metadata cost

  /// The four tiers of Fig. 9a in the paper's order.
  static const std::vector<StorageTier>& all();
  static const StorageTier& by_kind(TierKind kind);
};

/// Snapshot writer: serializes `bytes` of application state from main
/// memory to the tier, advancing the MemorySystem clock.  For the DAX
/// tier the stores are issued through the NVM device model (and show up
/// in the NVM write trace, Fig. 9b); block tiers cost setup latency plus
/// bytes / write_bw, with the source read still hitting main memory.
class SnapshotWriter {
 public:
  SnapshotWriter(MemorySystem& sys, StorageTier tier);

  /// Write one snapshot of the buffer's contents; returns the time spent.
  double write(BufferId source, std::uint64_t bytes, int threads);

  double total_time() const { return total_time_; }
  int snapshots() const { return count_; }
  const StorageTier& tier() const { return tier_; }

 private:
  MemorySystem* sys_;
  StorageTier tier_;
  BufferId dax_target_ = kInvalidBuffer;
  double total_time_ = 0.0;
  int count_ = 0;
};

}  // namespace nvms
