#include "storage/tiers.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace nvms {

const std::vector<StorageTier>& StorageTier::all() {
  static const std::vector<StorageTier> tiers = {
      // tmpfs on DRAM: performance upper bound, not persistent.
      {TierKind::kTmpfs, "tmpfs-dram", false, 0.0, us(5)},
      // DAX ext4 on Optane: stores issued straight to the NVM device.
      {TierKind::kDaxNvm, "dax-ext4-nvm", true, 0.0, us(10)},
      // ext4 on the local RAID.
      {TierKind::kRaidExt4, "ext4-raid", true, gbps(1.2), ms(2)},
      // Lustre over the interconnect.
      {TierKind::kLustre, "lustre", true, gbps(0.8), ms(8)},
  };
  return tiers;
}

const StorageTier& StorageTier::by_kind(TierKind kind) {
  for (const auto& t : all()) {
    if (t.kind == kind) return t;
  }
  throw ConfigError("unknown storage tier");
}

SnapshotWriter::SnapshotWriter(MemorySystem& sys, StorageTier tier)
    : sys_(&sys), tier_(std::move(tier)) {}

double SnapshotWriter::write(BufferId source, std::uint64_t bytes,
                             int threads) {
  require(bytes > 0, "snapshot: empty snapshot");
  const double t0 = sys_->now();
  const bool memory_tier =
      tier_.kind == TierKind::kTmpfs || tier_.kind == TierKind::kDaxNvm;

  if (memory_tier) {
    if (dax_target_ == kInvalidBuffer) {
      const Placement p = tier_.kind == TierKind::kDaxNvm ? Placement::kNvm
                                                          : Placement::kDram;
      dax_target_ = sys_->register_buffer("snapshot:" + tier_.name,
                                          std::max(bytes, std::uint64_t{1}),
                                          p);
    }
    sys_->advance(tier_.name + ":open", tier_.setup_latency);
    Phase p = PhaseBuilder("snapshot:" + tier_.name)
                  .threads(threads)
                  .stream(seq_read(source, bytes))
                  .stream(seq_write(dax_target_, bytes))
                  .build();
    (void)sys_->submit(p);
  } else {
    // Block tier: the source is still read from main memory, and the
    // device drains at its streaming bandwidth.
    Phase p = PhaseBuilder("snapshot:" + tier_.name)
                  .threads(threads)
                  .stream(seq_read(source, bytes))
                  .build();
    (void)sys_->submit(p);
    sys_->advance(tier_.name + ":drain",
                  tier_.setup_latency +
                      static_cast<double>(bytes) / tier_.write_bw);
  }
  const double dt = sys_->now() - t0;
  total_time_ += dt;
  ++count_;
  return dt;
}

}  // namespace nvms
