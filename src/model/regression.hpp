// Multivariate linear regression with z-score standardization, ridge
// stabilization, and per-coefficient t-statistics / p-values — the
// statistical machinery of the paper's Sec. V-A (critical-event selection
// prunes features with high p-values, then Eq. 1 is fit by multivariate
// linear regression over normalized features).
#pragma once

#include <cstddef>
#include <vector>

#include "model/linalg.hpp"

namespace nvms {

/// Per-feature standardization to zero mean / unit variance.
class StandardScaler {
 public:
  /// Learn mean and stddev per column of X.
  void fit(const Matrix& x);
  /// Apply the learned transform (constant columns map to zero).
  Matrix transform(const Matrix& x) const;

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stddevs() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

struct RegressionReport {
  std::vector<double> coefficients;  ///< per feature (standardized space)
  double intercept = 0.0;
  double r2 = 0.0;
  std::vector<double> t_stats;   ///< per feature
  std::vector<double> p_values;  ///< two-sided, per feature
};

class LinearRegression {
 public:
  /// Ridge parameter stabilizes nearly-collinear event counts.
  explicit LinearRegression(double ridge = 1e-8) : ridge_(ridge) {}

  /// Fit y ~ X (with intercept); X is standardized internally.
  RegressionReport fit(const Matrix& x, const std::vector<double>& y);

  /// Predict for new rows (same feature layout as fit).
  std::vector<double> predict(const Matrix& x) const;
  double predict_row(const std::vector<double>& row) const;

  bool fitted() const { return fitted_; }
  const RegressionReport& report() const { return report_; }

 private:
  double ridge_;
  bool fitted_ = false;
  StandardScaler scaler_;
  RegressionReport report_;
};

/// Two-sided p-value for a t-statistic with `dof` degrees of freedom.
double t_test_p_value(double t, std::size_t dof);

/// Regularized incomplete beta function I_x(a, b) (for the t CDF).
double incomplete_beta(double a, double b, double x);

}  // namespace nvms
