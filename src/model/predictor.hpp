// IPC prediction model (Sec. V-A, Eq. 1).
//
// The model estimates application IPC at an unobserved configuration
// (different concurrency or data size) from hardware events collected at a
// single *sampled* configuration:
//
//     IPC_p = sum_i beta_i * (N_e_i * IPC_s) + sigma        (Eq. 1)
//
// Features are the six Table IV events scaled by the sampled IPC and
// z-normalized; coefficients come from multivariate linear regression over
// a training corpus, after pruning weak predictors by p-value (the
// "critical event" selection).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "model/regression.hpp"
#include "prof/sample.hpp"

namespace nvms {

/// Event vector + IPC of one (application, phase-type) at one config,
/// aggregated over all dynamic instances of the phase.
struct PhaseFeature {
  std::string phase;
  std::array<double, 6> events{};  ///< Table IV order
  double ipc = 0.0;
  double instructions = 0.0;
};

/// Aggregate per-phase counter samples by phase name.
std::vector<PhaseFeature> aggregate_by_phase(
    const std::vector<CounterSample>& samples);

/// One training example: events observed at the sampled configuration,
/// and the IPC observed at the target configuration.
struct TrainingRow {
  std::array<double, 6> events{};
  double sampled_ipc = 0.0;
  double target_ipc = 0.0;
};

class IpcPredictor {
 public:
  /// Fit Eq. 1 on the corpus; features with p-value above `p_threshold`
  /// are pruned and the model is re-fit on the survivors.
  void fit(const std::vector<TrainingRow>& rows, double p_threshold = 0.5);

  /// Predict IPC at the target configuration from sampled-config events.
  double predict(const std::array<double, 6>& events,
                 double sampled_ipc) const;

  bool fitted() const { return reg_.fitted(); }
  const RegressionReport& report() const { return reg_.report(); }
  /// Which of the six features survived pruning.
  const std::vector<bool>& active() const { return active_; }

 private:
  std::vector<double> make_row(const std::array<double, 6>& events,
                               double sampled_ipc) const;

  LinearRegression reg_{1e-6};
  std::vector<bool> active_;
};

/// Prediction accuracy as the paper reports it: 1 - |pred - obs| / obs.
double prediction_accuracy(double predicted, double observed);

/// Predict the whole-run IPC of an app from per-phase predictions, using
/// the (configuration-invariant) instruction mix as weights:
///   IPC_run = sum(I_p) / sum(I_p / IPC_p).
double combine_phase_ipcs(const std::vector<double>& instructions,
                          const std::vector<double>& phase_ipcs);

}  // namespace nvms
