#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "simcore/error.hpp"

namespace nvms {

std::vector<PhaseFeature> aggregate_by_phase(
    const std::vector<CounterSample>& samples) {
  std::map<std::string, HwCounters> by_phase;
  for (const auto& s : samples) by_phase[s.phase] += s.delta;
  std::vector<PhaseFeature> out;
  out.reserve(by_phase.size());
  for (const auto& [phase, counters] : by_phase) {
    PhaseFeature f;
    f.phase = phase;
    f.events = counters.events();
    f.ipc = counters.ipc();
    f.instructions = counters.instructions;
    out.push_back(std::move(f));
  }
  return out;
}

namespace {

/// Eq. 1 features: the six Table IV events, scaled by the sampled IPC.
/// Counts are normalized per retired instruction (and stall counts per
/// active cycle) so that phases of different lengths and applications of
/// different scales become comparable — raw counts span many orders of
/// magnitude and do not transfer across applications.
std::array<double, 6> critical_features(const std::array<double, 6>& events,
                                        double sampled_ipc) {
  const double insns = std::max(events[0], 1.0);
  const double cycles = std::max(events[1], 1.0);
  return {
      sampled_ipc,                      // p0/p1 (the sampled IPC)
      std::log1p(insns),                // problem scale
      events[2] / cycles,               // stall ratio
      events[3] / cycles,               // offcore wait ratio
      events[4] * 64.0 / insns,         // read bytes per instruction
      events[5] * 64.0 / insns,         // write bytes per instruction
  };
}

}  // namespace

std::vector<double> IpcPredictor::make_row(
    const std::array<double, 6>& events, double sampled_ipc) const {
  const auto f = critical_features(events, sampled_ipc);
  std::vector<double> row;
  row.reserve(f.size());
  for (std::size_t j = 0; j < f.size(); ++j) {
    if (!active_.empty() && !active_[j]) continue;
    row.push_back(f[j]);
  }
  return row;
}

void IpcPredictor::fit(const std::vector<TrainingRow>& rows,
                       double p_threshold) {
  require(!rows.empty(), "predictor: empty training set");
  constexpr std::size_t kF = 6;

  auto build = [&](const std::vector<bool>& mask) {
    std::size_t f = 0;
    for (bool b : mask) f += b;
    Matrix x(rows.size(), f);
    std::vector<double> y(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto feats =
          critical_features(rows[i].events, rows[i].sampled_ipc);
      std::size_t c = 0;
      for (std::size_t j = 0; j < kF; ++j) {
        if (!mask[j]) continue;
        x(i, c++) = feats[j];
      }
      // Fit the IPC *scaling factor* target/sampled: bounded and far more
      // linear across heterogeneous applications than the absolute IPC
      // (Eq. 1 up to division by IPC_s).
      y[i] = rows[i].target_ipc / std::max(rows[i].sampled_ipc, 1e-9);
    }
    return std::pair{std::move(x), std::move(y)};
  };

  // First fit with all six events.
  std::vector<bool> mask(kF, true);
  {
    auto [x, y] = build(mask);
    reg_.fit(x, y);
  }
  // Prune features whose p-value exceeds the threshold (keep at least two).
  const auto& p = reg_.report().p_values;
  std::vector<std::size_t> order(kF);
  for (std::size_t j = 0; j < kF; ++j) order[j] = j;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return p[a] < p[b]; });
  std::vector<bool> pruned(kF, false);
  std::size_t kept = 0;
  for (std::size_t j : order) {
    if (p[j] <= p_threshold || kept < 2) {
      pruned[j] = true;
      ++kept;
    }
  }
  if (kept < kF) {
    auto [x, y] = build(pruned);
    reg_.fit(x, y);
    active_ = pruned;
  } else {
    active_ = mask;
  }
}

double IpcPredictor::predict(const std::array<double, 6>& events,
                             double sampled_ipc) const {
  require(reg_.fitted(), "predictor: predict before fit");
  const double factor = reg_.predict_row(make_row(events, sampled_ipc));
  return std::max(factor * sampled_ipc, 1e-3);  // IPC is positive
}

double prediction_accuracy(double predicted, double observed) {
  if (observed == 0.0) return 0.0;
  return 1.0 - std::abs(predicted - observed) / std::abs(observed);
}

double combine_phase_ipcs(const std::vector<double>& instructions,
                          const std::vector<double>& phase_ipcs) {
  require(instructions.size() == phase_ipcs.size(),
          "combine: arity mismatch");
  double total_i = 0.0;
  double total_c = 0.0;
  for (std::size_t i = 0; i < instructions.size(); ++i) {
    require(phase_ipcs[i] > 0.0, "combine: nonpositive phase IPC");
    total_i += instructions[i];
    total_c += instructions[i] / phase_ipcs[i];
  }
  return total_c > 0.0 ? total_i / total_c : 0.0;
}

}  // namespace nvms
