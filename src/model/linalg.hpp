// Minimal dense linear algebra for the prediction model: row-major
// matrices, Gaussian elimination with partial pivoting, and the normal
// equations.  Small and exact — the regression problems here have a
// handful of features.
#pragma once

#include <cstddef>
#include <vector>

namespace nvms {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(const Matrix& a, const Matrix& b);
std::vector<double> operator*(const Matrix& a, const std::vector<double>& x);

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws Error for singular systems.
std::vector<double> solve(Matrix a, std::vector<double> b);

/// Inverse via Gauss-Jordan (used for coefficient covariance / t-stats).
Matrix inverse(const Matrix& a);

}  // namespace nvms
