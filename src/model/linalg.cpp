#include "model/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"

namespace nvms {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matrix multiply shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

std::vector<double> operator*(const Matrix& a, const std::vector<double>& x) {
  require(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) y[i] += a(i, j) * x[j];
  return y;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  require(a.rows() == a.cols() && a.rows() == b.size(),
          "solve: need square system");
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    // partial pivot
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a(i, k)) > std::abs(a(piv, k))) piv = i;
    if (std::abs(a(piv, k)) < 1e-12)
      throw Error("solve: singular (or near-singular) system");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / a(k, k);
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) a(i, j) -= f * a(k, j);
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  require(a.rows() == a.cols(), "inverse: need square matrix");
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  // Solve A x = e_i per column.
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<double> e(n, 0.0);
    e[c] = 1.0;
    const auto col = solve(a, std::move(e));
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace nvms
