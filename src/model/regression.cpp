#include "model/regression.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"

namespace nvms {

void StandardScaler::fit(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();
  require(n > 0, "scaler: empty design matrix");
  mean_.assign(f, 0.0);
  std_.assign(f, 0.0);
  for (std::size_t j = 0; j < f; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += x(i, j);
    m /= static_cast<double>(n);
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = x(i, j) - m;
      v += d * d;
    }
    mean_[j] = m;
    std_[j] = std::sqrt(v / static_cast<double>(std::max<std::size_t>(n - 1, 1)));
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  require(x.cols() == mean_.size(), "scaler: feature arity mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double s = std_[j];
      out(i, j) = s > 1e-300 ? (x(i, j) - mean_[j]) / s : 0.0;
    }
  return out;
}

RegressionReport LinearRegression::fit(const Matrix& x,
                                       const std::vector<double>& y) {
  const std::size_t n = x.rows();
  const std::size_t f = x.cols();
  require(n == y.size(), "regression: X/y row mismatch");
  require(n > f + 1, "regression: need more samples than features");

  scaler_.fit(x);
  const Matrix xs = scaler_.transform(x);

  // Design matrix with intercept column.
  Matrix d(n, f + 1);
  for (std::size_t i = 0; i < n; ++i) {
    d(i, 0) = 1.0;
    for (std::size_t j = 0; j < f; ++j) d(i, j + 1) = xs(i, j);
  }
  // Normal equations with ridge on the non-intercept block.
  Matrix dtd = d.transposed() * d;
  for (std::size_t j = 1; j <= f; ++j) dtd(j, j) += ridge_;
  std::vector<double> dty(f + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= f; ++j) dty[j] += d(i, j) * y[i];

  const Matrix dtd_inv = inverse(dtd);
  const auto beta = dtd_inv * dty;

  report_ = RegressionReport{};
  report_.intercept = beta[0];
  report_.coefficients.assign(beta.begin() + 1, beta.end());

  // Residuals, R^2, t-stats.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double pred = beta[0];
    for (std::size_t j = 0; j < f; ++j) pred += beta[j + 1] * xs(i, j);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  report_.r2 = ss_tot > 1e-300 ? 1.0 - ss_res / ss_tot : 1.0;

  const std::size_t dof = n - f - 1;
  const double sigma2 = ss_res / static_cast<double>(std::max<std::size_t>(dof, 1));
  report_.t_stats.resize(f);
  report_.p_values.resize(f);
  for (std::size_t j = 0; j < f; ++j) {
    const double se = std::sqrt(std::max(sigma2 * dtd_inv(j + 1, j + 1), 1e-300));
    report_.t_stats[j] = report_.coefficients[j] / se;
    report_.p_values[j] = t_test_p_value(report_.t_stats[j], dof);
  }
  fitted_ = true;
  return report_;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  require(fitted_, "regression: predict before fit");
  const Matrix xs = scaler_.transform(x);
  std::vector<double> out(x.rows(), report_.intercept);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < xs.cols(); ++j)
      out[i] += report_.coefficients[j] * xs(i, j);
  return out;
}

double LinearRegression::predict_row(const std::vector<double>& row) const {
  Matrix x(1, row.size());
  for (std::size_t j = 0; j < row.size(); ++j) x(0, j) = row[j];
  return predict(x)[0];
}

// ---- Student t p-values ------------------------------------------------

namespace {

double beta_cf(double a, double b, double x) {
  // Lentz continued fraction for the incomplete beta function.
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  require(x >= 0.0 && x <= 1.0, "incomplete_beta: x outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double t_test_p_value(double t, std::size_t dof) {
  if (dof == 0) return 1.0;
  const double v = static_cast<double>(dof);
  const double x = v / (v + t * t);
  return incomplete_beta(v / 2.0, 0.5, x);
}

}  // namespace nvms
