// Helper for assembling the common parts of an AppResult after a kernel
// finishes.
#pragma once

#include <string>

#include "appfw/app.hpp"

namespace nvms {

/// Fill runtime/counters/traces/samples/footprint/mode from the context.
/// The app sets fom/fom_unit/higher_is_better/checksum itself.
AppResult finalize_result(AppContext& ctx, std::string app_name);

}  // namespace nvms
