#include "appfw/result.hpp"

namespace nvms {

AppResult finalize_result(AppContext& ctx, std::string app_name) {
  AppResult r;
  r.app = std::move(app_name);
  r.mode = to_string(ctx.sys().mode());
  r.runtime = ctx.sys().now();
  r.counters = ctx.sys().counters();
  r.traces = ctx.sys().traces();
  r.samples = ctx.recorder().samples();
  r.footprint = ctx.sys().peak_footprint();
  return r;
}

}  // namespace nvms
