// Application framework: the interface every dwarf mini-app implements.
//
// An App owns its numerical kernel and the translation of that kernel's
// loop structure into exact phase traffic for the memory simulator.  The
// harness instantiates a MemorySystem per (app, mode, config) and calls
// run(); the result carries the virtual runtime, the app-defined figure of
// merit, counters, traces, and a numeric checksum for correctness tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "appfw/context.hpp"
#include "memsim/counters.hpp"
#include "prof/sample.hpp"
#include "trace/run_traces.hpp"

namespace nvms {

struct AppResult {
  std::string app;
  std::string mode;
  double runtime = 0.0;  ///< virtual seconds of the main computation
  double fom = 0.0;      ///< application-defined figure of merit
  std::string fom_unit;
  bool higher_is_better = false;
  std::uint64_t footprint = 0;  ///< peak registered bytes
  HwCounters counters;
  RunTraces traces;
  std::vector<CounterSample> samples;
  /// Order-stable numeric digest of the computed output, for correctness
  /// tests: identical across memory modes by construction.
  double checksum = 0.0;
};

class App {
 public:
  virtual ~App() = default;

  /// Registry key, e.g. "scalapack".
  virtual std::string name() const = 0;
  /// The paper's Dwarf classification, e.g. "Dense Linear Algebra".
  virtual std::string dwarf() const = 0;
  /// Short description of the modelled input problem (Table II).
  virtual std::string input_problem() const = 0;

  /// Execute the kernel against ctx.sys and fill in the result.
  virtual AppResult run(AppContext& ctx) const = 0;
};

}  // namespace nvms
