// AppContext: everything a dwarf kernel needs at run time — the memory
// system, the run configuration, a profiling recorder, and plan-aware
// buffer allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "mem/buffer.hpp"
#include "mem/placement_plan.hpp"
#include "memsim/memory_system.hpp"
#include "prof/run_recorder.hpp"
#include "simcore/rng.hpp"

namespace nvms {

struct AppConfig {
  /// Logical concurrency of the run (the paper sweeps 6..48 HT threads).
  int threads = 36;
  /// Multiplies the input-problem footprint (1.0 = the paper's baseline
  /// problem at 50-85% of scaled DRAM capacity).
  double size_scale = 1.0;
  /// Iteration override; 0 keeps the app default.
  int iterations = 0;
  std::uint64_t seed = 7;
  /// Optional write-aware placement plan (uncached-NVM optimization).
  const PlacementPlan* placement = nullptr;
  /// Optional per-timestep hook (checkpoint/visualization experiments):
  /// invoked by apps that support it with the primary state buffer.
  using StepHook = std::function<void(MemorySystem&, int step,
                                      BufferId state, std::uint64_t bytes)>;
  StepHook step_hook;

  void validate() const {
    require(threads >= 1, "config: threads must be >= 1");
    require(size_scale > 0.0, "config: size_scale must be positive");
    require(iterations >= 0, "config: iterations must be >= 0");
  }
};

class AppContext {
 public:
  AppContext(MemorySystem& sys, const AppConfig& cfg)
      : sys_(sys), cfg_(cfg), rec_(sys), rng_(cfg.seed) {
    cfg.validate();
  }

  MemorySystem& sys() { return sys_; }
  const AppConfig& cfg() const { return cfg_; }
  RunRecorder& recorder() { return rec_; }
  Rng& rng() { return rng_; }

  /// Allocate a named, typed buffer, honouring the placement plan.
  template <typename T>
  Buffer<T> alloc(std::string name, std::size_t count) {
    return alloc<T>(std::move(name), count, count);
  }

  /// Allocate with a virtual footprint larger than the host array
  /// (self-similar scaling; see Buffer).
  template <typename T>
  Buffer<T> alloc(std::string name, std::size_t count,
                  std::size_t virtual_count) {
    Placement p = Placement::kAuto;
    if (cfg_.placement != nullptr) p = cfg_.placement->lookup(name);
    return Buffer<T>(sys_, std::move(name), count, virtual_count, p);
  }

  /// Submit a phase through the recorder (per-phase samples collected).
  PhaseResolution run(const Phase& phase) { return rec_.submit(phase); }

 private:
  MemorySystem& sys_;
  const AppConfig& cfg_;
  RunRecorder rec_;
  Rng rng_;
};

}  // namespace nvms
