// Fixed-size worker thread pool with a task queue, futures and exception
// propagation — the engine behind every parallel experiment grid (sweeps,
// bench drivers, explorer examples).
//
// Design notes:
//   * Tasks are arbitrary callables; submit() returns a std::future that
//     carries the return value or the thrown exception.
//   * parallel_for_index()/parallel_for_each() create a private pool per
//     call, so nesting them (a task that itself fans out) can never
//     deadlock: the inner call either runs inline or spins up fresh
//     workers.
//   * Determinism is the caller's contract: tasks must be independent
//     (own RNG, own MemorySystem) and write only to their own output
//     slot; then results are identical for any worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nvms {

class ThreadPool {
 public:
  /// Spawn `jobs` workers (jobs >= 1; use default_jobs() for the
  /// hardware concurrency).
  explicit ThreadPool(int jobs);
  /// Drains the queue: already-submitted tasks finish before join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, clamped to >= 1.
  static int default_jobs();

  /// Index of the pool worker running the calling thread, or -1 when
  /// called from a thread that is not a pool worker (e.g. main).
  static int current_worker();

  /// Enqueue a callable; the future resolves to its return value, or
  /// rethrows whatever it threw.  Safe to call from worker threads
  /// (tasks may submit follow-up tasks), but a worker must not block on
  /// a future whose task could be starved by the caller itself — prefer
  /// the nested-pool helpers below for fan-out inside a task.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(int index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Shared implementation: run fn(0..n-1), each index exactly once, over
/// `jobs` workers; rethrows the lowest-index exception after all tasks
/// finished.  jobs <= 0 selects the hardware concurrency.
void parallel_for_impl(std::size_t n,
                       const std::function<void(std::size_t)>& fn, int jobs);

}  // namespace detail

/// Run fn(i) for every i in [0, n).  With jobs == 1 (or n <= 1) the
/// calls happen inline on the calling thread in index order — the exact
/// serial semantics; otherwise a private pool executes them
/// concurrently.  All indices complete before the first exception (by
/// index) is rethrown.
template <typename Fn>
void parallel_for_index(std::size_t n, Fn&& fn, int jobs = 0) {
  const std::function<void(std::size_t)> body = std::forward<Fn>(fn);
  detail::parallel_for_impl(n, body, jobs);
}

/// Run fn(item) over every element of `items` (by reference).  Each task
/// must touch only its own element for jobs-independent results.
template <typename Item, typename Fn>
void parallel_for_each(std::vector<Item>& items, Fn&& fn, int jobs = 0) {
  detail::parallel_for_impl(
      items.size(),
      [&items, &fn](std::size_t i) { fn(items[i]); }, jobs);
}

}  // namespace nvms
