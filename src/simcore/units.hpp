// Units and formatting helpers shared across the simulator.
//
// Conventions used throughout nvmsim:
//   * time            : double, seconds (virtual simulated time)
//   * latency         : double, seconds (e.g. 174e-9 for 174 ns)
//   * bandwidth       : double, bytes per second
//   * sizes / traffic : std::uint64_t, bytes
#pragma once

#include <cstdint>
#include <string>

namespace nvms {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

/// Decimal giga, used for bandwidths quoted as "GB/s" in the paper.
inline constexpr double GB = 1e9;
inline constexpr double MB = 1e6;

/// Nanoseconds to seconds.
constexpr double ns(double v) { return v * 1e-9; }
/// Microseconds to seconds.
constexpr double us(double v) { return v * 1e-6; }
/// Milliseconds to seconds.
constexpr double ms(double v) { return v * 1e-3; }

/// Bytes/second expressed from a "GB/s" figure (decimal, as in the paper).
constexpr double gbps(double v) { return v * GB; }
/// Bytes/second expressed from a "MB/s" figure.
constexpr double mbps(double v) { return v * MB; }

/// Pretty-print a byte count ("1.50 GiB").
std::string format_bytes(std::uint64_t bytes);
/// Pretty-print a bandwidth in GB/s with two decimals ("12.34 GB/s").
std::string format_bandwidth(double bytes_per_s);
/// Pretty-print a duration, picking ns/us/ms/s automatically.
std::string format_time(double seconds);

}  // namespace nvms
