#include "simcore/json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simcore/error.hpp"

namespace nvms {

Json& Json::set(const std::string& key, Json value) {
  if (!std::holds_alternative<std::shared_ptr<Object>>(value_)) {
    value_ = std::make_shared<Object>();
  }
  auto& obj = *std::get<std::shared_ptr<Object>>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (!std::holds_alternative<std::shared_ptr<Array>>(value_)) {
    value_ = std::make_shared<Array>();
  }
  std::get<std::shared_ptr<Array>>(value_)->push_back(std::move(value));
  return *this;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<Object>();
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json& Json::sort_keys() {
  if (is_object()) {
    auto& obj = *std::get<std::shared_ptr<Object>>(value_);
    std::stable_sort(obj.begin(), obj.end(), [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
    for (auto& [k, v] : obj) v.sort_keys();
  } else if (is_array()) {
    for (auto& v : *std::get<std::shared_ptr<Array>>(value_)) v.sort_keys();
  }
  return *this;
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  std::string pad;
  std::string pad_close;
  if (indent > 0) {
    pad = "\n";
    pad.append(static_cast<std::size_t>(indent) *
                   (static_cast<std::size_t>(depth) + 1),
               ' ');
    pad_close = "\n";
    pad_close.append(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
  }
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<double>(value_)) {
    const double d = std::get<double>(value_);
    require(std::isfinite(d), "json: non-finite number");
    char buf[40];
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof buf, "%.0f", d);
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", d);
    }
    out += buf;
  } else if (std::holds_alternative<std::string>(value_)) {
    out += '"';
    out += escape(std::get<std::string>(value_));
    out += '"';
  } else if (is_object()) {
    const auto& obj = *std::get<std::shared_ptr<Object>>(value_);
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      out += pad;
      out += '"';
      out += escape(k);
      out += "\":";
      if (indent > 0) out += ' ';
      v.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out += '}';
  } else {
    const auto& arr = *std::get<std::shared_ptr<Array>>(value_);
    out += '[';
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out += ',';
      first = false;
      out += pad;
      v.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace nvms
