// Plain-text aligned table printer used by the benchmark harnesses to emit
// the same rows the paper's tables/figures report.
#pragma once

#include <string>
#include <vector>

namespace nvms {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 2);

  /// Render with column alignment and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nvms
