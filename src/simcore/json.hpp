// Minimal JSON writer for machine-readable CLI/bench output.
//
// Build documents imperatively; serialization escapes strings per RFC 8259
// and renders numbers with enough precision to round-trip doubles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nvms {

class Json {
 public:
  Json() : value_(nullptr) {}                      // null
  Json(bool b) : value_(b) {}                      // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                    // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}    // NOLINT
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}   // NOLINT
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT

  /// Object member (creates/overwrites); turns this node into an object.
  Json& set(const std::string& key, Json value);
  /// Array element append; turns this node into an array.
  Json& push(Json value);

  bool is_object() const;
  bool is_array() const;

  /// Explicitly-typed empty containers (a default Json is null, so an
  /// empty collection would otherwise serialize as `null`).
  static Json object();
  static Json array();

  /// Recursively sort object members by key (byte-stable output for CI
  /// and scripts).  Arrays keep their element order; nested objects are
  /// sorted too.  Returns *this for chaining.
  Json& sort_keys();

  std::string dump(int indent = 0) const;

  static std::string escape(const std::string& s);

 private:
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      value_;
};

}  // namespace nvms
