#include "simcore/units.hpp"

#include <array>
#include <cstdio>

namespace nvms {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < suffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, suffix[i]);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_s) {
  char buf[64];
  if (bytes_per_s >= GB) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_s / GB);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_s / MB);
  }
  return buf;
}

std::string format_time(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  }
  return buf;
}

}  // namespace nvms
