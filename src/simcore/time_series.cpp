#include "simcore/time_series.hpp"

#include <algorithm>
#include <cstdio>

#include "simcore/error.hpp"

namespace nvms {

void TimeSeries::add_segment(double t0, double t1, double value) {
  require(t1 >= t0, "time series segment with t1 < t0");
  if (!segments_.empty()) {
    require(t0 >= segments_.back().t1 - 1e-12,
            "time series segments must be appended in order");
  }
  if (t1 == t0) return;  // zero-length segments carry no information
  segments_.push_back({t0, t1, value});
}

double TimeSeries::start() const {
  return segments_.empty() ? 0.0 : segments_.front().t0;
}

double TimeSeries::end() const {
  return segments_.empty() ? 0.0 : segments_.back().t1;
}

double TimeSeries::time_average() const {
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& s : segments_) {
    const double dt = s.t1 - s.t0;
    weighted += s.value * dt;
    total += dt;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

double TimeSeries::peak() const {
  double p = 0.0;
  for (const auto& s : segments_) p = std::max(p, s.value);
  return p;
}

double TimeSeries::at(double t) const {
  for (const auto& s : segments_) {
    if (t >= s.t0 && t < s.t1) return s.value;
  }
  return 0.0;
}

std::vector<double> TimeSeries::resample(std::size_t n) const {
  require(n > 0, "resample with zero points");
  std::vector<double> out(n, 0.0);
  if (segments_.empty()) return out;
  const double t0 = start();
  const double t1 = end();
  const double bin = (t1 - t0) / static_cast<double>(n);
  if (bin <= 0.0) return out;
  std::size_t seg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double b0 = t0 + bin * static_cast<double>(i);
    const double b1 = b0 + bin;
    double weighted = 0.0;
    // advance to the first segment overlapping this bin
    while (seg < segments_.size() && segments_[seg].t1 <= b0) ++seg;
    for (std::size_t j = seg; j < segments_.size() && segments_[j].t0 < b1;
         ++j) {
      const double lo = std::max(b0, segments_[j].t0);
      const double hi = std::min(b1, segments_[j].t1);
      if (hi > lo) weighted += segments_[j].value * (hi - lo);
    }
    out[i] = weighted / bin;
  }
  return out;
}

std::string TimeSeries::to_csv(const std::string& name, std::size_t n) const {
  std::string csv = "t_s," + name + "\n";
  const auto values = resample(n);
  const double t0 = start();
  const double bin = empty() ? 0.0 : (end() - t0) / static_cast<double>(n);
  char row[96];
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::snprintf(row, sizeof row, "%.6f,%.6g\n",
                  t0 + bin * (static_cast<double>(i) + 0.5), values[i]);
    csv += row;
  }
  return csv;
}

}  // namespace nvms
