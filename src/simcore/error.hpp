// Error handling for nvmsim.  Configuration and usage errors throw
// nvms::Error; internal invariants use NVMS_ASSERT which also throws so that
// tests can exercise failure paths without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace nvms {

/// Base exception for all nvmsim errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown for invalid user-supplied configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Thrown when a simulated capacity (e.g. DRAM in write-aware mode) would be
/// exceeded.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what)
      : Error("capacity: " + what) {}
};

/// Throw ConfigError unless `cond` holds.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw ConfigError(what);
}

}  // namespace nvms

#define NVMS_ASSERT(cond, msg)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      throw ::nvms::Error(std::string("internal: ") + (msg) + " at " +    \
                          __FILE__ + ":" + std::to_string(__LINE__));     \
  } while (false)
