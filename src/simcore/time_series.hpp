// Piecewise-constant time series for reconstructing bandwidth traces
// (Figures 4, 5, 7, 8, 9b of the paper).
//
// The memory simulator resolves one average bandwidth per phase; a phase
// contributes a segment [t0, t1) with a constant value.  Traces are then
// resampled to a fixed grid for printing/CSV export, matching the paper's
// sampled PCM traces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nvms {

/// One constant-valued segment of a trace.
struct Segment {
  double t0 = 0.0;   ///< segment start, seconds
  double t1 = 0.0;   ///< segment end, seconds
  double value = 0.0;
};

class TimeSeries {
 public:
  /// Append a segment; `t0` must not precede the previous segment's end.
  void add_segment(double t0, double t1, double value);

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }
  double start() const;
  double end() const;

  /// Time-weighted average of the whole series.
  double time_average() const;
  /// Maximum segment value (0 for an empty series).
  double peak() const;

  /// Value at time t (0 outside all segments).
  double at(double t) const;

  /// Resample onto `n` uniformly spaced points across [start, end];
  /// each point is the time-weighted average over its bin.
  std::vector<double> resample(std::size_t n) const;

  /// Emit "t,value" CSV rows resampled to n points, with a header line.
  std::string to_csv(const std::string& name, std::size_t n) const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace nvms
