// Streaming and batch statistics used by profilers, samplers, and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace nvms {

/// Welford online accumulator for mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1].  The input is copied; the original order is preserved.
double percentile(std::vector<double> values, double q);

/// Simple trailing moving average over a fixed window.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  double add(double x);
  double value() const;
  bool full() const { return count_ >= buf_.size(); }

 private:
  std::vector<double> buf_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace nvms
