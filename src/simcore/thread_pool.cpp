#include "simcore/thread_pool.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace nvms {
namespace {

// Worker identity for ThreadPool::current_worker(); each pool's workers
// set it for their own thread, so nested pools see their own index.
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int jobs) {
  require(jobs >= 1, "thread pool: jobs must be >= 1");
  workers_.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::current_worker() { return tls_worker_index; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NVMS_ASSERT(!stopping_, "thread pool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(int index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

namespace detail {

void parallel_for_impl(std::size_t n,
                       const std::function<void(std::size_t)>& fn,
                       int jobs) {
  if (jobs <= 0) jobs = ThreadPool::default_jobs();
  if (n == 0) return;
  if (jobs == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                             n));
  ThreadPool pool(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Wait for everything, then rethrow the lowest-index failure so error
  // reporting is independent of scheduling order.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace detail

}  // namespace nvms
