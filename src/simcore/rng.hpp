// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs, so all stochastic
// components (address sampling, synthetic matrices, Monte Carlo kernels)
// draw from this xoshiro256** implementation seeded via splitmix64.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace nvms {

/// splitmix64 step; used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator: fast, high quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ull - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace nvms
