#include "simcore/table.hpp"

#include <algorithm>
#include <cstdio>

#include "simcore/error.hpp"

namespace nvms {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "table row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out += std::string(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  std::string out;
  out.reserve((rows_.size() + 2) * (total + 1));
  emit_row(headers_, out);
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace nvms
