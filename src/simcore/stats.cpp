#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"

namespace nvms {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  require(!values.empty(), "percentile of empty sample");
  require(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

MovingAverage::MovingAverage(std::size_t window) : buf_(window, 0.0) {
  require(window > 0, "moving average window must be positive");
}

double MovingAverage::add(double x) {
  if (count_ >= buf_.size()) sum_ -= buf_[next_];
  buf_[next_] = x;
  sum_ += x;
  next_ = (next_ + 1) % buf_.size();
  if (count_ < buf_.size()) ++count_;
  return value();
}

double MovingAverage::value() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(std::min(count_, buf_.size()));
}

}  // namespace nvms
