// Reconstructed bandwidth traces of a run, in the spirit of the paper's
// per-DIMM PCM sampling.  One read and one write series per device class,
// plus phase boundary markers so benches can report phase compositions
// (e.g. "stage 1 extends from 20% to 70% of execution", Fig. 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time_series.hpp"

namespace nvms {

/// Marks one submitted phase on the virtual timeline.
struct PhaseMark {
  std::string name;
  double t0 = 0.0;
  double t1 = 0.0;
};

struct RunTraces {
  TimeSeries dram_read;
  TimeSeries dram_write;
  TimeSeries nvm_read;
  TimeSeries nvm_write;
  std::vector<PhaseMark> phases;

  void clear() { *this = RunTraces{}; }

  /// Total fraction of execution time spent in phases whose name starts
  /// with `prefix` (used for phase-composition results).
  double phase_time_fraction(const std::string& prefix) const;

  /// Combined (DRAM + NVM) average read/write bandwidth over the run.
  double avg_read_bw() const;
  double avg_write_bw() const;
};

}  // namespace nvms
