#include "trace/pattern.hpp"

namespace nvms {

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kSequential:
      return "seq";
    case Pattern::kStrided:
      return "strided";
    case Pattern::kRandom:
      return "rand";
  }
  return "?";
}

}  // namespace nvms
