#include "trace/run_traces.hpp"

namespace nvms {
namespace {

double series_bytes(const TimeSeries& s) {
  double total = 0.0;
  for (const auto& seg : s.segments()) total += seg.value * (seg.t1 - seg.t0);
  return total;
}

double run_span(const RunTraces& t) {
  double t0 = 1e300;
  double t1 = -1e300;
  for (const TimeSeries* s :
       {&t.dram_read, &t.dram_write, &t.nvm_read, &t.nvm_write}) {
    if (s->empty()) continue;
    t0 = t0 < s->start() ? t0 : s->start();
    t1 = t1 > s->end() ? t1 : s->end();
  }
  return (t1 > t0) ? (t1 - t0) : 0.0;
}

}  // namespace

double RunTraces::phase_time_fraction(const std::string& prefix) const {
  double matched = 0.0;
  double total = 0.0;
  for (const auto& p : phases) {
    const double dt = p.t1 - p.t0;
    total += dt;
    if (p.name.rfind(prefix, 0) == 0) matched += dt;
  }
  return total > 0.0 ? matched / total : 0.0;
}

double RunTraces::avg_read_bw() const {
  const double span = run_span(*this);
  if (span <= 0.0) return 0.0;
  return (series_bytes(dram_read) + series_bytes(nvm_read)) / span;
}

double RunTraces::avg_write_bw() const {
  const double span = run_span(*this);
  if (span <= 0.0) return 0.0;
  return (series_bytes(dram_write) + series_bytes(nvm_write)) / span;
}

}  // namespace nvms
