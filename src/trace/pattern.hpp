// Access-stream vocabulary.
//
// Mini-apps describe the memory traffic of each computation phase as a set
// of streams over registered buffers.  A stream is exact, not estimated: the
// byte counts are derived from the kernel's loop structure (e.g. a blocked
// GEMM update of block size b reads 2*b*b*8 bytes and writes b*b*8 bytes).
#pragma once

#include <cstdint>
#include <string>

namespace nvms {

/// Identifies a buffer registered with a MemorySystem.
using BufferId = std::uint32_t;
inline constexpr BufferId kInvalidBuffer = ~0u;

/// Spatial access pattern of a stream.
///
/// * Sequential — unit-stride walk; reaches device peak bandwidth, writes
///   combine fully in the WPQ.
/// * Strided — short fixed strides (e.g. matrix-transpose, stencil planes);
///   partial locality: some media-granularity waste on NVM.
/// * Random — uniformly random cache lines (hash/Monte Carlo lookups);
///   latency-bound and pays the full 256B-media read-modify-write
///   amplification for sub-granularity NVM writes.
enum class Pattern { kSequential, kStrided, kRandom };

const char* to_string(Pattern p);

/// Demand classification used by the device models.  Random streams are
/// split by whether their granule reaches the Optane media granularity
/// (256 B) — sub-granularity jumps pay media amplification on NVM.
enum class PatClass : int {
  kSeq = 0,
  kStrided = 1,
  kRandSmall = 2,
  kRandLarge = 3,
};
inline constexpr std::size_t kNumPatClasses = 4;
inline constexpr std::uint64_t kMediaGranularity = 256;

constexpr PatClass classify(Pattern p, std::uint64_t granule) {
  switch (p) {
    case Pattern::kSequential:
      return PatClass::kSeq;
    case Pattern::kStrided:
      return PatClass::kStrided;
    case Pattern::kRandom:
      return granule >= kMediaGranularity ? PatClass::kRandLarge
                                          : PatClass::kRandSmall;
  }
  return PatClass::kSeq;
}

/// Direction of a stream.
enum class Dir { kRead, kWrite };

/// One access stream of a phase.
struct StreamDesc {
  BufferId buffer = kInvalidBuffer;
  std::uint64_t bytes = 0;  ///< total bytes moved during the phase
  Pattern pattern = Pattern::kSequential;
  Dir dir = Dir::kRead;
  /// For Random streams: contiguous bytes touched per random jump.  Jumps
  /// touching less than the NVM media granularity (256 B) pay media
  /// amplification; larger granules (e.g. XSBench's ~1.5 KB xs rows)
  /// behave like short sequential bursts.
  std::uint64_t granule = 64;

  /// Temporal blocking: the stream processes the buffer in `reuse_block`-
  /// sized chunks, touching each chunk `reuse` times before advancing
  /// (box-wise AMR sweeps, panel updates, forward+backward solves).
  /// `bytes` already includes the repeated passes.  Device-level timing is
  /// unaffected; the DRAM cache (Memory mode) turns the repeats into hits,
  /// which is why cached-NVM keeps a ~2x advantage even when the footprint
  /// exceeds DRAM (Fig. 3).
  std::uint32_t reuse = 1;
  std::uint64_t reuse_block = 2 * 1024 * 1024;

  StreamDesc& with_granule(std::uint64_t g) {
    granule = g;
    return *this;
  }
  StreamDesc& with_reuse(std::uint32_t r, std::uint64_t block = 2 * 1024 * 1024) {
    reuse = r;
    reuse_block = block;
    return *this;
  }
};

/// Convenience constructors.
inline StreamDesc seq_read(BufferId b, std::uint64_t bytes) {
  return {b, bytes, Pattern::kSequential, Dir::kRead};
}
inline StreamDesc seq_write(BufferId b, std::uint64_t bytes) {
  return {b, bytes, Pattern::kSequential, Dir::kWrite};
}
inline StreamDesc strided_read(BufferId b, std::uint64_t bytes) {
  return {b, bytes, Pattern::kStrided, Dir::kRead};
}
inline StreamDesc strided_write(BufferId b, std::uint64_t bytes) {
  return {b, bytes, Pattern::kStrided, Dir::kWrite};
}
inline StreamDesc rand_read(BufferId b, std::uint64_t bytes) {
  return {b, bytes, Pattern::kRandom, Dir::kRead};
}
inline StreamDesc rand_write(BufferId b, std::uint64_t bytes) {
  return {b, bytes, Pattern::kRandom, Dir::kWrite};
}

}  // namespace nvms
