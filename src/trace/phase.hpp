// Phase descriptors: the unit of work submitted to the memory simulator.
//
// A phase bundles useful arithmetic (flops), its access streams, and its
// execution properties (logical concurrency, parallel fraction,
// memory-level parallelism).  Apps submit many small phases (one per
// iteration / panel / sweep), which is what produces the structured
// bandwidth traces of Figures 4, 5, 7 and 8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/pattern.hpp"

namespace nvms {

struct Phase {
  std::string name;

  /// Logical concurrency (threads) executing this phase.
  int threads = 1;

  /// Useful floating-point work of the phase.
  double flops = 0.0;

  /// Fraction of the compute that parallelizes (Amdahl); 1.0 = perfect.
  double parallel_fraction = 1.0;

  /// Per-thread memory-level parallelism for Random streams (outstanding
  /// misses).  Bounds latency-limited random bandwidth.
  double mlp = 8.0;

  /// Fraction of memory time that can overlap with compute; 1.0 means the
  /// phase runs at max(compute, memory) (roofline), 0.0 means they
  /// serialize.
  double overlap = 1.0;

  std::vector<StreamDesc> streams;

  /// Sum of bytes for streams in direction `dir`.
  std::uint64_t bytes(Dir dir) const {
    std::uint64_t total = 0;
    for (const auto& s : streams)
      if (s.dir == dir) total += s.bytes;
    return total;
  }
  std::uint64_t read_bytes() const { return bytes(Dir::kRead); }
  std::uint64_t write_bytes() const { return bytes(Dir::kWrite); }
  std::uint64_t total_bytes() const { return read_bytes() + write_bytes(); }
};

/// Builder-style helper so app kernels read naturally:
///   submit(PhaseBuilder("fft-pass").threads(t).flops(f)
///          .stream(seq_read(a, n)).stream(seq_write(b, n)).build());
class PhaseBuilder {
 public:
  explicit PhaseBuilder(std::string name) { phase_.name = std::move(name); }

  PhaseBuilder& threads(int t) {
    phase_.threads = t;
    return *this;
  }
  PhaseBuilder& flops(double f) {
    phase_.flops = f;
    return *this;
  }
  PhaseBuilder& parallel_fraction(double p) {
    phase_.parallel_fraction = p;
    return *this;
  }
  PhaseBuilder& mlp(double m) {
    phase_.mlp = m;
    return *this;
  }
  PhaseBuilder& overlap(double o) {
    phase_.overlap = o;
    return *this;
  }
  PhaseBuilder& stream(StreamDesc s) {
    phase_.streams.push_back(s);
    return *this;
  }

  Phase build() { return std::move(phase_); }

 private:
  Phase phase_;
};

}  // namespace nvms
