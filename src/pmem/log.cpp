#include "pmem/log.hpp"

#include <cstring>

#include "simcore/error.hpp"

namespace nvms {
namespace {

using namespace pmemlog;

void put_u64(PmemRegion& region, std::size_t offset, std::uint64_t v) {
  std::byte buf[8];
  std::memcpy(buf, &v, 8);
  region.store(offset, {buf, 8});
}

std::uint64_t get_u64(std::span<const std::byte> bytes, std::size_t offset) {
  require(offset + 8 <= bytes.size(), "pmem log: truncated u64");
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

void set_state(PmemRegion& log, std::uint8_t state, int threads = 1) {
  const std::byte b{state};
  log.store(kStateOffset, {&b, 1});
  log.persist_range(kStateOffset, 1, threads);
}

std::uint8_t persisted_state(const PmemRegion& log) {
  return static_cast<std::uint8_t>(log.persisted_data()[kStateOffset]);
}

/// Append one record at the current end; returns the new end offset.
/// Record layout: u64 offset, u64 len, payload (padded to 8 bytes).
std::size_t append_record(PmemRegion& log, std::size_t end,
                          std::uint64_t data_offset,
                          std::span<const std::byte> payload) {
  const std::size_t padded = (payload.size() + 7) / 8 * 8;
  require(end + 16 + padded <= log.size(), "pmem log: log region full");
  put_u64(log, end, data_offset);
  put_u64(log, end + 8, payload.size());
  log.store(end + 16, payload);
  return end + 16 + padded;
}

std::size_t records_end(std::span<const std::byte> bytes,
                        std::uint64_t count) {
  std::size_t pos = kRecordsOffset;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = get_u64(bytes, pos + 8);
    pos += 16 + (len + 7) / 8 * 8;
  }
  return pos;
}

}  // namespace

namespace pmemlog {

std::vector<Record> parse(std::span<const std::byte> log_bytes,
                          std::uint64_t count) {
  std::vector<Record> out;
  std::size_t pos = kRecordsOffset;
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r;
    r.offset = get_u64(log_bytes, pos);
    const std::uint64_t len = get_u64(log_bytes, pos + 8);
    require(pos + 16 + len <= log_bytes.size(), "pmem log: truncated record");
    r.payload.assign(log_bytes.begin() + static_cast<std::ptrdiff_t>(pos + 16),
                     log_bytes.begin() +
                         static_cast<std::ptrdiff_t>(pos + 16 + len));
    pos += 16 + (len + 7) / 8 * 8;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace pmemlog

// ---------- undo ----------------------------------------------------------

UndoLogTx::UndoLogTx(PmemRegion& data, PmemRegion& log)
    : data_(data), log_(log) {}

void UndoLogTx::begin() {
  require(!active_, "undo tx: already active");
  put_u64(log_, pmemlog::kCountOffset, 0);
  set_state(log_, pmemlog::kActive);
  active_ = true;
  ++stats_.transactions;
}

void UndoLogTx::write(std::size_t offset, std::span<const std::byte> data) {
  require(active_, "undo tx: write outside transaction");
  require(!data.empty(), "undo tx: empty write");
  // 1. write-ahead: log the OLD value and persist the record + count.
  const auto bytes = log_.data();
  const std::uint64_t count = get_u64(bytes, pmemlog::kCountOffset);
  const std::size_t end = records_end(bytes, count);
  const std::span<const std::byte> old{data_.data().data() + offset,
                                       data.size()};
  const std::size_t new_end = append_record(log_, end, offset, old);
  // persist the record before the count that makes it visible
  log_.persist_range(end, new_end - end);
  put_u64(log_, pmemlog::kCountOffset, count + 1);
  log_.persist_range(pmemlog::kCountOffset, 8);
  stats_.log_bytes += new_end - end;
  maybe_crash(CrashPoint::kAfterLogAppend);

  // 2. in-place update; durable at commit.
  data_.store(offset, data);
  ++stats_.tx_writes;
  stats_.data_bytes += data.size();
}

void UndoLogTx::commit(int threads) {
  require(active_, "undo tx: commit outside transaction");
  // 1. make the new data durable.
  data_.persist(threads);
  maybe_crash(CrashPoint::kBeforeCommitMark);
  // 2. retire the log (the commit point for undo logging).
  set_state(log_, pmemlog::kIdle, threads);
  maybe_crash(CrashPoint::kAfterCommitMark);
  active_ = false;
}

bool UndoLogTx::recover(PmemRegion& data, PmemRegion& log) {
  if (persisted_state(log) != pmemlog::kActive) return false;
  const auto bytes = log.persisted_data();
  const std::uint64_t count = get_u64(bytes, pmemlog::kCountOffset);
  const auto records = pmemlog::parse(bytes, count);
  // roll back in reverse order
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    data.store(it->offset, it->payload);
  }
  data.persist();
  set_state(log, pmemlog::kIdle);
  return true;
}

// ---------- redo ----------------------------------------------------------

RedoLogTx::RedoLogTx(PmemRegion& data, PmemRegion& log)
    : data_(data), log_(log) {}

void RedoLogTx::begin() {
  require(!active_, "redo tx: already active");
  put_u64(log_, pmemlog::kCountOffset, 0);
  set_state(log_, pmemlog::kActive);
  active_ = true;
  ++stats_.transactions;
}

void RedoLogTx::write(std::size_t offset, std::span<const std::byte> data) {
  require(active_, "redo tx: write outside transaction");
  require(!data.empty(), "redo tx: empty write");
  // buffer the NEW value in the log (not persisted until commit)
  const auto bytes = log_.data();
  const std::uint64_t count = get_u64(bytes, pmemlog::kCountOffset);
  const std::size_t end = records_end(bytes, count);
  const std::size_t new_end = append_record(log_, end, offset, data);
  put_u64(log_, pmemlog::kCountOffset, count + 1);
  stats_.log_bytes += new_end - end;
  maybe_crash(CrashPoint::kAfterLogAppend);
  // volatile read-your-writes view only; durable path goes via the log
  data_.store(offset, data);
  ++stats_.tx_writes;
  stats_.data_bytes += data.size();
}

void RedoLogTx::commit(int threads) {
  require(active_, "redo tx: commit outside transaction");
  // 1. persist the buffered records, then the commit mark (atomicity point)
  log_.persist(threads);
  maybe_crash(CrashPoint::kBeforeCommitMark);
  set_state(log_, pmemlog::kCommitted, threads);
  maybe_crash(CrashPoint::kAfterCommitMark);
  // 2. apply to the home locations and retire the log.
  data_.persist(threads);
  set_state(log_, pmemlog::kIdle, threads);
  active_ = false;
}

bool RedoLogTx::recover(PmemRegion& data, PmemRegion& log) {
  const std::uint8_t state = persisted_state(log);
  if (state == pmemlog::kIdle) return false;
  if (state == pmemlog::kActive) {
    // uncommitted: discard
    set_state(log, pmemlog::kIdle);
    return false;
  }
  // committed: re-apply forward (idempotent)
  const auto bytes = log.persisted_data();
  const std::uint64_t count = get_u64(bytes, pmemlog::kCountOffset);
  for (const auto& r : pmemlog::parse(bytes, count)) {
    data.store(r.offset, r.payload);
  }
  data.persist();
  set_state(log, pmemlog::kIdle);
  return true;
}

}  // namespace nvms
