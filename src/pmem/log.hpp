// Crash-consistent transactions over persistent-memory regions.
//
// Two classic protocols (the paper's related work — Mnemosyne, NVStream,
// NV-Tree — are all variations on these):
//
//   * Undo logging: the OLD value of every written range is appended to a
//     write-ahead log and persisted *before* the in-place update; commit
//     persists the data and then retires the log.  Crash before the log is
//     retired -> roll back.
//   * Redo logging: the NEW values are buffered in the log; a persisted
//     commit mark is the atomicity point; the data region is updated after
//     (and re-applied idempotently during recovery if needed).
//
// Records are genuinely serialized into the log region's bytes, and
// recovery parses those bytes back — so the crash tests exercise a real
// recovery path, not a mock.  All flush/fence costs are charged to the
// simulated NVM via the regions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmem/region.hpp"
#include "simcore/error.hpp"

namespace nvms {

/// Simulated power failure injected at a specific protocol step.
class CrashException : public Error {
 public:
  CrashException() : Error("simulated power failure") {}
};

enum class CrashPoint {
  kNone,
  kAfterLogAppend,    ///< inside write(): log record persisted, data not yet
  kBeforeCommitMark,  ///< inside commit(): payload done, mark not persisted
  kAfterCommitMark,   ///< inside commit(): mark persisted, cleanup pending
};

/// Cost/effort statistics of a transaction engine.
struct TxStats {
  std::uint64_t transactions = 0;
  std::uint64_t tx_writes = 0;
  std::uint64_t data_bytes = 0;  ///< payload bytes written by the app
  std::uint64_t log_bytes = 0;   ///< bytes appended to the log
  double write_amplification() const {
    return data_bytes > 0 ? static_cast<double>(data_bytes + log_bytes) /
                                static_cast<double>(data_bytes)
                          : 0.0;
  }
};

/// Common interface so benches can compare protocols uniformly.
class TxEngine {
 public:
  virtual ~TxEngine() = default;
  virtual void begin() = 0;
  virtual void write(std::size_t offset, std::span<const std::byte> data) = 0;
  virtual void commit(int threads = 1) = 0;
  virtual const TxStats& stats() const = 0;

  void set_crash_point(CrashPoint p) { crash_point_ = p; }

 protected:
  void maybe_crash(CrashPoint here) {
    if (crash_point_ == here) {
      crash_point_ = CrashPoint::kNone;
      throw CrashException();
    }
  }
  CrashPoint crash_point_ = CrashPoint::kNone;
};

class UndoLogTx final : public TxEngine {
 public:
  UndoLogTx(PmemRegion& data, PmemRegion& log);

  void begin() override;
  /// Write-ahead: persist the old value into the log, then update in place
  /// (cached; durable at commit).
  void write(std::size_t offset, std::span<const std::byte> data) override;
  void commit(int threads = 1) override;
  const TxStats& stats() const override { return stats_; }

  /// Post-crash recovery: roll back an unretired transaction from the
  /// log's *persisted* bytes.  Returns true if a rollback happened.
  static bool recover(PmemRegion& data, PmemRegion& log);

 private:
  PmemRegion& data_;
  PmemRegion& log_;
  TxStats stats_;
  bool active_ = false;
};

class RedoLogTx final : public TxEngine {
 public:
  RedoLogTx(PmemRegion& data, PmemRegion& log);

  void begin() override;
  /// Buffer the new value in the log; the data region is untouched until
  /// commit (the volatile view is updated for read-your-writes).
  void write(std::size_t offset, std::span<const std::byte> data) override;
  void commit(int threads = 1) override;
  const TxStats& stats() const override { return stats_; }

  /// Post-crash recovery: re-apply a committed-but-unretired transaction,
  /// or discard an uncommitted one.  Returns true if records were applied.
  static bool recover(PmemRegion& data, PmemRegion& log);

 private:
  PmemRegion& data_;
  PmemRegion& log_;
  TxStats stats_;
  bool active_ = false;
};

// -- log wire format helpers (shared by both engines; exposed for tests) --

/// Header: [0]=state byte (0 idle, 1 active, 2 committed), [8..15]=record
/// count (LE u64).  Records follow from byte 16.
namespace pmemlog {
constexpr std::size_t kStateOffset = 0;
constexpr std::size_t kCountOffset = 8;
constexpr std::size_t kRecordsOffset = 16;
constexpr std::uint8_t kIdle = 0;
constexpr std::uint8_t kActive = 1;
constexpr std::uint8_t kCommitted = 2;

struct Record {
  std::uint64_t offset = 0;
  std::vector<std::byte> payload;
};

/// Parse all records from a log region's persisted image.
std::vector<Record> parse(std::span<const std::byte> log_bytes,
                          std::uint64_t count);
}  // namespace pmemlog

}  // namespace nvms
