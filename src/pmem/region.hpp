// Persistent-memory regions (AppDirect programming model).
//
// The paper evaluates NVM as *memory* (Secs. IV-A..D) and as *persistent
// storage* (Sec. IV-E).  This module models the byte-addressable
// persistence path the AppDirect mode exposes: regular stores land in the
// volatile cache hierarchy and only become durable after an explicit
// cache-line flush (clwb) plus a fence drains them to the persistence
// domain; non-temporal stores bypass the cache and are durable at the
// fence.  Crash consistency on top of this is the business of the logging
// protocols in pmem/log.hpp (NVStream/Mnemosyne-style, cited by the
// paper's related work).
//
// A PmemRegion holds *real bytes* in two images — the volatile view and
// the last persisted image — so crash/recovery behaviour is genuinely
// testable, while the flush/fence traffic is charged to the simulated NVM
// through the MemorySystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "memsim/memory_system.hpp"

namespace nvms {

class PmemRegion {
 public:
  /// Cache-line granularity of flushes (clwb).
  static constexpr std::size_t kLine = 64;

  PmemRegion(MemorySystem& sys, std::string name, std::size_t bytes);

  std::size_t size() const { return contents_.size(); }
  BufferId buffer() const { return id_; }
  const std::string& name() const { return name_; }

  // -- volatile view ------------------------------------------------------
  /// Regular (write-back cached) store: visible immediately, durable only
  /// after persist().  No NVM traffic yet.
  void store(std::size_t offset, std::span<const std::byte> data);
  /// Non-temporal store: bypasses the cache; the bytes are written to the
  /// NVM immediately (charged now) and are durable at the next fence.
  void store_nt(std::size_t offset, std::span<const std::byte> data,
                int threads = 1);
  /// Read from the volatile view.
  std::span<const std::byte> data() const { return contents_; }
  std::span<const std::byte> persisted_data() const { return persisted_; }

  // -- persistence --------------------------------------------------------
  /// clwb all dirty lines + sfence: charges the flush traffic to the NVM
  /// and promotes the dirty lines into the persisted image.
  void persist(int threads = 1);
  /// Persist a specific byte range only (fine-grained clwb loop + fence).
  void persist_range(std::size_t offset, std::size_t len, int threads = 1);

  std::size_t dirty_lines() const { return dirty_.size(); }

  // -- failure ------------------------------------------------------------
  /// Power failure: the volatile view reverts to the persisted image.
  void crash();

 private:
  void mark_dirty(std::size_t offset, std::size_t len);
  void flush_lines(const std::set<std::size_t>& lines, int threads);

  MemorySystem* sys_;
  std::string name_;
  BufferId id_ = kInvalidBuffer;
  std::vector<std::byte> contents_;   ///< volatile view
  std::vector<std::byte> persisted_;  ///< durable image
  std::set<std::size_t> dirty_;       ///< dirty line indices
};

}  // namespace nvms
