#include "pmem/region.hpp"

#include <algorithm>
#include <cstring>

#include "simcore/error.hpp"

namespace nvms {

PmemRegion::PmemRegion(MemorySystem& sys, std::string name, std::size_t bytes)
    : sys_(&sys), name_(std::move(name)) {
  require(bytes > 0, "pmem region '" + name_ + "' must have positive size");
  require(bytes % kLine == 0,
          "pmem region '" + name_ + "' must be line-aligned");
  id_ = sys.register_buffer("pmem:" + name_, bytes, Placement::kNvm);
  contents_.assign(bytes, std::byte{0});
  persisted_.assign(bytes, std::byte{0});
}

void PmemRegion::mark_dirty(std::size_t offset, std::size_t len) {
  const std::size_t first = offset / kLine;
  const std::size_t last = (offset + len - 1) / kLine;
  for (std::size_t l = first; l <= last; ++l) dirty_.insert(l);
}

void PmemRegion::store(std::size_t offset, std::span<const std::byte> data) {
  require(!data.empty(), "pmem store: empty data");
  require(offset + data.size() <= contents_.size(),
          "pmem store: out of bounds");
  std::memcpy(contents_.data() + offset, data.data(), data.size());
  mark_dirty(offset, data.size());
}

void PmemRegion::store_nt(std::size_t offset, std::span<const std::byte> data,
                          int threads) {
  require(!data.empty(), "pmem store_nt: empty data");
  require(offset + data.size() <= contents_.size(),
          "pmem store_nt: out of bounds");
  std::memcpy(contents_.data() + offset, data.data(), data.size());
  // NT stores go straight to the device; whole lines are written.
  const std::size_t first = offset / kLine;
  const std::size_t last = (offset + data.size() - 1) / kLine;
  const std::uint64_t bytes = (last - first + 1) * kLine;
  (void)sys_->submit(PhaseBuilder("pmem:" + name_ + ":nt-store")
                         .threads(threads)
                         .stream(seq_write(id_, bytes))
                         .build());
  // durable at the (implied) next fence; promote immediately.
  std::memcpy(persisted_.data() + first * kLine,
              contents_.data() + first * kLine,
              std::min(bytes, contents_.size() - first * kLine));
  for (std::size_t l = first; l <= last; ++l) dirty_.erase(l);
}

void PmemRegion::flush_lines(const std::set<std::size_t>& lines,
                             int threads) {
  if (lines.empty()) return;
  // Detect contiguity: adjacent lines combine in the WPQ (sequential);
  // scattered lines pay the sub-media-granularity random-write path.
  std::size_t runs = 1;
  for (auto it = std::next(lines.begin()); it != lines.end(); ++it) {
    if (*it != *std::prev(it) + 1) ++runs;
  }
  const std::uint64_t bytes = lines.size() * kLine;
  const bool mostly_contiguous = runs * 4 <= lines.size();
  StreamDesc ws = mostly_contiguous
                      ? seq_write(id_, bytes)
                      : rand_write(id_, bytes).with_granule(kLine);
  (void)sys_->submit(PhaseBuilder("pmem:" + name_ + ":flush")
                         .threads(threads)
                         .stream(ws)
                         .build());
  // sfence: drain latency (the WPQ acceptance point is the persistence
  // domain on this platform, so a store fence suffices).
  sys_->advance("pmem:" + name_ + ":fence", ns(120));
  for (const std::size_t l : lines) {
    const std::size_t off = l * kLine;
    std::memcpy(persisted_.data() + off, contents_.data() + off,
                std::min(kLine, contents_.size() - off));
  }
}

void PmemRegion::persist(int threads) {
  std::set<std::size_t> lines;
  lines.swap(dirty_);
  flush_lines(lines, threads);
}

void PmemRegion::persist_range(std::size_t offset, std::size_t len,
                               int threads) {
  require(len > 0 && offset + len <= contents_.size(),
          "pmem persist_range: out of bounds");
  const std::size_t first = offset / kLine;
  const std::size_t last = (offset + len - 1) / kLine;
  std::set<std::size_t> lines;
  for (std::size_t l = first; l <= last; ++l) {
    const auto it = dirty_.find(l);
    if (it != dirty_.end()) {
      lines.insert(l);
      dirty_.erase(it);
    }
  }
  flush_lines(lines, threads);
}

void PmemRegion::crash() {
  contents_ = persisted_;
  dirty_.clear();
}

}  // namespace nvms
