// nvmsimd: simulation-as-a-service.  A long-running daemon that answers
// line-delimited JSON requests (serve/request.hpp) over a unix-domain
// socket and/or a loopback TCP port, reusing the CLI's run_command
// dispatch so responses are byte-identical on stdout to the one-shot
// `nvmsim <cmd> ...` for the same query.  Full protocol: docs/SERVICE.md.
//
// Architecture (one process):
//   * one IO thread (Daemon::run) — poll()-driven accept + line framing,
//     with per-connection idle timeouts and an input-size cap so a
//     hostile client can neither wedge nor balloon the process;
//   * a bounded multi-priority AdmissionQueue (harness/admission.hpp) in
//     front of N worker threads — overload surfaces as structured
//     "queue_full" rejections, never unbounded memory;
//   * per-client lifetime TokenBudgets — one tenant cannot starve the
//     rest;
//   * one process-lifetime shared ResolveCache — requests that opt into
//     --resolve-cache=shared warm it across clients, so repeated queries
//     over the same applications are near-free.  The daemon publishes the
//     cache's hit/miss/eviction gauges process-wide through the `metrics`
//     command (Prometheus text), lifting the per-task-telemetry exclusion
//     documented in memsim/resolve_cache.hpp: process scope has no
//     per-task byte-identity constraint.
//
// Failure containment: every write uses MSG_NOSIGNAL (no SIGPIPE), every
// request runs under run_command_guarded's exception net, and a
// malformed or oversized line produces a structured error response —
// one bad tenant must never take down every other tenant's warm cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <string>

namespace nvms {

class Options;

struct ServeConfig {
  /// Unix-domain listener when non-empty (an existing socket file at the
  /// path is replaced; the daemon unlinks it on clean shutdown).
  std::string socket_path;
  /// Loopback TCP listener when >= 0; 0 binds an ephemeral port
  /// (Daemon::tcp_port reports the actual one).  At least one of
  /// socket_path / port must be given.
  int port = -1;
  std::string host = "127.0.0.1";
  int workers = 2;
  std::size_t queue_capacity = 256;
  /// Lifetime token allowance per client id; 0 = unlimited.  Costs:
  /// run/inspect/explain/profile 1, diff 2, optimize 4, sweep = grid
  /// cells (modes x threads).
  std::uint64_t client_budget = 0;
  /// Longest accepted request line; longer input gets a structured
  /// "oversized" error and the rest of the line is discarded.
  std::size_t max_line_bytes = 1 << 20;
  /// Idle connections (no pending work) are closed after this long.
  int idle_timeout_ms = 30000;
  /// A response write blocked longer than this drops the connection
  /// (slow-consumer protection).
  int write_timeout_ms = 10000;
};

class Daemon {
 public:
  explicit Daemon(ServeConfig cfg);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind listeners and spawn the worker pool.  False (with *error set)
  /// on any setup failure; no threads are left running then.
  bool start(std::string* error);

  /// The bound TCP port (after start); -1 without a TCP listener.
  int tcp_port() const;
  const std::string& unix_path() const;

  /// The IO loop: blocks until stop() (or a client `shutdown` request),
  /// then drains the queue, flushes pending responses and joins the
  /// workers before returning.
  void run();

  /// Request shutdown from any thread.  Idempotent.
  void stop();

  /// Prometheus exposition of the serve.* metrics plus the shared
  /// resolve-cache gauges (same text the `metrics` request returns).
  std::string metrics_text();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// `nvmsim serve ...`: build a ServeConfig from argv, run a Daemon until
/// shutdown.  Prints one "nvmsimd listening on ..." line to `out` (and
/// flushes) once ready — supervisors wait for it.
int serve_main(int argc, char** argv, std::ostream& out, std::ostream& err);

/// `nvmsim client ...`: connect to a daemon, send each line of `in` as a
/// request and print each response line to `out` (synchronous: one
/// in-flight request at a time, so output order matches input order).
/// With --extract out|err the named response field is decoded and printed
/// raw instead — the byte-compare hook CI uses against the one-shot CLI.
int client_main(int argc, char** argv, std::istream& in, std::ostream& out,
                std::ostream& err);

}  // namespace nvms
