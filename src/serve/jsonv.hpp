// Minimal JSON reader for the nvmsimd request layer (docs/SERVICE.md).
//
// The repo's simcore/json.hpp is a writer only; the daemon needs the
// other direction: one line of client-supplied bytes → a value tree, with
// hard limits (depth, and the caller caps input size) so a hostile
// request can neither overflow the stack nor balloon memory.  Parsing is
// total — every failure is a (reason, offset) diagnostic, never an
// exception — because a malformed request must come back as a structured
// error, not take the daemon down.
//
// Supported: RFC 8259 objects/arrays/strings/numbers/true/false/null,
// string escapes incl. \uXXXX (surrogate pairs → UTF-8).  Duplicate
// object keys keep their last value, matching common parser behavior.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nvms {

class JsonValue {
 public:
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;  ///< insertion order preserved
  using Array = std::vector<JsonValue>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  static JsonValue object();
  static JsonValue array();

  bool is_null() const;
  bool is_bool() const;
  bool is_number() const;
  bool is_string() const;
  bool is_object() const;
  bool is_array() const;

  /// Typed accessors; the caller checks the kind first (they return
  /// false/0/"" / empty containers on kind mismatch rather than throwing,
  /// so request validation stays exception-free).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Object& members() const;
  const Array& elements() const;

  /// Object member lookup (last occurrence wins); nullptr when this is
  /// not an object or the key is absent.
  const JsonValue* find(const std::string& key) const;

  /// Mutators used by the parser.
  void push_member(std::string key, JsonValue v);
  void push_element(JsonValue v);

 private:
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      value_;
};

struct JsonParseResult {
  std::optional<JsonValue> value;  ///< nullopt on error
  std::string error;               ///< "reason at offset N" when !value
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
/// `max_depth` bounds container nesting (the recursion depth).
JsonParseResult json_parse(const std::string& text,
                           std::size_t max_depth = 32);

}  // namespace nvms
