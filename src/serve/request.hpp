// nvmsimd request layer: one JSONL line → a validated ServeRequest that
// maps onto the exact Options accessors the one-shot CLI uses, so a
// query answered by the daemon is byte-identical on stdout to the same
// query run as `nvmsim <cmd> ...`.  Full protocol: docs/SERVICE.md.
//
// Request line (one JSON object, fields beyond these are rejected-free
// but ignored):
//   {"id": "r1",                  // echoed in the response (optional)
//    "cmd": "sweep",              // required; see kServedCommands
//    "target": "stream",          // one positional, or "targets": [...]
//    "args": {"threads": "12,24", "mode": "dram-only", "json": true},
//    "client": "alice",           // budget accounting key (default anon)
//    "priority": 2}               // 0 (urgent) .. 9 (batch), default 5
//
// Validation is deliberately two-stage.  parse_request rejects only what
// must never reach the executor: non-JSON lines, wrong shapes, commands
// outside the served set, server-side file options (a client must not
// make the daemon write or read host paths), and targets that are not
// registered applications.  Everything else — including a malformed
// "--threads 12,abc" — is passed through on purpose, so the diagnostic
// and exit code come from the same hardened cli/parse.hpp path the CLI
// uses and the response stays byte-identical to the one-shot run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cli/options.hpp"

namespace nvms {

struct ServeRequest {
  std::string id;  ///< echoed verbatim ("" when the client sent none)
  std::string cmd;
  std::map<std::string, std::string> args;
  std::vector<std::string> positionals;
  std::string client = "anon";
  int priority = 5;        ///< 0 (urgent) .. 9 (batch)
  std::uint64_t cost = 1;  ///< admission cost in budget tokens
};

struct RequestParse {
  std::optional<ServeRequest> request;
  /// When !request: a machine-stable rejection code ("malformed" |
  /// "forbidden") plus a human-readable reason and the best-effort id
  /// recovered from the line for the error response.
  std::string code;
  std::string error;
  std::string id;
};

/// Commands the daemon serves.  record/replay are excluded by design:
/// they read/write host files, which a network client must not drive.
bool is_served_command(const std::string& cmd);

/// Option keys rejected in requests because they would make the daemon
/// touch host paths on a client's behalf.
bool is_forbidden_option(const std::string& key);

/// Parse + validate one request line (max_bytes is enforced upstream by
/// the connection reader).  Never throws.
RequestParse parse_request(const std::string& line);

/// The CLI-equivalent option set for a validated request.
Options options_from(const ServeRequest& r);

}  // namespace nvms
