#include "serve/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "cli/driver.hpp"
#include "cli/options.hpp"
#include "harness/admission.hpp"
#include "memsim/resolve_cache.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/jsonv.hpp"
#include "serve/request.hpp"
#include "simcore/error.hpp"
#include "simcore/json.hpp"

namespace nvms {
namespace {

using SteadyClock = std::chrono::steady_clock;

double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

/// One client connection.  The IO thread owns inbuf/framing state; the
/// write mutex serializes response writes (workers and the IO thread);
/// `dead` is the one-way tombstone either side can set.
struct Conn {
  int fd = -1;
  std::string inbuf;
  std::mutex write_mu;
  std::atomic<bool> dead{false};
  /// Requests admitted but not yet responded to.  A half-closed
  /// connection (client sent EOF after its batch) is kept alive until
  /// this drains, so the batch-then-read client pattern works.
  std::atomic<int> pending{0};
  bool reads_done = false;     // IO thread only
  bool discarding = false;     // IO thread only: skipping an oversized line
  SteadyClock::time_point last_activity;  // IO thread only

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

using ConnPtr = std::shared_ptr<Conn>;

struct Job {
  ConnPtr conn;
  ServeRequest req;
  SteadyClock::time_point received;
  SteadyClock::time_point admitted;
};

std::string exec_response(const std::string& id, int exit_code,
                          const std::string& out, const std::string& err) {
  Json j;
  j.set("id", id.empty() ? Json() : Json(id))
      .set("ok", true)
      .set("exit", exit_code)
      .set("out", out)
      .set("err", err);
  return j.dump(0) + "\n";
}

std::string error_response(const std::string& id, const std::string& code,
                           const std::string& error) {
  Json j;
  j.set("id", id.empty() ? Json() : Json(id))
      .set("ok", false)
      .set("code", code)
      .set("error", error);
  return j.dump(0) + "\n";
}

int set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

struct Daemon::Impl {
  explicit Impl(ServeConfig c)
      : cfg(std::move(c)),
        queue(cfg.queue_capacity),
        budget(cfg.client_budget),
        cache(static_cast<std::size_t>(cfg.workers)) {
    auto& m = tel.metrics();
    // Registered up front in a fixed order, so the exposition layout is
    // stable across runs regardless of which event fires first.
    id_requests = m.counter("serve.requests");
    id_responses = m.counter("serve.responses");
    id_rej_malformed = m.counter("serve.rejected.malformed");
    id_rej_forbidden = m.counter("serve.rejected.forbidden");
    id_rej_queue_full = m.counter("serve.rejected.queue_full");
    id_rej_budget = m.counter("serve.rejected.budget");
    id_rej_oversized = m.counter("serve.rejected.oversized");
    id_queue_depth = m.gauge("serve.queue.depth");
    id_connections = m.gauge("serve.connections");
    id_queue_wait = m.histogram("serve.queue_wait_ms");
    id_latency = m.histogram("serve.latency_ms");
    id_bytes_in = m.counter("serve.bytes_in");
    id_bytes_out = m.counter("serve.bytes_out");
  }

  ServeConfig cfg;
  int unix_fd = -1;
  int tcp_fd = -1;
  int bound_port = -1;

  std::map<int, ConnPtr> conns;  // IO thread only
  AdmissionQueue<Job> queue;
  TokenBudget budget;
  ResolveCache cache;
  std::vector<std::thread> workers;
  std::atomic<bool> stopping{false};

  // MetricsRegistry is not thread-safe; every touch goes through this
  // mutex.  Events are cheap scalar updates, never contended for long.
  std::mutex metrics_mu;
  Telemetry tel;
  MetricId id_requests, id_responses, id_rej_malformed, id_rej_forbidden,
      id_rej_queue_full, id_rej_budget, id_rej_oversized, id_queue_depth,
      id_connections, id_queue_wait, id_latency, id_bytes_in, id_bytes_out;

  void count(MetricId id, double delta = 1.0) {
    std::lock_guard<std::mutex> lock(metrics_mu);
    tel.metrics().add(id, delta);
  }
  void set_gauge(MetricId id, double value) {
    std::lock_guard<std::mutex> lock(metrics_mu);
    tel.metrics().set(id, value);
  }
  void observe(MetricId id, double value) {
    std::lock_guard<std::mutex> lock(metrics_mu);
    tel.metrics().observe(id, value);
  }

  std::string metrics_text() {
    std::lock_guard<std::mutex> lock(metrics_mu);
    cache.publish(tel.metrics());
    return prometheus_text(tel, "nvmsimd");
  }

  std::string stats_text() {
    const ResolveCacheStats rc = cache.stats();
    const ResolveCacheStats sm = cache.stream_stats();
    Json j;
    j.set("queue_depth", static_cast<std::uint64_t>(queue.depth()))
        .set("queue_capacity", static_cast<std::uint64_t>(queue.capacity()))
        .set("connections", static_cast<std::uint64_t>(conns_count.load()))
        .set("workers", cfg.workers)
        .set("clients", static_cast<std::uint64_t>(budget.clients()))
        .set("client_budget", cfg.client_budget);
    auto cache_json = [](const ResolveCacheStats& s) {
      Json c;
      c.set("hits", s.hits)
          .set("misses", s.misses)
          .set("evictions", s.evictions)
          .set("entries", static_cast<std::uint64_t>(s.entries))
          .set("hit_rate", s.hit_rate());
      return c;
    };
    j.set("resolve_cache", cache_json(rc))
        .set("stream_memo", cache_json(sm));
    return j.dump(0) + "\n";
  }

  std::atomic<std::size_t> conns_count{0};

  // ---- listeners --------------------------------------------------------

  bool bind_unix(std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socket_path.size() >= sizeof addr.sun_path) {
      *error = "socket path too long: " + cfg.socket_path;
      return false;
    }
    std::memcpy(addr.sun_path, cfg.socket_path.c_str(),
                cfg.socket_path.size() + 1);
    unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd < 0) {
      *error = errno_text("socket(AF_UNIX)");
      return false;
    }
    ::unlink(cfg.socket_path.c_str());  // replace a stale socket file
    if (::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(unix_fd, 512) < 0 || set_nonblocking(unix_fd) < 0) {
      *error = errno_text(("bind/listen " + cfg.socket_path).c_str());
      ::close(unix_fd);
      unix_fd = -1;
      return false;
    }
    return true;
  }

  bool bind_tcp(std::string* error) {
    tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd < 0) {
      *error = errno_text("socket(AF_INET)");
      return false;
    }
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg.port));
    if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
      *error = "bad --host address: " + cfg.host;
      ::close(tcp_fd);
      tcp_fd = -1;
      return false;
    }
    socklen_t len = sizeof addr;
    if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(tcp_fd, 512) < 0 || set_nonblocking(tcp_fd) < 0 ||
        ::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      *error = errno_text("bind/listen tcp");
      ::close(tcp_fd);
      tcp_fd = -1;
      return false;
    }
    bound_port = static_cast<int>(ntohs(addr.sin_port));
    return true;
  }

  // ---- response writes --------------------------------------------------

  /// Serialized, SIGPIPE-safe, bounded-blocking write.  `timeout_ms` 0
  /// means best-effort: a write that would block drops the connection
  /// (used by the IO thread, which must never stall on one client).
  bool write_line(Conn& c, const std::string& s, int timeout_ms) {
    if (c.dead.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(c.write_mu);
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t n =
          ::send(c.fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (timeout_ms <= 0) break;  // would block: IO thread gives up
        pollfd p{c.fd, POLLOUT, 0};
        const int pr = ::poll(&p, 1, timeout_ms);
        if (pr <= 0) break;  // slow consumer
        continue;
      }
      break;  // EPIPE / ECONNRESET / ...
    }
    if (off < s.size()) {
      c.dead.store(true, std::memory_order_relaxed);
      // Wake the poll loop out of its sleep so the sweep reaps this
      // connection promptly.
      ::shutdown(c.fd, SHUT_RDWR);
      return false;
    }
    count(id_bytes_out, static_cast<double>(s.size()));
    return true;
  }

  // ---- request intake (IO thread) ---------------------------------------

  void handle_line(const ConnPtr& c, const std::string& line) {
    count(id_requests);
    const RequestParse parsed = parse_request(line);
    if (!parsed.request) {
      count(parsed.code == "forbidden" ? id_rej_forbidden
                                       : id_rej_malformed);
      write_line(*c, error_response(parsed.id, parsed.code, parsed.error),
                 /*timeout_ms=*/0);
      return;
    }
    const ServeRequest& r = *parsed.request;

    // Daemon-internal commands answer inline: they must stay responsive
    // even when the queue is saturated (that is when you scrape metrics).
    if (r.cmd == "ping") {
      write_line(*c, exec_response(r.id, 0, "pong", ""), 0);
      return;
    }
    if (r.cmd == "metrics") {
      write_line(*c, exec_response(r.id, 0, metrics_text(), ""), 0);
      return;
    }
    if (r.cmd == "stats") {
      write_line(*c, exec_response(r.id, 0, stats_text(), ""), 0);
      return;
    }
    if (r.cmd == "shutdown") {
      write_line(*c, exec_response(r.id, 0, "shutting down", ""), 0);
      stopping.store(true);
      return;
    }

    if (!budget.charge(r.client, r.cost)) {
      count(id_rej_budget);
      write_line(*c,
                 error_response(
                     r.id, "budget",
                     "client '" + r.client + "' exhausted its budget (" +
                         std::to_string(budget.allowance()) + " tokens)"),
                 0);
      return;
    }
    Job job{c, r, SteadyClock::now(), SteadyClock::now()};
    if (!queue.try_push(job, r.priority)) {
      budget.refund(r.client, r.cost);
      count(id_rej_queue_full);
      write_line(*c,
                 error_response(r.id, "queue_full",
                                "admission queue is full (capacity " +
                                    std::to_string(queue.capacity()) +
                                    "); retry later"),
                 0);
      return;
    }
    c->pending.fetch_add(1);
    set_gauge(id_queue_depth, static_cast<double>(queue.depth()));
  }

  void read_from(const ConnPtr& c) {
    char buf[16384];
    while (true) {
      const ssize_t n = ::recv(c->fd, buf, sizeof buf, 0);
      if (n > 0) {
        c->last_activity = SteadyClock::now();
        count(id_bytes_in, static_cast<double>(n));
        c->inbuf.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = c->inbuf.find('\n')) != std::string::npos) {
          std::string line = c->inbuf.substr(0, nl);
          c->inbuf.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (c->discarding) {
            c->discarding = false;  // the bad line finally ended
            continue;
          }
          if (line.empty()) continue;  // blank keepalive
          handle_line(c, line);
          if (c->dead.load(std::memory_order_relaxed)) return;
        }
        if (!c->discarding && c->inbuf.size() > cfg.max_line_bytes) {
          count(id_rej_oversized);
          write_line(*c,
                     error_response(
                         "", "oversized",
                         "request line exceeds " +
                             std::to_string(cfg.max_line_bytes) + " bytes"),
                     0);
          c->inbuf.clear();
          c->inbuf.shrink_to_fit();
          c->discarding = true;
        }
        continue;
      }
      if (n == 0) {
        c->reads_done = true;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c->dead.store(true, std::memory_order_relaxed);
      return;
    }
  }

  void accept_from(int listener) {
    while (true) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN / transient — next poll retries
      if (set_nonblocking(fd) < 0) {
        ::close(fd);
        continue;
      }
      auto c = std::make_shared<Conn>();
      c->fd = fd;
      c->last_activity = SteadyClock::now();
      conns.emplace(fd, std::move(c));
      conns_count.store(conns.size());
      set_gauge(id_connections, static_cast<double>(conns.size()));
    }
  }

  // ---- worker side ------------------------------------------------------

  void worker_loop() {
    while (auto job = queue.pop()) {
      set_gauge(id_queue_depth, static_cast<double>(queue.depth()));
      observe(id_queue_wait, ms_since(job->admitted));
      std::ostringstream sout, serr;
      CommandContext ctx;
      ctx.shared_cache = &cache;
      const int rc = run_command_guarded(job->req.cmd,
                                         options_from(job->req), sout, serr,
                                         &ctx);
      write_line(*job->conn,
                 exec_response(job->req.id, rc, sout.str(), serr.str()),
                 cfg.write_timeout_ms);
      job->conn->pending.fetch_sub(1);
      count(id_responses);
      observe(id_latency, ms_since(job->received));
    }
  }

  // ---- IO loop ----------------------------------------------------------

  void run() {
    std::vector<pollfd> pfds;
    while (!stopping.load()) {
      pfds.clear();
      if (unix_fd >= 0) pfds.push_back({unix_fd, POLLIN, 0});
      if (tcp_fd >= 0) pfds.push_back({tcp_fd, POLLIN, 0});
      const std::size_t first_conn = pfds.size();
      std::vector<int> polled;
      polled.reserve(conns.size());
      for (const auto& [fd, c] : conns) {
        if (c->reads_done || c->dead.load(std::memory_order_relaxed)) {
          continue;
        }
        pfds.push_back({fd, POLLIN, 0});
        polled.push_back(fd);
      }
      const int pr = ::poll(pfds.data(), pfds.size(), /*timeout=*/100);
      if (pr < 0 && errno != EINTR) break;  // poll itself failed — bail
      if (pr > 0) {
        std::size_t i = 0;
        if (unix_fd >= 0) {
          if (pfds[i].revents != 0) accept_from(unix_fd);
          ++i;
        }
        if (tcp_fd >= 0) {
          if (pfds[i].revents != 0) accept_from(tcp_fd);
          ++i;
        }
        for (std::size_t k = 0; k < polled.size(); ++k) {
          const short re = pfds[first_conn + k].revents;
          if (re == 0) continue;
          const auto it = conns.find(polled[k]);
          if (it == conns.end()) continue;
          if ((re & (POLLIN | POLLHUP)) != 0) read_from(it->second);
          if ((re & (POLLERR | POLLNVAL)) != 0) {
            it->second->dead.store(true, std::memory_order_relaxed);
          }
        }
      }
      sweep_connections();
    }
    drain_and_join();
  }

  void sweep_connections() {
    const auto now = SteadyClock::now();
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = *it->second;
      const bool idle = c.pending.load() == 0;
      const bool timed_out =
          idle && std::chrono::duration<double, std::milli>(
                      now - c.last_activity)
                          .count() > cfg.idle_timeout_ms;
      if (c.dead.load(std::memory_order_relaxed) ||
          (c.reads_done && idle) || timed_out) {
        it = conns.erase(it);  // fd closes when the last Job ref drops
      } else {
        ++it;
      }
    }
    conns_count.store(conns.size());
    set_gauge(id_connections, static_cast<double>(conns.size()));
  }

  void drain_and_join() {
    // Stop accepting, let the workers finish everything already admitted
    // (their responses still flush: the Jobs hold the connections), then
    // join.
    if (unix_fd >= 0) {
      ::close(unix_fd);
      unix_fd = -1;
      ::unlink(cfg.socket_path.c_str());
    }
    if (tcp_fd >= 0) {
      ::close(tcp_fd);
      tcp_fd = -1;
    }
    queue.close();
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
    conns.clear();
    conns_count.store(0);
  }
};

Daemon::Daemon(ServeConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Daemon::~Daemon() {
  // run() normally performs this teardown; the destructor repeats it so
  // a daemon that was started but never run (or whose run() already
  // returned) still joins its workers and releases its listeners.
  // Destroying while run() executes on another thread is caller misuse.
  stop();
  impl_->queue.close();
  for (auto& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  if (impl_->unix_fd >= 0) {
    ::close(impl_->unix_fd);
    ::unlink(impl_->cfg.socket_path.c_str());
  }
  if (impl_->tcp_fd >= 0) ::close(impl_->tcp_fd);
}

bool Daemon::start(std::string* error) {
  Impl& d = *impl_;
  if (d.cfg.socket_path.empty() && d.cfg.port < 0) {
    *error = "need --socket PATH and/or --port N";
    return false;
  }
  if (!d.cfg.socket_path.empty() && !d.bind_unix(error)) return false;
  if (d.cfg.port >= 0 && !d.bind_tcp(error)) {
    if (d.unix_fd >= 0) {
      ::close(d.unix_fd);
      d.unix_fd = -1;
      ::unlink(d.cfg.socket_path.c_str());
    }
    return false;
  }
  d.workers.reserve(static_cast<std::size_t>(d.cfg.workers));
  for (int i = 0; i < d.cfg.workers; ++i) {
    d.workers.emplace_back([&d] { d.worker_loop(); });
  }
  return true;
}

int Daemon::tcp_port() const { return impl_->bound_port; }
const std::string& Daemon::unix_path() const {
  return impl_->cfg.socket_path;
}

void Daemon::run() { impl_->run(); }

void Daemon::stop() { impl_->stopping.store(true); }

std::string Daemon::metrics_text() { return impl_->metrics_text(); }

// ---- CLI frontends ------------------------------------------------------

int serve_main(int argc, char** argv, std::ostream& out, std::ostream& err) {
  // Writes to a vanished client are reported via send()'s EPIPE, never a
  // process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  ServeConfig cfg;
  try {
    const Options opt = Options::parse(argc, argv, 2);
    cfg.socket_path = opt.get("socket", "");
    cfg.port = opt.has("port")
                   ? static_cast<int>(opt.get_int_at_least("port", 0, 0))
                   : -1;
    cfg.host = opt.get("host", "127.0.0.1");
    const unsigned hw = std::thread::hardware_concurrency();
    cfg.workers = static_cast<int>(
        opt.get_int_at_least("workers", hw > 2 ? hw : 2, 1));
    cfg.queue_capacity = static_cast<std::size_t>(
        opt.get_int_at_least("queue", 256, 1));
    cfg.client_budget = static_cast<std::uint64_t>(
        opt.get_int_at_least("client-budget", 0, 0));
    cfg.max_line_bytes = static_cast<std::size_t>(
        opt.get_int_at_least("max-line-bytes", 1 << 20, 64));
    cfg.idle_timeout_ms = static_cast<int>(
        opt.get_int_at_least("idle-timeout-ms", 30000, 100));
    cfg.write_timeout_ms = static_cast<int>(
        opt.get_int_at_least("write-timeout-ms", 10000, 100));
    for (const auto& key : opt.unused()) {
      err << "warning: unused option --" << key << "\n";
    }
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  Daemon daemon(cfg);
  std::string error;
  if (!daemon.start(&error)) {
    err << "serve: " << error << "\n";
    return cfg.socket_path.empty() && cfg.port < 0 ? 2 : 1;
  }
  out << "nvmsimd listening on";
  if (!daemon.unix_path().empty()) out << " unix:" << daemon.unix_path();
  if (daemon.tcp_port() >= 0) {
    out << " tcp:" << cfg.host << ":" << daemon.tcp_port();
  }
  out << " (workers=" << cfg.workers << " queue=" << cfg.queue_capacity
      << " budget=" << cfg.client_budget << ")\n";
  out.flush();
  daemon.run();
  out << "nvmsimd: clean shutdown\n";
  return 0;
}

namespace {

/// Connect per the client options; -1 + message on failure.
int client_connect(const Options& opt, std::ostream& err) {
  const std::string socket_path = opt.get("socket", "");
  const long port = opt.get_int("port", -1);
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
      err << "client: socket path too long\n";
      return -1;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      err << "client: cannot connect to unix:" << socket_path << ": "
          << std::strerror(errno) << "\n";
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  if (port >= 0) {
    const std::string host = opt.get("host", "127.0.0.1");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      err << "client: bad --host address: " << host << "\n";
      return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      err << "client: cannot connect to tcp:" << host << ":" << port << ": "
          << std::strerror(errno) << "\n";
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  err << "client: need --socket PATH or --port N\n";
  return -1;
}

bool send_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t n = ::send(fd, s.data() + off, s.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Read one '\n'-terminated line (without the newline); false on EOF or
/// error before a full line arrived.
bool recv_line(int fd, std::string& carry, std::string& line) {
  while (true) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      return true;
    }
    char buf[16384];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      carry.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

}  // namespace

int client_main(int argc, char** argv, std::istream& in, std::ostream& out,
                std::ostream& err) {
  std::signal(SIGPIPE, SIG_IGN);
  std::string extract;
  int fd = -1;
  try {
    const Options opt = Options::parse(argc, argv, 2);
    extract = opt.get("extract", "");
    if (!extract.empty() && extract != "out" && extract != "err") {
      err << "client: --extract wants out|err\n";
      return 2;
    }
    fd = client_connect(opt, err);
    for (const auto& key : opt.unused()) {
      err << "warning: unused option --" << key << "\n";
    }
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  if (fd < 0) return 1;

  // Synchronous request/response: one in flight, so responses print in
  // input order (the concurrency story lives in bench_serve_load).
  int rc = 0;
  std::string carry;
  std::string reqline;
  while (std::getline(in, reqline)) {
    if (reqline.empty()) continue;
    if (!send_all(fd, reqline + "\n")) {
      err << "client: connection lost while sending\n";
      rc = 1;
      break;
    }
    std::string resp;
    if (!recv_line(fd, carry, resp)) {
      err << "client: connection closed before a response arrived\n";
      rc = 1;
      break;
    }
    if (extract.empty()) {
      out << resp << "\n";
      continue;
    }
    const JsonParseResult doc = json_parse(resp);
    const JsonValue* field =
        doc.value ? doc.value->find(extract) : nullptr;
    if (field != nullptr && field->is_string()) {
      out << field->as_string();
    } else {
      // Rejected requests carry no out/err; surface the whole response
      // on stderr so byte-compares fail loudly, not silently.
      err << "client: response without '" << extract << "': " << resp
          << "\n";
      rc = 1;
    }
  }
  ::close(fd);
  out.flush();
  return rc;
}

}  // namespace nvms
