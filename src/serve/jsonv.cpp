#include "serve/jsonv.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace nvms {

JsonValue JsonValue::object() {
  JsonValue v;
  v.value_ = std::make_shared<Object>();
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.value_ = std::make_shared<Array>();
  return v;
}

bool JsonValue::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool JsonValue::is_bool() const { return std::holds_alternative<bool>(value_); }
bool JsonValue::is_number() const {
  return std::holds_alternative<double>(value_);
}
bool JsonValue::is_string() const {
  return std::holds_alternative<std::string>(value_);
}
bool JsonValue::is_object() const {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}
bool JsonValue::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool JsonValue::as_bool() const {
  return is_bool() ? std::get<bool>(value_) : false;
}
double JsonValue::as_number() const {
  return is_number() ? std::get<double>(value_) : 0.0;
}
const std::string& JsonValue::as_string() const {
  static const std::string kEmpty;
  return is_string() ? std::get<std::string>(value_) : kEmpty;
}
const JsonValue::Object& JsonValue::members() const {
  static const Object kEmpty;
  return is_object() ? *std::get<std::shared_ptr<Object>>(value_) : kEmpty;
}
const JsonValue::Array& JsonValue::elements() const {
  static const Array kEmpty;
  return is_array() ? *std::get<std::shared_ptr<Array>>(value_) : kEmpty;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = members();
  // Last occurrence wins (duplicate keys), so scan back to front.
  for (auto it = obj.rbegin(); it != obj.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

void JsonValue::push_member(std::string key, JsonValue v) {
  if (!is_object()) value_ = std::make_shared<Object>();
  std::get<std::shared_ptr<Object>>(value_)->emplace_back(std::move(key),
                                                          std::move(v));
}

void JsonValue::push_element(JsonValue v) {
  if (!is_array()) value_ = std::make_shared<Array>();
  std::get<std::shared_ptr<Array>>(value_)->push_back(std::move(v));
}

namespace {

/// Recursive-descent parser over a borrowed buffer.  Every failure sets
/// `error` once and makes the remaining productions bail out quickly.
class Parser {
 public:
  Parser(const std::string& text, std::size_t max_depth)
      : s_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonValue v = parse_value(0);
    if (!error_.empty()) return {std::nullopt, error_};
    skip_ws();
    if (pos_ != s_.size()) {
      return {std::nullopt, fail("trailing characters after the document")};
    }
    return {std::move(v), ""};
  }

 private:
  std::string fail(const std::string& reason) {
    if (error_.empty()) {
      error_ = reason + " at offset " + std::to_string(pos_);
    }
    return error_;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t i = 0;
    while (word[i] != '\0') {
      if (pos_ + i >= s_.size() || s_[pos_ + i] != word[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (!error_.empty()) return JsonValue();
    if (depth > max_depth_) {
      fail("nesting deeper than " + std::to_string(max_depth_));
      return JsonValue();
    }
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return JsonValue();
    }
    const char c = s_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (literal("true")) return JsonValue(true);
    } else if (c == 'f') {
      if (literal("false")) return JsonValue(false);
    } else if (c == 'n') {
      if (literal("null")) return JsonValue();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      return parse_number();
    }
    fail(std::string("unexpected character '") + c + "'");
    return JsonValue();
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue obj = JsonValue::object();
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return obj;
    while (error_.empty()) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail("expected a string object key");
        return obj;
      }
      std::string key = parse_string();
      if (!error_.empty()) return obj;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return obj;
      }
      obj.push_member(std::move(key), parse_value(depth + 1));
      if (!error_.empty()) return obj;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}' in object");
      return obj;
    }
    return obj;
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue arr = JsonValue::array();
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return arr;
    while (error_.empty()) {
      arr.push_element(parse_value(depth + 1));
      if (!error_.empty()) return arr;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']' in array");
      return arr;
    }
    return arr;
  }

  JsonValue parse_number() {
    errno = 0;
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      fail("malformed number");
      return JsonValue();
    }
    if (errno == ERANGE || !std::isfinite(v)) {
      fail("number out of range");
      return JsonValue();
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue(v);
  }

  /// Parse a hex escape digit group; returns the code unit or -1.
  int hex4() {
    if (pos_ + 4 > s_.size()) return -1;
    int unit = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_ + static_cast<std::size_t>(i)];
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = 10 + c - 'a';
      } else if (c >= 'A' && c <= 'F') {
        d = 10 + c - 'A';
      } else {
        return -1;
      }
      unit = unit * 16 + d;
    }
    pos_ += 4;
    return unit;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          int unit = hex4();
          if (unit < 0) {
            fail("bad \\u escape");
            return out;
          }
          unsigned cp = static_cast<unsigned>(unit);
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired \uXXXX low surrogate.
            if (pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                s_[pos_ + 1] == 'u') {
              pos_ += 2;
              const int low = hex4();
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) +
                     (static_cast<unsigned>(low) - 0xDC00);
              } else {
                fail("unpaired surrogate in \\u escape");
                return out;
              }
            } else {
              fail("unpaired surrogate in \\u escape");
              return out;
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
            return out;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown string escape");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  const std::string& s_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(const std::string& text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace nvms
