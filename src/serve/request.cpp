#include "serve/request.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "harness/registry.hpp"
#include "serve/jsonv.hpp"

namespace nvms {
namespace {

/// Served = pure query over registered state, stdout/stderr only.
const char* const kServedCommands[] = {
    "list", "devices", "run",  "sweep",   "inspect", "explain", "diff",
    "optimize", "profile", "help", "ping", "metrics", "stats", "shutdown"};

/// Keys that would make the daemon read or write host paths.
const char* const kForbiddenOptions[] = {"trace",       "trace-out",
                                         "metrics-out", "jsonl",
                                         "stats",       "out"};

bool is_registered_app_name(const std::string& name) {
  for (const auto& a : app_names()) {
    if (a == name) return true;
  }
  for (const auto& a : extra_app_names()) {
    if (a == name) return true;
  }
  return false;
}

/// Render a JSON scalar the way the CLI would have received it in argv.
/// Integral numbers drop the fraction ("12", not "12.0"); clients who
/// care about exact decimal text should send strings.
std::string scalar_to_string(const JsonValue& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_number()) {
    const double d = v.as_number();
    char buf[40];
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", d);
    }
    return buf;
  }
  return "";
}

/// Admission cost: proportional to how much simulation a command can
/// queue up.  A sweep pays per grid cell (counted leniently from the CSV
/// shapes — a malformed CSV still costs its cell count and then fails in
/// the shared checked parser with the CLI's own diagnostic).
std::uint64_t cost_of(const ServeRequest& r) {
  auto csv_cells = [](const std::string& s, std::uint64_t fallback) {
    if (s.empty()) return fallback;
    std::uint64_t n = 1;
    for (const char c : s) {
      if (c == ',') ++n;
    }
    return n;
  };
  if (r.cmd == "sweep") {
    const auto mode_it = r.args.find("modes");
    const auto thr_it = r.args.find("threads");
    const std::uint64_t modes =
        csv_cells(mode_it == r.args.end() ? "" : mode_it->second, 3);
    const std::uint64_t threads =
        csv_cells(thr_it == r.args.end() ? "" : thr_it->second, 4);
    return modes * threads;
  }
  if (r.cmd == "diff") return 2;
  if (r.cmd == "optimize") return 4;
  if (r.cmd == "run" || r.cmd == "inspect" || r.cmd == "explain" ||
      r.cmd == "profile") {
    return 1;
  }
  return 0;  // list/devices/help and the daemon-internal commands
}

RequestParse reject(std::string id, std::string code, std::string error) {
  RequestParse out;
  out.code = std::move(code);
  out.error = std::move(error);
  out.id = std::move(id);
  return out;
}

}  // namespace

bool is_served_command(const std::string& cmd) {
  for (const char* c : kServedCommands) {
    if (cmd == c) return true;
  }
  return false;
}

bool is_forbidden_option(const std::string& key) {
  for (const char* c : kForbiddenOptions) {
    if (key == c) return true;
  }
  return false;
}

RequestParse parse_request(const std::string& line) {
  const JsonParseResult doc = json_parse(line);
  if (!doc.value) {
    return reject("", "malformed", "not valid JSON: " + doc.error);
  }
  const JsonValue& v = *doc.value;
  if (!v.is_object()) {
    return reject("", "malformed", "request must be a JSON object");
  }

  // Recover the id first so even a rejected request echoes it.
  std::string id;
  if (const JsonValue* jid = v.find("id")) {
    if (jid->is_string() || jid->is_number() || jid->is_bool()) {
      id = scalar_to_string(*jid);
    } else if (!jid->is_null()) {
      return reject("", "malformed", "'id' must be a scalar");
    }
  }

  const JsonValue* jcmd = v.find("cmd");
  if (jcmd == nullptr || !jcmd->is_string() || jcmd->as_string().empty()) {
    return reject(id, "malformed", "missing required string field 'cmd'");
  }

  ServeRequest r;
  r.id = id;
  r.cmd = jcmd->as_string();
  if (!is_served_command(r.cmd)) {
    return reject(id, "forbidden",
                  "command '" + r.cmd +
                      "' is not served (record/replay touch host files; "
                      "use the one-shot CLI)");
  }

  if (const JsonValue* jargs = v.find("args")) {
    if (!jargs->is_object()) {
      return reject(id, "malformed", "'args' must be an object");
    }
    for (const auto& [key, value] : jargs->members()) {
      if (is_forbidden_option(key)) {
        return reject(id, "forbidden",
                      "option '" + key +
                          "' is not served (the daemon does not touch "
                          "host paths for clients)");
      }
      if (!value.is_string() && !value.is_number() && !value.is_bool()) {
        return reject(id, "malformed",
                      "args value for '" + key + "' must be a scalar");
      }
      r.args[key] = scalar_to_string(value);
    }
  }

  if (const JsonValue* jtarget = v.find("target")) {
    if (!jtarget->is_string()) {
      return reject(id, "malformed", "'target' must be a string");
    }
    r.positionals.push_back(jtarget->as_string());
  }
  if (const JsonValue* jtargets = v.find("targets")) {
    if (!jtargets->is_array()) {
      return reject(id, "malformed", "'targets' must be an array of strings");
    }
    for (const auto& t : jtargets->elements()) {
      if (!t.is_string()) {
        return reject(id, "malformed",
                      "'targets' must be an array of strings");
      }
      r.positionals.push_back(t.as_string());
    }
  }
  // Targets must be registered applications: the CLI also accepts trace
  // *files* here, but a network client must not probe host paths.
  for (const auto& p : r.positionals) {
    if (!is_registered_app_name(p)) {
      return reject(id, "forbidden",
                    "target '" + p +
                        "' is not a registered application (the service "
                        "does not read trace files; see `list`)");
    }
  }

  if (const JsonValue* jclient = v.find("client")) {
    if (!jclient->is_string() || jclient->as_string().empty()) {
      return reject(id, "malformed", "'client' must be a non-empty string");
    }
    r.client = jclient->as_string();
  }

  if (const JsonValue* jprio = v.find("priority")) {
    if (!jprio->is_number()) {
      return reject(id, "malformed", "'priority' must be a number");
    }
    const double p = jprio->as_number();
    r.priority = p < 0 ? 0 : (p > 9 ? 9 : static_cast<int>(p));
  }

  r.cost = cost_of(r);
  RequestParse out;
  out.id = id;
  out.request = std::move(r);
  return out;
}

Options options_from(const ServeRequest& r) {
  return Options::from_map(r.args, r.positionals);
}

}  // namespace nvms
