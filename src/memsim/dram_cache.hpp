// Direct-mapped write-back DRAM cache (Intel "Memory mode").
//
// In Memory mode the platform uses all of DRAM as a hardware-managed
// direct-mapped write-back cache in front of the NVM (Sec. II-A).  We
// simulate a tag array at a configurable line granularity over the
// simulator's virtual address space, with optional set sampling to bound
// cost.  The outcome of a stream is the traffic split it induces:
//
//   * read hit   -> DRAM read
//   * read miss  -> NVM read (fetch) + DRAM write (fill) + DRAM read
//   * write hit  -> DRAM write (line marked dirty)
//   * write miss -> NVM read (allocate) + DRAM write (fill + store)
//   * dirty evict-> DRAM read + NVM write
//
// The fill-on-miss DRAM writes are what make cached-NVM write traffic to
// DRAM *exceed* the DRAM-only baseline (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/epoch_probe.hpp"
#include "simcore/rng.hpp"
#include "trace/pattern.hpp"

namespace nvms {

// The stream-walk memo lives with the other memoization machinery in
// resolve_cache.hpp; DramCache only borrows a pointer.
template <typename Value>
class ShardedMemo;
struct CachedStreamOutcome;
using StreamMemo = ShardedMemo<CachedStreamOutcome>;

struct CacheParams {
  std::uint64_t line = 4096;      ///< simulated line granularity, bytes
  std::uint64_t capacity = 0;     ///< bytes (the DRAM size)
  std::uint64_t max_sets = 1u << 16;  ///< simulate at most this many sets
  std::uint64_t seed = 0xCACE;

  /// Conflict-miss model for physically-scattered pages: a direct-mapped
  /// cache whose sets are filled beyond `conflict_knee` occupancy starts
  /// converting hits into conflict misses, ramping quadratically up to
  /// `conflict_max` at full occupancy.  Calibrated so near-capacity
  /// footprints (Hypre at ~85-90%) lose the ~28% the paper measures while
  /// half-full footprints are unaffected.
  double conflict_knee = 0.7;
  double conflict_max = 0.95;

  void validate() const;

  /// Conflict-miss fraction at a given occupancy in [0,1].
  double conflict_rate(double occupancy) const;
};

/// Byte-level traffic split caused by a stream through the cache.
struct CacheOutcome {
  std::uint64_t dram_read = 0;
  std::uint64_t dram_write = 0;
  std::uint64_t nvm_read = 0;  ///< streaming refills (capacity/cold misses)
  /// Isolated conflict-miss refetches: scattered single-line reads, served
  /// at the NVM's large-granule random efficiency rather than as bursts.
  std::uint64_t nvm_read_scattered = 0;
  std::uint64_t nvm_write = 0;
  std::uint64_t hits = 0;    ///< line touches that hit (scaled by sampling)
  std::uint64_t misses = 0;  ///< line touches that missed (scaled)

  CacheOutcome& operator+=(const CacheOutcome& o);
};

/// One access of a batched epoch: the stream plus the buffer range it
/// touches (see DramCache::walk_batch).
struct CacheAccessRequest {
  StreamDesc stream;
  std::uint64_t base = 0;
  std::uint64_t size = 0;
};

/// Exact strength-reduced n % d for an invariant divisor: one 128-bit
/// multiply plus a conditional subtract replaces the hardware divide
/// (20-40 cycles on the walk kernel's critical path).  With
/// magic = floor((2^64-1)/d) the estimate floor(n*magic / 2^64) is
/// floor(n/d) or one below it for every n (the error term
/// n*(1+(2^64-1) mod d) / (d*2^64) is < 1), so a single subtract
/// corrects the remainder; d == 1 also lands exactly (q = n-1, r = 1,
/// corrected to 0).  Identical results to n % d, bit for bit.
struct FastMod {
  std::uint64_t d = 1;
  std::uint64_t magic = ~0ull;

  void init(std::uint64_t div) {
    d = div;
    magic = ~0ull / div;
  }
  std::uint64_t mod(std::uint64_t n) const {
    __extension__ typedef unsigned __int128 u128;
    const auto q =
        static_cast<std::uint64_t>((static_cast<u128>(n) * magic) >> 64);
    std::uint64_t r = n - q * d;
    if (r >= d) r -= d;
    return r;
  }
};

class DramCache {
 public:
  explicit DramCache(const CacheParams& params);

  /// Run `stream` through the cache.  The stream touches the address range
  /// [base, base + size) of its buffer; sequential streams walk it
  /// cyclically, random streams sample lines uniformly.  Single-access
  /// wrapper over walk_batch().
  CacheOutcome access(const StreamDesc& stream, std::uint64_t base,
                      std::uint64_t size);

  /// Batched access: run a whole epoch's accesses through the cache in
  /// order, writing the i-th outcome into out[i].  Byte-identical to n
  /// access() calls — memo lookups, history-digest folds and probe
  /// emissions happen per access in sequence — but the key scratch and
  /// the walk state stay hot across the batch, and the sampled walks run
  /// the strength-reduced SoA tag loop (walk kernel) instead of the
  /// per-touch call chain.
  void walk_batch(const CacheAccessRequest* reqs, std::size_t n,
                  CacheOutcome* out);

  /// Drop all cached state (between experiment runs).
  void reset();

  std::uint64_t sets() const { return sets_; }
  std::uint64_t sample_mod() const { return sample_mod_; }
  /// Fraction of (sampled) sets holding a valid line.
  double occupancy() const;

  /// Telemetry: when attached, every access() emits epoch samples of the
  /// cache occupancy, hit rate and conflict-miss rate (device
  /// "dram-cache") stamped at the epoch time the owner set last.
  void set_probe(EpochProbe* probe) { probe_ = probe; }
  void set_epoch_time(double t) { epoch_t_ = t; }

  /// Stream-walk memoization.  access() is deterministic in the full
  /// access history since construction/reset (geometry, seed, every
  /// (stream, base, size) in order), so each call is keyed by a 128-bit
  /// digest of that history plus the current access and its sampled walk
  /// is skipped on a memo hit.  Skipped walks leave the tag array and RNG
  /// behind; they are recorded and deterministically replayed the moment a
  /// miss needs real state again (divergent trajectories pay a one-time
  /// catch-up, identical trajectories never walk).  Outcomes, counters and
  /// epoch telemetry are byte-identical with and without a memo.
  void set_memo(StreamMemo* memo) { memo_ = memo; }

 private:
  /// Two independent 64-bit folds over the access history; 128 bits make
  /// digest collisions (the one probabilistic element of the memo)
  /// negligible at any realistic sweep size.
  struct HistoryDigest {
    std::uint64_t lo = 0xCBF29CE484222325ull;  // FNV-1a offset basis
    std::uint64_t hi = 0x9E3779B97F4A7C15ull;  // golden-ratio constant
    void fold(std::uint64_t w) {
      lo = (lo ^ w) * 0x100000001B3ull;        // FNV-1a prime
      hi = (hi ^ w) * 0xC2B2AE3D27D4EB4Full;   // independent odd multiplier
    }
  };
  struct PendingAccess {
    StreamDesc stream;
    std::uint64_t base = 0;
    std::uint64_t size = 0;
  };

  CacheOutcome touch(std::uint64_t line_addr, bool is_write);
  /// The sampled walk behind access(): advances tags/dirty/RNG and returns
  /// the outcome plus the probe-replay signals.  Emits no telemetry.
  /// Dispatches to walk_soa(), or to walk_reference() under
  /// set_reference_kernels(true) / -DNVMS_REFERENCE_KERNELS.
  CachedStreamOutcome walk(const StreamDesc& stream, std::uint64_t base,
                           std::uint64_t size);
  /// Count-accumulating walk kernel: strength-reduced line/set index math
  /// (no per-line modulo), branch-light tag updates, per-outcome byte
  /// totals built once from hit/miss/evict counts.  Bit-identical tag,
  /// dirty, valid and RNG trajectories to walk_reference().
  CachedStreamOutcome walk_soa(const StreamDesc& stream, std::uint64_t base,
                               std::uint64_t size);
  /// The pre-SoA per-touch walk, kept verbatim as the bit-exact oracle.
  CachedStreamOutcome walk_reference(const StreamDesc& stream,
                                     std::uint64_t base, std::uint64_t size);
  /// Shared walk tail: conflict-miss conversion and sampling scale-up of
  /// the sampled counts (identical statements to the reference tail).
  CachedStreamOutcome finish_walk(const StreamDesc& stream,
                                  CacheOutcome sampled,
                                  std::uint64_t touches,
                                  std::uint64_t simulated);
  /// Emit the epoch samples of one (real or memo-replayed) access.
  void emit_probe(const CachedStreamOutcome& c);
  void fold_access(const StreamDesc& stream, std::uint64_t base,
                   std::uint64_t size);
  /// Replay every pending (memo-skipped) walk to rebuild real state.
  void catch_up();
  /// Snap `line` to a sampled set without leaving its buffer: the naive
  /// downward snap can land below `base_line` and alias the tail of the
  /// previous buffer (phantom hits/evictions against another buffer's
  /// lines).  Clamps into [base_line, base_line + lines_in_buf) whenever a
  /// sampled line exists there; buffers smaller than sample_mod_ lines may
  /// span no sampled set at all, in which case the nearest sampled line is
  /// kept (deterministic, aliasing bounded by sample_mod_ lines).
  std::uint64_t snap_line(std::uint64_t line, std::uint64_t base_line,
                          std::uint64_t lines_in_buf) const;

  EpochProbe* probe_ = nullptr;
  double epoch_t_ = 0.0;
  CacheParams params_;
  std::uint64_t sets_ = 0;  ///< total sets in the modelled cache
  /// Simulate sets where set % mod == 0.  Invariant: sample_mod_ divides
  /// sets_, so (line % sets_) % sample_mod_ == line % sample_mod_ and
  /// snapping stays uniform across the address space (the ctor stops
  /// doubling rather than break this).
  std::uint64_t sample_mod_ = 1;
  /// log2(sample_mod_): sampling doubles from 1, so the mod is a power of
  /// two and slot = set >> sample_shift_ in the walk kernel.
  std::uint32_t sample_shift_ = 0;
  /// Division-free line -> set mapping (sets_ is rarely a power of two).
  FastMod sets_mod_;
  std::vector<std::uint64_t> tags_;  ///< per sampled set; kEmpty when invalid
  std::vector<std::uint8_t> dirty_;
  std::uint64_t valid_ = 0;
  Rng rng_;

  StreamMemo* memo_ = nullptr;
  HistoryDigest chain0_;  ///< digest of the geometry/seed (construction)
  /// Digest of chain0_ + every access (and reset) so far.  reset() folds a
  /// marker rather than restoring chain0_ because the RNG keeps its state
  /// across reset — the post-reset trajectory still depends on the prefix.
  HistoryDigest chain_;
  /// Accesses whose walks a memo hit skipped, in order — replayed to
  /// rebuild tags/dirty/RNG when a miss needs real state again.
  std::vector<PendingAccess> pending_;
  /// catch_up() replay buffer, a member so long memo-hit runs followed by
  /// a miss burst replay without reallocating per catch-up.
  std::vector<PendingAccess> replay_scratch_;

  static constexpr std::uint64_t kEmpty = ~0ull;
  static constexpr std::uint64_t kResetMarker = 0x5245534554ull;  // "RESET"
};

}  // namespace nvms
