// Direct-mapped write-back DRAM cache (Intel "Memory mode").
//
// In Memory mode the platform uses all of DRAM as a hardware-managed
// direct-mapped write-back cache in front of the NVM (Sec. II-A).  We
// simulate a tag array at a configurable line granularity over the
// simulator's virtual address space, with optional set sampling to bound
// cost.  The outcome of a stream is the traffic split it induces:
//
//   * read hit   -> DRAM read
//   * read miss  -> NVM read (fetch) + DRAM write (fill) + DRAM read
//   * write hit  -> DRAM write (line marked dirty)
//   * write miss -> NVM read (allocate) + DRAM write (fill + store)
//   * dirty evict-> DRAM read + NVM write
//
// The fill-on-miss DRAM writes are what make cached-NVM write traffic to
// DRAM *exceed* the DRAM-only baseline (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/epoch_probe.hpp"
#include "simcore/rng.hpp"
#include "trace/pattern.hpp"

namespace nvms {

struct CacheParams {
  std::uint64_t line = 4096;      ///< simulated line granularity, bytes
  std::uint64_t capacity = 0;     ///< bytes (the DRAM size)
  std::uint64_t max_sets = 1u << 16;  ///< simulate at most this many sets
  std::uint64_t seed = 0xCACE;

  /// Conflict-miss model for physically-scattered pages: a direct-mapped
  /// cache whose sets are filled beyond `conflict_knee` occupancy starts
  /// converting hits into conflict misses, ramping quadratically up to
  /// `conflict_max` at full occupancy.  Calibrated so near-capacity
  /// footprints (Hypre at ~85-90%) lose the ~28% the paper measures while
  /// half-full footprints are unaffected.
  double conflict_knee = 0.7;
  double conflict_max = 0.95;

  void validate() const;

  /// Conflict-miss fraction at a given occupancy in [0,1].
  double conflict_rate(double occupancy) const;
};

/// Byte-level traffic split caused by a stream through the cache.
struct CacheOutcome {
  std::uint64_t dram_read = 0;
  std::uint64_t dram_write = 0;
  std::uint64_t nvm_read = 0;  ///< streaming refills (capacity/cold misses)
  /// Isolated conflict-miss refetches: scattered single-line reads, served
  /// at the NVM's large-granule random efficiency rather than as bursts.
  std::uint64_t nvm_read_scattered = 0;
  std::uint64_t nvm_write = 0;
  std::uint64_t hits = 0;    ///< line touches that hit (scaled by sampling)
  std::uint64_t misses = 0;  ///< line touches that missed (scaled)

  CacheOutcome& operator+=(const CacheOutcome& o);
};

class DramCache {
 public:
  explicit DramCache(const CacheParams& params);

  /// Run `stream` through the cache.  The stream touches the address range
  /// [base, base + size) of its buffer; sequential streams walk it
  /// cyclically, random streams sample lines uniformly.
  CacheOutcome access(const StreamDesc& stream, std::uint64_t base,
                      std::uint64_t size);

  /// Drop all cached state (between experiment runs).
  void reset();

  std::uint64_t sets() const { return sets_; }
  std::uint64_t sample_mod() const { return sample_mod_; }
  /// Fraction of (sampled) sets holding a valid line.
  double occupancy() const;

  /// Telemetry: when attached, every access() emits epoch samples of the
  /// cache occupancy, hit rate and conflict-miss rate (device
  /// "dram-cache") stamped at the epoch time the owner set last.
  void set_probe(EpochProbe* probe) { probe_ = probe; }
  void set_epoch_time(double t) { epoch_t_ = t; }

 private:
  CacheOutcome touch(std::uint64_t line_addr, bool is_write);

  EpochProbe* probe_ = nullptr;
  double epoch_t_ = 0.0;
  CacheParams params_;
  std::uint64_t sets_ = 0;        ///< total sets in the modelled cache
  std::uint64_t sample_mod_ = 1;  ///< simulate sets where set % mod == 0
  std::vector<std::uint64_t> tags_;  ///< per sampled set; kEmpty when invalid
  std::vector<std::uint8_t> dirty_;
  std::uint64_t valid_ = 0;
  Rng rng_;

  static constexpr std::uint64_t kEmpty = ~0ull;
};

}  // namespace nvms
