#include "memsim/resolve_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "simcore/error.hpp"
#include "simcore/thread_pool.hpp"

namespace nvms {

const char* to_string(ResolveCacheMode m) {
  switch (m) {
    case ResolveCacheMode::kOff:
      return "off";
    case ResolveCacheMode::kPerRun:
      return "run";
    case ResolveCacheMode::kShared:
      return "shared";
  }
  return "?";
}

std::optional<ResolveCacheMode> parse_resolve_cache_mode(
    const std::string& s) {
  if (s == "off") return ResolveCacheMode::kOff;
  if (s == "run") return ResolveCacheMode::kPerRun;
  if (s == "shared") return ResolveCacheMode::kShared;
  return std::nullopt;
}

void ResolveKey::add_double(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0 to one bit pattern
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  add_word(bits);
}

namespace {

/// Fold a short label into the key, 8 chars per word.  Labels are
/// cosmetic for the resolution but replayed into telemetry on a hit, so
/// differently-labeled lanes must not share an entry.
void add_label(ResolveKey& key, const char* s) {
  if (s == nullptr) {
    key.add_word(0);
    return;
  }
  std::uint64_t w = 0;
  int n = 0;
  for (; *s != '\0'; ++s) {
    w = (w << 8) | static_cast<unsigned char>(*s);
    if (++n == 8) {
      key.add_word(w);
      w = 0;
      n = 0;
    }
  }
  key.add_word(w ^ (static_cast<std::uint64_t>(n) << 56));
}

void add_curve(ResolveKey& key, const ScalingCurve& curve) {
  const auto& pts = curve.points();
  key.add_word(pts.size());
  for (const auto& [threads, frac] : pts) {
    key.add_double(threads);
    key.add_double(frac);
  }
}

/// Every DeviceParams field resolve_lanes() consults, and nothing else —
/// capacity, unused latencies, name and kind are excluded so equivalent
/// effective devices share entries.  Keep in sync with
/// DeviceParams::{read,write}_capacity / latency_limited_read_bw and the
/// WPQ/throttle coupling in resolve.cpp.
void add_device(ResolveKey& key, const DeviceParams& dev) {
  key.add_double(dev.read_lat_rand);  // latency-limited random reads
  key.add_double(dev.read_bw_peak);
  key.add_double(dev.write_bw_peak);
  key.add_double(dev.combined_bw_peak);
  key.add_double(dev.strided_read_eff);
  key.add_double(dev.random_small_read_eff);
  key.add_double(dev.random_large_read_eff);
  key.add_double(dev.strided_write_eff);
  key.add_double(dev.random_small_write_eff);
  key.add_double(dev.random_large_write_eff);
  key.add_double(dev.throttle_alpha);
  key.add_double(dev.throttle_gamma);
  key.add_word(static_cast<std::uint64_t>(dev.wpq_entries));
  key.add_double(dev.wpq_seq_combining);
  add_curve(key, dev.read_scaling);
  add_curve(key, dev.write_scaling);
}

/// Capture probe: records every epoch sample for the cache entry and
/// forwards to the real probe (when attached), so a miss both populates
/// the cache and emits live telemetry in one pass.
class RecordingProbe final : public EpochProbe {
 public:
  explicit RecordingProbe(EpochProbe* inner) : inner_(inner) {}

  void epoch_sample(std::string_view name, std::string_view device,
                    double t, double value) override {
    samples_.push_back({std::string(name), std::string(device), value});
    if (inner_ != nullptr) inner_->epoch_sample(name, device, t, value);
  }

  std::vector<ResolveSample> take() { return std::move(samples_); }

 private:
  EpochProbe* inner_;
  std::vector<ResolveSample> samples_;
};

}  // namespace

ResolveKey make_resolve_key(const Phase& phase,
                            const std::vector<LaneDemand>& lanes,
                            const CpuParams& cpu, double upi_bytes,
                            double upi_bw) {
  ResolveKey key;
  make_resolve_key_into(phase, lanes, cpu, upi_bytes, upi_bw, &key);
  return key;
}

void make_resolve_key_into(const Phase& phase,
                           const std::vector<LaneDemand>& lanes,
                           const CpuParams& cpu, double upi_bytes,
                           double upi_bw, ResolveKey* out) {
  ResolveKey& key = *out;
  key.clear();
  // Phase timing fields, normalized: concurrency clamps to the physical
  // hardware-thread count exactly as the resolver bills it, so phases at
  // max_threads and beyond share one entry.  `name` and `streams` never
  // reach the resolver and are excluded — two equally-shaped phases with
  // different names must hit the same entry.
  key.add_word(static_cast<std::uint64_t>(
      std::min(phase.threads, cpu.max_threads())));
  key.add_double(phase.flops);
  key.add_double(phase.parallel_fraction);
  key.add_double(phase.mlp);
  key.add_double(phase.overlap);
  // CPU compute model.
  key.add_word(static_cast<std::uint64_t>(cpu.cores));
  key.add_word(static_cast<std::uint64_t>(cpu.smt));
  key.add_double(cpu.freq);
  key.add_double(cpu.flops_per_cycle);
  key.add_double(cpu.ht_yield);
  // Cross-socket link constraint.
  key.add_double(upi_bytes);
  key.add_double(upi_bw);
  // Lanes: demand split by access class, effective device, channel label.
  key.add_word(lanes.size());
  for (const auto& lane : lanes) {
    for (const auto b : lane.dem.read) key.add_word(b);
    for (const auto b : lane.dem.write) key.add_word(b);
    add_label(key, lane.label != nullptr
                       ? lane.label
                       : (lane.dev != nullptr ? lane.dev->name.c_str()
                                              : nullptr));
    if (lane.dev != nullptr) add_device(key, *lane.dev);
  }
}

MultiResolution ResolveCache::resolve(const Phase& phase,
                                      const std::vector<LaneDemand>& lanes,
                                      const CpuParams& cpu,
                                      double upi_bytes, double upi_bw,
                                      EpochProbe* probe, double epoch_t) {
  const ResolveKey key =
      make_resolve_key(phase, lanes, cpu, upi_bytes, upi_bw);
  CachedResolution cached;
  if (lookup(key, &cached)) {
    // Replay the recorded epoch samples re-stamped at the current virtual
    // time — identical stream to what resolve_lanes() would emit now.
    if (probe != nullptr) {
      for (const auto& sample : cached.samples) {
        probe->epoch_sample(sample.name, sample.device, epoch_t,
                            sample.value);
      }
    }
    return std::move(cached.multi);
  }
  // Miss: run the fixed point once, recording its samples even when no
  // probe is attached — a later hit may have telemetry and must still see
  // the full stream (the byte-identical-replay invariant).
  RecordingProbe recorder(probe);
  MultiResolution multi =
      resolve_lanes(phase, lanes, cpu, upi_bytes, upi_bw, &recorder,
                    epoch_t);
  insert(key, CachedResolution{multi, recorder.take()});
  return multi;
}

void ResolveCache::resolve_into(const Phase& phase,
                                const std::vector<LaneDemand>& lanes,
                                const CpuParams& cpu, double upi_bytes,
                                double upi_bw, EpochProbe* probe,
                                double epoch_t, ResolveScratch* scratch,
                                ResolveKey* key, MultiResolution* out) {
  make_resolve_key_into(phase, lanes, cpu, upi_bytes, upi_bw, key);
  const bool hit = lookup_with(*key, [&](const CachedResolution& cached) {
    // Copy into the caller's storage under the shard lock (lanes.assign
    // reuses capacity — no allocation in steady state) and replay the
    // recorded epoch samples re-stamped at the current virtual time:
    // identical stream to what resolve_lanes() would emit now.  The probe
    // never touches the memo, so emitting under the lock is safe, and
    // probes are only attached on telemetry runs — the hot sweep path
    // passes nullptr.
    out->time = cached.multi.time;
    out->compute_time = cached.multi.compute_time;
    out->lanes.assign(cached.multi.lanes.begin(), cached.multi.lanes.end());
    if (probe != nullptr) {
      for (const auto& sample : cached.samples) {
        probe->epoch_sample(sample.name, sample.device, epoch_t,
                            sample.value);
      }
    }
  });
  if (hit) return;
  // Miss: run the fixed point once, recording its samples even when no
  // probe is attached — a later hit may have telemetry and must still see
  // the full stream (the byte-identical-replay invariant).
  RecordingProbe recorder(probe);
  resolve_lanes_into(phase, lanes, cpu, upi_bytes, upi_bw, &recorder,
                     epoch_t, scratch, out);
  insert(*key, CachedResolution{*out, recorder.take()});
}

}  // namespace nvms
