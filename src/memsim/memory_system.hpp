// MemorySystem: the simulated heterogeneous main memory of one socket of
// the Intel Purley testbed.
//
// The three main-memory organizations evaluated by the paper are exposed as
// modes:
//   * kDramOnly    — everything resides in and is served by DRAM.
//   * kCachedNvm   — "Memory mode": data lives in NVM, all accesses go
//                    through the direct-mapped write-back DRAM cache.
//   * kUncachedNvm — "AppDirect / NUMA mode": buffers live on the device
//                    their placement selects (default NVM); DRAM holds only
//                    explicitly placed buffers (write-aware placement).
//
// Apps register buffers, then submit phases; the system advances a virtual
// clock, accumulates PCM-like counters, per-buffer traffic profiles, and
// reconstructed bandwidth traces.
//
// Thread safety: a MemorySystem instance is SINGLE-THREADED.  It mutates
// its clock, cache, counters and traces on every submit() with no
// internal locking, so it must be driven by one thread at a time.  The
// parallel experiment engine (harness/executor.hpp) relies on this being
// cheap to construct: every concurrent experiment builds its own private
// instance instead of sharing one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "memsim/counters.hpp"
#include "memsim/cpu.hpp"
#include "memsim/device.hpp"
#include "memsim/dram_cache.hpp"
#include "memsim/resolve.hpp"
#include "memsim/resolve_cache.hpp"
#include "obs/telemetry.hpp"
#include "simcore/units.hpp"
#include "trace/phase.hpp"
#include "trace/run_traces.hpp"

namespace nvms {

enum class Mode { kDramOnly, kCachedNvm, kUncachedNvm };
const char* to_string(Mode m);

/// Per-buffer placement directive (honoured in kUncachedNvm).
enum class Placement { kAuto, kDram, kNvm };

/// NUMA data-placement policy, the simulator's `numactl`: which socket's
/// devices back the allocations.  The paper pins to the local socket
/// ("all the experiments use the local socket to eliminate the severe
/// NUMA effects"); the other policies exist for the NUMA ablation.
enum class NumaPolicy { kLocalSocket, kRemoteSocket, kInterleave };
const char* to_string(NumaPolicy p);

struct SystemConfig {
  Mode mode = Mode::kDramOnly;
  DeviceParams dram = ddr4_socket_params(192 * MiB);
  DeviceParams nvm = optane_socket_params(1536 * MiB);
  CpuParams cpu;
  std::uint64_t cache_line = 4 * KiB;  ///< simulated Memory-mode line
  std::uint64_t cache_max_sets = 1u << 16;
  std::uint64_t seed = 42;
  /// Effective DRAM bandwidth multiplier in Memory mode (tag/metadata
  /// overhead of the hardware-managed cache).
  double cache_dram_derate = 0.92;
  /// Access the NVM of the *remote* socket over UPI (the severe NUMA
  /// effect the paper's experiments deliberately avoid; exposed for the
  /// NUMA ablation bench).  Scales NVM bandwidth and adds hop latency.
  bool remote_nvm = false;
  double upi_bw_factor = 0.6;
  double upi_extra_latency = 70e-9;
  /// Socket topology: 1 (the default; the paper's local-socket setup) or
  /// 2.  With two sockets the threads run on socket 0 and `numa_policy`
  /// decides which socket's DRAM/NVM back the allocations; cross-socket
  /// traffic shares the UPI link bandwidth and pays the hop latency.
  int sockets = 1;
  NumaPolicy numa_policy = NumaPolicy::kLocalSocket;
  double upi_bw = 31.2e9;  ///< bytes/s (3 UPI links at 10.4 GT/s)
  /// Throw CapacityError when an allocation exceeds the target device.
  bool strict_capacity = true;

  void validate() const;

  /// Scaled default testbed: the paper's 192 GB DRAM / 1.5 TB NVM per
  /// two-socket node, scaled by 1/1024 so footprint/DRAM *ratios* are
  /// preserved while runs stay laptop-sized (documented in DESIGN.md).
  static SystemConfig testbed(Mode mode);
};

struct BufferInfo {
  BufferId id = kInvalidBuffer;
  std::string name;
  std::uint64_t bytes = 0;
  Placement placement = Placement::kAuto;
  std::uint64_t base = 0;  ///< simulator virtual address
  /// Socket holding the allocation; -1 = interleaved across both.
  int numa = 0;
  bool live = false;
};

/// Per-buffer traffic profile (feeds the data-centric placement tool).
struct BufferTraffic {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
};

class MemorySystem {
 public:
  explicit MemorySystem(SystemConfig config);

  const SystemConfig& config() const { return config_; }
  Mode mode() const { return config_.mode; }

  // -- buffers ---------------------------------------------------------
  BufferId register_buffer(std::string name, std::uint64_t bytes,
                           Placement placement = Placement::kAuto);
  void release_buffer(BufferId id);
  const BufferInfo& buffer(BufferId id) const;
  /// All buffers ever registered (released ones have live == false).
  const std::vector<BufferInfo>& buffers() const { return buffers_; }
  void set_placement(BufferId id, Placement placement);
  std::uint64_t footprint() const { return footprint_; }
  std::uint64_t peak_footprint() const { return peak_footprint_; }
  /// Bytes currently resident in DRAM given the mode and placements.
  std::uint64_t dram_resident() const;

  // -- execution ---------------------------------------------------------
  /// Simulate one phase: advances the clock and records traces/counters.
  PhaseResolution submit(const Phase& phase);

  /// Advance the clock by `seconds` of activity outside the memory system
  /// (e.g. block-device I/O).  Recorded as a named zero-traffic phase.
  void advance(const std::string& name, double seconds);

  /// Observer invoked with every submitted phase (trace recording).
  /// Pass nullptr to detach.
  using PhaseObserver = std::function<void(const Phase&)>;
  void set_phase_observer(PhaseObserver observer) {
    observer_ = std::move(observer);
  }

  /// Effective device parameters of one lane (socket*2 + (dram ? 0 : 1))
  /// after the construction-time mode/NUMA derates — exactly the
  /// DeviceParams resolve_lanes() sees for that lane.  Lanes 2/3 are the
  /// remote socket's devices.  The delta-replay placement evaluator
  /// (placement/replay_evaluator.hpp) copies these to re-resolve phases
  /// bit-identically without driving a full system.
  const DeviceParams& lane_device(std::size_t lane) const;

  double now() const { return clock_; }
  const RunTraces& traces() const { return traces_; }
  const HwCounters& counters() const { return counters_; }
  const BufferTraffic& traffic(BufferId id) const;

  // -- telemetry ---------------------------------------------------------
  /// Attach (or detach with nullptr) a telemetry bundle.  When attached,
  /// every submit() opens a phase -> resolve -> device span hierarchy on
  /// the virtual clock and emits per-epoch metric samples (per-channel
  /// bandwidth here; WPQ utilization and throttle from the resolver; cache
  /// occupancy/hit/conflict rates from the DRAM cache).  The borrowed
  /// Telemetry must outlive the attachment and is single-threaded, like
  /// this class.  Detached (the default), each hook costs one branch.
  void set_telemetry(Telemetry* telemetry);
  Telemetry* telemetry() const { return telemetry_; }

  /// Attach (or detach with nullptr) a phase-resolution memoization cache
  /// (memsim/resolve_cache.hpp).  The borrowed cache must outlive the
  /// attachment; it may be shared across systems/threads (ResolveCache is
  /// mutex-striped).  Its stream memo is handed to the DRAM cache, so
  /// Memory-mode sampler walks are memoized too.  Resolutions, outcomes
  /// and telemetry streams are byte-identical with and without a cache.
  void set_resolve_cache(ResolveCache* cache) {
    resolve_cache_ = cache;
    cache_.set_memo(cache != nullptr ? &cache->streams() : nullptr);
  }
  ResolveCache* resolve_cache() const { return resolve_cache_; }
  /// Tracer index of the span covering the most recent submit();
  /// Tracer::kNone before the first submit or without telemetry.
  std::size_t last_phase_span() const { return last_phase_span_; }

  /// Clear clock, traces, counters and per-buffer traffic; optionally also
  /// drop the DRAM-cache contents.
  void reset_stats(bool drop_cache = false);

 private:
  /// Route one stream to per-device demands (kDramOnly / kUncachedNvm;
  /// Memory-mode streams go through the batched walk in submit()).
  void route_stream(const StreamDesc& s, std::vector<DeviceDemand>& lanes,
                    double& upi_bytes);
  void account_counters(const Phase& phase, double time, double compute_time,
                        const std::vector<DeviceDemand>& lanes);
  void check_capacity() const;
  /// Lane index for (socket, device kind): socket*2 + (dram ? 0 : 1).
  static std::size_t lane_of(int socket, bool dram) {
    return static_cast<std::size_t>(socket) * 2 + (dram ? 0 : 1);
  }

  SystemConfig config_;
  std::vector<BufferInfo> buffers_;
  std::uint64_t next_base_ = 0;
  std::vector<BufferTraffic> traffic_;
  std::uint64_t footprint_ = 0;
  std::uint64_t peak_footprint_ = 0;
  DramCache cache_;
  DeviceParams dram_effective_;  ///< DRAM params after Memory-mode derate
  DeviceParams nvm_effective_;   ///< NVM params after NUMA adjustment
  DeviceParams dram_remote_;     ///< socket-1 DRAM (UPI hop latency added)
  DeviceParams nvm_remote_;      ///< socket-1 NVM
  double clock_ = 0.0;
  RunTraces traces_;
  HwCounters counters_;
  PhaseObserver observer_;
  /// Per-submit scratch, reused to keep the hot path allocation-free:
  /// lane_dem_ holds the four per-lane demands being routed, lanes_ the
  /// LaneDemand views handed to the resolver; access_reqs_/outcomes_ carry
  /// one epoch's batched DRAM-cache accesses (kCachedNvm); the resolver
  /// runs its SoA fixed point on resolve_scratch_, rebuilds memo keys in
  /// key_scratch_ and writes resolutions into multi_scratch_ — after the
  /// first few submits no steady-state allocation remains.
  std::vector<DeviceDemand> lane_dem_;
  std::vector<LaneDemand> lanes_;
  std::vector<CacheAccessRequest> access_reqs_;
  std::vector<CacheOutcome> outcomes_;
  ResolveScratch resolve_scratch_;
  ResolveKey key_scratch_;
  MultiResolution multi_scratch_;
  Telemetry* telemetry_ = nullptr;
  ResolveCache* resolve_cache_ = nullptr;
  std::size_t last_phase_span_ = Tracer::kNone;
  MetricId phase_hist_;       ///< phase.duration_s histogram
  MetricId read_bytes_ctr_;   ///< app.read_bytes counter
  MetricId write_bytes_ctr_;  ///< app.write_bytes counter
};

}  // namespace nvms
