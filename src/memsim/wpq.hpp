// Write Pending Queue (WPQ) occupancy model.
//
// The Optane DIMM controller buffers stores in a small WPQ that combines
// adjacent writes into 256B media transactions.  When the demanded write
// rate approaches the drain capability, the queue fills, new stores stall,
// and — because loads and stores share controller resources — reads are
// throttled as well (the paper's "write throttling effect", Sec. IV-C).
//
// This model turns (demand rate, drain capacity) into a steady-state
// utilization, which the resolver feeds into the read-throttle coupling.
#pragma once

#include <algorithm>

namespace nvms {

struct WpqModel {
  int entries = 64;
  double seq_combining = 0.85;  ///< fraction of seq stores absorbed by merge

  /// Steady-state utilization of the queue in [0,1]:  an M/D/1-flavoured
  /// saturation curve of the demand/drain ratio `rho`, sharpened so that
  /// low write rates leave the queue almost empty (Laghos stays healthy at
  /// 1.3 GB/s) while rates near capacity pin it at 1 (SuperLU stage 1).
  double utilization(double demand_bw, double drain_bw) const {
    if (drain_bw <= 0.0) return demand_bw > 0.0 ? 1.0 : 0.0;
    const double rho = demand_bw / drain_bw;
    if (rho >= 1.0) return 1.0;
    // queue-length based utilization: L = rho^2/(1-rho) for M/D/1-ish;
    // normalize against the queue depth.
    const double ql = rho * rho / (1.0 - rho);
    const double cap = static_cast<double>(std::max(entries, 1));
    return std::min(1.0, std::max(rho * 0.5, ql / (ql + cap * 0.05)));
  }
};

}  // namespace nvms
