// Memory-device timing and bandwidth models.
//
// Parameters for the Optane DC PMM preset follow the published
// measurements the paper relies on ([12], [21], and the paper's own Sec. II
// and IV): 174/304 ns sequential/random read latency, 39 GB/s read and
// 13 GB/s write peak per socket, 256 B internal media granularity, and a
// write-bandwidth-vs-threads curve that peaks around 4 writers.
#pragma once

#include <cstdint>
#include <string>

#include "memsim/scaling_curve.hpp"
#include "simcore/units.hpp"
#include "trace/pattern.hpp"

namespace nvms {

enum class DeviceKind { kDram, kNvm };

const char* to_string(DeviceKind k);

struct DeviceParams {
  DeviceKind kind = DeviceKind::kDram;
  std::string name = "dram";
  std::uint64_t capacity = 0;  ///< bytes per socket

  double read_lat_seq = ns(81);   ///< loaded sequential read latency
  double read_lat_rand = ns(101);  ///< random (pointer-chase) read latency
  double write_lat = ns(86);

  double read_bw_peak = gbps(105);  ///< per-socket
  double write_bw_peak = gbps(57);  ///< per-socket
  /// Combined read+write ceiling: the channel/bus budget shared by both
  /// directions.  This is what makes DRAM-cache fill writes steal read
  /// bandwidth from a read-saturated workload (the Hypre 28% loss, Fig. 4).
  double combined_bw_peak = gbps(115);

  /// Efficiency multipliers applied to the peak for non-sequential
  /// patterns (row-buffer / media-granularity effects).  Random accesses
  /// are split by granule: "small" jumps touch less than the media
  /// granularity and pay amplification; "large" jumps (>= 256 B) behave
  /// like short sequential bursts.
  double strided_read_eff = 0.75;
  double random_small_read_eff = 0.62;
  double random_large_read_eff = 0.62;
  double strided_write_eff = 0.8;
  double random_small_write_eff = 0.5;
  double random_large_write_eff = 0.5;

  /// Media access granularity in bytes (256 for Optane, 64 for DRAM):
  /// sub-granularity random writes pay a read-modify-write in the media.
  std::uint64_t media_granularity = 64;

  /// Bandwidth scaling with thread count.
  ScalingCurve read_scaling{{{1, 1.0}}};
  ScalingCurve write_scaling{{{1, 1.0}}};

  /// Write-throttling coupling at the shared iMC/WPQ: achieved read
  /// bandwidth is scaled by (1 - alpha * util_w^gamma) where util_w is the
  /// write-queue utilization.  DRAM uses alpha ~ 0, Optane a large alpha.
  double throttle_alpha = 0.0;
  double throttle_gamma = 4.0;

  /// WPQ modeling: entries and the combining benefit for sequential writes.
  int wpq_entries = 64;
  double wpq_seq_combining = 1.0;  ///< fraction of seq writes combined away

  // -- derived helpers ------------------------------------------------

  /// Achievable read bandwidth for `cls` at `threads` (no coupling).
  double read_capacity(PatClass cls, double threads) const;
  /// Achievable write bandwidth for `cls` at `threads` (no coupling).
  double write_capacity(PatClass cls, double threads) const;
  /// Convenience overloads classifying from (pattern, default granule).
  double read_capacity(Pattern pattern, double threads) const {
    return read_capacity(classify(pattern, 64), threads);
  }
  double write_capacity(Pattern pattern, double threads) const {
    return write_capacity(classify(pattern, 64), threads);
  }
  /// Latency-limited random-read bandwidth at `threads` issuers with
  /// `mlp` outstanding 64B misses per thread.
  double latency_limited_read_bw(double threads, double mlp) const;

  void validate() const;
};

/// One-socket DDR4 DIMM group of the Purley testbed (6x16 GB @ 2666,
/// ~115 GB/s channel peak; sustained ~105 GB/s read).
DeviceParams ddr4_socket_params(std::uint64_t capacity);

/// One-socket Optane DC PMM group (6x128 GB).
DeviceParams optane_socket_params(std::uint64_t capacity);

}  // namespace nvms
