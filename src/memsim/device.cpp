#include "memsim/device.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace nvms {

const char* to_string(DeviceKind k) {
  return k == DeviceKind::kDram ? "DRAM" : "NVM";
}

double DeviceParams::read_capacity(PatClass cls, double threads) const {
  double eff = 1.0;
  switch (cls) {
    case PatClass::kSeq:
      eff = 1.0;
      break;
    case PatClass::kStrided:
      eff = strided_read_eff;
      break;
    case PatClass::kRandSmall:
      eff = random_small_read_eff;
      break;
    case PatClass::kRandLarge:
      eff = random_large_read_eff;
      break;
  }
  return read_bw_peak * eff * read_scaling.at(threads);
}

double DeviceParams::write_capacity(PatClass cls, double threads) const {
  double eff = 1.0;
  switch (cls) {
    case PatClass::kSeq:
      eff = 1.0;
      break;
    case PatClass::kStrided:
      eff = strided_write_eff;
      break;
    case PatClass::kRandSmall:
      // Sub-granularity random stores pay a read-modify-write in the media.
      eff = random_small_write_eff;
      break;
    case PatClass::kRandLarge:
      eff = random_large_write_eff;
      break;
  }
  return write_bw_peak * eff * write_scaling.at(threads);
}

double DeviceParams::latency_limited_read_bw(double threads,
                                             double mlp) const {
  // Little's law: threads * mlp outstanding 64B misses, each taking the
  // loaded random latency.
  return threads * mlp * 64.0 / read_lat_rand;
}

void DeviceParams::validate() const {
  require(capacity > 0, name + ": capacity must be positive");
  require(read_bw_peak > 0 && write_bw_peak > 0,
          name + ": peaks must be positive");
  require(combined_bw_peak >= std::max(read_bw_peak, write_bw_peak),
          name + ": combined peak below a directional peak");
  require(read_lat_seq > 0 && read_lat_rand >= read_lat_seq,
          name + ": latencies must satisfy 0 < seq <= rand");
  require(throttle_alpha >= 0.0 && throttle_alpha < 1.0,
          name + ": throttle_alpha must be in [0,1)");
  require(media_granularity >= 64, name + ": media granularity below 64B");
}

DeviceParams ddr4_socket_params(std::uint64_t capacity) {
  DeviceParams p;
  p.kind = DeviceKind::kDram;
  p.name = "ddr4";
  p.capacity = capacity;
  p.read_lat_seq = ns(81);
  p.read_lat_rand = ns(101);
  p.write_lat = ns(86);
  p.read_bw_peak = gbps(105);
  p.write_bw_peak = gbps(57);
  p.combined_bw_peak = gbps(115);
  p.strided_read_eff = 0.8;
  p.random_small_read_eff = 0.62;
  p.random_large_read_eff = 0.62;
  p.strided_write_eff = 0.85;
  p.random_small_write_eff = 0.6;
  p.random_large_write_eff = 0.6;
  p.media_granularity = 64;
  // DDR4 reads/writes saturate around 8-10 cores and stay flat with HT.
  p.read_scaling = ScalingCurve{{{1, 0.14}, {2, 0.27}, {4, 0.52}, {8, 0.88},
                                 {12, 1.0}, {24, 1.0}, {48, 0.98}}};
  p.write_scaling = ScalingCurve{{{1, 0.18}, {2, 0.34}, {4, 0.62}, {8, 0.92},
                                  {12, 1.0}, {24, 1.0}, {48, 0.97}}};
  p.throttle_alpha = 0.15;  // mild read/write interference on DDR
  p.throttle_gamma = 4.0;
  p.wpq_entries = 256;
  p.wpq_seq_combining = 1.0;
  return p;
}

DeviceParams optane_socket_params(std::uint64_t capacity) {
  DeviceParams p;
  p.kind = DeviceKind::kNvm;
  p.name = "optane";
  p.capacity = capacity;
  p.read_lat_seq = ns(174);
  p.read_lat_rand = ns(304);
  p.write_lat = ns(190);  // 64-256B NT store, [12]
  p.read_bw_peak = gbps(39);
  p.write_bw_peak = gbps(13);
  p.combined_bw_peak = gbps(40);
  p.strided_read_eff = 0.6;
  // 64B random requests read a full 256B media block: ~4x amplification,
  // partially hidden by the DIMM buffer.
  p.random_small_read_eff = 0.27;
  // >=256B granules (e.g. xs-row reads) use the media block fully.
  p.random_large_read_eff = 0.45;
  p.strided_write_eff = 0.55;
  p.random_small_write_eff = 0.2;
  p.random_large_write_eff = 0.4;
  p.media_granularity = 256;
  // Reads scale to ~16 threads, then flatten with a slight decline.
  p.read_scaling = ScalingCurve{{{1, 0.07}, {2, 0.14}, {4, 0.3}, {8, 0.62},
                                 {16, 1.0}, {24, 0.98}, {36, 0.94},
                                 {48, 0.9}}};
  // Writes peak near 4 threads, then decline steeply: WPQ contention and
  // lost combining opportunities (Sec. IV-D; [32]).
  p.write_scaling = ScalingCurve{{{1, 0.5}, {2, 0.8}, {4, 1.0}, {8, 0.72},
                                  {12, 0.5}, {16, 0.38}, {24, 0.26},
                                  {36, 0.18}, {48, 0.15}}};
  p.throttle_alpha = 0.9;
  p.throttle_gamma = 4.0;
  p.wpq_entries = 64;
  p.wpq_seq_combining = 0.85;
  return p;
}

}  // namespace nvms
