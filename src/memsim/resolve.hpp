// Phase timing resolution.
//
// Given the per-device byte demands of a phase, compute the phase duration
// and the achieved read/write bandwidths under:
//   (1) per-pattern, per-concurrency device capacities,
//   (2) latency-limited random-read bandwidth (Little's law, phase MLP),
//   (3) WPQ-utilization-driven write throttling of reads (Sec. IV-C),
//   (4) roofline overlap of compute and memory time.
//
// The coupling makes the system self-referential (achieved write rate
// depends on duration, which depends on read throttling, which depends on
// write-queue utilization); a damped fixed point resolves it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "memsim/cpu.hpp"
#include "memsim/device.hpp"
#include "memsim/wpq.hpp"
#include "obs/epoch_probe.hpp"
#include "trace/phase.hpp"

namespace nvms {

/// Byte demands routed to one device, split by access class
/// (indexed by static_cast<int>(PatClass)).
struct DeviceDemand {
  std::array<std::uint64_t, kNumPatClasses> read{};
  std::array<std::uint64_t, kNumPatClasses> write{};

  std::uint64_t read_total() const {
    return read[0] + read[1] + read[2] + read[3];
  }
  std::uint64_t write_total() const {
    return write[0] + write[1] + write[2] + write[3];
  }

  void add(PatClass c, Dir d, std::uint64_t bytes) {
    auto& arr = (d == Dir::kRead) ? read : write;
    arr[static_cast<std::size_t>(c)] += bytes;
  }
  void add(Pattern p, Dir d, std::uint64_t bytes,
           std::uint64_t granule = 64) {
    add(classify(p, granule), d, bytes);
  }
};

/// Resolution result for one device.
struct DeviceTiming {
  double read_time = 0.0;   ///< unthrottled time to move the reads
  double write_time = 0.0;  ///< time to move the writes
  double read_bw = 0.0;     ///< achieved over the phase duration
  double write_bw = 0.0;
  double wpq_util = 0.0;
  double throttle = 1.0;    ///< read multiplier actually applied
};

struct PhaseResolution {
  double time = 0.0;          ///< phase duration, seconds
  double compute_time = 0.0;  ///< pure compute component
  DeviceTiming dram;
  DeviceTiming nvm;
};

/// One device "lane" in a multi-device resolution (e.g. socket-0 DRAM,
/// socket-0 NVM, socket-1 DRAM, socket-1 NVM).
struct LaneDemand {
  DeviceDemand dem;
  const DeviceParams* dev = nullptr;
  /// Telemetry channel label ("dram0", "nvm1", ...); falls back to the
  /// device name when null.
  const char* label = nullptr;
};

struct MultiResolution {
  double time = 0.0;
  double compute_time = 0.0;
  std::vector<DeviceTiming> lanes;
};

/// Reusable flat SoA state for the resolve_lanes() fixed point.  The
/// solver splits the lanes into a compact *active* set (positive write
/// demand and a positive throttle alpha — the only lanes whose state
/// evolves across iterations) and folds everything else into constants,
/// so the 64-iteration loop touches contiguous double arrays only.  A
/// caller that owns one scratch per thread (MemorySystem does) makes the
/// steady-state resolve completely allocation-free; passing nullptr falls
/// back to a call-local scratch.
///
/// Layout invariant: per-lane arrays are indexed by lane position, the
/// act_*/lazy_* arrays by compact slot; prepare() only ever grows, so a
/// scratch can be shared across resolutions with different lane counts.
struct ResolveScratch {
  // Per-lane results, scattered back after convergence.
  std::vector<double> lane_rt;    ///< unthrottled read time
  std::vector<double> lane_wt;    ///< write time
  std::vector<double> lane_util;  ///< converged WPQ utilization
  std::vector<double> lane_f;     ///< converged read-throttle factor
  // Per-lane, per-class capacity tables ([lane * kNumPatClasses + class]),
  // the hoisted form of DeviceParams::{read,write}_capacity dispatch.
  std::vector<double> rcap;
  std::vector<double> wcap;
  // Compact active set: lanes iterated by the fixed point.
  std::vector<std::size_t> act_idx;
  std::vector<double> act_rt;      ///< unthrottled read time
  std::vector<double> act_ceil;    ///< max(write time, combined ceiling)
  std::vector<double> act_wbytes;  ///< write demand, bytes
  std::vector<double> act_drain;   ///< WPQ drain capacity
  std::vector<double> act_cap005;  ///< wpq_entries * 0.05, precomputed
  std::vector<double> act_alpha;
  std::vector<double> act_gamma;
  std::vector<double> act_f;
  std::vector<double> act_util;
  // Lazy set: write demand but alpha == 0 — the throttle stays exactly
  // 1.0, so their utilization is computed once post-convergence.
  std::vector<std::size_t> lazy_idx;
  std::vector<double> lazy_wbytes;
  std::vector<double> lazy_drain;
  std::vector<double> lazy_cap005;

  /// Grow every array to hold `lanes` lanes (never shrinks).
  void prepare(std::size_t lanes);
};

/// Runtime switch routing resolve_lanes() and the DramCache sampled walk
/// through the pre-SoA reference kernels (the bit-exact oracles kept for
/// the `kernels` parity suite and the bench self-measured speedup).
/// Compiling with -DNVMS_REFERENCE_KERNELS pins it on permanently.
void set_reference_kernels(bool on);
bool use_reference_kernels();

/// General N-lane resolution: every lane is resolved under the same fixed
/// point as resolve_phase; `upi_bytes` crossing the socket interconnect
/// add a shared-link constraint time >= upi_bytes / upi_bw.  When `probe`
/// is set, each active lane emits one post-convergence epoch sample of its
/// WPQ utilization ("wpq.util") and applied read-throttle multiplier
/// ("throttle.read") stamped at virtual time `epoch_t`.
///
/// Concurrency above cpu.max_threads() is clamped for the memory model
/// (oversubscription adds no memory parallelism); the counter model in
/// MemorySystem::account_counters bills the identical clamped count, so
/// the two never disagree at the boundary.  The result is a pure function
/// of (per-lane demands, the lane devices, the phase timing fields minus
/// name/streams, the CPU model, the UPI constraint) — the property the
/// ResolveCache memoization layer (memsim/resolve_cache.hpp) relies on.
MultiResolution resolve_lanes(const Phase& phase,
                              const std::vector<LaneDemand>& lanes,
                              const CpuParams& cpu, double upi_bytes = 0.0,
                              double upi_bw = 0.0,
                              EpochProbe* probe = nullptr,
                              double epoch_t = 0.0,
                              ResolveScratch* scratch = nullptr);

/// Allocation-free variant: writes the resolution into `*out`, reusing its
/// lanes vector's capacity, and runs the fixed point on `*scratch` (both
/// may be reused across calls).  resolve_lanes() is a thin wrapper.
void resolve_lanes_into(const Phase& phase,
                        const std::vector<LaneDemand>& lanes,
                        const CpuParams& cpu, double upi_bytes,
                        double upi_bw, EpochProbe* probe, double epoch_t,
                        ResolveScratch* scratch, MultiResolution* out);

/// The pre-SoA scalar solver, kept verbatim as the bit-exact oracle for
/// the `kernels` parity suite (tests/test_resolve_soa) and as the
/// "pre-PR kernel" baseline the benches self-measure against.  Routed to
/// by resolve_lanes() under set_reference_kernels(true) or a
/// -DNVMS_REFERENCE_KERNELS build.
MultiResolution resolve_lanes_reference(const Phase& phase,
                                        const std::vector<LaneDemand>& lanes,
                                        const CpuParams& cpu,
                                        double upi_bytes = 0.0,
                                        double upi_bw = 0.0,
                                        EpochProbe* probe = nullptr,
                                        double epoch_t = 0.0);

PhaseResolution resolve_phase(const Phase& phase, const DeviceDemand& dram_dem,
                              const DeviceDemand& nvm_dem,
                              const DeviceParams& dram,
                              const DeviceParams& nvm, const CpuParams& cpu);

}  // namespace nvms
