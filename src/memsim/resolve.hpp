// Phase timing resolution.
//
// Given the per-device byte demands of a phase, compute the phase duration
// and the achieved read/write bandwidths under:
//   (1) per-pattern, per-concurrency device capacities,
//   (2) latency-limited random-read bandwidth (Little's law, phase MLP),
//   (3) WPQ-utilization-driven write throttling of reads (Sec. IV-C),
//   (4) roofline overlap of compute and memory time.
//
// The coupling makes the system self-referential (achieved write rate
// depends on duration, which depends on read throttling, which depends on
// write-queue utilization); a damped fixed point resolves it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "memsim/cpu.hpp"
#include "memsim/device.hpp"
#include "memsim/wpq.hpp"
#include "obs/epoch_probe.hpp"
#include "trace/phase.hpp"

namespace nvms {

/// Byte demands routed to one device, split by access class
/// (indexed by static_cast<int>(PatClass)).
struct DeviceDemand {
  std::array<std::uint64_t, kNumPatClasses> read{};
  std::array<std::uint64_t, kNumPatClasses> write{};

  std::uint64_t read_total() const {
    return read[0] + read[1] + read[2] + read[3];
  }
  std::uint64_t write_total() const {
    return write[0] + write[1] + write[2] + write[3];
  }

  void add(PatClass c, Dir d, std::uint64_t bytes) {
    auto& arr = (d == Dir::kRead) ? read : write;
    arr[static_cast<std::size_t>(c)] += bytes;
  }
  void add(Pattern p, Dir d, std::uint64_t bytes,
           std::uint64_t granule = 64) {
    add(classify(p, granule), d, bytes);
  }
};

/// Resolution result for one device.
struct DeviceTiming {
  double read_time = 0.0;   ///< unthrottled time to move the reads
  double write_time = 0.0;  ///< time to move the writes
  double read_bw = 0.0;     ///< achieved over the phase duration
  double write_bw = 0.0;
  double wpq_util = 0.0;
  double throttle = 1.0;    ///< read multiplier actually applied
};

struct PhaseResolution {
  double time = 0.0;          ///< phase duration, seconds
  double compute_time = 0.0;  ///< pure compute component
  DeviceTiming dram;
  DeviceTiming nvm;
};

/// One device "lane" in a multi-device resolution (e.g. socket-0 DRAM,
/// socket-0 NVM, socket-1 DRAM, socket-1 NVM).
struct LaneDemand {
  DeviceDemand dem;
  const DeviceParams* dev = nullptr;
  /// Telemetry channel label ("dram0", "nvm1", ...); falls back to the
  /// device name when null.
  const char* label = nullptr;
};

struct MultiResolution {
  double time = 0.0;
  double compute_time = 0.0;
  std::vector<DeviceTiming> lanes;
};

/// General N-lane resolution: every lane is resolved under the same fixed
/// point as resolve_phase; `upi_bytes` crossing the socket interconnect
/// add a shared-link constraint time >= upi_bytes / upi_bw.  When `probe`
/// is set, each active lane emits one post-convergence epoch sample of its
/// WPQ utilization ("wpq.util") and applied read-throttle multiplier
/// ("throttle.read") stamped at virtual time `epoch_t`.
///
/// Concurrency above cpu.max_threads() is clamped for the memory model
/// (oversubscription adds no memory parallelism); the counter model in
/// MemorySystem::account_counters bills the identical clamped count, so
/// the two never disagree at the boundary.  The result is a pure function
/// of (per-lane demands, the lane devices, the phase timing fields minus
/// name/streams, the CPU model, the UPI constraint) — the property the
/// ResolveCache memoization layer (memsim/resolve_cache.hpp) relies on.
MultiResolution resolve_lanes(const Phase& phase,
                              const std::vector<LaneDemand>& lanes,
                              const CpuParams& cpu, double upi_bytes = 0.0,
                              double upi_bw = 0.0,
                              EpochProbe* probe = nullptr,
                              double epoch_t = 0.0);

PhaseResolution resolve_phase(const Phase& phase, const DeviceDemand& dram_dem,
                              const DeviceDemand& nvm_dem,
                              const DeviceParams& dram,
                              const DeviceParams& nvm, const CpuParams& cpu);

}  // namespace nvms
