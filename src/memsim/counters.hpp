// PCM-like hardware counters (Table IV of the paper).
//
// The simulator accumulates the six events the paper's prediction model
// uses as features:
//   p0 Instructions Retired
//   p1 Cycles Active
//   p2 Cycles stalled due to Resource Related reason
//   p3 Cycles waiting for outstanding offcore requests
//   p4 Reads issued to the memory controllers
//   p5 Writes issued to the iMC by the HA
#pragma once

#include <array>
#include <cstdint>

namespace nvms {

struct HwCounters {
  double instructions = 0.0;    ///< p0
  double cycles_active = 0.0;   ///< p1
  double stall_cycles = 0.0;    ///< p2
  double offcore_wait = 0.0;    ///< p3
  double imc_reads = 0.0;       ///< p4 (64B transactions)
  double imc_writes = 0.0;      ///< p5 (64B transactions)

  double ipc() const {
    return cycles_active > 0.0 ? instructions / cycles_active : 0.0;
  }

  /// Feature vector in Table IV order.
  std::array<double, 6> events() const {
    return {instructions, cycles_active, stall_cycles,
            offcore_wait, imc_reads,     imc_writes};
  }

  HwCounters& operator+=(const HwCounters& o) {
    instructions += o.instructions;
    cycles_active += o.cycles_active;
    stall_cycles += o.stall_cycles;
    offcore_wait += o.offcore_wait;
    imc_reads += o.imc_reads;
    imc_writes += o.imc_writes;
    return *this;
  }

  /// Delta snapshots: after -= before (RunRecorder, window re-binning).
  HwCounters& operator-=(const HwCounters& o) {
    instructions -= o.instructions;
    cycles_active -= o.cycles_active;
    stall_cycles -= o.stall_cycles;
    offcore_wait -= o.offcore_wait;
    imc_reads -= o.imc_reads;
    imc_writes -= o.imc_writes;
    return *this;
  }

  /// Proportional split of a delta across windows (rebin_windows).
  HwCounters& operator*=(double f) {
    instructions *= f;
    cycles_active *= f;
    stall_cycles *= f;
    offcore_wait *= f;
    imc_reads *= f;
    imc_writes *= f;
    return *this;
  }
};

inline HwCounters operator+(HwCounters a, const HwCounters& b) {
  a += b;
  return a;
}

inline HwCounters operator-(HwCounters a, const HwCounters& b) {
  a -= b;
  return a;
}

inline HwCounters operator*(HwCounters a, double f) {
  a *= f;
  return a;
}

}  // namespace nvms
