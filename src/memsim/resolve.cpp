#include "memsim/resolve.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <tuple>
#include <utility>

#include "simcore/error.hpp"

namespace nvms {
namespace {

constexpr std::array<PatClass, kNumPatClasses> kClasses = {
    PatClass::kSeq, PatClass::kStrided, PatClass::kRandSmall,
    PatClass::kRandLarge};

bool is_random(PatClass c) {
  return c == PatClass::kRandSmall || c == PatClass::kRandLarge;
}

/// Unthrottled time to service the read demand on one device.
double read_time(const DeviceDemand& dem, const DeviceParams& dev,
                 double threads, double mlp) {
  double t = 0.0;
  for (const PatClass c : kClasses) {
    const auto bytes = dem.read[static_cast<std::size_t>(c)];
    if (bytes == 0) continue;
    double cap = dev.read_capacity(c, threads);
    if (is_random(c)) {
      cap = std::min(cap, dev.latency_limited_read_bw(threads, mlp));
    }
    NVMS_ASSERT(cap > 0.0, "zero read capacity");
    t += static_cast<double>(bytes) / cap;
  }
  return t;
}

/// Time to service the write demand, and the aggregate drain capacity used
/// for WPQ utilization.
std::pair<double, double> write_time_and_drain(const DeviceDemand& dem,
                                               const DeviceParams& dev,
                                               double threads) {
  double t = 0.0;
  for (const PatClass c : kClasses) {
    const auto bytes = dem.write[static_cast<std::size_t>(c)];
    if (bytes == 0) continue;
    const double cap = dev.write_capacity(c, threads);
    NVMS_ASSERT(cap > 0.0, "zero write capacity");
    t += static_cast<double>(bytes) / cap;
  }
  const auto total = dem.write_total();
  const double drain = (t > 0.0)
                           ? static_cast<double>(total) / t
                           : dev.write_capacity(PatClass::kSeq, threads);
  return {t, drain};
}

#if defined(NVMS_REFERENCE_KERNELS)
constexpr bool kForceReference = true;
#else
constexpr bool kForceReference = false;
#endif
std::atomic<bool> g_reference_kernels{false};

/// WpqModel::utilization with the queue-depth term precomputed — the
/// arithmetic is expression-for-expression identical (cap005 replaces
/// `cap * 0.05`, evaluated in the same position).
inline double wpq_utilization(double demand_bw, double drain_bw,
                              double cap005) {
  if (drain_bw <= 0.0) return demand_bw > 0.0 ? 1.0 : 0.0;
  const double rho = demand_bw / drain_bw;
  if (rho >= 1.0) return 1.0;
  const double ql = rho * rho / (1.0 - rho);
  return std::min(1.0, std::max(rho * 0.5, ql / (ql + cap005)));
}

// NVMS_HOT: the damped fixed point over the compact SoA arrays.  Iterates
// only the active lanes (write demand and alpha > 0); every other lane's
// mem-time contribution is constant and pre-folded into `base`.  The max
// folds are reassociated relative to the reference scalar loop, which is
// bitwise safe here: every folded term is non-negative (zeros are always
// +0.0), so max() is order-insensitive down to the bit pattern.  Returns
// the converged duration T; *t_util_out gets the T the final iteration's
// utilizations were computed from (the reference reports utilization from
// the iteration *entry* T, not the converged T).
double soa_fixed_point(ResolveScratch& sc, std::size_t na, double base,
                       double compute_time, double overlap, double t0,
                       double* t_util_out) {
  double T = t0;
  double t_util = t0;
  for (int iter = 0; iter < 64; ++iter) {
    t_util = T;
    double tm = base;
    for (std::size_t k = 0; k < na; ++k) {
      const double demand_bw = (T > 0.0) ? sc.act_wbytes[k] / T : 0.0;
      const double util =
          wpq_utilization(demand_bw, sc.act_drain[k], sc.act_cap005[k]);
      sc.act_util[k] = util;
      const double target_f =
          1.0 - sc.act_alpha[k] * std::pow(util, sc.act_gamma[k]);
      const double f = 0.5 * sc.act_f[k] + 0.5 * std::max(target_f, 1e-3);
      sc.act_f[k] = f;
      const double tr = (f > 0.0) ? sc.act_rt[k] / f : 1e300;
      tm = std::max(tm, std::max(tr, sc.act_ceil[k]));
    }
    double new_T;
    if (overlap >= 1.0) {
      new_T = std::max(compute_time, tm);
    } else {
      new_T = std::max(compute_time, tm) +
              (1.0 - overlap) * std::min(compute_time, tm);
    }
    if (std::abs(new_T - T) < 1e-9 * std::max(1.0, T) && iter > 4) {
      T = new_T;
      break;
    }
    T = 0.5 * T + 0.5 * new_T;
  }
  *t_util_out = t_util;
  return T;
}

}  // namespace

void set_reference_kernels(bool on) {
  g_reference_kernels.store(on, std::memory_order_relaxed);
}

bool use_reference_kernels() {
  return kForceReference ||
         g_reference_kernels.load(std::memory_order_relaxed);
}

void ResolveScratch::prepare(std::size_t lanes) {
  if (lane_rt.size() >= lanes) return;
  lane_rt.resize(lanes);
  lane_wt.resize(lanes);
  lane_util.resize(lanes);
  lane_f.resize(lanes);
  rcap.resize(lanes * kNumPatClasses);
  wcap.resize(lanes * kNumPatClasses);
  act_idx.resize(lanes);
  act_rt.resize(lanes);
  act_ceil.resize(lanes);
  act_wbytes.resize(lanes);
  act_drain.resize(lanes);
  act_cap005.resize(lanes);
  act_alpha.resize(lanes);
  act_gamma.resize(lanes);
  act_f.resize(lanes);
  act_util.resize(lanes);
  lazy_idx.resize(lanes);
  lazy_wbytes.resize(lanes);
  lazy_drain.resize(lanes);
  lazy_cap005.resize(lanes);
}

void resolve_lanes_into(const Phase& phase,
                        const std::vector<LaneDemand>& lanes,
                        const CpuParams& cpu, double upi_bytes,
                        double upi_bw, EpochProbe* probe, double epoch_t,
                        ResolveScratch* scratch, MultiResolution* out) {
  if (use_reference_kernels()) {
    *out = resolve_lanes_reference(phase, lanes, cpu, upi_bytes, upi_bw,
                                   probe, epoch_t);
    return;
  }
  require(phase.threads >= 1, "phase must use at least one thread");
  require(phase.mlp > 0.0, "phase mlp must be positive");
  require(phase.overlap >= 0.0 && phase.overlap <= 1.0,
          "phase overlap must be in [0,1]");
  require(phase.parallel_fraction >= 0.0 && phase.parallel_fraction <= 1.0,
          "phase parallel fraction must be in [0,1]");
  require(upi_bytes == 0.0 || upi_bw > 0.0,
          "cross-socket traffic needs a positive UPI bandwidth");

  out->compute_time =
      cpu.compute_time(phase.flops, phase.threads, phase.parallel_fraction);
  // Memory concurrency clamps to the physical hardware-thread count:
  // logical oversubscription adds no memory parallelism.  account_counters
  // bills the same clamped count, so timing and counters agree at the
  // boundary (the compute model applies the identical clamp internally).
  const double threads_eff =
      static_cast<double>(std::min(phase.threads, cpu.max_threads()));

  ResolveScratch local;
  ResolveScratch& sc = scratch != nullptr ? *scratch : local;
  const std::size_t n = lanes.size();
  sc.prepare(n);

  // ---- setup: per-lane unthrottled times and fixed-point partition ----
  //
  // `base` accumulates every mem-time term that cannot change across
  // iterations: the UPI link time, each lane's combined-bandwidth ceiling
  // and write time, and the *read* time of every lane whose throttle is
  // pinned at exactly 1.0.  A lane's throttle moves only when it has
  // write demand (utilization(0, drain) == 0 identically) and a positive
  // throttle_alpha — in both other cases target_f == 1.0 on every
  // iteration, so f stays bit-exactly 1.0 and rt / f == rt.
  const double upi_time = upi_bytes > 0.0 ? upi_bytes / upi_bw : 0.0;
  double base = upi_time;
  std::size_t na = 0;  // active lanes (fixed-point participants)
  std::size_t nl = 0;  // lazy lanes (f == 1.0, util still reported)
  for (std::size_t i = 0; i < n; ++i) {
    const LaneDemand& lane = lanes[i];
    NVMS_ASSERT(lane.dev != nullptr, "lane without a device");
    const DeviceDemand& dem = lane.dem;
    const DeviceParams& dev = *lane.dev;
    const std::uint64_t rtot = dem.read_total();
    const std::uint64_t wtot = dem.write_total();
    if (rtot + wtot == 0) {
      // Idle lane: contributes max(t, 0.0) to every mem_time fold — a
      // no-op — and its outputs are the defaults.
      sc.lane_rt[i] = 0.0;
      sc.lane_wt[i] = 0.0;
      sc.lane_util[i] = 0.0;
      sc.lane_f[i] = 1.0;
      continue;
    }

    // Per-class capacity tables: the PatClass switch in
    // DeviceParams::{read,write}_capacity hoisted out of the byte loops.
    // The products keep the reference association
    // (peak * eff) * scaling.at(threads).
    const double rscale = dev.read_scaling.at(threads_eff);
    const double wscale = dev.write_scaling.at(threads_eff);
    const double lat_bw = threads_eff * phase.mlp * 64.0 / dev.read_lat_rand;
    double* rc = &sc.rcap[i * kNumPatClasses];
    double* wc = &sc.wcap[i * kNumPatClasses];
    rc[0] = dev.read_bw_peak * 1.0 * rscale;
    rc[1] = dev.read_bw_peak * dev.strided_read_eff * rscale;
    rc[2] = std::min(dev.read_bw_peak * dev.random_small_read_eff * rscale,
                     lat_bw);
    rc[3] = std::min(dev.read_bw_peak * dev.random_large_read_eff * rscale,
                     lat_bw);
    wc[0] = dev.write_bw_peak * 1.0 * wscale;
    wc[1] = dev.write_bw_peak * dev.strided_write_eff * wscale;
    wc[2] = dev.write_bw_peak * dev.random_small_write_eff * wscale;
    wc[3] = dev.write_bw_peak * dev.random_large_write_eff * wscale;

    double rt = 0.0;
    double wt = 0.0;
    for (std::size_t c = 0; c < kNumPatClasses; ++c) {
      if (dem.read[c] != 0) {
        NVMS_ASSERT(rc[c] > 0.0, "zero read capacity");
        rt += static_cast<double>(dem.read[c]) / rc[c];
      }
      if (dem.write[c] != 0) {
        NVMS_ASSERT(wc[c] > 0.0, "zero write capacity");
        wt += static_cast<double>(dem.write[c]) / wc[c];
      }
    }
    const double drain =
        (wt > 0.0) ? static_cast<double>(wtot) / wt : wc[0];
    sc.lane_rt[i] = rt;
    sc.lane_wt[i] = wt;
    // Reads and writes proceed concurrently, but share the channel
    // budget: the combined ceiling binds when both directions are hot.
    const double combined =
        static_cast<double>(rtot + wtot) / dev.combined_bw_peak;
    const double ceil = std::max(wt, combined);

    if (wtot > 0 && dev.throttle_alpha > 0.0) {
      sc.act_idx[na] = i;
      sc.act_rt[na] = rt;
      sc.act_ceil[na] = ceil;
      sc.act_wbytes[na] = static_cast<double>(wtot);
      sc.act_drain[na] = drain;
      sc.act_cap005[na] =
          static_cast<double>(std::max(dev.wpq_entries, 1)) * 0.05;
      sc.act_alpha[na] = dev.throttle_alpha;
      sc.act_gamma[na] = dev.throttle_gamma;
      sc.act_f[na] = 1.0;
      sc.act_util[na] = 0.0;
      ++na;
    } else {
      // Pinned throttle: rt / 1.0 == rt exactly; fold the whole lane.
      base = std::max(base, std::max(rt, ceil));
      sc.lane_f[i] = 1.0;
      sc.lane_util[i] = 0.0;
      if (wtot > 0) {
        // alpha == 0: the throttle never moves but the reported WPQ
        // utilization still tracks T — computed once after convergence.
        sc.lazy_idx[nl] = i;
        sc.lazy_wbytes[nl] = static_cast<double>(wtot);
        sc.lazy_drain[nl] = drain;
        sc.lazy_cap005[nl] =
            static_cast<double>(std::max(dev.wpq_entries, 1)) * 0.05;
        ++nl;
      }
    }
  }

  // Initial duration: every throttle is 1.0, so the first mem_time is the
  // static base folded with the active lanes' unthrottled terms.
  double mem0 = base;
  for (std::size_t k = 0; k < na; ++k) {
    mem0 = std::max(mem0, std::max(sc.act_rt[k], sc.act_ceil[k]));
  }
  double t_util = 0.0;
  const double T =
      soa_fixed_point(sc, na, base, out->compute_time, phase.overlap,
                      std::max(out->compute_time, mem0), &t_util);
  out->time = T;

  // Scatter converged state back to lane order; lazy utilizations come
  // from the T the last iteration read, matching the reference exactly.
  for (std::size_t k = 0; k < na; ++k) {
    sc.lane_f[sc.act_idx[k]] = sc.act_f[k];
    sc.lane_util[sc.act_idx[k]] = sc.act_util[k];
  }
  for (std::size_t k = 0; k < nl; ++k) {
    const double demand_bw =
        (t_util > 0.0) ? sc.lazy_wbytes[k] / t_util : 0.0;
    sc.lane_util[sc.lazy_idx[k]] =
        wpq_utilization(demand_bw, sc.lazy_drain[k], sc.lazy_cap005[k]);
  }

  out->lanes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    DeviceTiming& lane_out = out->lanes[i];
    lane_out.read_time = sc.lane_rt[i];
    lane_out.write_time = sc.lane_wt[i];
    lane_out.wpq_util = sc.lane_util[i];
    lane_out.throttle = sc.lane_f[i];
    const std::uint64_t rtot = lanes[i].dem.read_total();
    const std::uint64_t wtot = lanes[i].dem.write_total();
    if (T > 0.0) {
      lane_out.read_bw = static_cast<double>(rtot) / T;
      lane_out.write_bw = static_cast<double>(wtot) / T;
    } else {
      lane_out.read_bw = 0.0;
      lane_out.write_bw = 0.0;
    }
    // Epoch telemetry: the converged WPQ utilization and the throttle the
    // fixed point actually applied — the internal signals behind the
    // paper's write-throttling traces (Sec. IV-C), otherwise discarded.
    if (probe != nullptr && rtot + wtot > 0) {
      const char* label = lanes[i].label != nullptr
                              ? lanes[i].label
                              : lanes[i].dev->name.c_str();
      probe->epoch_sample("wpq.util", label, epoch_t, sc.lane_util[i]);
      probe->epoch_sample("throttle.read", label, epoch_t, sc.lane_f[i]);
    }
  }
}

MultiResolution resolve_lanes(const Phase& phase,
                              const std::vector<LaneDemand>& lanes,
                              const CpuParams& cpu, double upi_bytes,
                              double upi_bw, EpochProbe* probe,
                              double epoch_t, ResolveScratch* scratch) {
  MultiResolution res;
  resolve_lanes_into(phase, lanes, cpu, upi_bytes, upi_bw, probe, epoch_t,
                     scratch, &res);
  return res;
}

MultiResolution resolve_lanes_reference(const Phase& phase,
                                        const std::vector<LaneDemand>& lanes,
                                        const CpuParams& cpu,
                                        double upi_bytes, double upi_bw,
                                        EpochProbe* probe, double epoch_t) {
  require(phase.threads >= 1, "phase must use at least one thread");
  require(phase.mlp > 0.0, "phase mlp must be positive");
  require(phase.overlap >= 0.0 && phase.overlap <= 1.0,
          "phase overlap must be in [0,1]");
  require(phase.parallel_fraction >= 0.0 && phase.parallel_fraction <= 1.0,
          "phase parallel fraction must be in [0,1]");
  require(upi_bytes == 0.0 || upi_bw > 0.0,
          "cross-socket traffic needs a positive UPI bandwidth");

  MultiResolution res;
  res.compute_time =
      cpu.compute_time(phase.flops, phase.threads, phase.parallel_fraction);

  const double threads_eff =
      static_cast<double>(std::min(phase.threads, cpu.max_threads()));

  struct DevState {
    const DeviceDemand* dem;
    const DeviceParams* dev;
    double rt = 0.0;     // unthrottled read time
    double wt = 0.0;     // write time
    double drain = 0.0;  // aggregate write drain capacity
    double f = 1.0;      // current read-throttle factor
    double util = 0.0;
  };
  std::vector<DevState> ds;
  ds.reserve(lanes.size());
  for (const auto& lane : lanes) {
    NVMS_ASSERT(lane.dev != nullptr, "lane without a device");
    DevState d{&lane.dem, lane.dev};
    d.rt = read_time(*d.dem, *d.dev, threads_eff, phase.mlp);
    std::tie(d.wt, d.drain) =
        write_time_and_drain(*d.dem, *d.dev, threads_eff);
    ds.push_back(d);
  }
  const double upi_time = upi_bytes > 0.0 ? upi_bytes / upi_bw : 0.0;

  auto mem_time = [&](void) {
    double t = upi_time;
    for (const auto& d : ds) {
      const double tr = (d.f > 0.0) ? d.rt / d.f : 1e300;
      const double combined =
          static_cast<double>(d.dem->read_total() + d.dem->write_total()) /
          d.dev->combined_bw_peak;
      t = std::max(t, std::max({tr, d.wt, combined}));
    }
    return t;
  };

  // Damped fixed point on the throttle factors.
  double T = std::max(res.compute_time, mem_time());
  for (int iter = 0; iter < 64; ++iter) {
    for (auto& d : ds) {
      const double wbytes = static_cast<double>(d.dem->write_total());
      const double demand_bw = (T > 0.0) ? wbytes / T : 0.0;
      const WpqModel wpq{d.dev->wpq_entries, d.dev->wpq_seq_combining};
      d.util = wpq.utilization(demand_bw, d.drain);
      const double target_f =
          1.0 - d.dev->throttle_alpha *
                    std::pow(d.util, d.dev->throttle_gamma);
      d.f = 0.5 * d.f + 0.5 * std::max(target_f, 1e-3);
    }
    const double tm = mem_time();
    double new_T;
    if (phase.overlap >= 1.0) {
      new_T = std::max(res.compute_time, tm);
    } else {
      new_T = std::max(res.compute_time, tm) +
              (1.0 - phase.overlap) * std::min(res.compute_time, tm);
    }
    if (std::abs(new_T - T) < 1e-9 * std::max(1.0, T) && iter > 4) {
      T = new_T;
      break;
    }
    T = 0.5 * T + 0.5 * new_T;
  }

  res.time = T;
  res.lanes.resize(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const DevState& d = ds[i];
    DeviceTiming& out = res.lanes[i];
    out.read_time = d.rt;
    out.write_time = d.wt;
    out.wpq_util = d.util;
    out.throttle = d.f;
    if (T > 0.0) {
      out.read_bw = static_cast<double>(d.dem->read_total()) / T;
      out.write_bw = static_cast<double>(d.dem->write_total()) / T;
    }
    if (probe != nullptr &&
        d.dem->read_total() + d.dem->write_total() > 0) {
      const char* label = lanes[i].label != nullptr ? lanes[i].label
                                                    : d.dev->name.c_str();
      probe->epoch_sample("wpq.util", label, epoch_t, d.util);
      probe->epoch_sample("throttle.read", label, epoch_t, d.f);
    }
  }
  return res;
}

PhaseResolution resolve_phase(const Phase& phase, const DeviceDemand& dram_dem,
                              const DeviceDemand& nvm_dem,
                              const DeviceParams& dram,
                              const DeviceParams& nvm, const CpuParams& cpu) {
  std::vector<LaneDemand> lanes(2);
  lanes[0].dem = dram_dem;
  lanes[0].dev = &dram;
  lanes[1].dem = nvm_dem;
  lanes[1].dev = &nvm;
  const MultiResolution multi = resolve_lanes(phase, lanes, cpu);
  PhaseResolution res;
  res.time = multi.time;
  res.compute_time = multi.compute_time;
  res.dram = multi.lanes[0];
  res.nvm = multi.lanes[1];
  return res;
}

}  // namespace nvms
