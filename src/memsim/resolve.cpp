#include "memsim/resolve.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "simcore/error.hpp"

namespace nvms {
namespace {

constexpr std::array<PatClass, kNumPatClasses> kClasses = {
    PatClass::kSeq, PatClass::kStrided, PatClass::kRandSmall,
    PatClass::kRandLarge};

bool is_random(PatClass c) {
  return c == PatClass::kRandSmall || c == PatClass::kRandLarge;
}

/// Unthrottled time to service the read demand on one device.
double read_time(const DeviceDemand& dem, const DeviceParams& dev,
                 double threads, double mlp) {
  double t = 0.0;
  for (const PatClass c : kClasses) {
    const auto bytes = dem.read[static_cast<std::size_t>(c)];
    if (bytes == 0) continue;
    double cap = dev.read_capacity(c, threads);
    if (is_random(c)) {
      cap = std::min(cap, dev.latency_limited_read_bw(threads, mlp));
    }
    NVMS_ASSERT(cap > 0.0, "zero read capacity");
    t += static_cast<double>(bytes) / cap;
  }
  return t;
}

/// Time to service the write demand, and the aggregate drain capacity used
/// for WPQ utilization.
std::pair<double, double> write_time_and_drain(const DeviceDemand& dem,
                                               const DeviceParams& dev,
                                               double threads) {
  double t = 0.0;
  for (const PatClass c : kClasses) {
    const auto bytes = dem.write[static_cast<std::size_t>(c)];
    if (bytes == 0) continue;
    const double cap = dev.write_capacity(c, threads);
    NVMS_ASSERT(cap > 0.0, "zero write capacity");
    t += static_cast<double>(bytes) / cap;
  }
  const auto total = dem.write_total();
  const double drain = (t > 0.0)
                           ? static_cast<double>(total) / t
                           : dev.write_capacity(PatClass::kSeq, threads);
  return {t, drain};
}

}  // namespace

MultiResolution resolve_lanes(const Phase& phase,
                              const std::vector<LaneDemand>& lanes,
                              const CpuParams& cpu, double upi_bytes,
                              double upi_bw, EpochProbe* probe,
                              double epoch_t) {
  require(phase.threads >= 1, "phase must use at least one thread");
  require(phase.mlp > 0.0, "phase mlp must be positive");
  require(phase.overlap >= 0.0 && phase.overlap <= 1.0,
          "phase overlap must be in [0,1]");
  require(phase.parallel_fraction >= 0.0 && phase.parallel_fraction <= 1.0,
          "phase parallel fraction must be in [0,1]");
  require(upi_bytes == 0.0 || upi_bw > 0.0,
          "cross-socket traffic needs a positive UPI bandwidth");

  MultiResolution res;
  res.compute_time =
      cpu.compute_time(phase.flops, phase.threads, phase.parallel_fraction);

  // Memory concurrency clamps to the physical hardware-thread count:
  // logical oversubscription adds no memory parallelism.  account_counters
  // bills the same clamped count, so timing and counters agree at the
  // boundary (the compute model applies the identical clamp internally).
  const double threads_eff =
      static_cast<double>(std::min(phase.threads, cpu.max_threads()));

  struct DevState {
    const DeviceDemand* dem;
    const DeviceParams* dev;
    double rt = 0.0;     // unthrottled read time
    double wt = 0.0;     // write time
    double drain = 0.0;  // aggregate write drain capacity
    double f = 1.0;      // current read-throttle factor
    double util = 0.0;
  };
  std::vector<DevState> ds;
  ds.reserve(lanes.size());
  for (const auto& lane : lanes) {
    NVMS_ASSERT(lane.dev != nullptr, "lane without a device");
    DevState d{&lane.dem, lane.dev};
    d.rt = read_time(*d.dem, *d.dev, threads_eff, phase.mlp);
    std::tie(d.wt, d.drain) =
        write_time_and_drain(*d.dem, *d.dev, threads_eff);
    ds.push_back(d);
  }
  const double upi_time = upi_bytes > 0.0 ? upi_bytes / upi_bw : 0.0;

  auto mem_time = [&](void) {
    double t = upi_time;
    for (const auto& d : ds) {
      const double tr = (d.f > 0.0) ? d.rt / d.f : 1e300;
      // Reads and writes proceed concurrently, but share the channel
      // budget: the combined ceiling binds when both directions are hot.
      const double combined =
          static_cast<double>(d.dem->read_total() + d.dem->write_total()) /
          d.dev->combined_bw_peak;
      t = std::max(t, std::max({tr, d.wt, combined}));
    }
    return t;
  };

  // Damped fixed point on the throttle factors.
  double T = std::max(res.compute_time, mem_time());
  for (int iter = 0; iter < 64; ++iter) {
    for (auto& d : ds) {
      const double wbytes = static_cast<double>(d.dem->write_total());
      const double demand_bw = (T > 0.0) ? wbytes / T : 0.0;
      const WpqModel wpq{d.dev->wpq_entries, d.dev->wpq_seq_combining};
      d.util = wpq.utilization(demand_bw, d.drain);
      const double target_f =
          1.0 - d.dev->throttle_alpha *
                    std::pow(d.util, d.dev->throttle_gamma);
      d.f = 0.5 * d.f + 0.5 * std::max(target_f, 1e-3);
    }
    const double tm = mem_time();
    double new_T;
    if (phase.overlap >= 1.0) {
      new_T = std::max(res.compute_time, tm);
    } else {
      new_T = std::max(res.compute_time, tm) +
              (1.0 - phase.overlap) * std::min(res.compute_time, tm);
    }
    if (std::abs(new_T - T) < 1e-9 * std::max(1.0, T) && iter > 4) {
      T = new_T;
      break;
    }
    T = 0.5 * T + 0.5 * new_T;
  }

  res.time = T;
  res.lanes.resize(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const DevState& d = ds[i];
    DeviceTiming& out = res.lanes[i];
    out.read_time = d.rt;
    out.write_time = d.wt;
    out.wpq_util = d.util;
    out.throttle = d.f;
    if (T > 0.0) {
      out.read_bw = static_cast<double>(d.dem->read_total()) / T;
      out.write_bw = static_cast<double>(d.dem->write_total()) / T;
    }
    // Epoch telemetry: the converged WPQ utilization and the throttle the
    // fixed point actually applied — the internal signals behind the
    // paper's write-throttling traces (Sec. IV-C), otherwise discarded.
    if (probe != nullptr &&
        d.dem->read_total() + d.dem->write_total() > 0) {
      const char* label = lanes[i].label != nullptr ? lanes[i].label
                                                    : d.dev->name.c_str();
      probe->epoch_sample("wpq.util", label, epoch_t, d.util);
      probe->epoch_sample("throttle.read", label, epoch_t, d.f);
    }
  }
  return res;
}

PhaseResolution resolve_phase(const Phase& phase, const DeviceDemand& dram_dem,
                              const DeviceDemand& nvm_dem,
                              const DeviceParams& dram,
                              const DeviceParams& nvm, const CpuParams& cpu) {
  std::vector<LaneDemand> lanes(2);
  lanes[0].dem = dram_dem;
  lanes[0].dev = &dram;
  lanes[1].dem = nvm_dem;
  lanes[1].dev = &nvm;
  const MultiResolution multi = resolve_lanes(phase, lanes, cpu);
  PhaseResolution res;
  res.time = multi.time;
  res.compute_time = multi.compute_time;
  res.dram = multi.lanes[0];
  res.nvm = multi.lanes[1];
  return res;
}

}  // namespace nvms
