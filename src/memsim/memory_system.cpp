#include "memsim/memory_system.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace nvms {

namespace {
/// Telemetry channel labels, lane-indexed (socket*2 + device).
constexpr const char* kLaneLabels[4] = {"dram0", "nvm0", "dram1", "nvm1"};
}  // namespace

const char* to_string(NumaPolicy p) {
  switch (p) {
    case NumaPolicy::kLocalSocket:
      return "local";
    case NumaPolicy::kRemoteSocket:
      return "remote";
    case NumaPolicy::kInterleave:
      return "interleave";
  }
  return "?";
}

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kDramOnly:
      return "dram-only";
    case Mode::kCachedNvm:
      return "cached-nvm";
    case Mode::kUncachedNvm:
      return "uncached-nvm";
  }
  return "?";
}

void SystemConfig::validate() const {
  dram.validate();
  nvm.validate();
  cpu.validate();
  require(cache_line >= 64 && (cache_line & (cache_line - 1)) == 0,
          "cache_line must be a power of two >= 64");
  require(sockets == 1 || sockets == 2, "sockets must be 1 or 2");
  require(sockets == 1 || upi_bw > 0.0,
          "two-socket topology needs a positive UPI bandwidth");
  require(sockets == 2 || numa_policy == NumaPolicy::kLocalSocket,
          "non-local NUMA policies need two sockets");
  // Memory mode caches only the local socket's NVM ("DRAM on one socket
  // cannot cache accesses to NVM on another socket", Sec. II-A).
  require(mode != Mode::kCachedNvm || sockets == 1,
          "cached-NVM is modelled for the single-socket setup only");
}

SystemConfig SystemConfig::testbed(Mode mode) {
  SystemConfig cfg;
  cfg.mode = mode;
  // Per-socket capacities of the Purley testbed (96 GB DRAM, 768 GB NVM),
  // scaled by 1/1024: ratios (NVM = 8x DRAM) are preserved.
  cfg.dram = ddr4_socket_params(96 * MiB);
  cfg.nvm = optane_socket_params(768 * MiB);
  return cfg;
}

MemorySystem::MemorySystem(SystemConfig config)
    : config_(std::move(config)),
      cache_(CacheParams{config_.cache_line, config_.dram.capacity,
                         config_.cache_max_sets, config_.seed}),
      dram_effective_(config_.dram),
      nvm_effective_(config_.nvm) {
  config_.validate();
  if (config_.remote_nvm) {
    nvm_effective_.read_bw_peak *= config_.upi_bw_factor;
    nvm_effective_.write_bw_peak *= config_.upi_bw_factor;
    nvm_effective_.combined_bw_peak *= config_.upi_bw_factor;
    nvm_effective_.read_lat_seq += config_.upi_extra_latency;
    nvm_effective_.read_lat_rand += config_.upi_extra_latency;
    nvm_effective_.write_lat += config_.upi_extra_latency;
  }
  if (config_.mode == Mode::kCachedNvm) {
    // Memory mode runs DRAM as a hardware cache: tag checks and fill
    // metadata cost effective bandwidth even at full hit rate ([21], and
    // the paper's Fig. 4 analysis).
    dram_effective_.read_bw_peak *= config_.cache_dram_derate;
    dram_effective_.write_bw_peak *= config_.cache_dram_derate;
    dram_effective_.combined_bw_peak *= config_.cache_dram_derate;
  }
  // Socket-1 devices: same media, plus the UPI hop latency and the
  // cross-socket coherence/directory bandwidth derate.
  dram_remote_ = dram_effective_;
  nvm_remote_ = nvm_effective_;
  for (DeviceParams* d : {&dram_remote_, &nvm_remote_}) {
    d->read_lat_seq += config_.upi_extra_latency;
    d->read_lat_rand += config_.upi_extra_latency;
    d->write_lat += config_.upi_extra_latency;
    d->read_bw_peak *= config_.upi_bw_factor;
    d->write_bw_peak *= config_.upi_bw_factor;
    d->combined_bw_peak *= config_.upi_bw_factor;
  }
  // Hot-path scratch: sized once, reused by every submit().
  lane_dem_.resize(4);
  lanes_.resize(static_cast<std::size_t>(config_.sockets) * 2);
  lanes_[0] = {DeviceDemand{}, &dram_effective_, kLaneLabels[0]};
  lanes_[1] = {DeviceDemand{}, &nvm_effective_, kLaneLabels[1]};
  if (config_.sockets == 2) {
    lanes_[2] = {DeviceDemand{}, &dram_remote_, kLaneLabels[2]};
    lanes_[3] = {DeviceDemand{}, &nvm_remote_, kLaneLabels[3]};
  }
}

BufferId MemorySystem::register_buffer(std::string name, std::uint64_t bytes,
                                       Placement placement) {
  require(bytes > 0, "buffer '" + name + "' must have positive size");
  BufferInfo info;
  info.id = static_cast<BufferId>(buffers_.size());
  info.name = std::move(name);
  info.bytes = bytes;
  info.placement = placement;
  switch (config_.numa_policy) {
    case NumaPolicy::kLocalSocket:
      info.numa = 0;
      break;
    case NumaPolicy::kRemoteSocket:
      info.numa = 1;
      break;
    case NumaPolicy::kInterleave:
      info.numa = -1;
      break;
  }
  // Bump allocation, line-aligned, never reused: stale cache tags can
  // never alias a new buffer, and buffers pack contiguously into the
  // direct-mapped cache (conflict misses appear exactly when the live
  // footprint exceeds the cache capacity, as on a freshly-booted system
  // with near-contiguous physical pages).
  const std::uint64_t align = config_.cache_line;
  info.base = next_base_;
  next_base_ += (bytes + align - 1) / align * align;
  info.live = true;
  footprint_ += bytes;
  buffers_.push_back(info);
  traffic_.push_back({});
  try {
    check_capacity();
  } catch (...) {
    // Transactional: a rejected allocation leaves no trace.
    buffers_.pop_back();
    traffic_.pop_back();
    footprint_ -= bytes;
    next_base_ = info.base;
    throw;
  }
  peak_footprint_ = std::max(peak_footprint_, footprint_);
  return info.id;
}

void MemorySystem::release_buffer(BufferId id) {
  require(id < buffers_.size(), "unknown buffer id");
  BufferInfo& b = buffers_[id];
  require(b.live, "double release of buffer " + b.name);
  b.live = false;
  footprint_ -= b.bytes;
}

const BufferInfo& MemorySystem::buffer(BufferId id) const {
  require(id < buffers_.size(), "unknown buffer id");
  return buffers_[id];
}

void MemorySystem::set_placement(BufferId id, Placement placement) {
  require(id < buffers_.size(), "unknown buffer id");
  const Placement old = buffers_[id].placement;
  buffers_[id].placement = placement;
  try {
    check_capacity();
  } catch (...) {
    buffers_[id].placement = old;
    throw;
  }
}

std::uint64_t MemorySystem::dram_resident() const {
  std::uint64_t total = 0;
  for (const auto& b : buffers_) {
    if (!b.live) continue;
    switch (config_.mode) {
      case Mode::kDramOnly:
        total += b.bytes;
        break;
      case Mode::kCachedNvm:
        break;  // DRAM is a cache, not a residence
      case Mode::kUncachedNvm:
        if (b.placement == Placement::kDram) total += b.bytes;
        break;
    }
  }
  return total;
}

void MemorySystem::check_capacity() const {
  if (!config_.strict_capacity) return;
  // Per-socket accounting; interleaved buffers split evenly.
  std::uint64_t dram_bytes[2] = {0, 0};
  std::uint64_t nvm_bytes[2] = {0, 0};
  for (const auto& b : buffers_) {
    if (!b.live) continue;
    std::uint64_t share[2] = {0, 0};
    if (b.numa < 0) {
      share[0] = b.bytes / 2;
      share[1] = b.bytes - share[0];
    } else {
      share[b.numa] = b.bytes;
    }
    for (int sck = 0; sck < 2; ++sck) {
      if (share[sck] == 0) continue;
      switch (config_.mode) {
        case Mode::kDramOnly:
          dram_bytes[sck] += share[sck];
          break;
        case Mode::kCachedNvm:
          nvm_bytes[sck] += share[sck];
          break;
        case Mode::kUncachedNvm:
          if (b.placement == Placement::kDram)
            dram_bytes[sck] += share[sck];
          else
            nvm_bytes[sck] += share[sck];
          break;
      }
    }
  }
  for (int sck = 0; sck < config_.sockets; ++sck) {
    if (dram_bytes[sck] > config_.dram.capacity)
      throw CapacityError("DRAM capacity exceeded on socket " +
                          std::to_string(sck) + ": " +
                          format_bytes(dram_bytes[sck]) + " > " +
                          format_bytes(config_.dram.capacity));
    if (nvm_bytes[sck] > config_.nvm.capacity)
      throw CapacityError("NVM capacity exceeded on socket " +
                          std::to_string(sck) + ": " +
                          format_bytes(nvm_bytes[sck]) + " > " +
                          format_bytes(config_.nvm.capacity));
  }
}

void MemorySystem::route_stream(const StreamDesc& s,
                                std::vector<DeviceDemand>& lanes,
                                double& upi_bytes) {
  const BufferInfo& b = buffer(s.buffer);
  require(b.live, "stream references released buffer " + b.name);
  traffic_[s.buffer].read_bytes += (s.dir == Dir::kRead) ? s.bytes : 0;
  traffic_[s.buffer].write_bytes += (s.dir == Dir::kWrite) ? s.bytes : 0;

  // Socket shares of this stream (interleaved buffers split evenly).
  std::uint64_t share[2] = {0, 0};
  if (b.numa < 0) {
    share[0] = s.bytes / 2;
    share[1] = s.bytes - share[0];
  } else {
    share[b.numa] = s.bytes;
  }

  for (int sck = 0; sck < 2; ++sck) {
    if (share[sck] == 0) continue;
    if (sck != 0) upi_bytes += static_cast<double>(share[sck]);
    switch (config_.mode) {
      case Mode::kDramOnly:
        lanes[lane_of(sck, true)].add(s.pattern, s.dir, share[sck],
                                      s.granule);
        break;
      case Mode::kUncachedNvm: {
        const bool in_dram = b.placement == Placement::kDram;
        lanes[lane_of(sck, in_dram)].add(s.pattern, s.dir, share[sck],
                                         s.granule);
        break;
      }
      case Mode::kCachedNvm:
        // Memory mode routes through the batched path in submit(), never
        // through the per-stream router.
        NVMS_ASSERT(false, "cached-NVM streams route via walk_batch()");
        break;
    }
  }
}

void MemorySystem::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  last_phase_span_ = Tracer::kNone;
  cache_.set_probe(telemetry != nullptr ? &telemetry->metrics() : nullptr);
  if (telemetry != nullptr) {
    MetricsRegistry& m = telemetry->metrics();
    phase_hist_ = m.histogram("phase.duration_s");
    read_bytes_ctr_ = m.counter("app.read_bytes");
    write_bytes_ctr_ = m.counter("app.write_bytes");
  } else {
    phase_hist_ = read_bytes_ctr_ = write_bytes_ctr_ = MetricId{};
  }
}

PhaseResolution MemorySystem::submit(const Phase& phase) {
  if (observer_) observer_(phase);
  const double t0v = clock_;
  std::size_t sp_phase = Tracer::kNone;
  std::size_t sp_resolve = Tracer::kNone;
  EpochProbe* probe = nullptr;
  if (telemetry_ != nullptr) {
    sp_phase = telemetry_->tracer().begin(phase.name, "phase", t0v);
    sp_resolve = telemetry_->tracer().begin("resolve", "resolve", t0v);
    cache_.set_epoch_time(t0v);
    probe = &telemetry_->metrics();
  }
  // Lanes: [dram0, nvm0] plus [dram1, nvm1] on two-socket systems.  The
  // demand scratch and the LaneDemand views are members reused across
  // submits — the hot path performs no heap allocation.
  std::vector<DeviceDemand>& lane_dem = lane_dem_;
  for (auto& d : lane_dem) d = DeviceDemand{};
  double upi_bytes = 0.0;
  if (config_.mode == Mode::kCachedNvm) {
    // Batched Memory-mode routing: collect the whole epoch's accesses,
    // run them through the cache in one walk_batch() call (byte-identical
    // to per-stream access(), see DramCache), then fold the outcomes into
    // the lane demands.  Cached-NVM is validated single-socket with local
    // placement, so every stream routes entirely to socket 0.
    access_reqs_.clear();
    for (const auto& s : phase.streams) {
      const BufferInfo& b = buffer(s.buffer);
      require(b.live, "stream references released buffer " + b.name);
      traffic_[s.buffer].read_bytes += (s.dir == Dir::kRead) ? s.bytes : 0;
      traffic_[s.buffer].write_bytes += (s.dir == Dir::kWrite) ? s.bytes : 0;
      access_reqs_.push_back({s, b.base, b.bytes});
    }
    outcomes_.resize(access_reqs_.size());
    cache_.walk_batch(access_reqs_.data(), access_reqs_.size(),
                      outcomes_.data());
    DeviceDemand& dram_dem = lane_dem[lane_of(0, true)];
    DeviceDemand& nvm_dem = lane_dem[lane_of(0, false)];
    for (std::size_t i = 0; i < access_reqs_.size(); ++i) {
      const StreamDesc& s = access_reqs_[i].stream;
      const CacheOutcome& out = outcomes_[i];
      // DRAM side keeps the app's spatial pattern; NVM side moves whole
      // cache lines (>= media granularity), i.e. large random granules.
      dram_dem.add(s.pattern, Dir::kRead, out.dram_read, s.granule);
      dram_dem.add(s.pattern, Dir::kWrite, out.dram_write, s.granule);
      // Streaming refills are short sequential bursts on the media;
      // conflict refetches are isolated scattered line reads.
      nvm_dem.add(Pattern::kStrided, Dir::kRead, out.nvm_read);
      nvm_dem.add(Pattern::kRandom, Dir::kRead, out.nvm_read_scattered,
                  config_.cache_line);
      // Whole-line writebacks combine in the WPQ into sequential bursts.
      nvm_dem.add(Pattern::kSequential, Dir::kWrite, out.nvm_write);
    }
  } else {
    for (const auto& s : phase.streams) route_stream(s, lane_dem, upi_bytes);
  }

  // Refresh the whole lane view, including the device pointers: they
  // reference our own *_effective_/*_remote_ members, so re-deriving them
  // here keeps submit() correct even if the system was moved (e.g. a
  // factory returning MemorySystem by value through a std::function).
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i].dem = lane_dem[i];
    lanes_[i].dev = &lane_device(i);
    lanes_[i].label = kLaneLabels[i];
  }
  if (config_.sockets != 2) {
    NVMS_ASSERT(lane_dem[2].read_total() + lane_dem[2].write_total() +
                        lane_dem[3].read_total() +
                        lane_dem[3].write_total() ==
                    0,
                "remote traffic on a single-socket system");
  }
  if (resolve_cache_ != nullptr) {
    resolve_cache_->resolve_into(phase, lanes_, config_.cpu, upi_bytes,
                                 config_.upi_bw, probe, t0v,
                                 &resolve_scratch_, &key_scratch_,
                                 &multi_scratch_);
  } else {
    resolve_lanes_into(phase, lanes_, config_.cpu, upi_bytes,
                       config_.upi_bw, probe, t0v, &resolve_scratch_,
                       &multi_scratch_);
  }
  const MultiResolution& multi = multi_scratch_;

  PhaseResolution res;
  res.time = multi.time;
  res.compute_time = multi.compute_time;
  res.dram = multi.lanes[0];
  res.nvm = multi.lanes[1];
  if (config_.sockets == 2) {
    // Trace/report series aggregate both sockets per device class.
    res.dram.read_bw += multi.lanes[2].read_bw;
    res.dram.write_bw += multi.lanes[2].write_bw;
    res.nvm.read_bw += multi.lanes[3].read_bw;
    res.nvm.write_bw += multi.lanes[3].write_bw;
    // WPQ/throttle context reports the worst write pressure across the
    // sockets per device class — the max utilization and the minimum
    // (most throttled) read multiplier — so a remote-heavy write phase is
    // not under-reported as local-socket idle (RunRecorder attaches these
    // to every counter sample).
    res.dram.wpq_util = std::max(res.dram.wpq_util, multi.lanes[2].wpq_util);
    res.dram.throttle = std::min(res.dram.throttle, multi.lanes[2].throttle);
    res.nvm.wpq_util = std::max(res.nvm.wpq_util, multi.lanes[3].wpq_util);
    res.nvm.throttle = std::min(res.nvm.throttle, multi.lanes[3].throttle);
  }

  const double t0 = clock_;
  const double t1 = clock_ + res.time;
  if (res.time > 0.0) {
    traces_.dram_read.add_segment(t0, t1, res.dram.read_bw);
    traces_.dram_write.add_segment(t0, t1, res.dram.write_bw);
    traces_.nvm_read.add_segment(t0, t1, res.nvm.read_bw);
    traces_.nvm_write.add_segment(t0, t1, res.nvm.write_bw);
  }
  traces_.phases.push_back({phase.name, t0, t1});
  account_counters(phase, res.time, res.compute_time, lane_dem);
  clock_ = t1;

  if (telemetry_ != nullptr) {
    Tracer& tr = telemetry_->tracer();
    MetricsRegistry& mr = telemetry_->metrics();
    // Device spans: each active lane busy for the time it actually moved
    // bytes (<= the phase duration), nested under the resolve span.
    for (std::size_t i = 0; i < multi.lanes.size(); ++i) {
      const std::uint64_t bytes =
          lane_dem[i].read_total() + lane_dem[i].write_total();
      if (bytes == 0) continue;
      const DeviceTiming& lt = multi.lanes[i];
      const double busy = std::min(
          res.time, std::max(lt.read_time / std::max(lt.throttle, 1e-3),
                             lt.write_time));
      const std::size_t sp_dev = tr.begin(kLaneLabels[i], "device", t0);
      tr.annotate(sp_dev, "read_gbs", lt.read_bw / GB);
      tr.annotate(sp_dev, "write_gbs", lt.write_bw / GB);
      tr.annotate(sp_dev, "wpq_util", lt.wpq_util);
      tr.annotate(sp_dev, "throttle", lt.throttle);
      tr.end(sp_dev, t0 + busy);
      // Per-channel bandwidth epoch stream (GB/s over this phase).
      mr.epoch_sample("bw.read_gbs", kLaneLabels[i], t0, lt.read_bw / GB);
      mr.epoch_sample("bw.write_gbs", kLaneLabels[i], t0,
                      lt.write_bw / GB);
    }
    tr.end(sp_resolve, t1);
    mr.observe(phase_hist_, res.time);
    mr.add(read_bytes_ctr_, static_cast<double>(phase.read_bytes()));
    mr.add(write_bytes_ctr_, static_cast<double>(phase.write_bytes()));
    tr.end(sp_phase, t1);
    last_phase_span_ = sp_phase;
  }
  return res;
}

void MemorySystem::advance(const std::string& name, double seconds) {
  require(seconds >= 0.0, "advance: negative duration");
  const double t0 = clock_;
  const double t1 = clock_ + seconds;
  if (telemetry_ != nullptr) {
    // Time outside the memory system still shows on the trace timeline.
    const std::size_t sp = telemetry_->tracer().begin(name, "advance", t0);
    telemetry_->tracer().end(sp, t1);
  }
  if (seconds > 0.0) {
    traces_.dram_read.add_segment(t0, t1, 0.0);
    traces_.dram_write.add_segment(t0, t1, 0.0);
    traces_.nvm_read.add_segment(t0, t1, 0.0);
    traces_.nvm_write.add_segment(t0, t1, 0.0);
  }
  traces_.phases.push_back({name, t0, t1});
  clock_ = t1;
}

void MemorySystem::account_counters(const Phase& phase, double time,
                                    double compute_time,
                                    const std::vector<DeviceDemand>& lanes) {
  // Instruction mix: ~1.25 retired instructions per flop (FMA + address
  // arithmetic) plus one load/store micro-op per 8 bytes moved by the app.
  const double app_bytes = static_cast<double>(phase.total_bytes());
  const double insns = phase.flops * 1.25 + app_bytes / 8.0;
  const int threads_used =
      std::min(phase.threads, config_.cpu.max_threads());
  const double cycles =
      time * config_.cpu.freq * static_cast<double>(threads_used);
  const double mem_fraction =
      time > 0.0 ? std::clamp((time - compute_time) / time, 0.0, 1.0) : 0.0;
  double read_bytes = 0.0;
  double write_bytes = 0.0;
  for (const auto& lane : lanes) {
    read_bytes += static_cast<double>(lane.read_total());
    write_bytes += static_cast<double>(lane.write_total());
  }
  const double read_share =
      (read_bytes + write_bytes) > 0.0
          ? read_bytes / (read_bytes + write_bytes)
          : 0.0;

  counters_.instructions += insns;
  counters_.cycles_active += cycles;
  counters_.stall_cycles += 0.9 * mem_fraction * cycles;
  counters_.offcore_wait += 0.9 * mem_fraction * cycles * read_share;
  counters_.imc_reads += read_bytes / 64.0;
  counters_.imc_writes += write_bytes / 64.0;
}

const DeviceParams& MemorySystem::lane_device(std::size_t lane) const {
  switch (lane) {
    case 0:
      return dram_effective_;
    case 1:
      return nvm_effective_;
    case 2:
      return dram_remote_;
    case 3:
      return nvm_remote_;
    default:
      throw ConfigError("lane_device: lane out of range");
  }
}

const BufferTraffic& MemorySystem::traffic(BufferId id) const {
  require(id < traffic_.size(), "unknown buffer id");
  return traffic_[id];
}

void MemorySystem::reset_stats(bool drop_cache) {
  clock_ = 0.0;
  traces_.clear();
  counters_ = HwCounters{};
  for (auto& t : traffic_) t = BufferTraffic{};
  if (drop_cache) cache_.reset();
}

}  // namespace nvms
