// Bandwidth-vs-concurrency scaling curves.
//
// The central empirical fact behind the paper's "concurrency contention"
// findings (Sec. IV-D) is that Optane write bandwidth *peaks at a small
// number of writer threads and then declines* (WPQ contention / reduced
// write combining), while read bandwidth keeps scaling to a much higher
// thread count.  We model each as a piecewise-linear curve mapping thread
// count -> fraction of device peak bandwidth.
#pragma once

#include <utility>
#include <vector>

namespace nvms {

class ScalingCurve {
 public:
  /// Points are (threads, fraction-of-peak); must be sorted by threads and
  /// non-empty.  Evaluation clamps outside the covered range.
  explicit ScalingCurve(std::vector<std::pair<double, double>> points);

  /// Fraction of peak bandwidth achievable at `threads` concurrent issuers.
  double at(double threads) const;

  /// Thread count with the maximum fraction (the curve's sweet spot).
  double argmax() const;

  /// The defining (threads, fraction) points (resolve-cache key hashing).
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace nvms
