// Phase-resolution memoization: the simulator's result cache.
//
// resolve_lanes() is a pure function of its normalized inputs — the
// per-lane byte demands, the phase's timing parameters, the effective
// device/CPU parameters and the UPI constraint.  The paper's prediction
// methodology (Sec. V) leans on exactly this purity (a phase's behaviour
// is determined by its demand profile), and HPC sweeps submit thousands
// of near-identical phases: every solver iteration re-resolves the same
// fixed point.  The ResolveCache memoizes those resolutions so a sweep
// pays the damped fixed point once per distinct phase shape.
//
// The same object also carries the DRAM-cache stream memo (StreamMemo):
// DramCache::access is deterministic in the full access history since
// construction, and a sweep's thread dimension never changes that history,
// so Memory-mode cells re-walk identical sampler trajectories.  DramCache
// keys each access by a digest of its history (see DramCache::set_memo)
// and skips the walk on a hit — this is where the bulk of a Memory-mode
// sweep's wall clock goes.
//
// Byte-identical-replay invariant: a cache hit must be observationally
// indistinguishable from recomputing.  The cached value therefore carries
// (a) the full MultiResolution and (b) the epoch-telemetry samples the
// resolver emitted while computing it, which are replayed into the
// caller's EpochProbe re-stamped at the *current* virtual time.  CSV,
// trace and metrics exports are byte-identical between cache-off and
// cache-on runs at any worker count (asserted by tests/test_resolve_cache).
//
// Concurrency: the cache is mutex-striped over N shards (default: one per
// executor worker) keyed by the upper hash bits, so one shared instance
// serves the whole experiment grid with minimal contention.  Values are
// pure, so racing inserts of the same key are idempotent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "memsim/cpu.hpp"
#include "memsim/dram_cache.hpp"
#include "memsim/resolve.hpp"
#include "obs/metrics.hpp"
#include "simcore/thread_pool.hpp"

namespace nvms {

/// How phase-resolution memoization is applied to a run or sweep.
///   * kOff    — always run the fixed point (the baseline).
///   * kPerRun — every experiment gets its own private cache (reuse
///               across a run's iterations, nothing shared between tasks).
///   * kShared — one mutex-striped cache serves the whole experiment grid.
enum class ResolveCacheMode { kOff, kPerRun, kShared };

const char* to_string(ResolveCacheMode m);
/// Parse "off" | "run" | "shared"; nullopt on anything else.
std::optional<ResolveCacheMode> parse_resolve_cache_mode(
    const std::string& s);

/// One epoch-telemetry sample captured while resolving a miss, replayed
/// verbatim (re-stamped at the hit's virtual time) on every later hit.
struct ResolveSample {
  std::string name;    ///< metric name ("wpq.util", "throttle.read")
  std::string device;  ///< channel label ("nvm0", ...)
  double value = 0.0;
};

/// Memoized resolution: the fixed-point result plus the samples needed to
/// keep telemetry byte-identical on replay.
struct CachedResolution {
  MultiResolution multi;
  std::vector<ResolveSample> samples;
};

/// Normalized cache key: a flat word sequence hashed FNV-1a style.  Equal
/// word sequences are equal keys; the full sequence is kept so collisions
/// degrade to an equality check, never to a wrong result.
class ResolveKey {
 public:
  void add_word(std::uint64_t w) {
    words_.push_back(w);
    hash_ = (hash_ ^ w) * kFnvPrime;
  }
  void add_double(double v);  ///< bit pattern; -0.0 normalized to +0.0

  /// Reset to the empty key, keeping the word storage's capacity — lets a
  /// hot loop rebuild keys allocation-free.
  void clear() {
    words_.clear();
    hash_ = kFnvOffset;
  }

  std::uint64_t hash() const { return hash_; }
  const std::vector<std::uint64_t>& words() const { return words_; }

  bool operator==(const ResolveKey& o) const { return words_ == o.words_; }

 private:
  // FNV-1a offset basis / prime (64-bit), folding whole words at a time.
  static constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
  std::vector<std::uint64_t> words_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Build the normalized key for one resolve_lanes() call.  The key covers
/// exactly the inputs the resolver reads — per-lane demands, the lane
/// labels (cosmetic, but replayed into telemetry), every DeviceParams
/// field the capacity/latency/WPQ models consult, the phase timing fields
/// (threads clamped to cpu.max_threads(), matching the resolver), the CPU
/// compute model and the UPI constraint.  Phase `name` and `streams` are
/// deliberately excluded: they never reach the resolver.
ResolveKey make_resolve_key(const Phase& phase,
                            const std::vector<LaneDemand>& lanes,
                            const CpuParams& cpu, double upi_bytes,
                            double upi_bw);

/// Allocation-free variant: clears `*out` (capacity kept) and appends the
/// same word sequence.  make_resolve_key() is a thin wrapper.
void make_resolve_key_into(const Phase& phase,
                           const std::vector<LaneDemand>& lanes,
                           const CpuParams& cpu, double upi_bytes,
                           double upi_bw, ResolveKey* out);

/// Monotonic cache statistics snapshot.
struct ResolveCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Memoized DramCache stream walk (see DramCache::set_memo): the traffic
/// split of one access() plus the internal signals needed to replay its
/// epoch-telemetry samples byte-identically on a later hit.
struct CachedStreamOutcome {
  CacheOutcome outcome;
  double occupancy = 0.0;  ///< post-access occupancy (probe replay)
  double conflict = 0.0;   ///< conflict-miss fraction applied (probe replay)
  bool simulated = true;   ///< false: the walk visited nothing, no samples
};

/// Mutex-striped memo table, ResolveKey -> Value, with hit/miss/eviction
/// accounting.  `shards` = 0 picks one shard per default executor worker.
/// The entry budget is split evenly across shards; each shard evicts its
/// oldest insertion (ring replacement) once full.  Values must be pure
/// functions of their key, so racing inserts are idempotent.
template <typename Value>
class ShardedMemo {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1u << 16;

  explicit ShardedMemo(std::size_t shards = 0,
                       std::size_t max_entries = kDefaultMaxEntries) {
    if (shards == 0) {
      shards =
          static_cast<std::size_t>(std::max(1, ThreadPool::default_jobs()));
    }
    shards_ = std::vector<Shard>(shards);
    max_entries_per_shard_ = std::max<std::size_t>(1, max_entries / shards);
  }

  bool lookup(const ResolveKey& key, Value* out) const {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return false;
    }
    ++s.hits;
    if (out != nullptr) *out = it->second;
    return true;
  }

  /// Hit-callback lookup: on a hit, invokes `fn(value)` under the shard
  /// lock instead of copying the value out.  Lets a caller with reusable
  /// scratch copy only what it needs (e.g. into preallocated buffers)
  /// without paying a full Value copy per hit.  `fn` must not re-enter the
  /// memo (the shard mutex is held).
  template <typename Fn>
  bool lookup_with(const ResolveKey& key, Fn&& fn) const {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return false;
    }
    ++s.hits;
    fn(it->second);
    return true;
  }

  void insert(const ResolveKey& key, Value value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto [it, inserted] = s.map.try_emplace(key, std::move(value));
    (void)it;
    if (!inserted) return;  // racing miss already resolved this key
    if (s.map.size() > max_entries_per_shard_) {
      // Ring replacement: evict the shard's oldest insertion and reuse its
      // ring slot for the newcomer.
      s.map.erase(s.ring[s.ring_next]);
      s.ring[s.ring_next] = key;
      s.ring_next = (s.ring_next + 1) % s.ring.size();
      ++s.evictions;
    } else {
      s.ring.push_back(key);
    }
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// Snapshot of the cache statistics.  Counters live inside their shard
  /// and are read under the same mutex that orders the map operations, so
  /// each shard's contribution is internally consistent: within a shard
  /// the published gauges always satisfy `entries + evictions <= misses`
  /// and `hits + misses == lookups`.  (A previous revision kept global
  /// relaxed atomics next to mutexed maps; a publish() racing a sweep
  /// could then observe an entry whose miss was not counted yet — stale,
  /// mutually inconsistent gauges.  Summing per-shard-consistent snapshots
  /// preserves the invariants, since they are closed under addition.)
  ResolveCacheStats stats() const {
    ResolveCacheStats out;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.entries += s.map.size();
    }
    return out;
  }

  /// Publish the current statistics into a MetricsRegistry as gauges:
  /// <prefix>.hits / .misses / .evictions / .entries / .hit_rate.
  /// Idempotent (gauges, not counters), so callers can re-publish.
  /// Deliberately not wired into per-task telemetry: with a shared cache
  /// the hit pattern depends on worker interleaving, and per-task exports
  /// must stay byte-identical for any jobs count.
  void publish(MetricsRegistry& m, const std::string& prefix) const {
    const ResolveCacheStats s = stats();
    m.set(m.gauge(prefix + ".hits"), static_cast<double>(s.hits));
    m.set(m.gauge(prefix + ".misses"), static_cast<double>(s.misses));
    m.set(m.gauge(prefix + ".evictions"), static_cast<double>(s.evictions));
    m.set(m.gauge(prefix + ".entries"), static_cast<double>(s.entries));
    m.set(m.gauge(prefix + ".hit_rate"), s.hit_rate());
  }

  /// Drop every entry (statistics are kept).
  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
      s.ring.clear();
      s.ring_next = 0;
    }
  }

 private:
  struct KeyHash {
    std::size_t operator()(const ResolveKey& k) const {
      return static_cast<std::size_t>(k.hash());
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ResolveKey, Value, KeyHash> map;
    /// Insertion ring for eviction order.
    std::vector<ResolveKey> ring;
    std::size_t ring_next = 0;
    /// Statistics, guarded by `mu` like the map they describe (see
    /// stats() for why they are not free-standing atomics).
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const ResolveKey& key) const {
    // The map already consumes the low hash bits; stripe on the high ones.
    return shards_[(key.hash() >> 48) % shards_.size()];
  }

  mutable std::vector<Shard> shards_;
  std::size_t max_entries_per_shard_ = 1;
};

/// The one cache object plumbed through executor/sweep/CLI: the phase-
/// resolution memo (this class) plus the DRAM-cache stream memo served to
/// every MemorySystem's DramCache (streams()).
class ResolveCache : public ShardedMemo<CachedResolution> {
 public:
  explicit ResolveCache(std::size_t shards = 0,
                        std::size_t max_entries = kDefaultMaxEntries)
      : ShardedMemo(shards, max_entries), streams_(shards, max_entries) {}

  /// Memoized drop-in for resolve_lanes(): on a miss, runs the fixed
  /// point (recording its epoch samples) and caches the result; on a hit,
  /// replays the cached samples into `probe` stamped at `epoch_t` and
  /// returns the cached resolution.  Bit-identical to calling
  /// resolve_lanes() directly, including the telemetry stream.
  MultiResolution resolve(const Phase& phase,
                          const std::vector<LaneDemand>& lanes,
                          const CpuParams& cpu, double upi_bytes,
                          double upi_bw, EpochProbe* probe, double epoch_t);

  /// Allocation-free variant for the epoch hot path: the key is rebuilt
  /// into `*key` (capacity reused), a hit copies the cached resolution
  /// into `out->lanes`' existing storage under the shard lock, and a miss
  /// runs the SoA fixed point on `*scratch` via resolve_lanes_into().
  /// Same results and telemetry stream as resolve(), byte for byte.
  void resolve_into(const Phase& phase, const std::vector<LaneDemand>& lanes,
                    const CpuParams& cpu, double upi_bytes, double upi_bw,
                    EpochProbe* probe, double epoch_t,
                    ResolveScratch* scratch, ResolveKey* key,
                    MultiResolution* out);

  StreamMemo& streams() { return streams_; }
  const StreamMemo& streams() const { return streams_; }
  /// Statistics of the stream memo (phase-resolution stats: stats()).
  ResolveCacheStats stream_stats() const { return streams_.stats(); }

  /// Publish both memos' statistics as gauges (resolve_cache.* and
  /// stream_memo.*).
  void publish(MetricsRegistry& m) const {
    ShardedMemo<CachedResolution>::publish(m, "resolve_cache");
    streams_.publish(m, "stream_memo");
  }

  /// Drop every entry of both memos (statistics are kept).
  void clear() {
    ShardedMemo<CachedResolution>::clear();
    streams_.clear();
  }

 private:
  StreamMemo streams_;
};

}  // namespace nvms
