// CPU compute-time model: Amdahl scaling over physical cores with a
// diminishing return for hyperthreads, matching the paper's 24-core (48 HT)
// per-socket Cascade Lake testbed.
#pragma once

namespace nvms {

struct CpuParams {
  int cores = 24;        ///< physical cores per socket
  int smt = 2;           ///< hardware threads per core
  double freq = 2.4e9;   ///< Hz
  double flops_per_cycle = 8.0;  ///< per core, sustained (not peak AVX-512)
  double ht_yield = 0.3;         ///< extra throughput of the 2nd HW thread

  int max_threads() const { return cores * smt; }

  /// Effective core-equivalents at `threads` software threads.
  double core_equivalents(int threads) const;

  /// Time to execute `flops` useful flops at `threads` with Amdahl
  /// parallel fraction `pfrac`.
  double compute_time(double flops, int threads, double pfrac) const;

  void validate() const;
};

}  // namespace nvms
