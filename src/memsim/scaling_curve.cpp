#include "memsim/scaling_curve.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace nvms {

ScalingCurve::ScalingCurve(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  require(!points_.empty(), "scaling curve needs at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    require(points_[i].first > points_[i - 1].first,
            "scaling curve points must be strictly increasing in threads");
  }
  for (const auto& [t, f] : points_) {
    require(t >= 0.0 && f >= 0.0, "scaling curve points must be nonnegative");
  }
}

double ScalingCurve::at(double threads) const {
  if (threads <= points_.front().first) return points_.front().second;
  if (threads >= points_.back().first) return points_.back().second;
  // binary search for the bracketing interval
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), threads,
      [](double t, const std::pair<double, double>& p) { return t < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double frac = (threads - lo.first) / (hi.first - lo.first);
  return lo.second + frac * (hi.second - lo.second);
}

double ScalingCurve::argmax() const {
  const auto it = std::max_element(
      points_.begin(), points_.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return it->first;
}

}  // namespace nvms
