#include "memsim/dram_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "memsim/resolve_cache.hpp"
#include "simcore/error.hpp"

namespace nvms {

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

}  // namespace

void CacheParams::validate() const {
  require(line >= 64 && (line & (line - 1)) == 0,
          "cache line must be a power of two >= 64");
  require(capacity >= line, "cache capacity smaller than one line");
  require(max_sets > 0, "cache max_sets must be positive");
  require(conflict_knee >= 0.0 && conflict_knee <= 1.0,
          "conflict_knee must be in [0,1]");
  require(conflict_max >= 0.0 && conflict_max <= 1.0,
          "conflict_max must be in [0,1]");
}

double CacheParams::conflict_rate(double occupancy) const {
  if (occupancy <= conflict_knee) return 0.0;
  const double x =
      (occupancy - conflict_knee) / std::max(1.0 - conflict_knee, 1e-9);
  const double clamped = std::min(x, 1.0);
  return conflict_max * clamped * clamped;
}

CacheOutcome& CacheOutcome::operator+=(const CacheOutcome& o) {
  dram_read += o.dram_read;
  dram_write += o.dram_write;
  nvm_read += o.nvm_read;
  nvm_read_scattered += o.nvm_read_scattered;
  nvm_write += o.nvm_write;
  hits += o.hits;
  misses += o.misses;
  return *this;
}

DramCache::DramCache(const CacheParams& params)
    : params_(params), rng_(params.seed) {
  params_.validate();
  sets_ = params_.capacity / params_.line;
  sample_mod_ = 1;
  // Grow the sampling stride only while it divides the set count: the
  // snap/clamp arithmetic in access() needs (line % sets_) % sample_mod_
  // == line % sample_mod_ to hold uniformly.
  while (sets_ / sample_mod_ > params_.max_sets &&
         sets_ % (sample_mod_ * 2) == 0) {
    sample_mod_ *= 2;
  }
  sample_shift_ = 0;
  while ((1ull << sample_shift_) < sample_mod_) ++sample_shift_;
  sets_mod_.init(sets_);
  tags_.assign(sets_ / sample_mod_, kEmpty);
  dirty_.assign(tags_.size(), 0);
  // Root of the history digest: everything besides the access sequence
  // that the walk outcomes depend on.
  chain0_.fold(params_.line);
  chain0_.fold(params_.capacity);
  chain0_.fold(params_.max_sets);
  chain0_.fold(params_.seed);
  chain0_.fold(double_bits(params_.conflict_knee));
  chain0_.fold(double_bits(params_.conflict_max));
  chain_ = chain0_;
}

void DramCache::reset() {
  // The RNG deliberately keeps its state across reset(), so the real
  // trajectory must be caught up first (skipped walks advance the RNG).
  catch_up();
  std::fill(tags_.begin(), tags_.end(), kEmpty);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  valid_ = 0;
  chain_.fold(kResetMarker);
}

void DramCache::catch_up() {
  if (pending_.empty()) return;
  // Replay the walks that memo hits skipped, in order: the walk is
  // deterministic, so this rebuilds exactly the tag/dirty/RNG state a
  // memo-less run would hold here.  Outcomes are already known; discard.
  // The replay runs through the same batched walk kernel as a live miss,
  // out of a member buffer so a long hit run followed by a miss burst
  // catches up without allocating.
  replay_scratch_.clear();
  replay_scratch_.swap(pending_);
  for (const auto& p : replay_scratch_) (void)walk(p.stream, p.base, p.size);
}

void DramCache::fold_access(const StreamDesc& stream, std::uint64_t base,
                            std::uint64_t size) {
  chain_.fold((static_cast<std::uint64_t>(stream.pattern) << 32) |
              (static_cast<std::uint64_t>(stream.dir) << 16) |
              static_cast<std::uint64_t>(stream.reuse));
  chain_.fold(stream.bytes);
  chain_.fold(stream.granule);
  chain_.fold(stream.reuse_block);
  chain_.fold(base);
  chain_.fold(size);
}

double DramCache::occupancy() const {
  return tags_.empty()
             ? 0.0
             : static_cast<double>(valid_) / static_cast<double>(tags_.size());
}

CacheOutcome DramCache::touch(std::uint64_t line_addr, bool is_write) {
  CacheOutcome out;
  const std::uint64_t set = line_addr % sets_;
  NVMS_ASSERT(set % sample_mod_ == 0, "touch on unsampled set");
  const std::uint64_t slot = set / sample_mod_;
  const std::uint64_t L = params_.line;
  if (tags_[slot] == line_addr) {
    out.hits = 1;
    if (is_write) {
      dirty_[slot] = 1;
      out.dram_write = L;
    } else {
      out.dram_read = L;
    }
    return out;
  }
  out.misses = 1;
  if (tags_[slot] != kEmpty && dirty_[slot]) {
    // dirty eviction: read victim from DRAM, write it back to NVM
    out.dram_read += L;
    out.nvm_write += L;
  }
  if (tags_[slot] == kEmpty) ++valid_;
  tags_[slot] = line_addr;
  // allocate: fetch from NVM, fill into DRAM
  out.nvm_read += L;
  out.dram_write += L;
  if (is_write) {
    dirty_[slot] = 1;
    out.dram_write += L;  // the store itself
  } else {
    dirty_[slot] = 0;
    out.dram_read += L;  // the load consumes the filled line
  }
  return out;
}

std::uint64_t DramCache::snap_line(std::uint64_t line,
                                   std::uint64_t base_line,
                                   std::uint64_t lines_in_buf) const {
  std::uint64_t snapped = line - (line % sets_) % sample_mod_;
  // The downward snap can cross base_line into the previous buffer;
  // stepping one sampled set up (sets_ % sample_mod_ == 0 keeps it
  // sampled) returns into this buffer whenever it holds a sampled line.
  if (snapped < base_line) snapped += sample_mod_;
  if (snapped >= base_line + lines_in_buf && snapped >= sample_mod_) {
    snapped -= sample_mod_;  // degenerate: no sampled line in the buffer
  }
  return snapped;
}

CacheOutcome DramCache::access(const StreamDesc& stream, std::uint64_t base,
                               std::uint64_t size) {
  const CacheAccessRequest req{stream, base, size};
  CacheOutcome out;
  walk_batch(&req, 1, &out);
  return out;
}

void DramCache::walk_batch(const CacheAccessRequest* reqs, std::size_t n,
                           CacheOutcome* out) {
  // The memo key is rebuilt per access (its history digest changes), but
  // its word storage is hoisted out of the loop so a batch pays at most
  // one allocation, not one per access.
  ResolveKey key;
  for (std::size_t i = 0; i < n; ++i) {
    const StreamDesc& stream = reqs[i].stream;
    const std::uint64_t base = reqs[i].base;
    const std::uint64_t size = reqs[i].size;
    // Empty accesses touch no state; keep them out of the history digest
    // so both sides of a memo stay consistent for free.
    if (stream.bytes == 0 || size == 0) {
      out[i] = CacheOutcome{};
      continue;
    }

    if (memo_ == nullptr) {
      fold_access(stream, base, size);  // keep the digest attachable mid-run
      const CachedStreamOutcome computed = walk(stream, base, size);
      emit_probe(computed);
      out[i] = computed.outcome;
      continue;
    }

    // Key = digest of the full prior history + this access, exactly.  Word
    // equality pins the current access; the 128-bit digest pins the
    // history.
    key.clear();
    key.add_word(chain_.lo);
    key.add_word(chain_.hi);
    key.add_word((static_cast<std::uint64_t>(stream.pattern) << 32) |
                 (static_cast<std::uint64_t>(stream.dir) << 16) |
                 static_cast<std::uint64_t>(stream.reuse));
    key.add_word(stream.bytes);
    key.add_word(stream.granule);
    key.add_word(stream.reuse_block);
    key.add_word(base);
    key.add_word(size);
    fold_access(stream, base, size);

    CachedStreamOutcome hit;
    if (memo_->lookup(key, &hit)) {
      // Skip the walk; remember it so a later miss can rebuild real state.
      pending_.push_back({stream, base, size});
      emit_probe(hit);
      out[i] = hit.outcome;
      continue;
    }
    catch_up();
    const CachedStreamOutcome computed = walk(stream, base, size);
    memo_->insert(key, computed);
    emit_probe(computed);
    out[i] = computed.outcome;
  }
}

CachedStreamOutcome DramCache::walk(const StreamDesc& stream,
                                    std::uint64_t base, std::uint64_t size) {
  return use_reference_kernels() ? walk_reference(stream, base, size)
                                 : walk_soa(stream, base, size);
}

// NVMS_HOT: the batched sampled-walk kernel.  Touch outcomes accumulate
// as hit/miss/evict *counts* (exact: every touch moves whole lines, so
// byte totals are count * line), and the sequential path replaces the
// three per-line modulos of the reference with incremental position/set
// arithmetic — valid because stride <= lines_in_buf and the per-step set
// increments are < sets_, so one conditional subtract reduces each.
CachedStreamOutcome DramCache::walk_soa(const StreamDesc& stream,
                                        std::uint64_t base,
                                        std::uint64_t size) {
  const std::uint64_t L = params_.line;
  const std::uint64_t base_line = base / L;
  const std::uint64_t lines_in_buf = std::max<std::uint64_t>(1, size / L);
  const std::uint64_t touches =
      std::max<std::uint64_t>(1, stream.bytes / L);
  const bool is_write = stream.dir == Dir::kWrite;

  // Count-based touch: identical tag/dirty/valid updates to touch(), with
  // the per-touch CacheOutcome replaced by three counters.  Every counter
  // is a local (their addresses never escape, so they live in registers
  // regardless of what the tag/dirty stores may alias); valid_ absorbs the
  // cold-fill count once at the end.
  std::uint64_t n_hit = 0;
  std::uint64_t n_miss = 0;
  std::uint64_t n_evict = 0;
  std::uint64_t n_cold = 0;
  std::uint64_t* const tags = tags_.data();
  std::uint8_t* const dirty = dirty_.data();
  const std::uint8_t wbit = is_write ? 1 : 0;
  // Walks settle into long hit or miss runs (sequential streams by
  // construction, random streams once the working set resolves), so the
  // branches predict well and a hit skips both stores; a branchless
  // variant with unconditional stores measured 30-40% slower here.
  const auto touch_slot = [&](std::uint64_t slot, std::uint64_t line) {
    const std::uint64_t tag = tags[slot];
    if (tag == line) {
      ++n_hit;
      if (is_write) dirty[slot] = 1;
    } else {
      ++n_miss;
      if (tag != kEmpty) {
        n_evict += dirty[slot];
      } else {
        ++n_cold;
      }
      tags[slot] = line;
      dirty[slot] = wbit;
    }
  };

  const std::uint64_t sets = sets_;
  const std::uint64_t smask = sample_mod_ - 1;
  std::uint64_t simulated = 0;
  if (stream.pattern == Pattern::kRandom) {
    // Sample touches/sample_mod uniform lines restricted to sampled sets.
    // The RNG draw sequence is the contract here; everything around it is
    // restructured: the set index comes from the division-free sets_mod_,
    const std::uint64_t n = std::max<std::uint64_t>(1, touches / sample_mod_);
    // Local generator: the member's state would be reloaded every
    // iteration (the tag/dirty stores may alias it); a register-resident
    // copy is written back once.  The draw sequence is unchanged.
    Rng rng = rng_;
    const std::uint64_t end_line = base_line + lines_in_buf;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t line = base_line + rng.below(lines_in_buf);
      // snap_line() inlined: sample_mod_ divides sets_, so
      // (line % sets_) % sample_mod_ == line & smask and the snap runs on
      // the line alone; the slot's set is recovered with one reciprocal
      // modulo of the final snapped line.
      std::uint64_t snapped = line - (line & smask);
      if (snapped < base_line) snapped += sample_mod_;
      if (snapped >= end_line && snapped >= sample_mod_) {
        snapped -= sample_mod_;  // degenerate: no sampled line in buffer
      }
      touch_slot(sets_mod_.mod(snapped) >> sample_shift_, snapped);
    }
    rng_ = rng;
    simulated = n;
  } else {
    const std::uint32_t reuse = std::max<std::uint32_t>(stream.reuse, 1);
    const std::uint64_t distinct = std::max<std::uint64_t>(touches / reuse, 1);
    const std::uint64_t block_lines =
        std::max<std::uint64_t>(stream.reuse_block / L, 1);
    const std::uint64_t stride =
        distinct >= lines_in_buf
            ? 1
            : std::max<std::uint64_t>(1, lines_in_buf / distinct);
    std::uint64_t visited = 0;
    const std::uint64_t budget = (touches / sample_mod_) + 1;
    // Incremental index steps: advancing one stride adds stride to the
    // position (one wrap subtract) and step_set to the set; a position
    // wrap shifts the set by wrap_set instead.  The per-block entry point
    // is the only remaining modulo, and it goes through the reciprocals.
    FastMod lbuf_mod;
    lbuf_mod.init(lines_in_buf);
    const std::uint64_t step_set = stride % sets;
    const std::uint64_t wrap_set =
        (step_set + sets - lines_in_buf % sets) % sets;
    const auto run = [&](bool snap) {
      for (std::uint64_t b = 0;
           b * block_lines < distinct && visited < budget; ++b) {
        const std::uint64_t in_block =
            std::min(block_lines, distinct - b * block_lines);
        // Block entry point, amortized over in_block * reuse lines.
        const std::uint64_t pos0 = lbuf_mod.mod(b * block_lines * stride);
        const std::uint64_t set0 = sets_mod_.mod(base_line + pos0);
        for (std::uint32_t r = 0; r < reuse && visited < budget; ++r) {
          std::uint64_t pos = pos0;
          std::uint64_t set = set0;
          for (std::uint64_t i = 0; i < in_block && visited < budget; ++i) {
            if ((set & smask) == 0) {
              touch_slot(set >> sample_shift_, base_line + pos);
              ++visited;
            } else if (snap) {
              const std::uint64_t line =
                  snap_line(base_line + pos, base_line, lines_in_buf);
              touch_slot(sets_mod_.mod(line) >> sample_shift_, line);
              ++visited;
            }
            pos += stride;
            std::uint64_t inc = step_set;
            if (pos >= lines_in_buf) {
              pos -= lines_in_buf;
              inc = wrap_set;
            }
            set += inc;
            if (set >= sets) set -= sets;
          }
        }
      }
    };
    // Skip-walk: only 1-in-sample_mod_ states pass the sampling test, so
    // iterating every state wastes ~sample_mod_ iterations per touch.
    // Between position wraps the set advances by step_set per state, and
    // sample_mod_ divides sets_, so the phase set % sample_mod_ advances
    // by d = step_set % sample_mod_ regardless of the mod-sets_ reduction.
    // The states with phase 0 solve k*d = -s (mod 2^m) in closed form —
    // with g = gcd(d, 2^m), hits exist iff g | s, land every 2^m/g states,
    // and the first is (-s/g) * inv(d/g) mod (2^m/g), the inverse by
    // Newton on the odd d/g.  Touches, their order, and the budget/block
    // cutoffs are identical to run(false); only the no-op states between
    // them are jumped over arithmetically.
    const auto run_skip = [&] {
      const std::uint64_t d = step_set & smask;
      std::uint64_t g = sample_mod_;    // gcd(d, sample_mod_) for d == 0
      std::uint32_t gshift = sample_shift_;
      std::uint64_t period = 1;
      std::uint64_t dinv = 0;
      if (d != 0) {
        g = d & (0 - d);  // lowest set bit; d < sample_mod_ keeps g < it
        gshift = static_cast<std::uint32_t>(__builtin_ctzll(g));
        const std::uint64_t dp = d >> gshift;  // odd
        period = sample_mod_ >> gshift;
        std::uint64_t x = dp;  // Newton: x *= 2 - dp*x doubles precision
        for (int it = 0; it < 5; ++it) x *= 2 - dp * x;
        dinv = x;
      }
      const std::uint64_t pmask = period - 1;
      const std::uint64_t pstep = period * stride;
      const std::uint64_t delta = sets_mod_.mod(period * step_set);
      for (std::uint64_t b = 0;
           b * block_lines < distinct && visited < budget; ++b) {
        const std::uint64_t in_block =
            std::min(block_lines, distinct - b * block_lines);
        const std::uint64_t pos0 = lbuf_mod.mod(b * block_lines * stride);
        const std::uint64_t set0 = sets_mod_.mod(base_line + pos0);
        for (std::uint32_t r = 0; r < reuse && visited < budget; ++r) {
          std::uint64_t pos = pos0;
          std::uint64_t set = set0;
          for (std::uint64_t i = 0; i < in_block && visited < budget;) {
            // Segment: states i .. i+kw share no position wrap, so their
            // sets form one arithmetic progression mod sets_.
            const std::uint64_t kw = (lines_in_buf - 1 - pos) / stride;
            const std::uint64_t limit =
                std::min(kw, in_block - 1 - i);  // last state in block
            const std::uint64_t s = set & smask;
            if ((s & (g - 1)) == 0) {
              std::uint64_t k = ((period - (s >> gshift)) * dinv) & pmask;
              if (k <= limit) {
                std::uint64_t hpos = pos + k * stride;
                std::uint64_t hset = sets_mod_.mod(set + k * step_set);
                while (true) {
                  touch_slot(hset >> sample_shift_, base_line + hpos);
                  if (++visited >= budget) break;
                  k += period;
                  if (k > limit) break;
                  hpos += pstep;
                  hset += delta;
                  if (hset >= sets) hset -= sets;
                }
              }
            }
            if (kw >= in_block - 1 - i || visited >= budget) break;
            // Wrap advance from state i+kw into the next segment.
            pos += kw * stride + stride - lines_in_buf;
            set = sets_mod_.mod(set + kw * step_set) + wrap_set;
            if (set >= sets) set -= sets;
            i += kw + 1;
          }
        }
      }
    };
    run_skip();
    if (visited == 0) {
      // A stride sharing a factor with sample_mod_ launched from an
      // off-phase base set steps over every sampled set; the plain walk
      // then simulates nothing and the whole stream's traffic vanishes
      // from the model.  Re-walk with each line snapped to its nearest
      // in-buffer sampled set so the stream is still represented.
      run(/*snap=*/true);
    }
    simulated = visited;
  }
  valid_ += n_cold;

  // Expand the counts into the sampled traffic split.  Exact: the
  // reference accumulates += L per touch, so totals are counts * L, and
  // is_write is fixed for the whole walk.
  CacheOutcome sampled;
  sampled.hits = n_hit;
  sampled.misses = n_miss;
  if (is_write) {
    sampled.dram_read = n_evict * L;
    sampled.dram_write = (n_hit + 2 * n_miss) * L;
  } else {
    sampled.dram_read = (n_hit + n_evict + n_miss) * L;
    sampled.dram_write = n_miss * L;
  }
  sampled.nvm_read = n_miss * L;
  sampled.nvm_write = n_evict * L;
  return finish_walk(stream, sampled, touches, simulated);
}

/// Conflict-model and sampling scale-up tail shared by the SoA walk —
/// statement-for-statement the reference tail.
CachedStreamOutcome DramCache::finish_walk(const StreamDesc& stream,
                                           CacheOutcome sampled,
                                           std::uint64_t touches,
                                           std::uint64_t simulated) {
  CacheOutcome total;
  const bool is_write = stream.dir == Dir::kWrite;
  if (simulated == 0) return {total, occupancy(), 0.0, /*simulated=*/false};

  // Conflict-miss model: at high occupancy, physically-scattered pages
  // alias in the direct-mapped cache; convert a fraction of hits into
  // misses with the corresponding fill/writeback traffic.  Hits produced
  // by immediate temporal blocking (the `reuse` repeats) have a reuse
  // distance of one block and are exempt — nothing evicts them that fast.
  const double conflict = params_.conflict_rate(occupancy());
  if (conflict > 0.0 && sampled.hits > 0) {
    std::uint64_t exempt = 0;
    if (stream.pattern != Pattern::kRandom && stream.reuse > 1) {
      exempt = simulated * (stream.reuse - 1) / stream.reuse;
      exempt = std::min(exempt, sampled.hits);
    }
    const auto moved = static_cast<std::uint64_t>(
        static_cast<double>(sampled.hits - exempt) * conflict);
    const std::uint64_t moved_bytes = moved * params_.line;
    sampled.hits -= moved;
    sampled.misses += moved;
    sampled.nvm_read_scattered += moved_bytes;  // isolated line refetch
    sampled.dram_write += moved_bytes;          // fill
    if (is_write) {
      // the displaced victim line was dirty in a write stream
      sampled.nvm_write += moved_bytes;
      sampled.dram_read += moved_bytes;  // victim read-out
    }
  }

  // Scale sampled outcome up to the full touch count.
  const double scale =
      static_cast<double>(touches) / static_cast<double>(simulated);
  auto sc = [scale](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * scale);
  };
  total.dram_read = sc(sampled.dram_read);
  total.dram_write = sc(sampled.dram_write);
  total.nvm_read = sc(sampled.nvm_read);
  total.nvm_read_scattered = sc(sampled.nvm_read_scattered);
  total.nvm_write = sc(sampled.nvm_write);
  total.hits = sc(sampled.hits);
  total.misses = sc(sampled.misses);

  return {total, occupancy(), conflict, /*simulated=*/true};
}

CachedStreamOutcome DramCache::walk_reference(const StreamDesc& stream,
                                              std::uint64_t base,
                                              std::uint64_t size) {
  CacheOutcome total;
  const std::uint64_t L = params_.line;
  const std::uint64_t base_line = base / L;
  const std::uint64_t lines_in_buf = std::max<std::uint64_t>(1, size / L);
  const std::uint64_t touches =
      std::max<std::uint64_t>(1, stream.bytes / L);
  const bool is_write = stream.dir == Dir::kWrite;

  CacheOutcome sampled;
  std::uint64_t simulated = 0;
  if (stream.pattern == Pattern::kRandom) {
    // Sample touches/sample_mod uniform lines restricted to sampled sets.
    const std::uint64_t n = std::max<std::uint64_t>(1, touches / sample_mod_);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t line = base_line + rng_.below(lines_in_buf);
      // snap to a sampled set (preserves uniformity over sampled sets),
      // clamped into this buffer's line range
      line = snap_line(line, base_line, lines_in_buf);
      sampled += touch(line, is_write);
      ++simulated;
    }
  } else {
    // Sequential / strided walks with temporal blocking: process the
    // buffer in reuse_block-sized chunks, touching each chunk `reuse`
    // times before advancing.  Distinct touches (bytes / reuse) are spread
    // evenly over the buffer when the stream covers less than all of it
    // (strided partial passes), so the whole buffer participates in cache
    // occupancy.
    const std::uint32_t reuse = std::max<std::uint32_t>(stream.reuse, 1);
    const std::uint64_t distinct = std::max<std::uint64_t>(touches / reuse, 1);
    const std::uint64_t block_lines =
        std::max<std::uint64_t>(stream.reuse_block / L, 1);
    const std::uint64_t stride =
        distinct >= lines_in_buf
            ? 1
            : std::max<std::uint64_t>(1, lines_in_buf / distinct);
    std::uint64_t visited = 0;
    const std::uint64_t budget = (touches / sample_mod_) + 1;
    const auto walk = [&](bool snap) {
      for (std::uint64_t b = 0;
           b * block_lines < distinct && visited < budget; ++b) {
        const std::uint64_t in_block =
            std::min(block_lines, distinct - b * block_lines);
        for (std::uint32_t r = 0; r < reuse && visited < budget; ++r) {
          for (std::uint64_t i = 0; i < in_block && visited < budget; ++i) {
            std::uint64_t line =
                base_line + ((b * block_lines + i) * stride) % lines_in_buf;
            if ((line % sets_) % sample_mod_ != 0) {
              if (!snap) continue;
              line = snap_line(line, base_line, lines_in_buf);
            }
            sampled += touch(line, is_write);
            ++visited;
          }
        }
      }
    };
    walk(/*snap=*/false);
    if (visited == 0) {
      // A stride sharing a factor with sample_mod_ launched from an
      // off-phase base set steps over every sampled set; the plain walk
      // then simulates nothing and the whole stream's traffic vanishes
      // from the model.  Re-walk with each line snapped to its nearest
      // in-buffer sampled set so the stream is still represented.
      walk(/*snap=*/true);
    }
    simulated = visited;
  }

  if (simulated == 0) return {total, occupancy(), 0.0, /*simulated=*/false};

  // Conflict-miss model: at high occupancy, physically-scattered pages
  // alias in the direct-mapped cache; convert a fraction of hits into
  // misses with the corresponding fill/writeback traffic.  Hits produced
  // by immediate temporal blocking (the `reuse` repeats) have a reuse
  // distance of one block and are exempt — nothing evicts them that fast.
  const double conflict = params_.conflict_rate(occupancy());
  if (conflict > 0.0 && sampled.hits > 0) {
    std::uint64_t exempt = 0;
    if (stream.pattern != Pattern::kRandom && stream.reuse > 1) {
      exempt = simulated * (stream.reuse - 1) / stream.reuse;
      exempt = std::min(exempt, sampled.hits);
    }
    const auto moved = static_cast<std::uint64_t>(
        static_cast<double>(sampled.hits - exempt) * conflict);
    const std::uint64_t moved_bytes = moved * params_.line;
    sampled.hits -= moved;
    sampled.misses += moved;
    sampled.nvm_read_scattered += moved_bytes;  // isolated line refetch
    sampled.dram_write += moved_bytes;          // fill
    if (is_write) {
      // the displaced victim line was dirty in a write stream
      sampled.nvm_write += moved_bytes;
      sampled.dram_read += moved_bytes;  // victim read-out
    }
  }

  // Scale sampled outcome up to the full touch count.
  const double scale =
      static_cast<double>(touches) / static_cast<double>(simulated);
  auto sc = [scale](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * scale);
  };
  total.dram_read = sc(sampled.dram_read);
  total.dram_write = sc(sampled.dram_write);
  total.nvm_read = sc(sampled.nvm_read);
  total.nvm_read_scattered = sc(sampled.nvm_read_scattered);
  total.nvm_write = sc(sampled.nvm_write);
  total.hits = sc(sampled.hits);
  total.misses = sc(sampled.misses);

  return {total, occupancy(), conflict, /*simulated=*/true};
}

// Epoch telemetry: the internal cache signals (occupancy, achieved hit
// rate, conflict-miss fraction) behind the paper's Memory-mode traces
// (Fig. 4) — one sample per stream access.  The values come from the
// CachedStreamOutcome, so a memo hit replays the exact samples the
// original walk emitted (re-stamped at the current epoch time).
void DramCache::emit_probe(const CachedStreamOutcome& c) {
  if (probe_ == nullptr || !c.simulated) return;
  const double touched =
      static_cast<double>(c.outcome.hits + c.outcome.misses);
  probe_->epoch_sample("cache.occupancy", "dram-cache", epoch_t_,
                       c.occupancy);
  if (touched > 0.0) {
    probe_->epoch_sample("cache.hit_rate", "dram-cache", epoch_t_,
                         static_cast<double>(c.outcome.hits) / touched);
  }
  probe_->epoch_sample("cache.conflict_rate", "dram-cache", epoch_t_,
                       c.conflict);
}

}  // namespace nvms
