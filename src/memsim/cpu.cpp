#include "memsim/cpu.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace nvms {

double CpuParams::core_equivalents(int threads) const {
  const int t = std::clamp(threads, 1, max_threads());
  if (t <= cores) return static_cast<double>(t);
  return static_cast<double>(cores) +
         ht_yield * static_cast<double>(t - cores);
}

double CpuParams::compute_time(double flops, int threads,
                               double pfrac) const {
  if (flops <= 0.0) return 0.0;
  const double single = flops / (freq * flops_per_cycle);
  const double speedup =
      1.0 / ((1.0 - pfrac) + pfrac / core_equivalents(threads));
  return single / speedup;
}

void CpuParams::validate() const {
  require(cores > 0 && smt > 0, "cpu: cores and smt must be positive");
  require(freq > 0 && flops_per_cycle > 0, "cpu: rates must be positive");
  require(ht_yield >= 0.0 && ht_yield <= 1.0, "cpu: ht_yield in [0,1]");
}

}  // namespace nvms
