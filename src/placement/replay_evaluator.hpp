// Delta-replay placement evaluation: candidate placements in microseconds.
//
// The trace optimizer's inner loop asks one question thousands of times:
// "what would the recorded run take if buffer B moved to DRAM?"  A full
// replay answers it in O(phases) fixed-point resolutions on a freshly
// constructed MemorySystem.  This engine answers the same question
// bit-identically at a fraction of the cost by exploiting two structural
// facts of the simulator:
//
//  1. *Phase independence.*  In dram-only and uncached-NVM/NUMA modes the
//     system carries no state between phases except the clock: the replayed
//     runtime is the left-to-right sum of per-phase resolved times, and a
//     plan that flips one buffer only changes the resolution of the phases
//     whose streams touch that buffer (PhaseRecording::phase_buffers).  A
//     candidate's runtime is therefore the ordered re-sum of the committed
//     per-phase times with the affected phases re-resolved — the same
//     floating-point additions, in the same order, as a full replay.
//
//  2. *Resolution purity.*  resolve_lanes() is a pure function of its
//     normalized inputs (the PR-3 ResolveCache invariant), so re-resolved
//     phase times are memoized in a ShardedMemo keyed by
//     make_resolve_key().  The shape key subsumes the "placement signature
//     of the touched buffers": flipping a buffer changes exactly the lane
//     demands the key hashes, and it additionally collapses the recording's
//     repeated solver iterations into one entry — an evaluation mostly
//     costs key lookups, not fixed points.
//
// Memory mode (kCachedNvm) breaks fact 1: the DramCache is stateful across
// phases.  There the evaluator falls back to a full replay on a fresh
// system, routed through a shared ResolveCache so the DRAM-cache stream
// memo keeps repeated access-history prefixes from re-walking the sampler
// and the phase memo absorbs the fixed points.  (Placement directives do
// not change Memory-mode routing at all — every access goes through the
// cache — so candidate evaluations there converge to full memo hits.)
//
// Thread safety: evaluate_flip()/evaluate() are const and safe to call
// concurrently (the memos are mutex-striped, the statistics atomic);
// commit_flip() must not race with evaluations.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mem/placement_plan.hpp"
#include "memsim/memory_system.hpp"
#include "memsim/resolve_cache.hpp"
#include "obs/metrics.hpp"
#include "replay/recording.hpp"

namespace nvms {

/// Evaluation accounting: candidate evaluations, Memory-mode fallback
/// replays, and the memo tables' hit/miss statistics.  `phase_cache`
/// aggregates both memo levels (signature hits + shape hits as hits,
/// actual fixed-point computations as misses).  `evals` and
/// `full_replays` are deterministic for any worker count; the memo
/// hit/miss split can shift by a few counts under parallel evaluation
/// (racing misses on a shared key are idempotent but both counted).
struct ReplayEvalStats {
  std::uint64_t evals = 0;
  std::uint64_t full_replays = 0;
  ResolveCacheStats phase_cache;
  ResolveCacheStats stream_memo;
};

class ReplayEvaluator {
 public:
  /// Builds the phase-set index and resolves the baseline (the recorded
  /// placements with no overrides).  `make_system` must produce a fresh,
  /// identically-configured MemorySystem on every call; it is invoked
  /// once here for the configuration and effective device parameters
  /// (and per fallback replay in Memory mode).  Buffer names must be
  /// unique — placement plans address buffers by name.  Throws
  /// CapacityError when the recorded placements do not fit the system.
  ReplayEvaluator(const PhaseRecording& recording,
                  std::function<MemorySystem()> make_system);

  /// False in Memory mode: evaluations are full (memoized) replays.
  bool incremental() const { return incremental_; }
  const SystemConfig& config() const { return config_; }

  /// Replayed runtime of the recorded placements (no overrides).
  double baseline() const { return baseline_; }
  /// Replayed runtime under the committed plan.
  double current_runtime() const { return current_; }
  /// The committed overrides (what commit_flip accumulated).
  const PlacementPlan& plan() const { return plan_; }

  /// Runtime if `buffer` (recording index) were placed `p` on top of the
  /// committed plan (kAuto = revert to the recorded placement).
  /// Bit-identical to a full replay of that plan.  Thread-safe.  Throws
  /// CapacityError when the flipped plan does not fit.
  double evaluate_flip(std::size_t buffer, Placement p) const;

  /// Runtime under an arbitrary plan over the *recorded* placements
  /// (entries mapping to kAuto keep the recorded placement, matching
  /// PhaseRecording::replay).  Thread-safe.
  double evaluate(const PlacementPlan& plan) const;

  /// Make a flip permanent: updates the committed plan and the per-phase
  /// time vector (all memo hits when the flip was just evaluated).
  void commit_flip(std::size_t buffer, Placement p);

  ReplayEvalStats stats() const;
  /// Publish the statistics as gauges: placement.evals,
  /// placement.full_replays, placement.phase_cache.{hits,misses,hit_rate}.
  void publish(MetricsRegistry& m) const;

 private:
  /// Resolved duration of phase `pi` with per-buffer placements taken
  /// from `placements`, memoized by normalized resolution key.  `scratch`
  /// is the caller's lane view buffer (resized here), so one evaluation
  /// reuses a single allocation across its phases.
  double phase_time(std::size_t pi, const std::vector<Placement>& placements,
                    std::vector<LaneDemand>& scratch) const;
  /// Ordered left-to-right sum matching replay clock accumulation, with
  /// `new_times[k]` substituted at phase `affected[k]`.
  double sum_with(const std::vector<std::size_t>& affected,
                  const std::vector<double>& new_times) const;
  /// Replicates MemorySystem's per-socket capacity accounting for the
  /// fully-registered buffer table; throws CapacityError like a replay
  /// would at registration time.
  void check_fits(const std::vector<Placement>& placements) const;
  double full_replay(const PlacementPlan& plan) const;
  /// Recorded placements overridden by `plan` (kAuto entries keep the
  /// recorded placement).
  std::vector<Placement> overridden(const PlacementPlan& plan) const;

  const PhaseRecording* rec_;
  std::function<MemorySystem()> factory_;
  SystemConfig config_;
  /// Post-derate per-lane device parameters copied from a prototype
  /// system (lane = socket*2 + (dram ? 0 : 1)).
  DeviceParams lane_dev_[4];
  Mode mode_ = Mode::kUncachedNvm;
  bool incremental_ = true;
  std::size_t nlanes_ = 2;
  int numa_ = 0;  ///< buffer home socket per policy; -1 = interleave

  std::vector<std::vector<BufferId>> phase_buffers_;
  std::vector<std::vector<std::size_t>> phases_of_buffer_;

  PlacementPlan plan_;
  std::vector<Placement> placements_;  ///< committed effective placements
  std::vector<double> times_;          ///< per-phase times, committed plan
  double baseline_ = 0.0;
  double current_ = 0.0;

  /// Phases with identical streams and timing fields (names aside) are
  /// interchangeable to the resolver: solver iterations collapse into one
  /// equivalence class, computed once at construction.
  std::vector<std::uint32_t> phase_class_;
  std::size_t n_classes_ = 0;

  /// First-level memo: phase time by (equivalence class, placement
  /// signature of the touched buffers — bit k set when
  /// phase_buffers_[pi][k] routes to DRAM).  Within one evaluator that
  /// pair fully determines the lane demands, so a short per-class scan
  /// answers repeat evaluations without rebuilding the (much larger)
  /// normalized resolve key.
  struct SigEntry {
    std::uint64_t sig = 0;
    double time = 0.0;
  };
  mutable std::vector<std::vector<SigEntry>> sig_memo_;  ///< per class
  mutable std::array<std::mutex, 64> sig_mu_;  ///< striped by class index
  /// Second level, shared across phases: shape-keyed via
  /// make_resolve_key(), collapsing repeated solver iterations.
  mutable ShardedMemo<double> memo_;
  mutable ResolveCache fallback_cache_;    ///< Memory-mode replay memos
  mutable std::atomic<std::uint64_t> evals_{0};
  mutable std::atomic<std::uint64_t> full_replays_{0};
  mutable std::atomic<std::uint64_t> sig_hits_{0};
};

}  // namespace nvms
