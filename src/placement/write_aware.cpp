#include "placement/write_aware.hpp"

#include <algorithm>

namespace nvms {
namespace {

WriteAwareResult greedy(const std::vector<BufferProfile>& sorted,
                        std::uint64_t dram_budget, bool use_writes) {
  WriteAwareResult out;
  for (const auto& p : sorted) {
    out.total_bytes += p.bytes;
    const auto key_bytes = use_writes ? p.write_bytes : p.read_bytes;
    if (key_bytes == 0) continue;
    if (out.dram_bytes + p.bytes > dram_budget) continue;
    out.dram_bytes += p.bytes;
    out.in_dram.push_back(p.name);
    out.plan.set(p.name, Placement::kDram);
  }
  return out;
}

}  // namespace

WriteAwareResult write_aware_plan(const std::vector<BufferProfile>& profiles,
                                  std::uint64_t dram_budget) {
  // collect_data_profile sorts by write intensity already; re-sorting here
  // keeps the function correct for arbitrary input order.
  std::vector<BufferProfile> sorted = profiles;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.write_intensity() != b.write_intensity())
      return a.write_intensity() > b.write_intensity();
    return a.name < b.name;
  });
  return greedy(sorted, dram_budget, /*use_writes=*/true);
}

WriteAwareResult read_aware_plan(std::vector<BufferProfile> profiles,
                                 std::uint64_t dram_budget,
                                 const std::vector<std::string>& exclude) {
  std::erase_if(profiles, [&](const BufferProfile& p) {
    return std::find(exclude.begin(), exclude.end(), p.name) != exclude.end();
  });
  std::sort(profiles.begin(), profiles.end(),
            [](const auto& a, const auto& b) {
              if (a.read_intensity() != b.read_intensity())
                return a.read_intensity() > b.read_intensity();
              return a.name < b.name;
            });
  return greedy(profiles, dram_budget, /*use_writes=*/false);
}

}  // namespace nvms
