// Write-aware data placement (Sec. V-B).
//
// Given per-buffer traffic profiles from a data-centric profiling run, the
// planner keeps the most write-intensive data structures in DRAM under a
// DRAM byte budget and leaves the rest on NVM.  On uncached-NVM this
// removes the write-throttling bottleneck while reads keep scaling from
// NVM — the paper demonstrates 2x improvement in ScaLAPACK using only
// ~30% of the DRAM (Fig. 12).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/placement_plan.hpp"
#include "prof/data_profile.hpp"

namespace nvms {

struct WriteAwareResult {
  PlacementPlan plan;
  std::uint64_t dram_bytes = 0;      ///< bytes placed in DRAM
  std::uint64_t total_bytes = 0;     ///< profiled footprint
  std::vector<std::string> in_dram;  ///< chosen buffer names
};

/// Greedy knapsack by write intensity: profiles must be the output of
/// collect_data_profile (sorted by descending write intensity).  Buffers
/// with zero write traffic are never promoted.
WriteAwareResult write_aware_plan(const std::vector<BufferProfile>& profiles,
                                  std::uint64_t dram_budget);

/// The validation counterpart used by the paper: promote the most
/// READ-intensive of the *other* structures (those the write-aware plan
/// did not select); expected to show little benefit.
WriteAwareResult read_aware_plan(std::vector<BufferProfile> profiles,
                                 std::uint64_t dram_budget,
                                 const std::vector<std::string>& exclude = {});

}  // namespace nvms
