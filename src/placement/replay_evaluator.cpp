#include "placement/replay_evaluator.hpp"

#include <bit>
#include <unordered_map>
#include <utility>

#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {

namespace {
/// Lane labels, identical to MemorySystem's (part of the resolve key).
constexpr const char* kLaneLabels[4] = {"dram0", "nvm0", "dram1", "nvm1"};

std::uint64_t fnv(std::uint64_t h, std::uint64_t w) {
  return (h ^ w) * 0x100000001B3ull;
}
std::uint64_t dword(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Grouping digest for phase equivalence classes (verified by
/// same_shape before two phases share a class).
std::uint64_t phase_digest(const Phase& p) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = fnv(h, static_cast<std::uint64_t>(p.threads));
  h = fnv(h, dword(p.flops));
  h = fnv(h, dword(p.parallel_fraction));
  h = fnv(h, dword(p.mlp));
  h = fnv(h, dword(p.overlap));
  for (const StreamDesc& s : p.streams) {
    h = fnv(h, s.buffer);
    h = fnv(h, s.bytes);
    h = fnv(h, static_cast<std::uint64_t>(s.pattern));
    h = fnv(h, static_cast<std::uint64_t>(s.dir));
    h = fnv(h, s.granule);
    h = fnv(h, s.reuse);
    h = fnv(h, s.reuse_block);
  }
  return h;
}

/// True when the two phases are indistinguishable to stream routing and
/// resolution: identical timing fields and identical streams (the name
/// never reaches the resolver).
bool same_shape(const Phase& a, const Phase& b) {
  if (a.threads != b.threads || a.flops != b.flops ||
      a.parallel_fraction != b.parallel_fraction || a.mlp != b.mlp ||
      a.overlap != b.overlap || a.streams.size() != b.streams.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const StreamDesc& x = a.streams[i];
    const StreamDesc& y = b.streams[i];
    if (x.buffer != y.buffer || x.bytes != y.bytes ||
        x.pattern != y.pattern || x.dir != y.dir || x.granule != y.granule ||
        x.reuse != y.reuse || x.reuse_block != y.reuse_block) {
      return false;
    }
  }
  return true;
}

}  // namespace

ReplayEvaluator::ReplayEvaluator(const PhaseRecording& recording,
                                 std::function<MemorySystem()> make_system)
    : rec_(&recording), factory_(std::move(make_system)) {
  require(static_cast<bool>(factory_), "replay evaluator: null system factory");
  {
    // A scoped prototype: keep copies of everything resolution needs so no
    // pointer into a (moved-from, destroyed) system survives this block.
    MemorySystem proto = factory_();
    config_ = proto.config();
    for (std::size_t i = 0; i < 4; ++i) lane_dev_[i] = proto.lane_device(i);
  }
  mode_ = config_.mode;
  incremental_ = mode_ != Mode::kCachedNvm;
  nlanes_ = static_cast<std::size_t>(config_.sockets) * 2;
  switch (config_.numa_policy) {
    case NumaPolicy::kLocalSocket:
      numa_ = 0;
      break;
    case NumaPolicy::kRemoteSocket:
      numa_ = 1;
      break;
    case NumaPolicy::kInterleave:
      numa_ = -1;
      break;
  }

  placements_.reserve(recording.buffers.size());
  for (std::size_t i = 0; i < recording.buffers.size(); ++i) {
    const RecordedBuffer& b = recording.buffers[i];
    require(b.bytes > 0,
            "replay evaluator: buffer '" + b.name + "' must have positive size");
    for (std::size_t j = 0; j < i; ++j) {
      require(recording.buffers[j].name != b.name,
              "replay evaluator: duplicate buffer name '" + b.name + "'");
    }
    placements_.push_back(b.placement);
  }

  phase_buffers_ = recording.phase_buffers();
  phases_of_buffer_.resize(recording.buffers.size());
  for (std::size_t pi = 0; pi < phase_buffers_.size(); ++pi) {
    for (const BufferId id : phase_buffers_[pi]) {
      phases_of_buffer_[id].push_back(pi);
    }
  }

  if (incremental_) {
    check_fits(placements_);
    // Collapse repeated phases (solver iterations) into equivalence
    // classes so the signature memo answers them with one entry.
    phase_class_.resize(recording.phases.size());
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_digest;
    for (std::size_t pi = 0; pi < recording.phases.size(); ++pi) {
      auto& reps = by_digest[phase_digest(recording.phases[pi])];
      bool found = false;
      for (const std::size_t rep : reps) {
        if (same_shape(recording.phases[rep], recording.phases[pi])) {
          phase_class_[pi] = phase_class_[rep];
          found = true;
          break;
        }
      }
      if (!found) {
        phase_class_[pi] = static_cast<std::uint32_t>(n_classes_++);
        reps.push_back(pi);
      }
    }
    sig_memo_.resize(n_classes_);
    times_.resize(recording.phases.size());
    std::vector<LaneDemand> scratch;
    for (std::size_t pi = 0; pi < times_.size(); ++pi) {
      times_[pi] = phase_time(pi, placements_, scratch);
    }
    double total = 0.0;
    for (const double t : times_) total += t;
    baseline_ = total;
  } else {
    baseline_ = full_replay(PlacementPlan{});
  }
  current_ = baseline_;
}

void ReplayEvaluator::check_fits(
    const std::vector<Placement>& placements) const {
  if (!config_.strict_capacity) return;
  // Mirrors MemorySystem::check_capacity as replay would hit it: the
  // system re-checks the prefix after every registration, so the first
  // buffer whose addition overflows raises, with prefix sums in the
  // message.
  std::uint64_t dram_bytes[2] = {0, 0};
  std::uint64_t nvm_bytes[2] = {0, 0};
  for (std::size_t i = 0; i < rec_->buffers.size(); ++i) {
    const RecordedBuffer& b = rec_->buffers[i];
    std::uint64_t share[2] = {0, 0};
    if (numa_ < 0) {
      share[0] = b.bytes / 2;
      share[1] = b.bytes - share[0];
    } else {
      share[numa_] = b.bytes;
    }
    for (int sck = 0; sck < 2; ++sck) {
      if (share[sck] == 0) continue;
      switch (mode_) {
        case Mode::kDramOnly:
          dram_bytes[sck] += share[sck];
          break;
        case Mode::kCachedNvm:
          nvm_bytes[sck] += share[sck];
          break;
        case Mode::kUncachedNvm:
          if (placements[i] == Placement::kDram)
            dram_bytes[sck] += share[sck];
          else
            nvm_bytes[sck] += share[sck];
          break;
      }
    }
    for (int sck = 0; sck < config_.sockets; ++sck) {
      if (dram_bytes[sck] > config_.dram.capacity)
        throw CapacityError("DRAM capacity exceeded on socket " +
                            std::to_string(sck) + ": " +
                            format_bytes(dram_bytes[sck]) + " > " +
                            format_bytes(config_.dram.capacity));
      if (nvm_bytes[sck] > config_.nvm.capacity)
        throw CapacityError("NVM capacity exceeded on socket " +
                            std::to_string(sck) + ": " +
                            format_bytes(nvm_bytes[sck]) + " > " +
                            format_bytes(config_.nvm.capacity));
    }
  }
}

double ReplayEvaluator::phase_time(std::size_t pi,
                                   const std::vector<Placement>& placements,
                                   std::vector<LaneDemand>& scratch) const {
  const Phase& phase = rec_->phases[pi];
  // First level: the placement signature of the touched buffers fully
  // determines this phase's lane demands (stream shapes, NUMA shares and
  // device parameters are fixed per evaluator), so a short per-phase scan
  // answers repeat evaluations without rebuilding the resolve key.
  const std::vector<BufferId>& touched = phase_buffers_[pi];
  const std::size_t cls = phase_class_[pi];
  const bool use_sig = touched.size() <= 64;
  std::uint64_t sig = 0;
  if (use_sig) {
    for (std::size_t k = 0; k < touched.size(); ++k) {
      const bool in_dram = mode_ == Mode::kDramOnly ||
                           placements[touched[k]] == Placement::kDram;
      if (in_dram) sig |= std::uint64_t{1} << k;
    }
    std::lock_guard<std::mutex> lock(sig_mu_[cls % sig_mu_.size()]);
    for (const SigEntry& e : sig_memo_[cls]) {
      if (e.sig == sig) {
        sig_hits_.fetch_add(1, std::memory_order_relaxed);
        return e.time;
      }
    }
  }

  // Route every stream exactly as MemorySystem::route_stream does for the
  // non-cached modes: socket shares by NUMA home, UPI bytes for remote
  // shares, lane = socket*2 + (dram ? 0 : 1).
  DeviceDemand dem[4] = {};
  double upi_bytes = 0.0;
  for (const StreamDesc& s : phase.streams) {
    std::uint64_t share[2] = {0, 0};
    if (numa_ < 0) {
      share[0] = s.bytes / 2;
      share[1] = s.bytes - share[0];
    } else {
      share[numa_] = s.bytes;
    }
    const bool in_dram =
        mode_ == Mode::kDramOnly || placements[s.buffer] == Placement::kDram;
    for (int sck = 0; sck < 2; ++sck) {
      if (share[sck] == 0) continue;
      if (sck != 0) upi_bytes += static_cast<double>(share[sck]);
      dem[static_cast<std::size_t>(sck) * 2 + (in_dram ? 0 : 1)].add(
          s.pattern, s.dir, share[sck], s.granule);
    }
  }
  scratch.resize(nlanes_);
  for (std::size_t i = 0; i < nlanes_; ++i) {
    scratch[i] = {dem[i], &lane_dev_[i], kLaneLabels[i]};
  }

  const ResolveKey key = make_resolve_key(phase, scratch, config_.cpu,
                                          upi_bytes, config_.upi_bw);
  double time = 0.0;
  if (!memo_.lookup(key, &time)) {
    const MultiResolution multi = resolve_lanes(phase, scratch, config_.cpu,
                                                upi_bytes, config_.upi_bw);
    time = multi.time;
    memo_.insert(key, time);
  }
  if (use_sig) {
    std::lock_guard<std::mutex> lock(sig_mu_[cls % sig_mu_.size()]);
    bool present = false;
    for (const SigEntry& e : sig_memo_[cls]) {
      if (e.sig == sig) {
        present = true;  // racing evaluation beat us; values are pure
        break;
      }
    }
    if (!present) sig_memo_[cls].push_back(SigEntry{sig, time});
  }
  return time;
}

double ReplayEvaluator::sum_with(const std::vector<std::size_t>& affected,
                                 const std::vector<double>& new_times) const {
  // Left-to-right fold in phase order — the same additions, in the same
  // order, as the replay clock (clock += time per submit), so the result
  // is bit-identical to a full replay.
  double total = 0.0;
  std::size_t k = 0;
  for (std::size_t pi = 0; pi < times_.size(); ++pi) {
    if (k < affected.size() && affected[k] == pi) {
      total += new_times[k++];
    } else {
      total += times_[pi];
    }
  }
  return total;
}

double ReplayEvaluator::full_replay(const PlacementPlan& plan) const {
  full_replays_.fetch_add(1, std::memory_order_relaxed);
  MemorySystem sys = factory_();
  sys.set_resolve_cache(&fallback_cache_);
  return rec_->replay(sys, &plan);
}

std::vector<Placement> ReplayEvaluator::overridden(
    const PlacementPlan& plan) const {
  std::vector<Placement> out;
  out.reserve(rec_->buffers.size());
  for (const RecordedBuffer& b : rec_->buffers) {
    const Placement p = plan.lookup(b.name);
    out.push_back(p == Placement::kAuto ? b.placement : p);
  }
  return out;
}

double ReplayEvaluator::evaluate_flip(std::size_t buffer, Placement p) const {
  require(buffer < rec_->buffers.size(),
          "replay evaluator: unknown buffer index");
  evals_.fetch_add(1, std::memory_order_relaxed);
  const Placement effective =
      p == Placement::kAuto ? rec_->buffers[buffer].placement : p;
  if (!incremental_) {
    PlacementPlan plan = plan_;
    plan.set(rec_->buffers[buffer].name, effective);
    return full_replay(plan);
  }
  std::vector<Placement> placements = placements_;
  placements[buffer] = effective;
  check_fits(placements);
  const std::vector<std::size_t>& affected = phases_of_buffer_[buffer];
  std::vector<double> new_times(affected.size());
  std::vector<LaneDemand> scratch;
  for (std::size_t k = 0; k < affected.size(); ++k) {
    new_times[k] = phase_time(affected[k], placements, scratch);
  }
  return sum_with(affected, new_times);
}

double ReplayEvaluator::evaluate(const PlacementPlan& plan) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  if (!incremental_) return full_replay(plan);
  const std::vector<Placement> placements = overridden(plan);
  check_fits(placements);
  double total = 0.0;
  std::vector<LaneDemand> scratch;
  for (std::size_t pi = 0; pi < rec_->phases.size(); ++pi) {
    total += phase_time(pi, placements, scratch);
  }
  return total;
}

void ReplayEvaluator::commit_flip(std::size_t buffer, Placement p) {
  require(buffer < rec_->buffers.size(),
          "replay evaluator: unknown buffer index");
  const Placement effective =
      p == Placement::kAuto ? rec_->buffers[buffer].placement : p;
  plan_.set(rec_->buffers[buffer].name, effective);
  if (!incremental_) {
    placements_[buffer] = effective;
    current_ = full_replay(plan_);
    return;
  }
  std::vector<Placement> placements = placements_;
  placements[buffer] = effective;
  check_fits(placements);
  std::vector<LaneDemand> scratch;
  for (const std::size_t pi : phases_of_buffer_[buffer]) {
    times_[pi] = phase_time(pi, placements, scratch);
  }
  placements_ = std::move(placements);
  double total = 0.0;
  for (const double t : times_) total += t;
  current_ = total;
}

ReplayEvalStats ReplayEvaluator::stats() const {
  ReplayEvalStats s;
  s.evals = evals_.load(std::memory_order_relaxed);
  s.full_replays = full_replays_.load(std::memory_order_relaxed);
  s.phase_cache = incremental_ ? memo_.stats() : fallback_cache_.stats();
  // Fold the first-level signature hits into the phase-cache view: a
  // shape-memo miss is the only time a fixed point actually runs.
  s.phase_cache.hits += sig_hits_.load(std::memory_order_relaxed);
  s.stream_memo = fallback_cache_.stream_stats();
  return s;
}

void ReplayEvaluator::publish(MetricsRegistry& m) const {
  const ReplayEvalStats s = stats();
  m.set(m.gauge("placement.evals"), static_cast<double>(s.evals));
  m.set(m.gauge("placement.full_replays"),
        static_cast<double>(s.full_replays));
  m.set(m.gauge("placement.phase_cache.hits"),
        static_cast<double>(s.phase_cache.hits));
  m.set(m.gauge("placement.phase_cache.misses"),
        static_cast<double>(s.phase_cache.misses));
  m.set(m.gauge("placement.phase_cache.hit_rate"), s.phase_cache.hit_rate());
}

}  // namespace nvms
