#include "placement/trace_optimizer.hpp"

#include <limits>
#include <queue>

#include "simcore/error.hpp"
#include "simcore/thread_pool.hpp"

namespace nvms {

namespace {

/// One heap entry: a candidate promotion with the gain measured when it
/// was last scored.  `round` tags which committed plan the score is
/// against; entries from earlier rounds are stale (their gain is an upper
/// bound on the fresh gain whenever promotions have diminishing returns).
struct Candidate {
  std::size_t buf = 0;
  double gain = 0.0;
  int round = -1;
};

/// Max-heap order: larger gain first; equal gains resolved by
/// lexicographically smaller buffer name (the documented tie-break).
struct CandidateOrder {
  const std::vector<RecordedBuffer>* buffers;
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return (*buffers)[a.buf].name > (*buffers)[b.buf].name;
  }
};

}  // namespace

TraceOptimizerResult optimize_placement(
    const PhaseRecording& recording, std::uint64_t dram_budget,
    std::function<MemorySystem()> make_system,
    const TraceOptimizerOptions& options) {
  ReplayEvaluator evaluator(recording, std::move(make_system));

  TraceOptimizerResult result;
  result.baseline_runtime = evaluator.baseline();
  result.optimized_runtime = result.baseline_runtime;

  const std::size_t refresh_batch = std::max<std::size_t>(1, options.refresh_batch);
  std::priority_queue<Candidate, std::vector<Candidate>, CandidateOrder> heap(
      CandidateOrder{&recording.buffers});
  // Seed every buffer as stale with an infinite gain bound: the CELF loop
  // below scores them lazily, so round 0 reproduces the exhaustive
  // first-round scan and later rounds only re-score heap tops.
  for (std::size_t i = 0; i < recording.buffers.size(); ++i) {
    heap.push(Candidate{i, std::numeric_limits<double>::infinity(), -1});
  }

  int round = 0;
  std::vector<Candidate> batch;
  std::vector<double> runtimes;
  while (!heap.empty()) {
    if (heap.top().round == round) {
      // Fresh top: its gain is exact against the committed plan, and every
      // other entry scores below it (stale entries by their upper bound),
      // so it is the round's argmax — commit or stop, exactly as the
      // exhaustive greedy would.
      const Candidate best = heap.top();
      const double gain = best.gain;
      const double rel_gain = result.optimized_runtime > 0.0
                                  ? gain / result.optimized_runtime
                                  : 0.0;
      if (!(gain > 0.0) || rel_gain < options.min_gain) break;
      heap.pop();
      const RecordedBuffer& buf = recording.buffers[best.buf];
      evaluator.commit_flip(best.buf, Placement::kDram);
      result.plan.set(buf.name, Placement::kDram);
      result.dram_bytes += buf.bytes;
      result.optimized_runtime = evaluator.current_runtime();
      result.steps.emplace_back(buf.name, result.optimized_runtime);
      ++round;  // every remaining entry is now stale
      continue;
    }

    // Refresh wave: pop up to refresh_batch stale candidates and re-score
    // them in parallel.  The batch is chosen by heap order alone (scores
    // are pure), so the evaluated set — and with it result.stats.evals —
    // is identical for any worker count.
    batch.clear();
    while (!heap.empty() && heap.top().round != round &&
           batch.size() < refresh_batch) {
      const Candidate c = heap.top();
      heap.pop();
      // Promotions only grow DRAM usage, so a candidate that busts the
      // budget now busts it in every later round: drop it permanently.
      if (result.dram_bytes + recording.buffers[c.buf].bytes > dram_budget) {
        continue;
      }
      batch.push_back(c);
    }
    if (batch.empty()) continue;
    runtimes.assign(batch.size(), -1.0);
    parallel_for_index(
        batch.size(),
        [&](std::size_t k) {
          try {
            runtimes[k] =
                evaluator.evaluate_flip(batch[k].buf, Placement::kDram);
          } catch (const CapacityError&) {
            // Does not fit the configuration's DRAM; promotions only
            // shrink the remaining headroom, so drop permanently.
            runtimes[k] = -1.0;
          }
        },
        options.jobs);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (runtimes[k] < 0.0) continue;
      heap.push(Candidate{batch[k].buf,
                          result.optimized_runtime - runtimes[k], round});
    }
  }

  result.stats = evaluator.stats();
  if (options.telemetry != nullptr) evaluator.publish(*options.telemetry);
  return result;
}

TraceOptimizerResult optimize_placement_full_replay(
    const PhaseRecording& recording, std::uint64_t dram_budget,
    std::function<MemorySystem()> make_system, double min_gain) {
  TraceOptimizerResult result;
  {
    MemorySystem sys = make_system();
    result.baseline_runtime = recording.replay(sys);
  }
  result.optimized_runtime = result.baseline_runtime;
  result.stats.full_replays = 1;

  std::vector<bool> promoted(recording.buffers.size(), false);
  while (true) {
    int best = -1;
    double best_runtime = result.optimized_runtime;
    for (std::size_t i = 0; i < recording.buffers.size(); ++i) {
      const RecordedBuffer& buf = recording.buffers[i];
      if (promoted[i]) continue;
      if (result.dram_bytes + buf.bytes > dram_budget) continue;
      PlacementPlan candidate = result.plan;
      candidate.set(buf.name, Placement::kDram);
      MemorySystem sys = make_system();
      double runtime = 0.0;
      try {
        ++result.stats.evals;
        ++result.stats.full_replays;
        runtime = recording.replay(sys, &candidate);
      } catch (const CapacityError&) {
        continue;  // does not fit this configuration's DRAM
      }
      // Strictly better wins; an exact runtime tie goes to the
      // lexicographically smaller name (see the header's tie-break note).
      if (runtime < best_runtime ||
          (best >= 0 && runtime == best_runtime &&
           buf.name < recording.buffers[static_cast<std::size_t>(best)].name)) {
        best_runtime = runtime;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    const double gain =
        (result.optimized_runtime - best_runtime) / result.optimized_runtime;
    if (gain < min_gain) break;
    const RecordedBuffer& buf = recording.buffers[static_cast<std::size_t>(best)];
    promoted[static_cast<std::size_t>(best)] = true;
    result.plan.set(buf.name, Placement::kDram);
    result.dram_bytes += buf.bytes;
    result.optimized_runtime = best_runtime;
    result.steps.emplace_back(buf.name, best_runtime);
  }
  return result;
}

}  // namespace nvms
