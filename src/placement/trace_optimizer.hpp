// Trace-driven placement optimization.
//
// The write-aware heuristic (Sec. V-B) ranks buffers by profiled write
// intensity.  With a recorded phase trace in hand we can do better:
// *evaluate* candidate placements exactly and greedily promote whichever
// buffer yields the largest measured runtime improvement, until the
// budget is exhausted or no promotion helps.  This subsumes the heuristic
// (it also discovers buffers whose *reads* are the bottleneck, like
// ScaLAPACK's C tiles) and is the natural extension of the paper's
// optimization direction.
//
// optimize_placement() runs the greedy selection on the delta-replay
// engine (placement/replay_evaluator.hpp) with CELF lazy re-evaluation
// and parallel candidate scoring; its plans and runtimes are bit-identical
// to optimize_placement_full_replay(), the direct exhaustive-greedy
// reference that replays the whole trace per candidate (kept as the
// oracle the fast path is tested and benchmarked against).
//
// Tie-breaking: when two candidate promotions yield the *same* replayed
// runtime, both selectors promote the lexicographically smaller buffer
// name.  Buffer names are unique per recording (enforced on load), so the
// result never depends on recording order or evaluation interleaving —
// plans are byte-identical across repeats and worker counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mem/placement_plan.hpp"
#include "obs/metrics.hpp"
#include "placement/replay_evaluator.hpp"
#include "replay/recording.hpp"

namespace nvms {

struct TraceOptimizerOptions {
  /// Stop when the best promotion's relative gain falls below this (a
  /// strict runtime improvement is always required on top).
  double min_gain = 1e-3;
  /// Worker threads for candidate evaluation; 0 = ThreadPool default,
  /// 1 = serial.  Results are identical for any value.
  int jobs = 0;
  /// Stale candidates re-evaluated per refresh wave.  A fixed batch keeps
  /// the evaluation *set* independent of worker timing (determinism);
  /// larger batches trade lazy-evaluation savings for parallelism.
  std::size_t refresh_batch = 8;
  /// When set, the evaluator's statistics are published here as gauges
  /// (placement.evals, placement.phase_cache.*).
  MetricsRegistry* telemetry = nullptr;
};

struct TraceOptimizerResult {
  PlacementPlan plan;
  std::uint64_t dram_bytes = 0;
  double baseline_runtime = 0.0;   ///< all-auto placements
  double optimized_runtime = 0.0;  ///< with the returned plan
  /// Promotion order with the runtime after each step.
  std::vector<std::pair<std::string, double>> steps;
  /// Evaluation accounting (candidate evaluations, cache hit rates).
  ReplayEvalStats stats;

  double speedup() const {
    return optimized_runtime > 0.0 ? baseline_runtime / optimized_runtime
                                   : 0.0;
  }
};

/// Greedy forward selection over the recorded buffers under `dram_budget`
/// bytes, on the delta-replay evaluator: per-phase resolution memoized,
/// CELF lazy re-evaluation (stale gains are upper bounds, so a candidate
/// is only re-scored while it tops the heap), candidates scored in
/// parallel.  `make_system` must produce a fresh, identically-configured
/// MemorySystem on every call.  Stops when no candidate strictly improves
/// the runtime by at least `options.min_gain` (relative).
TraceOptimizerResult optimize_placement(
    const PhaseRecording& recording, std::uint64_t dram_budget,
    std::function<MemorySystem()> make_system,
    const TraceOptimizerOptions& options = {});

/// The reference selector: exhaustive greedy, every candidate scored by a
/// full trace replay on a fresh system each round.  Same plans, same
/// runtimes, same tie-breaking as optimize_placement() — kept as the
/// oracle for parity tests and the speedup baseline in benchmarks.
TraceOptimizerResult optimize_placement_full_replay(
    const PhaseRecording& recording, std::uint64_t dram_budget,
    std::function<MemorySystem()> make_system, double min_gain = 1e-3);

}  // namespace nvms
