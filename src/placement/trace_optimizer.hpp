// Trace-driven placement optimization.
//
// The write-aware heuristic (Sec. V-B) ranks buffers by profiled write
// intensity.  With a recorded phase trace in hand we can do better:
// *evaluate* candidate placements exactly by replaying the trace — each
// candidate costs microseconds — and greedily promote whichever buffer
// yields the largest measured runtime improvement per DRAM byte, until
// the budget is exhausted or no promotion helps.  This subsumes the
// heuristic (it also discovers buffers whose *reads* are the bottleneck,
// like ScaLAPACK's C tiles) and is the natural extension of the paper's
// optimization direction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/placement_plan.hpp"
#include "replay/recording.hpp"

namespace nvms {

struct TraceOptimizerResult {
  PlacementPlan plan;
  std::uint64_t dram_bytes = 0;
  double baseline_runtime = 0.0;   ///< all-auto placements
  double optimized_runtime = 0.0;  ///< with the returned plan
  /// Promotion order with the runtime after each step.
  std::vector<std::pair<std::string, double>> steps;

  double speedup() const {
    return optimized_runtime > 0.0 ? baseline_runtime / optimized_runtime
                                   : 0.0;
  }
};

/// Greedy forward selection over the recorded buffers under `dram_budget`
/// bytes.  `make_system` must produce a fresh MemorySystem for each
/// evaluation (same configuration every time); the recording is replayed
/// against it with candidate plans.  Stops when no candidate improves the
/// runtime by at least `min_gain` (relative).
template <typename SystemFactory>
TraceOptimizerResult optimize_placement(const PhaseRecording& recording,
                                        std::uint64_t dram_budget,
                                        SystemFactory&& make_system,
                                        double min_gain = 1e-3) {
  TraceOptimizerResult result;
  {
    auto sys = make_system();
    result.baseline_runtime = recording.replay(sys);
  }
  result.optimized_runtime = result.baseline_runtime;

  std::vector<bool> promoted(recording.buffers.size(), false);
  while (true) {
    int best = -1;
    double best_runtime = result.optimized_runtime;
    for (std::size_t i = 0; i < recording.buffers.size(); ++i) {
      const auto& buf = recording.buffers[i];
      if (promoted[i]) continue;
      if (result.dram_bytes + buf.bytes > dram_budget) continue;
      PlacementPlan candidate = result.plan;
      candidate.set(buf.name, Placement::kDram);
      auto sys = make_system();
      double runtime;
      try {
        runtime = recording.replay(sys, &candidate);
      } catch (const CapacityError&) {
        continue;  // does not fit this configuration's DRAM
      }
      if (runtime < best_runtime) {
        best_runtime = runtime;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    const double gain =
        (result.optimized_runtime - best_runtime) / result.optimized_runtime;
    if (gain < min_gain) break;
    const auto& buf = recording.buffers[static_cast<std::size_t>(best)];
    promoted[static_cast<std::size_t>(best)] = true;
    result.plan.set(buf.name, Placement::kDram);
    result.dram_bytes += buf.bytes;
    result.optimized_runtime = best_runtime;
    result.steps.emplace_back(buf.name, best_runtime);
  }
  return result;
}

}  // namespace nvms
