// MemorySystem integration tests: buffer registry, capacity policing, mode
// routing, counter accumulation, traces, and the typed Buffer<T> wrapper.
#include <gtest/gtest.h>

#include "mem/buffer.hpp"
#include "mem/space.hpp"
#include "memsim/memory_system.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

SystemConfig tiny(Mode mode) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.dram = ddr4_socket_params(16 * MiB);
  cfg.nvm = optane_socket_params(128 * MiB);
  return cfg;
}

Phase stream_phase(BufferId buf, std::uint64_t read_bytes,
                   std::uint64_t write_bytes, int threads = 24) {
  PhaseBuilder b("p");
  b.threads(threads);
  if (read_bytes) b.stream(seq_read(buf, read_bytes));
  if (write_bytes) b.stream(seq_write(buf, write_bytes));
  return b.build();
}

TEST(MemorySystem, RegisterAndRelease) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto id = sys.register_buffer("a", 1 * MiB);
  EXPECT_EQ(sys.footprint(), 1 * MiB);
  EXPECT_EQ(sys.buffer(id).name, "a");
  EXPECT_TRUE(sys.buffer(id).live);
  sys.release_buffer(id);
  EXPECT_EQ(sys.footprint(), 0u);
  EXPECT_THROW(sys.release_buffer(id), ConfigError);
}

TEST(MemorySystem, BasesAreDisjointAndAligned) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto a = sys.register_buffer("a", 5000);
  const auto b = sys.register_buffer("b", 5000);
  EXPECT_EQ(sys.buffer(a).base % (4 * KiB), 0u);
  EXPECT_EQ(sys.buffer(b).base % (4 * KiB), 0u);
  EXPECT_GE(sys.buffer(b).base, sys.buffer(a).base + 5000);
}

TEST(MemorySystem, DramOnlyCapacityEnforced) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  (void)sys.register_buffer("a", 10 * MiB);
  EXPECT_THROW(sys.register_buffer("b", 10 * MiB), CapacityError);
}

TEST(MemorySystem, CachedModeAllowsBeyondDramCapacity) {
  MemorySystem sys(tiny(Mode::kCachedNvm));
  (void)sys.register_buffer("a", 64 * MiB);  // 4x DRAM, fits in NVM
  EXPECT_THROW(sys.register_buffer("b", 128 * MiB), CapacityError);
}

TEST(MemorySystem, UncachedPlacementCapacity) {
  MemorySystem sys(tiny(Mode::kUncachedNvm));
  const auto a = sys.register_buffer("a", 12 * MiB, Placement::kNvm);
  // 12 MiB alone fits the 16 MiB DRAM...
  EXPECT_NO_THROW(sys.set_placement(a, Placement::kDram));
  EXPECT_EQ(sys.dram_resident(), 12 * MiB);
  // ...but a second 8 MiB DRAM-placed buffer overflows it.
  EXPECT_THROW(sys.register_buffer("b", 8 * MiB, Placement::kDram),
               CapacityError);
  sys.set_placement(a, Placement::kNvm);
  EXPECT_EQ(sys.dram_resident(), 0u);
  const auto b = sys.register_buffer("b", 8 * MiB, Placement::kDram);
  EXPECT_EQ(sys.dram_resident(), 8 * MiB);
  (void)b;
}

TEST(MemorySystem, ZeroSizeBufferRejected) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  EXPECT_THROW(sys.register_buffer("z", 0), ConfigError);
}

TEST(MemorySystem, SubmitAdvancesClockAndRecordsTraces) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto id = sys.register_buffer("a", 8 * MiB);
  EXPECT_DOUBLE_EQ(sys.now(), 0.0);
  (void)sys.submit(stream_phase(id, 1 * GiB, 0));
  EXPECT_GT(sys.now(), 0.0);
  EXPECT_FALSE(sys.traces().dram_read.empty());
  EXPECT_EQ(sys.traces().phases.size(), 1u);
  EXPECT_GT(sys.traces().dram_read.time_average(), 0.0);
  EXPECT_DOUBLE_EQ(sys.traces().nvm_read.time_average(), 0.0);
}

TEST(MemorySystem, UncachedRoutesToNvm) {
  MemorySystem sys(tiny(Mode::kUncachedNvm));
  const auto id = sys.register_buffer("a", 8 * MiB);
  (void)sys.submit(stream_phase(id, 1 * GiB, 0));
  EXPECT_GT(sys.traces().nvm_read.time_average(), 0.0);
  EXPECT_DOUBLE_EQ(sys.traces().dram_read.time_average(), 0.0);
}

TEST(MemorySystem, UncachedHonoursDramPlacement) {
  MemorySystem sys(tiny(Mode::kUncachedNvm));
  const auto id = sys.register_buffer("hot", 8 * MiB, Placement::kDram);
  (void)sys.submit(stream_phase(id, 1 * GiB, 0));
  EXPECT_GT(sys.traces().dram_read.time_average(), 0.0);
  EXPECT_DOUBLE_EQ(sys.traces().nvm_read.time_average(), 0.0);
}

TEST(MemorySystem, CachedModeSplitsTraffic) {
  MemorySystem sys(tiny(Mode::kCachedNvm));
  // Buffer 4x the DRAAM capacity: streaming reads must spill to NVM.
  const auto id = sys.register_buffer("big", 64 * MiB);
  (void)sys.submit(stream_phase(id, 256 * MiB, 0));
  EXPECT_GT(sys.traces().nvm_read.time_average(), 0.0);
  EXPECT_GT(sys.traces().dram_write.time_average(), 0.0);  // fills
}

TEST(MemorySystem, CachedModeHitsInDramForSmallWorkingSet) {
  MemorySystem sys(tiny(Mode::kCachedNvm));
  const auto id = sys.register_buffer("small", 4 * MiB);
  (void)sys.submit(stream_phase(id, 4 * MiB, 0));  // warm the cache
  sys.reset_stats(false);                          // keep cache contents
  (void)sys.submit(stream_phase(id, 64 * MiB, 0));
  const double nvm_bytes = sys.traces().nvm_read.time_average();
  const double dram_bytes = sys.traces().dram_read.time_average();
  EXPECT_GT(dram_bytes, 50.0 * std::max(nvm_bytes, 1.0));
}

TEST(MemorySystem, DramOnlyFasterThanUncachedNvm) {
  double t_dram = 0.0;
  double t_nvm = 0.0;
  for (Mode m : {Mode::kDramOnly, Mode::kUncachedNvm}) {
    MemorySystem sys(tiny(m));
    const auto id = sys.register_buffer("a", 8 * MiB);
    (void)sys.submit(stream_phase(id, 2 * GiB, 512 * MiB));
    (m == Mode::kDramOnly ? t_dram : t_nvm) = sys.now();
  }
  EXPECT_GT(t_nvm, 2.0 * t_dram);
}

TEST(MemorySystem, CountersAccumulate) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto id = sys.register_buffer("a", 8 * MiB);
  Phase p = stream_phase(id, 64 * MiB, 64 * MiB);
  p.flops = 1e8;
  (void)sys.submit(p);
  const auto& c = sys.counters();
  EXPECT_GT(c.instructions, 1e8);
  EXPECT_GT(c.cycles_active, 0.0);
  EXPECT_NEAR(c.imc_reads, static_cast<double>(64 * MiB) / 64.0, 1.0);
  EXPECT_NEAR(c.imc_writes, static_cast<double>(64 * MiB) / 64.0, 1.0);
  EXPECT_GT(c.ipc(), 0.0);
  sys.reset_stats();
  EXPECT_DOUBLE_EQ(sys.counters().instructions, 0.0);
  EXPECT_DOUBLE_EQ(sys.now(), 0.0);
}

TEST(MemorySystem, PerBufferTrafficProfiles) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto a = sys.register_buffer("a", 4 * MiB);
  const auto b = sys.register_buffer("b", 4 * MiB);
  Phase p = PhaseBuilder("mix")
                .threads(8)
                .stream(seq_read(a, 10 * MiB))
                .stream(seq_write(b, 5 * MiB))
                .build();
  (void)sys.submit(p);
  EXPECT_EQ(sys.traffic(a).read_bytes, 10 * MiB);
  EXPECT_EQ(sys.traffic(a).write_bytes, 0u);
  EXPECT_EQ(sys.traffic(b).write_bytes, 5 * MiB);
}

TEST(MemorySystem, StreamToReleasedBufferRejected) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto id = sys.register_buffer("a", 1 * MiB);
  sys.release_buffer(id);
  EXPECT_THROW(sys.submit(stream_phase(id, 1 * MiB, 0)), ConfigError);
}

TEST(MemorySystem, PhaseTimeFractions) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  const auto id = sys.register_buffer("a", 1 * MiB);
  Phase p1 = stream_phase(id, 256 * MiB, 0);
  p1.name = "stage1:x";
  Phase p2 = stream_phase(id, 256 * MiB, 0);
  p2.name = "stage2:y";
  (void)sys.submit(p1);
  (void)sys.submit(p2);
  EXPECT_NEAR(sys.traces().phase_time_fraction("stage1"), 0.5, 0.05);
}

TEST(TypedBuffer, RaiiAndAccess) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  {
    Buffer<double> buf(sys, "vec", 1024);
    EXPECT_EQ(buf.size(), 1024u);
    EXPECT_EQ(buf.bytes(), 8192u);
    buf[5] = 2.5;
    EXPECT_DOUBLE_EQ(buf[5], 2.5);
    EXPECT_EQ(sys.footprint(), 8192u);
    EXPECT_EQ(buf.span().size(), 1024u);
  }
  EXPECT_EQ(sys.footprint(), 0u);
}

TEST(TypedBuffer, MoveSemantics) {
  MemorySystem sys(tiny(Mode::kDramOnly));
  Buffer<int> a(sys, "a", 16);
  const auto id = a.id();
  Buffer<int> b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id);
  Buffer<int> c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(sys.footprint(), 16 * sizeof(int));
}

TEST(TypedBuffer, PlacementControl) {
  MemorySystem sys(tiny(Mode::kUncachedNvm));
  Buffer<float> buf(sys, "hot", 1024);
  EXPECT_EQ(buf.placement(), Placement::kAuto);
  buf.place(Placement::kDram);
  EXPECT_EQ(buf.placement(), Placement::kDram);
  EXPECT_EQ(sys.dram_resident(), buf.bytes());
}

TEST(ModeNames, RoundTrip) {
  EXPECT_EQ(parse_mode("dram-only"), Mode::kDramOnly);
  EXPECT_EQ(parse_mode(to_string(Mode::kCachedNvm)), Mode::kCachedNvm);
  EXPECT_EQ(parse_mode("uncached"), Mode::kUncachedNvm);
  EXPECT_FALSE(parse_mode("bogus").has_value());
}

TEST(SystemConfig, TestbedPreservesRatios) {
  const auto cfg = SystemConfig::testbed(Mode::kCachedNvm);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(cfg.nvm.capacity) /
          static_cast<double>(cfg.dram.capacity),
      8.0);
}

}  // namespace
}  // namespace nvms
