// Sparse CSR matrix and up-looking LU tests: structure validation, fill-in
// accounting, and solve residuals across pattern shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "dwarfs/sparse/sparse_matrix.hpp"
#include "simcore/error.hpp"

namespace nvms {
namespace {

double residual(const CsrMatrix& a, const std::vector<double>& x,
                const std::vector<double>& b) {
  const auto ax = csr_matvec(a, x);
  double r = 0.0;
  for (std::size_t i = 0; i < a.n; ++i) r += (ax[i] - b[i]) * (ax[i] - b[i]);
  return std::sqrt(r);
}

TEST(Csr, SyntheticMatrixStructure) {
  const auto a = make_synthetic_matrix(64, 3, 2, 7);
  a.validate();
  EXPECT_EQ(a.n, 64u);
  // every row holds its band plus the diagonal
  for (std::size_t i = 0; i < a.n; ++i) {
    EXPECT_GE(a.row_ptr[i + 1] - a.row_ptr[i], 4u);
    EXPECT_NE(a.at(i, i), 0.0);
  }
  // diagonal dominance
  for (std::size_t i = 0; i < a.n; ++i) {
    double off = 0.0;
    for (std::size_t p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
      if (a.col_idx[p] != i) off += std::abs(a.values[p]);
    }
    EXPECT_GT(std::abs(a.at(i, i)), off);
  }
}

TEST(Csr, MatvecAgainstDense) {
  const auto a = make_synthetic_matrix(16, 2, 1, 3);
  std::vector<double> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<double>(i) - 7.5;
  const auto y = csr_matvec(a, x);
  for (std::size_t i = 0; i < 16; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 16; ++j) expect += a.at(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

class LuShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(LuShapes, FactorSolveResidualSmall) {
  const auto [n, band, extra] = GetParam();
  const auto a = make_synthetic_matrix(n, band, extra, n * 13 + band);
  const auto lu = sparse_lu_factor(a);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::sin(static_cast<double>(i));
  const auto x = sparse_lu_solve(lu, b);
  EXPECT_LT(residual(a, x, b), 1e-8);
  // L strictly lower, U upper with full diagonal
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = lu.l.row_ptr[i]; p < lu.l.row_ptr[i + 1]; ++p) {
      EXPECT_LT(lu.l.col_idx[p], i);
    }
    bool has_diag = false;
    for (std::size_t p = lu.u.row_ptr[i]; p < lu.u.row_ptr[i + 1]; ++p) {
      EXPECT_GE(lu.u.col_idx[p], i);
      has_diag |= (lu.u.col_idx[p] == i);
    }
    EXPECT_TRUE(has_diag);
  }
  EXPECT_GE(lu.fill_ratio, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LuShapes,
    ::testing::Values(std::make_tuple(32, 2, 0),
                      std::make_tuple(100, 4, 1),
                      std::make_tuple(200, 8, 2),
                      std::make_tuple(64, 1, 4)));

TEST(SparseLu, FillInExceedsBandedPattern) {
  // random off-band entries must produce fill beyond A's pattern
  const auto a = make_synthetic_matrix(128, 3, 3, 11);
  const auto lu = sparse_lu_factor(a);
  EXPECT_GT(lu.l.nnz() + lu.u.nnz(), a.nnz());
  EXPECT_GT(lu.fill_ratio, 1.0);
}

TEST(SparseLu, PureBandHasNoFillBeyondBand) {
  const auto a = make_synthetic_matrix(64, 2, 0, 5);
  const auto lu = sparse_lu_factor(a);
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t p = lu.l.row_ptr[i]; p < lu.l.row_ptr[i + 1]; ++p) {
      EXPECT_GE(lu.l.col_idx[p] + 2, i);  // stays within the band
    }
  }
}

TEST(SparseLu, ReconstructsA) {
  // (L + I) * U == A within rounding, checked entrywise on a small case.
  const auto a = make_synthetic_matrix(24, 2, 1, 9);
  const auto lu = sparse_lu_factor(a);
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t j = 0; j < a.n; ++j) {
      double sum = lu.u.at(i, j);  // the k == i term (L has unit diagonal)
      for (std::size_t p = lu.l.row_ptr[i]; p < lu.l.row_ptr[i + 1]; ++p) {
        sum += lu.l.values[p] * lu.u.at(lu.l.col_idx[p], j);
      }
      EXPECT_NEAR(sum, a.at(i, j), 1e-9) << i << "," << j;
    }
  }
}

TEST(Csr, ValidationCatchesCorruption) {
  auto a = make_synthetic_matrix(16, 2, 0, 1);
  a.col_idx[2] = 99;  // out of range
  EXPECT_THROW(a.validate(), ConfigError);
}

}  // namespace
}  // namespace nvms
