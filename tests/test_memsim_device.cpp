// Device-model tests: scaling curves, capacities, latency limits, and the
// calibration facts the reproduction depends on (Sec. II-A / [21] numbers).
#include <gtest/gtest.h>

#include "memsim/cpu.hpp"
#include "memsim/device.hpp"
#include "memsim/scaling_curve.hpp"
#include "memsim/wpq.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

TEST(ScalingCurve, InterpolatesAndClamps) {
  ScalingCurve c({{1, 0.1}, {4, 0.4}, {8, 1.0}});
  EXPECT_DOUBLE_EQ(c.at(0.5), 0.1);   // clamp low
  EXPECT_DOUBLE_EQ(c.at(100), 1.0);   // clamp high
  EXPECT_DOUBLE_EQ(c.at(4), 0.4);     // exact point
  EXPECT_NEAR(c.at(2), 0.2, 1e-12);   // interpolation
  EXPECT_NEAR(c.at(6), 0.7, 1e-12);
}

TEST(ScalingCurve, Argmax) {
  ScalingCurve c({{1, 0.5}, {4, 1.0}, {16, 0.4}});
  EXPECT_DOUBLE_EQ(c.argmax(), 4.0);
}

TEST(ScalingCurve, RejectsBadPoints) {
  EXPECT_THROW(ScalingCurve({}), ConfigError);
  EXPECT_THROW(ScalingCurve({{2, 0.1}, {2, 0.2}}), ConfigError);
  EXPECT_THROW(ScalingCurve({{1, -0.1}}), ConfigError);
}

TEST(Device, OptaneCalibration) {
  const auto p = optane_socket_params(768 * GiB);
  EXPECT_DOUBLE_EQ(p.read_lat_seq, ns(174));
  EXPECT_DOUBLE_EQ(p.read_lat_rand, ns(304));
  EXPECT_DOUBLE_EQ(p.read_bw_peak, gbps(39));
  EXPECT_DOUBLE_EQ(p.write_bw_peak, gbps(13));
  EXPECT_EQ(p.media_granularity, 256u);
  p.validate();
}

TEST(Device, OptaneAsymmetryIsRoughlyThreeTimes) {
  const auto p = optane_socket_params(768 * GiB);
  EXPECT_NEAR(p.read_bw_peak / p.write_bw_peak, 3.0, 0.5);
}

TEST(Device, OptaneWriteScalingPeaksAtFewThreads) {
  const auto p = optane_socket_params(768 * GiB);
  EXPECT_DOUBLE_EQ(p.write_scaling.argmax(), 4.0);
  // Decline at high thread counts: the WPQ-contention signature.
  EXPECT_LT(p.write_capacity(Pattern::kSequential, 48),
            p.write_capacity(Pattern::kSequential, 4));
  // At ~36 threads the sequential write capacity lands near the paper's
  // throttled 2.3 GB/s SuperLU stage-1 write bandwidth.
  EXPECT_NEAR(p.write_capacity(Pattern::kSequential, 36) / GB, 2.3, 0.4);
}

TEST(Device, OptaneReadScalingKeepsScaling) {
  const auto p = optane_socket_params(768 * GiB);
  EXPECT_GT(p.read_capacity(Pattern::kSequential, 16),
            p.read_capacity(Pattern::kSequential, 4));
  EXPECT_NEAR(p.read_capacity(Pattern::kSequential, 16) / GB, 39.0, 0.5);
}

TEST(Device, DramFasterThanNvmEverywhere) {
  const auto d = ddr4_socket_params(96 * GiB);
  const auto n = optane_socket_params(768 * GiB);
  for (double t : {1.0, 4.0, 12.0, 24.0, 48.0}) {
    for (Pattern pat :
         {Pattern::kSequential, Pattern::kStrided, Pattern::kRandom}) {
      EXPECT_GT(d.read_capacity(pat, t), n.read_capacity(pat, t));
      EXPECT_GT(d.write_capacity(pat, t), n.write_capacity(pat, t));
    }
  }
  EXPECT_LT(d.read_lat_rand, n.read_lat_rand);
}

TEST(Device, RandomWritePaysMediaGranularity) {
  const auto n = optane_socket_params(768 * GiB);
  // 64B random stores into 256B media: effective write efficiency is far
  // below the sequential path.
  EXPECT_LT(n.write_capacity(Pattern::kRandom, 4),
            0.5 * n.write_capacity(Pattern::kSequential, 4));
}

TEST(Device, LatencyLimitedReadBw) {
  const auto n = optane_socket_params(768 * GiB);
  // Little's law: t * mlp * 64B / 304ns.
  const double expect = 36.0 * 2.0 * 64.0 / ns(304);
  EXPECT_NEAR(n.latency_limited_read_bw(36, 2.0), expect, 1.0);
  EXPECT_GT(n.latency_limited_read_bw(48, 4.0),
            n.latency_limited_read_bw(24, 4.0));
}

TEST(Device, ValidationCatchesNonsense) {
  auto p = ddr4_socket_params(1 * GiB);
  p.capacity = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ddr4_socket_params(1 * GiB);
  p.read_lat_rand = p.read_lat_seq / 2;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ddr4_socket_params(1 * GiB);
  p.throttle_alpha = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Cpu, CoreEquivalents) {
  CpuParams cpu;  // 24 cores, 2-way SMT, 0.3 HT yield
  EXPECT_DOUBLE_EQ(cpu.core_equivalents(1), 1.0);
  EXPECT_DOUBLE_EQ(cpu.core_equivalents(24), 24.0);
  EXPECT_DOUBLE_EQ(cpu.core_equivalents(48), 24.0 + 0.3 * 24.0);
  EXPECT_DOUBLE_EQ(cpu.core_equivalents(500), cpu.core_equivalents(48));
}

TEST(Cpu, ComputeTimeAmdahl) {
  CpuParams cpu;
  const double flops = 1e9;
  const double t1 = cpu.compute_time(flops, 1, 1.0);
  const double t24 = cpu.compute_time(flops, 24, 1.0);
  EXPECT_NEAR(t1 / t24, 24.0, 1e-9);
  // With a serial fraction, speedup saturates below the core count.
  const double t24_amdahl = cpu.compute_time(flops, 24, 0.9);
  EXPECT_GT(t24_amdahl, t24);
  EXPECT_LT(t1 / t24_amdahl, 10.0);
}

TEST(Cpu, ZeroFlopsZeroTime) {
  CpuParams cpu;
  EXPECT_DOUBLE_EQ(cpu.compute_time(0.0, 8, 1.0), 0.0);
}

TEST(Wpq, UtilizationShape) {
  WpqModel w{64, 0.85};
  EXPECT_DOUBLE_EQ(w.utilization(0.0, gbps(2.3)), 0.0);
  // Low demand leaves the queue nearly empty (Laghos at 1.3 GB/s).
  EXPECT_LT(w.utilization(gbps(1.3), gbps(2.3)), 0.35);
  // Demand at/above drain pins utilization at 1 (SuperLU stage 1).
  EXPECT_DOUBLE_EQ(w.utilization(gbps(33), gbps(2.3)), 1.0);
  EXPECT_DOUBLE_EQ(w.utilization(gbps(2.3), gbps(2.3)), 1.0);
  // Monotone in demand.
  double prev = 0.0;
  for (double d = 0.1; d < 3.0; d += 0.1) {
    const double u = w.utilization(gbps(d), gbps(2.3));
    EXPECT_GE(u, prev);
    prev = u;
  }
}

TEST(Wpq, ZeroDrain) {
  WpqModel w{64, 0.85};
  EXPECT_DOUBLE_EQ(w.utilization(gbps(1), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.utilization(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace nvms
