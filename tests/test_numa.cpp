// Two-socket NUMA topology tests: placement policies (the simulated
// numactl), per-socket capacity, UPI link constraints, and the ablation
// orderings the paper's Sec. IV-A references ("severe NUMA effects").
#include <gtest/gtest.h>

#include "harness/registry.hpp"
#include "mem/buffer.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

SystemConfig two_sockets(Mode mode, NumaPolicy policy) {
  SystemConfig cfg = SystemConfig::testbed(mode);
  cfg.sockets = 2;
  cfg.numa_policy = policy;
  return cfg;
}

Phase big_read(BufferId id, int threads = 24) {
  return PhaseBuilder("probe")
      .threads(threads)
      .stream(seq_read(id, 4 * GiB))
      .build();
}

TEST(Numa, ConfigValidation) {
  SystemConfig cfg = SystemConfig::testbed(Mode::kDramOnly);
  cfg.sockets = 3;
  EXPECT_THROW(MemorySystem{cfg}, ConfigError);
  cfg = SystemConfig::testbed(Mode::kDramOnly);
  cfg.numa_policy = NumaPolicy::kRemoteSocket;  // needs two sockets
  EXPECT_THROW(MemorySystem{cfg}, ConfigError);
  cfg = two_sockets(Mode::kCachedNvm, NumaPolicy::kLocalSocket);
  EXPECT_THROW(MemorySystem{cfg}, ConfigError);  // Memory mode: one socket
  cfg = two_sockets(Mode::kUncachedNvm, NumaPolicy::kLocalSocket);
  cfg.upi_bw = 0.0;
  EXPECT_THROW(MemorySystem{cfg}, ConfigError);
}

TEST(Numa, PolicyAssignsBufferSocket) {
  for (const auto& [policy, numa] :
       std::vector<std::pair<NumaPolicy, int>>{
           {NumaPolicy::kLocalSocket, 0},
           {NumaPolicy::kRemoteSocket, 1},
           {NumaPolicy::kInterleave, -1}}) {
    MemorySystem sys(two_sockets(Mode::kUncachedNvm, policy));
    const auto id = sys.register_buffer("b", MiB);
    EXPECT_EQ(sys.buffer(id).numa, numa) << to_string(policy);
  }
}

TEST(Numa, RemoteAccessIsSlower) {
  double local_time = 0.0;
  double remote_time = 0.0;
  for (const auto policy :
       {NumaPolicy::kLocalSocket, NumaPolicy::kRemoteSocket}) {
    MemorySystem sys(two_sockets(Mode::kUncachedNvm, policy));
    const auto id = sys.register_buffer("b", 8 * MiB);
    (void)sys.submit(big_read(id));
    (policy == NumaPolicy::kLocalSocket ? local_time : remote_time) =
        sys.now();
  }
  EXPECT_GT(remote_time, 1.2 * local_time);
}

TEST(Numa, InterleaveBeatsLocalForBandwidthBoundReads) {
  // Interleaving aggregates both sockets' NVM read bandwidth; the remote
  // half is UPI-limited but still additive.  Remote-only is the slowest.
  double time[3];
  int i = 0;
  for (const auto policy :
       {NumaPolicy::kLocalSocket, NumaPolicy::kInterleave,
        NumaPolicy::kRemoteSocket}) {
    MemorySystem sys(two_sockets(Mode::kUncachedNvm, policy));
    const auto id = sys.register_buffer("b", 8 * MiB);
    (void)sys.submit(big_read(id));
    time[i++] = sys.now();
  }
  EXPECT_LT(time[1], time[0]);  // interleave < local (more bandwidth)
  EXPECT_LT(time[0], time[2]);  // local < remote (UPI-capped)
}

TEST(Numa, InterleaveCanBeatLocalWhenDeviceBound) {
  // Interleaving adds the remote socket's (coherence-derated) NVM write
  // bandwidth: a write-bound stream runs measurably faster interleaved.
  double local_time = 0.0;
  double il_time = 0.0;
  for (const auto policy :
       {NumaPolicy::kLocalSocket, NumaPolicy::kInterleave}) {
    MemorySystem sys(two_sockets(Mode::kUncachedNvm, policy));
    const auto id = sys.register_buffer("b", 8 * MiB);
    (void)sys.submit(PhaseBuilder("w")
                         .threads(4)
                         .stream(seq_write(id, 4 * GiB))
                         .build());
    (policy == NumaPolicy::kLocalSocket ? local_time : il_time) = sys.now();
  }
  EXPECT_LT(il_time, 0.9 * local_time);
}

TEST(Numa, UpiLinkCapsRemoteBandwidth) {
  MemorySystem sys(two_sockets(Mode::kDramOnly, NumaPolicy::kRemoteSocket));
  const auto id = sys.register_buffer("b", 8 * MiB);
  (void)sys.submit(big_read(id));
  // 4 GiB over a 31.2 GB/s link: the link, not the remote DRAM (105 GB/s),
  // is the constraint.
  const double link_floor =
      4.0 * static_cast<double>(GiB) / sys.config().upi_bw;
  EXPECT_GE(sys.now(), link_floor * 0.999);
  EXPECT_LE(sys.now(), link_floor * 1.25);
}

TEST(Numa, PerSocketCapacityWithInterleave) {
  // A buffer larger than one socket's DRAM fits when interleaved.
  MemorySystem il(two_sockets(Mode::kDramOnly, NumaPolicy::kInterleave));
  EXPECT_NO_THROW(il.register_buffer("big", 120 * MiB));
  MemorySystem local(two_sockets(Mode::kDramOnly, NumaPolicy::kLocalSocket));
  EXPECT_THROW(local.register_buffer("big", 120 * MiB), CapacityError);
}

TEST(Numa, AppLevelRemoteIsAlwaysSlowest) {
  AppConfig cfg;
  cfg.threads = 36;
  double time[3];
  int i = 0;
  for (const auto policy :
       {NumaPolicy::kLocalSocket, NumaPolicy::kInterleave,
        NumaPolicy::kRemoteSocket}) {
    const auto r = run_app_on(
        "xsbench", two_sockets(Mode::kUncachedNvm, policy), cfg);
    time[i++] = r.runtime;
  }
  // remote-only is the pathological case the paper avoids
  EXPECT_GT(time[2], time[0]);
  EXPECT_GT(time[2], time[1]);
  // interleave stays within a factor of local (half the traffic is local)
  EXPECT_LT(time[1], 1.2 * time[0]);
  EXPECT_GT(time[1], 0.4 * time[0]);
}

TEST(Numa, RemoteWritePressureReachesReportedWpq) {
  // Regression: submit() aggregated only read_bw/write_bw across sockets;
  // wpq_util and throttle were copied from the local lanes alone, so a
  // remote-placed write-heavy phase reported an idle WPQ (0.0) and an
  // unthrottled read multiplier (1.0) while the remote NVM was saturated.
  // The report must carry the worst pressure across sockets: max
  // utilization, min (most throttled) multiplier.
  MemorySystem sys(two_sockets(Mode::kUncachedNvm,
                               NumaPolicy::kRemoteSocket));
  const auto id = sys.register_buffer("b", 8 * MiB);
  const auto res = sys.submit(PhaseBuilder("w")
                                  .threads(24)
                                  .stream(seq_write(id, 4 * GiB))
                                  .build());
  EXPECT_GT(res.nvm.wpq_util, 0.1);
  EXPECT_LT(res.nvm.throttle, 1.0);
  // And it is the same pressure a local placement of the same phase sees
  // (the remote lane is derated, so at least as much).
  MemorySystem local(two_sockets(Mode::kUncachedNvm,
                                 NumaPolicy::kLocalSocket));
  const auto lid = local.register_buffer("b", 8 * MiB);
  const auto lres = local.submit(PhaseBuilder("w")
                                     .threads(24)
                                     .stream(seq_write(lid, 4 * GiB))
                                     .build());
  EXPECT_GE(res.nvm.wpq_util, 0.9 * lres.nvm.wpq_util);
}

TEST(Numa, SingleSocketBehaviourUnchanged) {
  // The default configuration must be bit-identical to the pre-topology
  // model: this pins the calibration.
  AppConfig cfg;
  cfg.threads = 36;
  const auto a = run_app("superlu", Mode::kUncachedNvm, cfg);
  SystemConfig one = SystemConfig::testbed(Mode::kUncachedNvm);
  one.sockets = 1;
  const auto b = run_app_on("superlu", one, cfg);
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
}

}  // namespace
}  // namespace nvms
