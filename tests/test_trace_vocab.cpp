// Unit tests for the traffic vocabulary: stream constructors, pattern
// classification (granule thresholds), phase builders and aggregates, and
// the multi-lane resolver's UPI constraint.
#include <gtest/gtest.h>

#include "memsim/resolve.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"
#include "trace/pattern.hpp"
#include "trace/phase.hpp"

namespace nvms {
namespace {

TEST(Pattern, Classification) {
  EXPECT_EQ(classify(Pattern::kSequential, 64), PatClass::kSeq);
  EXPECT_EQ(classify(Pattern::kStrided, 64), PatClass::kStrided);
  EXPECT_EQ(classify(Pattern::kRandom, 64), PatClass::kRandSmall);
  EXPECT_EQ(classify(Pattern::kRandom, 255), PatClass::kRandSmall);
  EXPECT_EQ(classify(Pattern::kRandom, 256), PatClass::kRandLarge);
  EXPECT_EQ(classify(Pattern::kRandom, 4096), PatClass::kRandLarge);
  // sequential/strided classification ignores the granule
  EXPECT_EQ(classify(Pattern::kSequential, 8), PatClass::kSeq);
}

TEST(Pattern, StreamConstructors) {
  const auto r = seq_read(3, 100);
  EXPECT_EQ(r.buffer, 3u);
  EXPECT_EQ(r.bytes, 100u);
  EXPECT_EQ(r.pattern, Pattern::kSequential);
  EXPECT_EQ(r.dir, Dir::kRead);
  const auto w = rand_write(1, 50).with_granule(512).with_reuse(3, MiB);
  EXPECT_EQ(w.dir, Dir::kWrite);
  EXPECT_EQ(w.granule, 512u);
  EXPECT_EQ(w.reuse, 3u);
  EXPECT_EQ(w.reuse_block, MiB);
  EXPECT_STREQ(to_string(Pattern::kStrided), "strided");
}

TEST(Phase, BuilderAndAggregates) {
  Phase p = PhaseBuilder("k")
                .threads(8)
                .flops(1e6)
                .parallel_fraction(0.9)
                .mlp(4)
                .overlap(0.5)
                .stream(seq_read(0, 100))
                .stream(rand_write(1, 40))
                .stream(strided_read(0, 60))
                .build();
  EXPECT_EQ(p.name, "k");
  EXPECT_EQ(p.threads, 8);
  EXPECT_DOUBLE_EQ(p.mlp, 4.0);
  EXPECT_EQ(p.read_bytes(), 160u);
  EXPECT_EQ(p.write_bytes(), 40u);
  EXPECT_EQ(p.total_bytes(), 200u);
}

TEST(DeviceDemand, AccumulatesByClass) {
  DeviceDemand d;
  d.add(Pattern::kRandom, Dir::kRead, 100, 64);    // RandSmall
  d.add(Pattern::kRandom, Dir::kRead, 50, 2048);   // RandLarge
  d.add(Pattern::kSequential, Dir::kWrite, 70);
  EXPECT_EQ(d.read[static_cast<int>(PatClass::kRandSmall)], 100u);
  EXPECT_EQ(d.read[static_cast<int>(PatClass::kRandLarge)], 50u);
  EXPECT_EQ(d.read_total(), 150u);
  EXPECT_EQ(d.write_total(), 70u);
}

TEST(ResolveLanes, UpiConstraintBindsWhenSlow) {
  const auto dram = ddr4_socket_params(96 * GiB);
  const CpuParams cpu;
  Phase p;
  p.name = "x";
  p.threads = 24;
  std::vector<LaneDemand> lanes(1);
  lanes[0].dev = &dram;
  lanes[0].dem.add(Pattern::kSequential, Dir::kRead, 1 * GiB);
  // device alone: ~10 ms at 105 GB/s; a 5 GB/s UPI makes it ~215 ms
  const auto fast = resolve_lanes(p, lanes, cpu);
  const auto slow = resolve_lanes(p, lanes, cpu,
                                  static_cast<double>(GiB), gbps(5));
  EXPECT_GT(slow.time, 20.0 * fast.time);
  EXPECT_NEAR(slow.time, static_cast<double>(GiB) / gbps(5), 1e-6);
}

TEST(ResolveLanes, RejectsUpiTrafficWithoutBandwidth) {
  const auto dram = ddr4_socket_params(96 * GiB);
  const CpuParams cpu;
  Phase p;
  p.name = "x";
  p.threads = 4;
  std::vector<LaneDemand> lanes(1);
  lanes[0].dev = &dram;
  EXPECT_THROW(resolve_lanes(p, lanes, cpu, 100.0, 0.0), ConfigError);
}

TEST(ResolveLanes, ManyLanesTakeTheSlowest) {
  const auto dram = ddr4_socket_params(96 * GiB);
  const auto nvm = optane_socket_params(768 * GiB);
  const CpuParams cpu;
  Phase p;
  p.name = "x";
  p.threads = 24;
  std::vector<LaneDemand> lanes(4);
  for (auto& l : lanes) l.dev = &dram;
  lanes[3].dev = &nvm;
  for (auto& l : lanes) l.dem.add(Pattern::kSequential, Dir::kRead, GiB);
  const auto res = resolve_lanes(p, lanes, cpu);
  const double nvm_floor =
      static_cast<double>(GiB) / nvm.read_capacity(PatClass::kSeq, 24);
  EXPECT_NEAR(res.time, nvm_floor, 0.02 * nvm_floor);
  ASSERT_EQ(res.lanes.size(), 4u);
  EXPECT_GT(res.lanes[0].read_bw, 0.0);
}

}  // namespace
}  // namespace nvms
