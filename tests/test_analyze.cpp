// Tests for the bottleneck-attribution layer (obs/analyze/) and the
// service-ready aggregation primitives (obs/sketch.hpp): quantile-sketch
// geometry, sliding windows, the attribution rule pipeline, profile
// construction/merging, run diffing, the Prometheus exporter's text
// format, and the `explain`/`diff` CLI determinism contract (byte-equal
// output across --jobs and --resolve-cache).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "harness/sweep.hpp"
#include "obs/analyze/diff.hpp"
#include "obs/analyze/profile.hpp"
#include "obs/export.hpp"
#include "obs/sketch.hpp"
#include "obs/telemetry.hpp"
#include "prof/windows.hpp"

namespace nvms {
namespace {

// ---------- quantile sketch -------------------------------------------------

TEST(Sketch, BucketGeometryMatchesMetricHistogram) {
  // The sketch must land every value in the same bucket the registry's
  // log2 histogram uses, or from_metric() would shift quantiles.
  MetricsRegistry reg;
  const auto id = reg.histogram("h");
  QuantileSketch direct;
  const double values[] = {1e-9, 0.5, 1.0, 1.5, 2.0, 3.0, 1024.0, 1e12};
  for (const double v : values) {
    reg.observe(id, v);
    direct.add(v);
  }
  const QuantileSketch from = QuantileSketch::from_metric(reg.metrics()[0]);
  EXPECT_EQ(from.count(), direct.count());
  EXPECT_DOUBLE_EQ(from.sum(), direct.sum());
  EXPECT_DOUBLE_EQ(from.min(), direct.min());
  EXPECT_DOUBLE_EQ(from.max(), direct.max());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(from.quantile(q), direct.quantile(q)) << "q=" << q;
  }
  // Zero and negatives collapse into the lowest bucket, not UB.
  EXPECT_EQ(QuantileSketch::bucket_of(0.0), 0);
  EXPECT_EQ(QuantileSketch::bucket_of(-3.0), 0);
  EXPECT_EQ(QuantileSketch::bucket_of(1.0), QuantileSketch::kBucketBias);
}

TEST(Sketch, QuantilesAreOrderedAndClamped) {
  QuantileSketch s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  const double p50 = s.p50(), p95 = s.p95(), p99 = s.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max());
  EXPECT_GE(p50, s.min());
  // Log2 buckets bound the relative error by 2x.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(Sketch, EmptyAndSingleValue) {
  QuantileSketch s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(42.0);
  // One observation: every quantile collapses onto it (clamped).
  EXPECT_DOUBLE_EQ(s.p50(), 42.0);
  EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(Sketch, MergeEqualsUnion) {
  QuantileSketch a, b, u;
  for (int i = 0; i < 100; ++i) {
    const double v = std::exp2(static_cast<double>(i % 17) - 5.0);
    ((i % 2 == 0) ? a : b).add(v);
    u.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), u.count());
  EXPECT_DOUBLE_EQ(a.sum(), u.sum());
  for (double q : {0.1, 0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), u.quantile(q));
  }
}

// ---------- sliding windows -------------------------------------------------

TEST(Windows, SlidingAggregatorBucketsByTimeAndKey) {
  SlidingWindowAggregator agg(1.0);
  agg.observe("bw.read_gbs", "device=nvm0", 0.25, 10.0);
  agg.observe("bw.read_gbs", "device=nvm0", 0.75, 20.0);
  agg.observe("bw.read_gbs", "device=nvm0", 1.5, 30.0);
  agg.observe("bw.read_gbs", "device=dram0", 0.5, 50.0);
  ASSERT_EQ(agg.streams().size(), 2u);  // first-seen key order
  const auto& nvm = agg.streams()[0];
  EXPECT_EQ(nvm.name, "bw.read_gbs");
  EXPECT_EQ(nvm.labels, "device=nvm0");
  ASSERT_EQ(nvm.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(nvm.windows[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(nvm.windows[0].t1, 1.0);
  EXPECT_EQ(nvm.windows[0].sketch.count(), 2u);
  EXPECT_DOUBLE_EQ(nvm.windows[0].sketch.mean(), 15.0);
  EXPECT_DOUBLE_EQ(nvm.windows[1].t0, 1.0);
  EXPECT_EQ(nvm.windows[1].sketch.count(), 1u);
  EXPECT_EQ(agg.streams()[1].labels, "device=dram0");
}

TEST(Windows, SlidingAggregatorBoundsRetainedWindows) {
  SlidingWindowAggregator agg(1.0, /*max_windows=*/2);
  for (int w = 0; w < 5; ++w) {
    agg.observe("g", "", static_cast<double>(w) + 0.5,
                static_cast<double>(w));
  }
  ASSERT_EQ(agg.streams().size(), 1u);
  const auto& wins = agg.streams()[0].windows;
  ASSERT_EQ(wins.size(), 2u);  // only the trailing two survive
  EXPECT_DOUBLE_EQ(wins[0].t0, 3.0);
  EXPECT_DOUBLE_EQ(wins[1].t0, 4.0);
  // A late (out-of-order) sample folds into the newest window instead of
  // resurrecting an evicted one.
  agg.observe("g", "", 0.1, 99.0);
  EXPECT_EQ(agg.streams()[0].windows.back().sketch.count(), 2u);
}

TEST(Windows, WindowMetricsFoldsEverySeries) {
  MetricsRegistry reg;
  reg.epoch_sample("bw.read_gbs", "nvm0", 0.1, 5.0);
  reg.epoch_sample("bw.read_gbs", "nvm0", 1.1, 7.0);
  reg.epoch_sample("wpq.util", "nvm0", 0.2, 0.9);
  const auto agg = window_metrics(reg, 1.0);
  ASSERT_EQ(agg.streams().size(), 2u);
  EXPECT_EQ(agg.streams()[0].name, "bw.read_gbs");
  EXPECT_EQ(agg.streams()[0].windows.size(), 2u);
  EXPECT_EQ(agg.streams()[1].name, "wpq.util");
}

// ---------- attribution rules ----------------------------------------------

PhaseSignals base_signals() {
  PhaseSignals s;
  s.count = 1;
  s.total_s = 1.0;
  s.mem_share = 1.0;
  return s;
}

TEST(Attribute, PinnedWpqFavorsSaturationOverThrottling) {
  AttributionThresholds t;
  PhaseSignals s = base_signals();
  s.nvm_read_gbs = 5.0;
  s.nvm_write_gbs = 2.0;
  s.nvm_wpq_util = 1.0;  // queue pinned at capacity
  s.nvm_throttle = 0.12;
  s.bw_util = 0.2;
  const Verdict v = attribute(s, t);
  EXPECT_EQ(v.cls, Bottleneck::kWpqSaturated);
  EXPECT_GT(v.score, 0.5);
}

TEST(Attribute, BusyButUnpinnedQueueFavorsReadThrottling) {
  AttributionThresholds t;
  PhaseSignals s = base_signals();
  s.nvm_read_gbs = 8.0;
  s.nvm_write_gbs = 2.0;
  s.nvm_wpq_util = 0.96;  // above wpq_util, below wpq_sat
  s.nvm_throttle = 0.25;
  s.bw_util = 0.25;
  const Verdict v = attribute(s, t);
  EXPECT_EQ(v.cls, Bottleneck::kReadThrottled);
}

TEST(Attribute, MechanismsNeedTheirTraffic) {
  AttributionThresholds t;
  PhaseSignals s = base_signals();
  s.nvm_wpq_util = 1.0;  // stale extreme, but no NVM writes this phase
  s.nvm_throttle = 0.1;  // ...and no NVM reads either
  s.dram_read_gbs = 10.0;
  s.bw_util = 0.1;
  const Verdict v = attribute(s, t);
  EXPECT_NE(v.cls, Bottleneck::kWpqSaturated);
  EXPECT_NE(v.cls, Bottleneck::kReadThrottled);
}

TEST(Attribute, CacheConflictBandwidthAndLatency) {
  AttributionThresholds t;
  {
    PhaseSignals s = base_signals();
    s.dram_read_gbs = 20.0;
    s.cache_s = 1.0;
    s.cache_conflict = 0.4;
    s.bw_util = 0.3;
    EXPECT_EQ(attribute(s, t).cls, Bottleneck::kCacheConflict);
  }
  {
    PhaseSignals s = base_signals();
    s.dram_read_gbs = 90.0;
    s.bw_util = 0.85;
    EXPECT_EQ(attribute(s, t).cls, Bottleneck::kBandwidthBound);
  }
  {
    PhaseSignals s = base_signals();
    s.nvm_read_gbs = 5.0;
    s.bw_util = 0.15;  // far below every ceiling, yet memory-dominated
    s.mem_share = 0.95;
    EXPECT_EQ(attribute(s, t).cls, Bottleneck::kLatencyBound);
  }
}

TEST(Attribute, UnconstrainedCarriesHeadroomEvidence) {
  AttributionThresholds t;
  PhaseSignals s = base_signals();
  s.dram_read_gbs = 5.0;
  s.bw_util = 0.15;
  s.mem_share = 0.2;  // compute-dominated: nothing fires
  const Verdict v = attribute(s, t);
  EXPECT_EQ(v.cls, Bottleneck::kUnconstrained);
  EXPECT_GT(v.score, 0.0);
  ASSERT_FALSE(v.evidence.empty());
  EXPECT_EQ(v.evidence[0].signal, "headroom");
}

TEST(Attribute, EvidenceContributionsSumToHundred) {
  AttributionThresholds t;
  PhaseSignals s = base_signals();
  s.nvm_read_gbs = 8.0;
  s.nvm_write_gbs = 4.0;
  s.nvm_wpq_util = 0.9;
  s.nvm_throttle = 0.3;
  s.bw_util = 0.7;
  const Verdict v = attribute(s, t);
  ASSERT_GE(v.evidence.size(), 2u);  // several mechanisms fired
  double total = 0.0;
  double prev = 1e9;
  for (const auto& e : v.evidence) {
    total += e.contribution;
    EXPECT_LE(e.contribution, prev + 1e-9);  // sorted descending
    prev = e.contribution;
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(Attribute, PhaseEquivalenceClassStripsIterationDecorations) {
  EXPECT_EQ(phase_equivalence_class("smooth-down"), "smooth-down");
  EXPECT_EQ(phase_equivalence_class("iter-17"), "iter");
  EXPECT_EQ(phase_equivalence_class("solve.003"), "solve");
  EXPECT_EQ(phase_equivalence_class("fft_2"), "fft");
  EXPECT_EQ(phase_equivalence_class("step#12"), "step");
  EXPECT_EQ(phase_equivalence_class("42"), "42");  // never empties a name
}

// ---------- profile construction -------------------------------------------

RunProfile profile_for(const std::string& app, Mode mode, double scale,
                       int jobs = 1,
                       ResolveCacheMode rc = ResolveCacheMode::kOff) {
  SweepSpec spec;
  spec.app = app;
  spec.modes = {mode};
  spec.threads = {36};
  spec.scales = {scale};
  spec.jobs = jobs;
  spec.telemetry = true;
  spec.resolve_cache = rc;
  const auto result = run_sweep(spec);
  EXPECT_FALSE(result.rows.empty()) << app << ": configuration skipped";
  return sweep_profile(result, app);
}

TEST(Profile, BuildCoversEveryPhaseAndSharesSumToOne) {
  const RunProfile p = profile_for("hypre", Mode::kUncachedNvm, 0.25);
  EXPECT_EQ(p.run, "hypre");
  EXPECT_EQ(p.mode, "uncached-nvm");
  EXPECT_GT(p.runtime_s, 0.0);
  ASSERT_FALSE(p.phases.empty());
  double share = 0.0;
  for (const auto& pp : p.phases) {
    EXPECT_FALSE(pp.name.empty());
    EXPECT_GT(pp.signals.count, 0u);
    share += pp.share;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  double class_share = 0.0;
  for (const auto& c : p.classes) class_share += c.share;
  EXPECT_NEAR(class_share, 1.0, 1e-9);
  // Quantiles come from the phase-duration sketch and must be ordered.
  EXPECT_GT(p.phase_count, 0u);
  EXPECT_LE(p.phase_p50_s, p.phase_p95_s);
  EXPECT_LE(p.phase_p95_s, p.phase_p99_s);
}

TEST(Profile, CachedModeJoinsCacheSeries) {
  // Memory mode at full scale spills the DRAM cache: the cache series
  // join must surface a nonzero conflict rate for hypre (the paper's
  // poster child for direct-mapped cache conflicts).
  const RunProfile p = profile_for("hypre", Mode::kCachedNvm, 1.0);
  EXPECT_GT(p.totals.cache_s, 0.0);
  EXPECT_GT(p.totals.cache_conflict, 0.0);
  EXPECT_EQ(p.verdict.cls, Bottleneck::kCacheConflict);
}

TEST(Profile, MergeWeightsByTime) {
  const RunProfile a = profile_for("scalapack", Mode::kUncachedNvm, 0.25);
  const RunProfile b = profile_for("scalapack", Mode::kUncachedNvm, 0.5);
  const RunProfile m = merge_profiles({a, b}, "merged");
  EXPECT_EQ(m.run, "merged");
  EXPECT_EQ(m.mode, "uncached-nvm");  // both parts agree
  EXPECT_NEAR(m.runtime_s, a.runtime_s + b.runtime_s, 1e-9);
  EXPECT_EQ(m.phase_count, a.phase_count + b.phase_count);
  // Phase names align by name: the union, in first-seen order.
  EXPECT_EQ(m.phases.size(), a.phases.size());
  for (std::size_t i = 0; i < m.phases.size(); ++i) {
    EXPECT_EQ(m.phases[i].name, a.phases[i].name);
    EXPECT_NEAR(m.phases[i].signals.total_s,
                a.phases[i].signals.total_s + b.phases[i].signals.total_s,
                1e-9);
  }
  const RunProfile mixed = merge_profiles(
      {a, profile_for("scalapack", Mode::kCachedNvm, 0.25)}, "x");
  EXPECT_EQ(mixed.mode, "mixed");
}

TEST(Profile, PublishRegistersAnalyzeGauges) {
  const RunProfile p = profile_for("scalapack", Mode::kUncachedNvm, 0.25);
  MetricsRegistry reg;
  publish_run_profile(p, reg);
  std::set<std::string> names;
  for (const auto& m : reg.metrics()) names.insert(m.name);
  for (const char* n :
       {"analyze.runtime_s", "analyze.phase_count", "analyze.verdict_score",
        "analyze.phase_p50_s", "analyze.phase_p95_s", "analyze.phase_p99_s",
        "analyze.class_share"}) {
    EXPECT_TRUE(names.count(n)) << n;
  }
}

// ---------- golden verdicts (paper Sec. IV taxonomy) ------------------------

struct Golden {
  const char* app;
  Mode mode;
  Bottleneck cls;
};

// Calibrated against the testbed devices at scale 1.0 (full working sets:
// Memory mode spills the 192 MiB DRAM cache, App-Direct exposes the WPQ).
// Taxonomy per the paper's Sec. IV: FT's write-bursty transposes pin the
// WPQ; ScaLAPACK/SuperLU/BoxLib reads crawl behind write-triggered
// throttling; XSBench/Hypre random lookups are latency-bound on NVM;
// HACC/Laghos stay compute-dominated.  In Memory mode Hypre's working set
// thrashes the direct-mapped DRAM cache and BoxLib saturates lane
// bandwidth, while the rest fit and run DRAM-like.
const Golden kGoldens[] = {
    {"hacc", Mode::kUncachedNvm, Bottleneck::kUnconstrained},
    {"laghos", Mode::kUncachedNvm, Bottleneck::kUnconstrained},
    {"scalapack", Mode::kUncachedNvm, Bottleneck::kReadThrottled},
    {"xsbench", Mode::kUncachedNvm, Bottleneck::kLatencyBound},
    {"hypre", Mode::kUncachedNvm, Bottleneck::kLatencyBound},
    {"superlu", Mode::kUncachedNvm, Bottleneck::kReadThrottled},
    {"boxlib", Mode::kUncachedNvm, Bottleneck::kReadThrottled},
    {"ft", Mode::kUncachedNvm, Bottleneck::kWpqSaturated},
    {"hacc", Mode::kCachedNvm, Bottleneck::kUnconstrained},
    {"laghos", Mode::kCachedNvm, Bottleneck::kUnconstrained},
    {"scalapack", Mode::kCachedNvm, Bottleneck::kUnconstrained},
    {"xsbench", Mode::kCachedNvm, Bottleneck::kUnconstrained},
    {"hypre", Mode::kCachedNvm, Bottleneck::kCacheConflict},
    {"superlu", Mode::kCachedNvm, Bottleneck::kUnconstrained},
    {"boxlib", Mode::kCachedNvm, Bottleneck::kBandwidthBound},
    {"ft", Mode::kCachedNvm, Bottleneck::kUnconstrained},
};

TEST(Golden, EveryDwarfLandsItsPaperClassWithEvidence) {
  for (const auto& g : kGoldens) {
    const RunProfile p = profile_for(g.app, g.mode, 1.0);
    EXPECT_EQ(to_string(p.verdict.cls), std::string(to_string(g.cls)))
        << g.app << " / " << to_string(g.mode);
    ASSERT_FALSE(p.verdict.evidence.empty()) << g.app;
    // Every evidence entry names a signal and its threshold context.
    for (const auto& e : p.verdict.evidence) {
      EXPECT_FALSE(e.signal.empty());
      EXPECT_GE(e.contribution, 0.0);
    }
  }
}

// ---------- CLI determinism (explain / diff) --------------------------------

struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (auto& s : strings) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

int run_cli(std::vector<std::string> args, std::string* out_text = nullptr,
            std::string* err_text = nullptr) {
  args.insert(args.begin(), "nvmsim");
  Argv a(std::move(args));
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli_main(a.argc(), a.argv(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

TEST(CliDeterminism, ExplainIsByteIdenticalAcrossJobsAndResolveCache) {
  std::string reference;
  bool first = true;
  for (const char* jobs : {"1", "8"}) {
    for (const char* rc : {"off", "run", "shared"}) {
      std::string out;
      ASSERT_EQ(run_cli({"explain", "hypre", "--mode", "uncached-nvm",
                         "--scale", "0.25", "--format", "json", "--jobs",
                         jobs, "--resolve-cache", rc},
                        &out),
                0)
          << "jobs=" << jobs << " rc=" << rc;
      if (first) {
        reference = out;
        first = false;
        EXPECT_FALSE(out.empty());
      } else {
        EXPECT_EQ(out, reference) << "jobs=" << jobs << " rc=" << rc;
      }
    }
  }
}

TEST(CliDeterminism, DiffIsByteIdenticalAcrossJobsAndResolveCache) {
  std::string reference;
  bool first = true;
  for (const char* jobs : {"1", "8"}) {
    for (const char* rc : {"off", "run", "shared"}) {
      std::string out;
      ASSERT_EQ(run_cli({"diff", "scalapack", "scalapack", "--mode-a",
                         "cached-nvm", "--mode-b", "uncached-nvm", "--scale",
                         "0.25", "--format", "json", "--jobs", jobs,
                         "--resolve-cache", rc},
                        &out),
                0);
      if (first) {
        reference = out;
        first = false;
      } else {
        EXPECT_EQ(out, reference) << "jobs=" << jobs << " rc=" << rc;
      }
    }
  }
}

TEST(CliDeterminism, HumanAndCsvRenderersAreStableAcrossJobs) {
  for (const char* fmt : {"human", "csv"}) {
    std::string a, b;
    ASSERT_EQ(run_cli({"explain", "ft", "--mode", "uncached-nvm", "--scale",
                       "0.25", "--format", fmt, "--jobs", "1"},
                      &a),
              0);
    ASSERT_EQ(run_cli({"explain", "ft", "--mode", "uncached-nvm", "--scale",
                       "0.25", "--format", fmt, "--jobs", "8"},
                      &b),
              0);
    EXPECT_EQ(a, b) << fmt;
  }
}

// ---------- diffing ---------------------------------------------------------

TEST(Diff, ModeRegressionIsAttributedToAMovedSignal) {
  const RunProfile fast = profile_for("scalapack", Mode::kCachedNvm, 0.5);
  const RunProfile slow = profile_for("scalapack", Mode::kUncachedNvm, 0.5);
  const RunDiff d = diff_profiles(fast, slow);
  EXPECT_EQ(d.a_mode, "cached-nvm");
  EXPECT_EQ(d.b_mode, "uncached-nvm");
  EXPECT_GT(d.delta_s, 0.0);      // App-Direct is slower
  EXPECT_LT(d.speedup, 1.0);      // a/b < 1
  EXPECT_FALSE(d.moved.empty());  // the regression names a signal
  EXPECT_GT(d.regressions, 0u);
  ASSERT_FALSE(d.phases.empty());
  // Phases sorted by |delta| descending.
  for (std::size_t i = 1; i < d.phases.size(); ++i) {
    EXPECT_GE(std::abs(d.phases[i - 1].delta_s),
              std::abs(d.phases[i].delta_s) - 1e-12);
  }
  for (const auto& pd : d.phases) {
    EXPECT_EQ(pd.presence, DiffPresence::kBoth);
    EXPECT_NEAR(pd.delta_s, pd.b_s - pd.a_s, 1e-12);
  }
}

TEST(Diff, SelfDiffIsANoOp) {
  const RunProfile p = profile_for("ft", Mode::kUncachedNvm, 0.25);
  const RunDiff d = diff_profiles(p, p);
  EXPECT_DOUBLE_EQ(d.delta_s, 0.0);
  EXPECT_DOUBLE_EQ(d.speedup, 1.0);
  EXPECT_EQ(d.regressions, 0u);
  EXPECT_EQ(d.improvements, 0u);
  for (const auto& pd : d.phases) EXPECT_TRUE(pd.moved.empty());
}

TEST(Diff, OneSidedPhasesAreReported) {
  const RunProfile a = profile_for("hypre", Mode::kUncachedNvm, 0.25);
  RunProfile b = a;
  // Drop one phase from B and pretend a new one appeared.
  ASSERT_GE(b.phases.size(), 2u);
  b.phases.erase(b.phases.begin());
  PhaseProfile extra = b.phases.back();
  extra.name = "brand-new-phase";
  b.phases.push_back(extra);
  const RunDiff d = diff_profiles(a, b);
  std::size_t only_a = 0, only_b = 0;
  for (const auto& pd : d.phases) {
    if (pd.presence == DiffPresence::kOnlyA) {
      ++only_a;
      EXPECT_EQ(pd.moved, "phase-removed");
      EXPECT_DOUBLE_EQ(pd.b_s, 0.0);
    }
    if (pd.presence == DiffPresence::kOnlyB) {
      ++only_b;
      EXPECT_EQ(pd.moved, "phase-added");
      EXPECT_DOUBLE_EQ(pd.a_s, 0.0);
    }
  }
  EXPECT_EQ(only_a, 1u);
  EXPECT_EQ(only_b, 1u);
}

TEST(Diff, PublishRegistersDiffGauges) {
  const RunProfile p = profile_for("ft", Mode::kUncachedNvm, 0.25);
  MetricsRegistry reg;
  publish_run_diff(diff_profiles(p, p), reg);
  std::set<std::string> names;
  for (const auto& m : reg.metrics()) names.insert(m.name);
  for (const char* n :
       {"diff.delta_s", "diff.speedup", "diff.regressions",
        "diff.improvements"}) {
    EXPECT_TRUE(names.count(n)) << n;
  }
}

// ---------- prometheus exposition ------------------------------------------

// Minimal format check for the text exposition 0.0.4 grammar: every line
// is a `# TYPE`/`# HELP` comment or `name{labels} value`, metric names
// match [a-zA-Z_:][a-zA-Z0-9_:]*, every sample's name is covered by a
// preceding TYPE line for its family, and values parse as doubles.
void check_prometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> typed;
  std::size_t samples = 0;
  auto name_ok = [](const std::string& n) {
    if (n.empty()) return false;
    for (std::size_t i = 0; i < n.size(); ++i) {
      const char c = n[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
    }
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string name, kind;
      t >> name >> kind;
      ASSERT_TRUE(name_ok(name)) << line;
      ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "summary" || kind == "histogram")
          << line;
      typed.insert(name);
      continue;
    }
    if (line[0] == '#') continue;  // HELP or comment
    const std::size_t brace = line.find('{');
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name =
        line.substr(0, brace == std::string::npos
                           ? line.find(' ')
                           : brace);
    ASSERT_TRUE(name_ok(name)) << line;
    if (brace != std::string::npos) {
      const std::size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
    }
    // A summary's quantile/_sum/_count samples belong to the base family.
    std::string family = name;
    for (const char* suffix : {"_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          typed.count(family.substr(0, family.size() - s.size()))) {
        family = family.substr(0, family.size() - s.size());
      }
    }
    EXPECT_TRUE(typed.count(family)) << "sample before TYPE: " << line;
    char* end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0')
        << "bad value in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(Prometheus, SweepExpositionParsesAndIsByteStableAcrossJobs) {
  SweepSpec spec;
  spec.app = "scalapack";
  spec.modes = {Mode::kCachedNvm, Mode::kUncachedNvm};
  spec.threads = {36};
  spec.scales = {0.25};
  spec.telemetry = true;
  spec.jobs = 1;
  const std::string serial = sweep_prometheus(run_sweep(spec));
  check_prometheus(serial);
  EXPECT_NE(serial.find("# TYPE "), std::string::npos);
  EXPECT_NE(serial.find("nvms_"), std::string::npos);
  EXPECT_NE(serial.find("part=\""), std::string::npos);
  spec.jobs = 8;
  EXPECT_EQ(sweep_prometheus(run_sweep(spec)), serial);
}

TEST(Prometheus, PublishedProfileGaugesExport) {
  const RunProfile p = profile_for("ft", Mode::kUncachedNvm, 0.25);
  Telemetry t;
  publish_run_profile(p, t.metrics());
  const std::string text = prometheus_text(t, "ft");
  check_prometheus(text);
  EXPECT_NE(text.find("nvms_analyze_runtime_s"), std::string::npos);
  EXPECT_NE(text.find("nvms_analyze_class_share"), std::string::npos);
}

TEST(Prometheus, HistogramsExportAsSummaries) {
  Telemetry t;
  const auto id = t.metrics().histogram("resolve.span_s");
  for (int i = 1; i <= 64; ++i) {
    t.metrics().observe(id, static_cast<double>(i) / 8.0);
  }
  const std::string text = prometheus_text(t, "unit");
  check_prometheus(text);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("nvms_resolve_span_s_sum"), std::string::npos);
  EXPECT_NE(text.find("nvms_resolve_span_s_count"), std::string::npos);
}

}  // namespace
}  // namespace nvms
