// Unit tests for the simcore module: units, RNG, statistics, time series,
// and the text-table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"
#include "simcore/stats.hpp"
#include "simcore/table.hpp"
#include "simcore/time_series.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
  EXPECT_DOUBLE_EQ(ns(174), 174e-9);
  EXPECT_DOUBLE_EQ(gbps(39), 39e9);
  EXPECT_DOUBLE_EQ(mbps(500), 5e8);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3 * GiB), "3.00 GiB");
}

TEST(Units, FormatBandwidthAndTime) {
  EXPECT_EQ(format_bandwidth(gbps(12.34)), "12.34 GB/s");
  EXPECT_EQ(format_bandwidth(mbps(40)), "40.0 MB/s");
  EXPECT_EQ(format_time(ns(174)), "174.0 ns");
  EXPECT_EQ(format_time(1.5), "1.500 s");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToHalf) {
  Rng r(11);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Stats, OnlineBasics) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), ConfigError);
  EXPECT_THROW(percentile({1.0}, 1.5), ConfigError);
}

TEST(Stats, MovingAverage) {
  MovingAverage m(3);
  EXPECT_DOUBLE_EQ(m.add(3.0), 3.0);
  EXPECT_DOUBLE_EQ(m.add(6.0), 4.5);
  EXPECT_DOUBLE_EQ(m.add(9.0), 6.0);
  EXPECT_TRUE(m.full());
  EXPECT_DOUBLE_EQ(m.add(12.0), 9.0);  // window slides off the 3
}

TEST(TimeSeries, SegmentsAndAverages) {
  TimeSeries ts;
  ts.add_segment(0.0, 1.0, 10.0);
  ts.add_segment(1.0, 3.0, 40.0);
  EXPECT_DOUBLE_EQ(ts.time_average(), (10.0 + 80.0) / 3.0);
  EXPECT_DOUBLE_EQ(ts.peak(), 40.0);
  EXPECT_DOUBLE_EQ(ts.at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(2.0), 40.0);
  EXPECT_DOUBLE_EQ(ts.at(5.0), 0.0);
}

TEST(TimeSeries, ResampleConservesTimeAverage) {
  TimeSeries ts;
  ts.add_segment(0.0, 1.0, 2.0);
  ts.add_segment(1.0, 2.0, 6.0);
  const auto samples = ts.resample(8);
  ASSERT_EQ(samples.size(), 8u);
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= 8.0;
  EXPECT_NEAR(mean, ts.time_average(), 1e-9);
  EXPECT_DOUBLE_EQ(samples.front(), 2.0);
  EXPECT_DOUBLE_EQ(samples.back(), 6.0);
}

TEST(TimeSeries, RejectsOutOfOrderSegments) {
  TimeSeries ts;
  ts.add_segment(1.0, 2.0, 1.0);
  EXPECT_THROW(ts.add_segment(0.0, 0.5, 1.0), ConfigError);
  EXPECT_THROW(ts.add_segment(3.0, 2.5, 1.0), ConfigError);
}

TEST(TimeSeries, ZeroLengthSegmentIgnored) {
  TimeSeries ts;
  ts.add_segment(0.0, 0.0, 99.0);
  EXPECT_TRUE(ts.empty());
}

TEST(TimeSeries, CsvShape) {
  TimeSeries ts;
  ts.add_segment(0.0, 2.0, 5.0);
  const auto csv = ts.to_csv("bw", 4);
  EXPECT_NE(csv.find("t_s,bw\n"), std::string::npos);
  // header + 4 rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(Table, RendersAligned) {
  TextTable t({"app", "slowdown"});
  t.add_row({"HACC", TextTable::num(1.01)});
  t.add_row({"FFT", TextTable::num(14.92)});
  const auto out = t.render();
  EXPECT_NE(out.find("app"), std::string::npos);
  EXPECT_NE(out.find("14.92"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "bad thing");
    FAIL() << "expected throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("bad thing"), std::string::npos);
  }
}

}  // namespace
}  // namespace nvms
