// Tests for the telemetry layer (obs/): tracer span hierarchy, the
// metrics registry, null-sink semantics, the exporters, and the wiring
// into MemorySystem / RunRecorder / the parallel executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "harness/executor.hpp"
#include "harness/registry.hpp"
#include "harness/sweep.hpp"
#include "mem/buffer.hpp"
#include "memsim/memory_system.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "prof/run_recorder.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

// ---------- tracer ----------------------------------------------------------

TEST(Tracer, RecordsHierarchyDepthAndParents) {
  Tracer tr;
  const auto a = tr.begin("phase", "phase", 0.0);
  const auto b = tr.begin("resolve", "resolve", 0.0);
  const auto c = tr.begin("nvm0", "device", 0.0);
  EXPECT_EQ(tr.open_depth(), 3u);
  tr.end(c, 1.0);
  tr.end(b, 2.0);
  tr.end(a, 2.0);
  EXPECT_EQ(tr.open_depth(), 0u);

  const auto& spans = tr.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, Tracer::kNone);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, a);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[2].parent, b);
  for (const auto& s : spans) EXPECT_TRUE(s.closed);
  EXPECT_DOUBLE_EQ(spans[2].t1, 1.0);
  EXPECT_EQ(tr.count("phase"), 1u);
  EXPECT_EQ(tr.count("device"), 1u);
  EXPECT_EQ(tr.count("nope"), 0u);
}

TEST(Tracer, EndClosesAbandonedDeeperScopes) {
  Tracer tr;
  const auto outer = tr.begin("outer", "phase", 0.0);
  (void)tr.begin("inner", "resolve", 0.5);  // never explicitly ended
  tr.end(outer, 2.0);
  EXPECT_EQ(tr.open_depth(), 0u);
  ASSERT_EQ(tr.spans().size(), 2u);
  EXPECT_TRUE(tr.spans()[1].closed);
  EXPECT_DOUBLE_EQ(tr.spans()[1].t1, 2.0);  // closed at the outer end
}

TEST(Tracer, AnnotationsAttachToSpans) {
  Tracer tr;
  const auto id = tr.begin("lane", "device", 0.0);
  tr.annotate(id, "read_gbs", 6.5);
  tr.annotate(id, "wpq_util", 0.8);
  tr.end(id, 1.0);
  ASSERT_EQ(tr.spans()[0].args.size(), 2u);
  EXPECT_EQ(tr.spans()[0].args[0].first, "read_gbs");
  EXPECT_DOUBLE_EQ(tr.spans()[0].args[1].second, 0.8);
}

TEST(Tracer, NullCaptureDropsEverything) {
  Tracer tr(false);
  const auto id = tr.begin("x", "phase", 0.0);
  EXPECT_EQ(id, Tracer::kNone);
  tr.annotate(id, "k", 1.0);
  tr.end(id, 1.0);
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.open_depth(), 0u);
}

// ---------- metrics registry ------------------------------------------------

TEST(Metrics, RegistrationDedupesOnKindNameLabels) {
  MetricsRegistry reg;
  const auto a = reg.counter("app.read_bytes");
  const auto b = reg.counter("app.read_bytes");
  EXPECT_EQ(a.index, b.index);
  const auto c = reg.counter("app.read_bytes", {{"device", "nvm0"}});
  EXPECT_NE(a.index, c.index);
  // same name, different kind -> distinct instrument
  const auto d = reg.gauge("app.read_bytes");
  EXPECT_NE(a.index, d.index);
  EXPECT_EQ(reg.metrics().size(), 3u);
}

TEST(Metrics, CanonicalLabels) {
  EXPECT_EQ(MetricsRegistry::canon_labels({}), "");
  EXPECT_EQ(MetricsRegistry::canon_labels({{"device", "nvm0"}}),
            "device=nvm0");
  EXPECT_EQ(
      MetricsRegistry::canon_labels({{"device", "nvm0"}, {"mode", "mem"}}),
      "device=nvm0,mode=mem");
}

TEST(Metrics, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  const auto ctr = reg.counter("bytes");
  reg.add(ctr, 100.0);
  reg.add(ctr, 50.0);
  EXPECT_DOUBLE_EQ(reg.metrics()[ctr.index].value, 150.0);
  EXPECT_EQ(reg.metrics()[ctr.index].count, 2u);
  EXPECT_DOUBLE_EQ(reg.metrics()[ctr.index].min, 50.0);
  EXPECT_DOUBLE_EQ(reg.metrics()[ctr.index].max, 100.0);

  const auto g = reg.gauge("util");
  reg.set(g, 0.25);
  reg.sample(g, 1.0, 0.75);
  const Metric& gm = reg.metrics()[g.index];
  EXPECT_DOUBLE_EQ(gm.value, 0.75);        // last wins
  ASSERT_EQ(gm.series.size(), 1u);         // only sample() records points
  EXPECT_DOUBLE_EQ(gm.series[0].t, 1.0);
  EXPECT_DOUBLE_EQ(gm.series[0].value, 0.75);

  const auto h = reg.histogram("dur");
  reg.observe(h, 1.0);
  reg.observe(h, 3.0);
  const Metric& hm = reg.metrics()[h.index];
  EXPECT_EQ(hm.count, 2u);
  EXPECT_DOUBLE_EQ(hm.mean(), 2.0);
  ASSERT_EQ(static_cast<int>(hm.buckets.size()), Metric::kBuckets);
  std::uint64_t total = 0;
  for (const auto b : hm.buckets) total += b;
  EXPECT_EQ(total, 2u);
}

TEST(Metrics, EpochSampleLandsInDeviceLabeledGauge) {
  MetricsRegistry reg;
  EpochProbe& probe = reg;
  probe.epoch_sample("wpq.util", "nvm0", 0.5, 0.9);
  probe.epoch_sample("wpq.util", "nvm0", 1.0, 0.4);
  probe.epoch_sample("wpq.util", "dram0", 1.0, 0.1);
  const Metric* m = reg.find("wpq.util", "device=nvm0");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  ASSERT_EQ(m->series.size(), 2u);
  EXPECT_DOUBLE_EQ(m->series[1].value, 0.4);
  ASSERT_NE(reg.find("wpq.util", "device=dram0"), nullptr);
  EXPECT_EQ(reg.find("wpq.util", "device=none"), nullptr);
}

TEST(Metrics, NullCaptureIsInert) {
  MetricsRegistry reg(false);
  const auto id = reg.counter("x");
  EXPECT_FALSE(id.valid());
  reg.add(id, 1.0);
  reg.sample(id, 0.0, 1.0);
  reg.epoch_sample("y", "d", 0.0, 1.0);
  EXPECT_TRUE(reg.metrics().empty());
}

// ---------- hardware-counter arithmetic -------------------------------------

TEST(Counters, DifferenceAndScaling) {
  HwCounters after;
  after.instructions = 100.0;
  after.imc_reads = 10.0;
  HwCounters before;
  before.instructions = 40.0;
  before.imc_reads = 4.0;
  const HwCounters d = after - before;
  EXPECT_DOUBLE_EQ(d.instructions, 60.0);
  EXPECT_DOUBLE_EQ(d.imc_reads, 6.0);
  const HwCounters half = d * 0.5;
  EXPECT_DOUBLE_EQ(half.instructions, 30.0);
  HwCounters acc = after;
  acc -= before;
  EXPECT_DOUBLE_EQ(acc.imc_reads, 6.0);
}

// ---------- exporters -------------------------------------------------------

/// Balanced-brace sanity for JSON emitted by the exporters (no strings in
/// our output contain braces except through Json::escape'd names).
void expect_balanced(const std::string& s) {
  int depth = 0;
  for (const char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

Telemetry make_telemetry() {
  Telemetry t;
  const auto p = t.tracer().begin("ph", "phase", 0.0);
  const auto r = t.tracer().begin("resolve", "resolve", 0.0);
  t.tracer().annotate(r, "read_gbs", 2.5);
  t.tracer().end(r, 1.0);
  t.tracer().end(p, 1.0);
  t.metrics().epoch_sample("wpq.util", "nvm0", 0.5, 0.75);
  const auto c = t.metrics().counter("app.read_bytes");
  t.metrics().add(c, 4096.0);
  return t;
}

TEST(Export, ChromeTraceShape) {
  const Telemetry t = make_telemetry();
  const std::string json = chrome_trace_json(t, "unit");
  expect_balanced(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("wpq.util[device=nvm0]"), std::string::npos);
  // virtual clock only: span annotations yes, host time no
  EXPECT_NE(json.find("\"read_gbs\""), std::string::npos);
  EXPECT_EQ(json.find("host_s"), std::string::npos);

  ExportOptions opt;
  opt.include_host_time = true;
  const std::string with_host = chrome_trace_json({{"unit", &t}}, opt);
  EXPECT_NE(with_host.find("host_s"), std::string::npos);
}

TEST(Export, ChromeTraceMergesPartsInOrder) {
  const Telemetry a = make_telemetry();
  const Telemetry b = make_telemetry();
  const std::string json = chrome_trace_json({{"first", &a}, {"second", &b}});
  expect_balanced(json);
  const auto first = json.find("\"name\":\"first\"");
  const auto second = json.find("\"name\":\"second\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  // two parts -> two pids
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(Export, JsonlOneObjectPerLine) {
  const Telemetry t = make_telemetry();
  const std::string jsonl = telemetry_jsonl(t, "unit");
  std::istringstream in(jsonl);
  std::string line;
  std::size_t n = 0;
  bool saw_span = false;
  bool saw_point = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    expect_balanced(line);
    saw_span |= line.find("\"type\":\"span\"") != std::string::npos;
    saw_point |= line.find("\"type\":\"point\"") != std::string::npos;
    ++n;
  }
  EXPECT_GE(n, 4u);  // part + 2 spans + 1 point
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_point);
}

TEST(Export, MetricsCsvShape) {
  const Telemetry t = make_telemetry();
  const std::string csv = metrics_csv(t, "unit");
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "part,metric,labels,t_s,value");
  std::string line;
  bool saw_series = false;
  bool saw_scalar = false;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("unit,", 0), 0u) << line;
    saw_series |= line.find("wpq.util") != std::string::npos;
    saw_scalar |= line.find("app.read_bytes") != std::string::npos;
  }
  EXPECT_TRUE(saw_series);
  EXPECT_TRUE(saw_scalar);
}

TEST(Export, EmptyAndNullPartsAreHarmless) {
  const Telemetry empty;
  expect_balanced(chrome_trace_json({}));
  expect_balanced(chrome_trace_json({{"e", &empty}, {"null", nullptr}}));
  EXPECT_EQ(telemetry_jsonl({{"null", nullptr}}), "");
}

TEST(Export, HostileNamesAreJsonEscaped) {
  // Span/metric/part names under user control (trace files, app labels)
  // must never break the JSON documents: quotes, backslashes, newlines
  // and raw control characters all have to leave as escape sequences.
  const std::string hostile = "ph\"as\\e\n\tx\x07";
  Telemetry t;
  const auto id = t.tracer().begin(hostile, "phase", 0.0);
  t.tracer().annotate(id, "read_gbs", 1.0);
  t.tracer().end(id, 1.0);
  t.metrics().epoch_sample(hostile, "nvm\"0", 0.5, 2.0);

  for (const std::string& doc :
       {chrome_trace_json(t, hostile), telemetry_jsonl(t, hostile)}) {
    ASSERT_FALSE(doc.empty());
    // The escaped forms appear...
    EXPECT_NE(doc.find("ph\\\"as\\\\e\\n\\tx\\u0007"), std::string::npos)
        << doc;
    // ...and no raw control byte or unescaped interior quote survives.
    for (const char c : doc) {
      EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n') << doc;
    }
    std::size_t quotes = 0;
    for (std::size_t i = 0; i < doc.size(); ++i) {
      if (doc[i] == '"') {
        std::size_t backslashes = 0;
        while (backslashes < i && doc[i - 1 - backslashes] == '\\') {
          ++backslashes;
        }
        if (backslashes % 2 == 0) ++quotes;  // a real string delimiter
      }
    }
    EXPECT_EQ(quotes % 2, 0u) << "unbalanced string quoting: " << doc;
  }
  expect_balanced(chrome_trace_json(t, hostile));
}

// ---------- MemorySystem integration ----------------------------------------

TEST(ObsWiring, SubmitOpensThreeSpanLevelsAndSamplesEpochMetrics) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  Telemetry telemetry;
  sys.set_telemetry(&telemetry);
  const auto id = sys.register_buffer("buf", 32 * MiB);
  const Phase p = PhaseBuilder("work")
                      .threads(36)
                      .flops(1e8)
                      .stream(seq_read(id, 16 * MiB))
                      .stream(seq_write(id, 4 * MiB))
                      .build();
  (void)sys.submit(p);
  (void)sys.submit(p);

  const Tracer& tr = telemetry.tracer();
  EXPECT_EQ(tr.open_depth(), 0u);
  EXPECT_EQ(tr.count("phase"), 2u);
  EXPECT_EQ(tr.count("resolve"), 2u);
  EXPECT_GE(tr.count("device"), 2u);
  int max_depth = 0;
  for (const auto& s : tr.spans()) max_depth = std::max(max_depth, s.depth);
  EXPECT_GE(max_depth, 2);  // phase > resolve > device

  const MetricsRegistry& reg = telemetry.metrics();
  const Metric* wpq = reg.find("wpq.util", "device=nvm0");
  ASSERT_NE(wpq, nullptr);
  EXPECT_EQ(wpq->series.size(), 2u);  // one sample per epoch
  ASSERT_NE(reg.find("throttle.read", "device=nvm0"), nullptr);
  ASSERT_NE(reg.find("bw.read_gbs", "device=nvm0"), nullptr);
  const Metric* hist = reg.find("phase.duration_s");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  const Metric* rd = reg.find("app.read_bytes");
  ASSERT_NE(rd, nullptr);
  EXPECT_DOUBLE_EQ(rd->value, 2.0 * 16 * MiB);
}

TEST(ObsWiring, CachedModeEmitsCacheSignals) {
  AppConfig cfg;
  cfg.threads = 12;
  cfg.size_scale = 0.1;
  Telemetry telemetry;
  (void)run_app_on("hypre", SystemConfig::testbed(Mode::kCachedNvm), cfg,
                   &telemetry);
  const MetricsRegistry& reg = telemetry.metrics();
  const Metric* occ = reg.find("cache.occupancy", "device=dram-cache");
  ASSERT_NE(occ, nullptr);
  EXPECT_FALSE(occ->series.empty());
  ASSERT_NE(reg.find("cache.hit_rate", "device=dram-cache"), nullptr);
  ASSERT_NE(reg.find("cache.conflict_rate", "device=dram-cache"), nullptr);
}

TEST(ObsWiring, RunRecorderAttachesSpanAndEpochContext) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  Telemetry telemetry;
  sys.set_telemetry(&telemetry);
  RunRecorder rec(sys);
  const auto id = sys.register_buffer("buf", 32 * MiB);
  const Phase p = PhaseBuilder("work")
                      .threads(36)
                      .flops(1e8)
                      .stream(seq_read(id, 16 * MiB))
                      .build();
  (void)rec.submit(p);
  ASSERT_EQ(rec.samples().size(), 1u);
  const CounterSample& s = rec.samples()[0];
  ASSERT_NE(s.span_id, static_cast<std::size_t>(-1));
  ASSERT_LT(s.span_id, telemetry.tracer().spans().size());
  EXPECT_EQ(telemetry.tracer().spans()[s.span_id].category, "phase");
  EXPECT_GT(s.delta.instructions, 0.0);  // operator- delta, not a raw total
  EXPECT_GE(s.nvm_wpq_util, 0.0);
  EXPECT_GT(s.nvm_throttle, 0.0);
}

TEST(ObsWiring, TelemetryExportIsDeterministicAcrossRuns) {
  auto run = [] {
    AppConfig cfg;
    cfg.threads = 12;
    cfg.size_scale = 0.1;
    Telemetry telemetry;
    (void)run_app_on("hypre", SystemConfig::testbed(Mode::kUncachedNvm), cfg,
                     &telemetry);
    return chrome_trace_json(telemetry, "hypre") + "\n" +
           metrics_csv(telemetry, "hypre");
  };
  EXPECT_EQ(run(), run());
}

// ---------- executor + sweep merge ------------------------------------------

TEST(ObsWiring, ExecutorMergeIsByteIdenticalForAnyJobsCount) {
  std::vector<ExperimentConfig> tasks;
  for (const int threads : {12, 24, 36}) {
    ExperimentConfig t;
    t.app = "hacc";
    t.sys = SystemConfig::testbed(Mode::kUncachedNvm);
    t.cfg.threads = threads;
    t.label = "hacc/" + std::to_string(threads);
    t.telemetry = true;
    tasks.push_back(std::move(t));
  }
  const auto serial = run_experiments(tasks, 1);
  const auto parallel = run_experiments(tasks, 3);
  const auto sp = telemetry_parts(tasks, serial);
  const auto pp = telemetry_parts(tasks, parallel);
  ASSERT_EQ(sp.size(), 3u);
  ASSERT_EQ(pp.size(), 3u);
  EXPECT_EQ(chrome_trace_json(sp), chrome_trace_json(pp));
  EXPECT_EQ(metrics_csv(sp), metrics_csv(pp));
  EXPECT_EQ(telemetry_jsonl(sp), telemetry_jsonl(pp));
}

TEST(ObsWiring, SweepCollectsGridOrderedTelemetry) {
  SweepSpec spec;
  spec.app = "hacc";
  spec.modes = {Mode::kDramOnly, Mode::kUncachedNvm};
  spec.threads = {12, 24};
  spec.scales = {1.0};
  spec.telemetry = true;

  spec.jobs = 1;
  const auto serial = run_sweep(spec);
  spec.jobs = 4;
  const auto parallel = run_sweep(spec);

  ASSERT_EQ(serial.telemetry.size(), 4u);
  ASSERT_EQ(serial.telemetry_labels.size(), 4u);
  EXPECT_EQ(serial.telemetry_labels[0], "dram-only/12/1");
  EXPECT_EQ(sweep_chrome_trace(serial), sweep_chrome_trace(parallel));
  EXPECT_EQ(sweep_metrics_csv(serial), sweep_metrics_csv(parallel));

  // telemetry off -> nothing collected, no overhead surface
  spec.telemetry = false;
  EXPECT_TRUE(run_sweep(spec).telemetry.empty());
}

TEST(ObsWiring, NullTelemetryKeepsSimulationResultsIdentical) {
  AppConfig cfg;
  cfg.threads = 24;
  cfg.size_scale = 0.2;
  Telemetry null_telemetry(Telemetry::Capture::kNull);
  const auto plain =
      run_app_on("xsbench", SystemConfig::testbed(Mode::kUncachedNvm), cfg);
  const auto nulled = run_app_on(
      "xsbench", SystemConfig::testbed(Mode::kUncachedNvm), cfg,
      &null_telemetry);
  Telemetry full;
  const auto traced = run_app_on(
      "xsbench", SystemConfig::testbed(Mode::kUncachedNvm), cfg, &full);
  EXPECT_DOUBLE_EQ(plain.runtime, nulled.runtime);
  EXPECT_DOUBLE_EQ(plain.checksum, nulled.checksum);
  EXPECT_DOUBLE_EQ(plain.runtime, traced.runtime);
  EXPECT_DOUBLE_EQ(plain.checksum, traced.checksum);
  EXPECT_TRUE(null_telemetry.tracer().spans().empty());
  EXPECT_TRUE(null_telemetry.metrics().metrics().empty());
  EXPECT_FALSE(full.tracer().spans().empty());
}

}  // namespace
}  // namespace nvms
